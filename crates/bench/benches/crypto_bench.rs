//! Real-time micro-benchmarks of the from-scratch crypto primitives.
//!
//! These measure genuine wall-clock throughput of the `un-crypto`
//! implementations (unlike the Table 1 harness, which reports
//! virtual-time Mbps from the cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn aead_seal(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut group = c.benchmark_group("chacha20poly1305_seal");
    for size in [64usize, 512, 1500] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut buf = vec![0xABu8; size];
            b.iter(|| {
                let tag = un_crypto::seal(&key, &nonce, b"aad", &mut buf);
                std::hint::black_box(tag);
            });
        });
    }
    group.finish();
}

fn aead_open(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut group = c.benchmark_group("chacha20poly1305_open");
    for size in [64usize, 1500] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut sealed = vec![0xABu8; size];
            let tag = un_crypto::seal(&key, &nonce, b"aad", &mut sealed);
            b.iter(|| {
                let mut ct = sealed.clone();
                un_crypto::open(&key, &nonce, b"aad", &mut ct, &tag).unwrap();
                std::hint::black_box(ct);
            });
        });
    }
    group.finish();
}

fn sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1500] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let data = vec![0x5Au8; size];
            b.iter(|| std::hint::black_box(un_crypto::Sha256::digest(&data)));
        });
    }
    group.finish();
}

fn hmac(c: &mut Criterion) {
    c.bench_function("hmac_sha256_64B", |b| {
        let data = [0x5Au8; 64];
        b.iter(|| std::hint::black_box(un_crypto::hmac_sha256(b"key", &data)));
    });
}

criterion_group!(benches, aead_seal, aead_open, sha256, hmac);
criterion_main!(benches);
