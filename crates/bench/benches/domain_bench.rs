//! Domain-orchestrator benchmarks: fleet placement at 10/100/1000
//! nodes, graph partitioning, and the full cross-node deploy cycle.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use un_core::UniversalNode;
use un_domain::{assign, assign_endpoints, partition, Domain, NodeView, PlacementStrategy};
use un_nffg::NfFgBuilder;
use un_sim::mem::mb;

fn fleet_views(n: usize) -> Vec<NodeView> {
    (0..n)
        .map(|i| NodeView {
            name: format!("node{i:04}"),
            // Heterogeneous free memory so bin-packing has real work.
            free_memory: mb(512 + (i as u64 * 37) % 3584),
            capacity: mb(4096),
            native_types: ["ipsec", "firewall", "nat", "bridge", "router"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            shared_running: if i % 7 == 0 {
                ["nat".to_string()].into_iter().collect()
            } else {
                Default::default()
            },
            sharable_types: ["nat".to_string()].into_iter().collect(),
            ports: ["eth0".to_string(), "eth1".to_string()]
                .into_iter()
                .collect(),
            alive: true,
        })
        .collect()
}

fn chain_graph(nfs: usize) -> un_nffg::NfFg {
    let ids: Vec<String> = (0..nfs).map(|i| format!("nf{i}")).collect();
    let mut b = NfFgBuilder::new("g", "bench")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for (i, id) in ids.iter().enumerate() {
        b = b.nf(id, ["firewall", "nat", "bridge"][i % 3], 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    b.chain("lan", &refs, "wan").build()
}

fn placement_scaling(c: &mut Criterion) {
    let graph = chain_graph(10);
    let estimates: BTreeMap<String, u64> = graph
        .nfs
        .iter()
        .map(|nf| (nf.id.clone(), mb(128)))
        .collect();
    let mut group = c.benchmark_group("domain_placement_10nf");
    for fleet in [10usize, 100, 1000] {
        let views = fleet_views(fleet);
        let eps = assign_endpoints(&graph, &views, &BTreeMap::new(), None).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(fleet), &fleet, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    assign(
                        &graph,
                        &views,
                        &estimates,
                        &eps,
                        &BTreeMap::new(),
                        &BTreeMap::new(),
                        PlacementStrategy::Pack,
                        None,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn partition_cost(c: &mut Criterion) {
    let graph = chain_graph(10);
    let views = fleet_views(4);
    let eps = assign_endpoints(&graph, &views, &BTreeMap::new(), None).unwrap();
    let estimates: BTreeMap<String, u64> = graph
        .nfs
        .iter()
        .map(|nf| (nf.id.clone(), mb(128)))
        .collect();
    let assignment = assign(
        &graph,
        &views,
        &estimates,
        &eps,
        &BTreeMap::new(),
        &BTreeMap::new(),
        PlacementStrategy::Spread,
        None,
    )
    .unwrap();
    c.bench_function("domain_partition_10nf_4nodes", |b| {
        b.iter(|| {
            let mut next = 3000u16;
            let mut alloc = |_: &str, _: &str, _: &un_nffg::PortRef| {
                let v = next;
                next += 1;
                Some(v)
            };
            std::hint::black_box(partition(&graph, &assignment, &eps, "fab0", &mut alloc).unwrap())
        })
    });
}

fn cross_node_deploy_cycle(c: &mut Criterion) {
    c.bench_function("domain_deploy_undeploy_2node_split", |b| {
        let mut domain = Domain::with_defaults();
        let mut n1 = UniversalNode::new("n1", mb(4096));
        n1.add_physical_port("eth0");
        let mut n2 = UniversalNode::new("n2", mb(4096));
        n2.add_physical_port("eth1");
        domain.add_node(n1);
        domain.add_node(n2);
        let g = NfFgBuilder::new("g", "split")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("br1", "bridge", 2)
            .nf("br2", "bridge", 2)
            .chain("lan", &["br1", "br2"], "wan")
            .build();
        let hints = un_domain::DeployHints {
            nf_node: [
                ("br1".to_string(), "n1".to_string()),
                ("br2".to_string(), "n2".to_string()),
            ]
            .into(),
            ..Default::default()
        };
        b.iter(|| {
            domain.deploy_with(&g, &hints).unwrap();
            domain.undeploy("g").unwrap();
        });
    });
}

criterion_group!(
    benches,
    placement_scaling,
    partition_cost,
    cross_node_deploy_cycle
);
criterion_main!(benches);
