//! ESP tunnel-mode encapsulation/decapsulation benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::Ipv4Addr;
use un_ipsec::sa::SecurityAssociation;

fn sa_pair() -> (SecurityAssociation, SecurityAssociation) {
    let key = [0x42u8; 32];
    let salt = [1, 2, 3, 4];
    let a = Ipv4Addr::new(192, 0, 2, 1);
    let b = Ipv4Addr::new(203, 0, 113, 7);
    (
        SecurityAssociation::outbound(0x100, a, b, key, salt),
        SecurityAssociation::inbound(0x100, a, b, key, salt),
    )
}

fn encap(c: &mut Criterion) {
    let mut group = c.benchmark_group("esp_encapsulate");
    for size in [64usize, 576, 1400] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let (mut tx, _) = sa_pair();
            let inner = vec![0xEEu8; size];
            b.iter(|| std::hint::black_box(un_ipsec::encapsulate(&mut tx, &inner).unwrap()));
        });
    }
    group.finish();
}

fn decap(c: &mut Criterion) {
    use criterion::BatchSize;
    let mut group = c.benchmark_group("esp_decapsulate");
    for size in [64usize, 1400] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let (mut tx, _) = sa_pair();
            let inner = vec![0xEEu8; size];
            let wire = un_ipsec::encapsulate(&mut tx, &inner).unwrap();
            // A fresh inbound SA per iteration so the replay window never
            // rejects; SA construction is trivially cheap next to AEAD.
            b.iter_batched(
                || sa_pair().1,
                |mut rx| std::hint::black_box(un_ipsec::decapsulate(&mut rx, &wire).unwrap()),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn handshake(c: &mut Criterion) {
    c.bench_function("ike_lite_handshake", |b| {
        let mut rng = un_sim::DetRng::new(1);
        let cfg_i = un_ipsec::IkeConfig {
            psk: b"benchmark-psk".to_vec(),
            local_id: "cpe".into(),
            local_addr: Ipv4Addr::new(192, 0, 2, 1),
            peer_addr: Ipv4Addr::new(192, 0, 2, 2),
        };
        let cfg_r = un_ipsec::IkeConfig {
            psk: b"benchmark-psk".to_vec(),
            local_id: "gw".into(),
            local_addr: Ipv4Addr::new(192, 0, 2, 2),
            peer_addr: Ipv4Addr::new(192, 0, 2, 1),
        };
        b.iter(|| {
            let mut init = un_ipsec::IkeInitiator::new(cfg_i.clone(), &mut rng);
            let mut resp = un_ipsec::IkeResponder::new(cfg_r.clone());
            let m1 = init.initial_message();
            let (m2, _sas, _id) = resp.handle_initial(&m1, &mut rng).unwrap();
            std::hint::black_box(init.handle_response(&m2).unwrap());
        });
    });
}

criterion_group!(benches, encap, decap, handshake);
criterion_main!(benches);
