//! Simulated kernel data-path benchmarks: forwarding, NAT, XFRM.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;
use un_linux::netfilter::{Chain, NfRule, NfTable, RuleMatch, Target};
use un_linux::{Host, MAIN_TABLE};
use un_packet::ethernet::MacAddr;
use un_packet::PacketBuilder;
use un_sim::CostModel;

fn forwarding_host() -> (Host, un_linux::IfaceId) {
    let mut h = Host::new("bench", CostModel::default());
    let ns = h.add_namespace("router");
    let lan = h.add_external(ns, "lan", 1).unwrap();
    let wan = h.add_external(ns, "wan", 2).unwrap();
    h.addr_add(lan, "192.168.1.1/24".parse().unwrap()).unwrap();
    h.addr_add(wan, "203.0.113.1/24".parse().unwrap()).unwrap();
    h.set_up(lan, true).unwrap();
    h.set_up(wan, true).unwrap();
    h.sysctl_ip_forward(ns, true).unwrap();
    h.route_add(
        ns,
        MAIN_TABLE,
        "0.0.0.0/0".parse().unwrap(),
        Some(Ipv4Addr::new(203, 0, 113, 254)),
        wan,
        0,
    )
    .unwrap();
    h.neigh_add(ns, Ipv4Addr::new(203, 0, 113, 254), MacAddr::local(99))
        .unwrap();
    h.nf_append(
        ns,
        NfTable::Nat,
        Chain::Postrouting,
        NfRule::new(RuleMatch::default(), Target::Masquerade),
    )
    .unwrap();
    (h, lan)
}

fn frame(h: &Host, lan: un_linux::IfaceId, sport: u16) -> un_packet::Packet {
    PacketBuilder::new()
        .ethernet(MacAddr::local(50), h.iface(lan).unwrap().mac)
        .ipv4(Ipv4Addr::new(192, 168, 1, 10), Ipv4Addr::new(8, 8, 8, 8))
        .udp(sport, 53)
        .payload(&[0u8; 1400])
        .build()
}

fn nat_forward_established(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_nat_forward");
    group.throughput(Throughput::Bytes(1442));
    group.bench_function("established_flow", |b| {
        let (mut h, lan) = forwarding_host();
        let pkt = frame(&h, lan, 5000);
        h.inject(lan, pkt.clone()); // create the conntrack entry once
        b.iter(|| std::hint::black_box(h.inject(lan, pkt.clone())));
    });
    group.bench_function("new_flow_each_packet", |b| {
        let (mut h, lan) = forwarding_host();
        let mut sport = 1024u16;
        b.iter(|| {
            sport = if sport >= 60_000 { 1024 } else { sport + 1 };
            std::hint::black_box(h.inject(lan, frame(&h, lan, sport)))
        });
    });
    group.finish();
}

fn xfrm_output(c: &mut Criterion) {
    use un_ipsec::sa::SecurityAssociation;
    use un_ipsec::spd::{PolicyAction, PolicyDirection, SecurityPolicy, TrafficSelector};
    let mut group = c.benchmark_group("kernel_xfrm_output");
    group.throughput(Throughput::Bytes(1428));
    group.bench_function("esp_tunnel_1400B", |b| {
        let mut x = un_linux::xfrm::Xfrm::new();
        x.sad.install(SecurityAssociation::outbound(
            0x1,
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(192, 0, 2, 2),
            [7u8; 32],
            [1, 2, 3, 4],
        ));
        x.spd.install(SecurityPolicy {
            selector: TrafficSelector::any(),
            direction: PolicyDirection::Out,
            action: PolicyAction::Protect(0x1),
            priority: 1,
        });
        let inner = PacketBuilder::new()
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(1, 2)
            .payload(&[0u8; 1400])
            .build();
        let bytes = inner.data().to_vec();
        let costs = CostModel::default();
        b.iter(|| {
            let mut cost = un_sim::Cost::ZERO;
            std::hint::black_box(x.output(&bytes, &costs, &mut cost))
        });
    });
    group.finish();
}

fn bridge_path(c: &mut Criterion) {
    c.bench_function("kernel_bridge_forward", |b| {
        let mut h = Host::new("br", CostModel::default());
        let ns = h.add_namespace("bridge");
        let br = h.add_bridge(ns, "br0").unwrap();
        let p1 = h.add_external(ns, "p1", 1).unwrap();
        let p2 = h.add_external(ns, "p2", 2).unwrap();
        for i in [br, p1, p2] {
            h.set_up(i, true).unwrap();
        }
        h.bridge_attach(br, p1).unwrap();
        h.bridge_attach(br, p2).unwrap();
        let fwd = PacketBuilder::new()
            .ethernet(MacAddr::local(10), MacAddr::local(11))
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .udp(1, 2)
            .payload(&[0u8; 1400])
            .build();
        let rev = PacketBuilder::new()
            .ethernet(MacAddr::local(11), MacAddr::local(10))
            .ipv4(Ipv4Addr::new(2, 2, 2, 2), Ipv4Addr::new(1, 1, 1, 1))
            .udp(2, 1)
            .payload(&[0u8; 64])
            .build();
        h.inject(p1, fwd.clone());
        h.inject(p2, rev); // learn both MACs
        b.iter(|| std::hint::black_box(h.inject(p1, fwd.clone())));
    });
}

criterion_group!(benches, nat_forward_established, xfrm_output, bridge_path);
criterion_main!(benches);
