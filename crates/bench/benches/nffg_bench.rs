//! NF-FG control-plane benchmarks: JSON codec, validation, diffing,
//! and a full orchestrator deploy/undeploy cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use un_core::UniversalNode;
use un_nffg::{diff, from_json, to_json, validate, NfFgBuilder};
use un_sim::mem::mb;

fn big_graph(id: &str, nfs: usize) -> un_nffg::NfFg {
    let ids: Vec<String> = (0..nfs).map(|i| format!("nf{i}")).collect();
    let mut b = NfFgBuilder::new(id, "bench")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for id in &ids {
        b = b.nf(id, "bridge", 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    b.chain("lan", &refs, "wan").build()
}

fn json_roundtrip(c: &mut Criterion) {
    let g = big_graph("g", 10);
    c.bench_function("nffg_to_json_10nf", |b| {
        b.iter(|| std::hint::black_box(to_json(&g)))
    });
    let json = to_json(&g);
    c.bench_function("nffg_from_json_10nf", |b| {
        b.iter(|| std::hint::black_box(from_json(&json).unwrap()))
    });
}

fn validation(c: &mut Criterion) {
    let g = big_graph("g", 10);
    c.bench_function("nffg_validate_10nf", |b| {
        b.iter(|| std::hint::black_box(validate(&g)))
    });
}

fn diffing(c: &mut Criterion) {
    let g1 = big_graph("g", 10);
    let mut g2 = g1.clone();
    g2.flow_rules[3].priority = 77;
    g2.nfs[5].config = un_nffg::NfConfig::default().with_param("x", "y");
    c.bench_function("nffg_diff_10nf", |b| {
        b.iter(|| std::hint::black_box(diff(&g1, &g2)))
    });
}

fn orchestrator_cycle(c: &mut Criterion) {
    c.bench_function("deploy_undeploy_native_bridge", |b| {
        let mut node = UniversalNode::new("bench", mb(4096));
        node.add_physical_port("eth0");
        node.add_physical_port("eth1");
        let g = big_graph("g", 1);
        b.iter(|| {
            node.deploy(&g).unwrap();
            node.undeploy("g").unwrap();
        });
    });
}

criterion_group!(
    benches,
    json_roundtrip,
    validation,
    diffing,
    orchestrator_cycle
);
criterion_main!(benches);
