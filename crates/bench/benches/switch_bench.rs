//! LSI benchmarks: flow lookup fast/slow path and the backend
//! comparison (Ext-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::net::Ipv4Addr;
use un_packet::ethernet::MacAddr;
use un_packet::{Ipv4Cidr, PacketBuilder};
use un_sim::CostModel;
use un_switch::{Backend, FlowAction, FlowEntry, FlowMatch, LogicalSwitch, PortNo};

fn packet(dport: u16) -> un_packet::Packet {
    PacketBuilder::new()
        .ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
        .udp(5001, dport)
        .payload(&[0u8; 64])
        .build()
}

fn lsi_with_rules(backend: Backend, n_rules: u16) -> LogicalSwitch {
    let mut sw = LogicalSwitch::new("bench", 1, backend);
    sw.add_port(PortNo(1), "in").unwrap();
    sw.add_port(PortNo(2), "out").unwrap();
    for i in 0..n_rules {
        let mut m = FlowMatch::in_port(PortNo(1));
        m.l4_dst = Some(10_000 + i);
        m.ip_dst = Some(Ipv4Cidr::new(Ipv4Addr::new(10, 0, 0, 2), 32));
        sw.install(
            0,
            FlowEntry::new(100, m, vec![FlowAction::Output(PortNo(2))]),
        )
        .unwrap();
    }
    // Catch-all at the bottom.
    sw.install(
        0,
        FlowEntry::new(
            1,
            FlowMatch::in_port(PortNo(1)),
            vec![FlowAction::Output(PortNo(2))],
        ),
    )
    .unwrap();
    sw
}

/// Same 5-tuple every time: after the first packet the microflow cache
/// serves every lookup.
fn cached_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsi_cached_lookup");
    for rules in [10u16, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, &rules| {
            let mut sw = lsi_with_rules(Backend::SingleTableCached, rules);
            let costs = CostModel::default();
            let pkt = packet(10_005);
            b.iter(|| std::hint::black_box(sw.process(PortNo(1), pkt.clone(), &costs)));
        });
    }
    group.finish();
}

/// A different 5-tuple every packet: every lookup walks the table.
fn uncached_slow_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsi_uncached_lookup");
    for rules in [10u16, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, &rules| {
            let mut sw = lsi_with_rules(Backend::SingleTableCached, rules);
            let costs = CostModel::default();
            let mut port = 0u16;
            b.iter(|| {
                port = port.wrapping_add(1);
                std::hint::black_box(sw.process(PortNo(1), packet(port), &costs))
            });
        });
    }
    group.finish();
}

/// Ext-C: single-table+cache (OvS-like) vs two-table pipeline
/// (xDPd-like) on the same classification job.
fn backend_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsi_backend");
    group.bench_function("single_table_cached", |b| {
        let mut sw = lsi_with_rules(Backend::SingleTableCached, 100);
        let costs = CostModel::default();
        let pkt = packet(10_050);
        b.iter(|| std::hint::black_box(sw.process(PortNo(1), pkt.clone(), &costs)));
    });
    group.bench_function("multi_table", |b| {
        let mut sw = LogicalSwitch::new("mt", 2, Backend::MultiTable(2));
        sw.add_port(PortNo(1), "in").unwrap();
        sw.add_port(PortNo(2), "out").unwrap();
        sw.install(
            0,
            FlowEntry::new(
                1,
                FlowMatch::in_port(PortNo(1)),
                vec![FlowAction::SetFwmark(1), FlowAction::GotoTable(1)],
            ),
        )
        .unwrap();
        for i in 0..100u16 {
            let mut m = FlowMatch::any().with_fwmark(1);
            m.l4_dst = Some(10_000 + i);
            sw.install(
                1,
                FlowEntry::new(100, m, vec![FlowAction::Output(PortNo(2))]),
            )
            .unwrap();
        }
        let costs = CostModel::default();
        let pkt = packet(10_050);
        b.iter(|| std::hint::black_box(sw.process(PortNo(1), pkt.clone(), &costs)));
    });
    group.finish();
}

fn vlan_ops(c: &mut Criterion) {
    c.bench_function("vlan_push_pop", |b| {
        let pkt = packet(80);
        b.iter(|| {
            let mut p = pkt.clone();
            p.vlan_push(100).unwrap();
            std::hint::black_box(p.vlan_pop().unwrap())
        });
    });
}

criterion_group!(
    benches,
    cached_fast_path,
    uncached_slow_path,
    backend_comparison,
    vlan_ops
);
criterion_main!(benches);
