//! Criterion wrapper around the Table 1 per-packet path: real wall-clock
//! nanoseconds per frame for each flavor (the `table1` binary reports
//! the virtual-time Mbps the paper's table uses; this bench tracks the
//! real CPU cost of the simulation itself, per flavor).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use un_bench::{build_ipsec_node, lan_spec, GatewayPeer};
use un_traffic::StreamGenerator;

fn per_flavor(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_per_packet");
    group.throughput(Throughput::Bytes(1500));
    for flavor in ["native", "docker", "vm"] {
        group.bench_function(flavor, |b| {
            let (mut node, _) = build_ipsec_node(flavor);
            let spec = lan_spec(&node);
            let mut generator = StreamGenerator::new(spec, 1500);
            let mut gateway = GatewayPeer::new();
            b.iter(|| {
                let frame = generator.next_frame();
                let io = node.inject("eth0", frame);
                for (port, pkt) in &io.emitted {
                    if port == "eth1" {
                        std::hint::black_box(gateway.receive(pkt));
                    }
                }
                std::hint::black_box(io.cost)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, per_flavor);
criterion_main!(benches);
