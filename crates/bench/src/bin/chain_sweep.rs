//! Ext-B ablation: throughput vs service-chain length per flavor.
//!
//! Usage: `cargo run --release -p un-bench --bin chain_sweep [packets]`
//!
//! Chains of 1..5 transparent bridge NFs, each deployed natively, as
//! Docker containers, or as VMs. The per-hop cost gap between flavors
//! compounds with chain length — the longer the chain, the stronger the
//! case for native components on a CPE.

use un_core::UniversalNode;
use un_nffg::NfFgBuilder;
use un_sim::mem::mb;
use un_traffic::{measure_chain, FrameSpec, StreamGenerator};

fn run(chain_len: usize, flavor: &str, packets: u64) -> f64 {
    let mut node = UniversalNode::new("cpe", mb(16_384));
    node.add_physical_port("eth0");
    node.add_physical_port("eth1");

    let nf_ids: Vec<String> = (0..chain_len).map(|i| format!("br{i}")).collect();
    let mut b = NfFgBuilder::new("g", "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for id in &nf_ids {
        b = b.nf(id, "bridge", 2).with_flavor(flavor);
    }
    let refs: Vec<&str> = nf_ids.iter().map(|s| s.as_str()).collect();
    let g = b.chain("lan", &refs, "wan").build();
    node.deploy(&g).expect("chain deploys");

    let spec = FrameSpec::udp(
        "10.0.0.1".parse().unwrap(),
        "10.0.0.2".parse().unwrap(),
        5001,
        5201,
    );
    let mut generator = StreamGenerator::new(spec, 1500);
    let m = measure_chain(&mut node, "eth0", "eth1", &mut generator, packets);
    m.mbps()
}

fn main() {
    let packets: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    println!("Ext-B: throughput (Mbps) vs chain length, 1500 B frames\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "NFs", "native", "docker", "vm"
    );
    for len in 1..=5 {
        let native = run(len, "native", packets);
        let docker = run(len, "docker", packets);
        let vm = run(len, "vm", packets);
        println!("{len:>6} {native:>12.0} {docker:>12.0} {vm:>12.0}");
    }
    println!(
        "\nBridges do no crypto, so per-hop overhead dominates: the VM\n\
         column degrades fastest (vmexits + copies per hop), matching the\n\
         paper's motivation for running simple NFs natively."
    );
}
