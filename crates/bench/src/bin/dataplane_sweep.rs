//! Data-plane sweep: microflow fast path, megaflow wildcard path, and
//! sharded shuttle scaling.
//!
//! Three wall-clock measurements (real time, not virtual time — this
//! harness benchmarks the *simulator's* data plane itself):
//!
//! 1. **Fast path** — one LSI loaded with `RULES` exact-match entries,
//!    traffic cycling over a small set of flows. Measured twice: with
//!    the classifier forced to the pre-optimization linear scan, and
//!    with the indexed pipeline (microflow cache + exact-match shape
//!    tables). The ratio is the fast-path speedup.
//! 2. **Wildcard path** — the same switch loaded with CIDR and
//!    `AnyTagged` rules (a wildcard-heavy table spanning a handful of
//!    distinct masks) and traffic that never repeats a microflow key.
//!    Linear pays an O(#rules) scan per frame; the megaflow layer pays
//!    O(#masks) hash probes. The ratio is the megaflow speedup.
//! 3. **Shard scaling** — a fleet of nodes, each hosting its own
//!    bridge-chain graph, driven through `Domain::inject_batch` in
//!    several bursts with 1/2/4/8 workers, so the domain's persistent
//!    shard runtime is reused across calls the way a line-rate ingress
//!    path would. Per-node state is independent, so this measures how
//!    well the work-stealing shuttle shards the fleet.
//!
//! Writes machine-readable results to `BENCH_dataplane.json` and
//! asserts the invariants CI smoke-checks: the microflow cache actually
//! hits, megaflow lookups actually hit and beat the linear scan, and
//! every sharded run delivers exactly the sequential output.
//!
//! ```sh
//! UN_SWEEP_FRAMES=2000 cargo run --release -p un-bench --bin dataplane_sweep
//! ```

use std::net::Ipv4Addr;
use std::time::Instant;

use un_core::UniversalNode;
use un_domain::{DeployHints, Domain, PlacementStrategy};
use un_nffg::{Json, NfFg, NfFgBuilder};
use un_packet::ethernet::MacAddr;
use un_packet::Ipv4Cidr;
use un_packet::{Packet, PacketBuilder};
use un_sim::mem::mb;
use un_sim::CostModel;
use un_switch::{
    Backend, ClassifierMode, FlowAction, FlowEntry, FlowMatch, LogicalSwitch, PortNo, VlanSpec,
};

/// Exact-match rules installed for the fast-path measurement.
const RULES: u16 = 1024;
/// Distinct flows the traffic cycles over (all cache-resident).
const FLOWS: u16 = 16;
/// Fleet size for the shard-scaling measurement.
const NODES: usize = 8;
/// Chain length per node graph.
const CHAIN: usize = 3;

fn frames_budget() -> u64 {
    std::env::var("UN_SWEEP_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

// ----------------------------------------------------------------------
// Phase 1: fast path vs linear scan
// ----------------------------------------------------------------------

fn loaded_switch(mode: ClassifierMode) -> LogicalSwitch {
    let mut sw = LogicalSwitch::new("LSI-sweep", 1, Backend::SingleTableCached);
    sw.set_classifier_mode(mode);
    sw.add_port(PortNo(1), "in").unwrap();
    sw.add_port(PortNo(2), "out").unwrap();
    for i in 0..RULES {
        let mut m = FlowMatch::in_port(PortNo(1));
        m.l4_dst = Some(5_000 + i);
        sw.install(
            0,
            FlowEntry::new(10, m, vec![FlowAction::Output(PortNo(2))]),
        )
        .unwrap();
    }
    sw
}

fn flow_frames() -> Vec<Packet> {
    (0..FLOWS)
        .map(|i| {
            // Spread the flows across the rule table so the linear
            // baseline pays an average (not best-case) scan depth.
            let dport = 5_000 + i * (RULES / FLOWS) + RULES / (2 * FLOWS);
            PacketBuilder::new()
                .ethernet(MacAddr::local(1), MacAddr::local(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                .udp(6_000, dport)
                .payload(&[0x5A; 64])
                .build()
        })
        .collect()
}

/// Drive `frames` packets through the switch; returns (pps, hit rate).
fn measure_switch(mode: ClassifierMode, frames: u64) -> (f64, f64) {
    let mut sw = loaded_switch(mode);
    let costs = CostModel::default();
    let pkts = flow_frames();
    let mut delivered = 0u64;
    let start = Instant::now();
    for i in 0..frames {
        let res = sw.process(
            PortNo(1),
            pkts[(i % u64::from(FLOWS)) as usize].clone(),
            &costs,
        );
        delivered += res.outputs.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(delivered, frames, "every frame must match a rule");
    (frames as f64 / secs, sw.cache_stats().hit_rate())
}

// ----------------------------------------------------------------------
// Phase 2: megaflow wildcard path vs linear scan
// ----------------------------------------------------------------------

/// Wildcard rules in the wildcard-path table (three distinct masks).
const WC_SRC_RULES: u16 = 2048;
const WC_DST_RULES: u16 = 256;
const WC_VLAN_RULES: u16 = 8;

/// A wildcard-heavy table: `WC_SRC_RULES` high-priority /16 source
/// CIDRs (ACL-style, none match the test traffic), `WC_DST_RULES` /24
/// destination CIDRs (the forwarding rules that do match), and a few
/// VLAN-`AnyTagged` guards. 2312 entries, but only *three* distinct
/// masks — the shape a megaflow classifier exploits.
fn wildcard_switch(mode: ClassifierMode) -> LogicalSwitch {
    let mut sw = LogicalSwitch::new("LSI-mega", 1, Backend::SingleTableCached);
    sw.set_classifier_mode(mode);
    sw.add_port(PortNo(1), "in").unwrap();
    sw.add_port(PortNo(2), "out").unwrap();
    for r in 0..WC_SRC_RULES {
        let mut m = FlowMatch::in_port(PortNo(1));
        // Distinct /16 prefixes in 64.0.0.0/5 — never match src 10.x.
        m.ip_src = Some(Ipv4Cidr::new(
            Ipv4Addr::new(64 + (r / 256) as u8, (r % 256) as u8, 0, 0),
            16,
        ));
        sw.install(0, FlowEntry::new(30, m, vec![FlowAction::Controller]))
            .unwrap();
    }
    for j in 0..WC_DST_RULES {
        let mut m = FlowMatch::in_port(PortNo(1));
        m.ip_dst = Some(Ipv4Cidr::new(Ipv4Addr::new(10, 0, j as u8, 0), 24));
        sw.install(
            0,
            FlowEntry::new(20, m, vec![FlowAction::Output(PortNo(2))]),
        )
        .unwrap();
    }
    for p in 0..WC_VLAN_RULES {
        let mut m = FlowMatch::in_port(PortNo(1));
        m.vlan = Some(VlanSpec::AnyTagged);
        sw.install(0, FlowEntry::new(p + 1, m, vec![FlowAction::Controller]))
            .unwrap();
    }
    sw
}

/// Drive `frames` packets with *non-repeating* flow keys through the
/// wildcard table; returns (pps, megaflow hits). Every key is new, so
/// the microflow cache cannot help — linear pays the full rule scan,
/// indexed pays O(#masks) megaflow probes.
fn measure_wildcard(mode: ClassifierMode, frames: u64) -> (f64, u64) {
    let mut sw = wildcard_switch(mode);
    let costs = CostModel::default();
    let mut delivered = 0u64;
    let start = Instant::now();
    for i in 0..frames {
        let pkt = PacketBuilder::new()
            .ethernet(MacAddr::local(1), MacAddr::local(2))
            .ipv4(
                Ipv4Addr::new(10, 9, 9, 9),
                Ipv4Addr::new(10, 0, (i % 256) as u8, ((i / 256) % 256) as u8),
            )
            .udp(6_000, (i % 50_000) as u16)
            .payload(&[0x5A; 64])
            .build();
        let res = sw.process(PortNo(1), pkt, &costs);
        delivered += res.outputs.len() as u64;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(delivered, frames, "every frame must match a /24 rule");
    (frames as f64 / secs, sw.cache_stats().megaflow_hits)
}

// ----------------------------------------------------------------------
// Phase 3: shard scaling across a fleet
// ----------------------------------------------------------------------

fn node_chain(node: &str) -> (NfFg, DeployHints) {
    let ids: Vec<String> = (0..CHAIN).map(|i| format!("{node}-br{i}")).collect();
    let mut b = NfFgBuilder::new(&format!("g-{node}"), "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for id in &ids {
        b = b.nf(id, "bridge", 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    let graph = b.chain("lan", &refs, "wan").build();
    let hints = DeployHints {
        endpoint_node: [
            ("lan".to_string(), node.to_string()),
            ("wan".to_string(), node.to_string()),
        ]
        .into(),
        nf_node: ids
            .iter()
            .map(|id| (id.clone(), node.to_string()))
            .collect(),
        strategy: Some(PlacementStrategy::Spread),
    };
    (graph, hints)
}

fn fleet() -> Domain {
    let mut d = Domain::with_defaults();
    for i in 0..NODES {
        let mut n = UniversalNode::new(&format!("n{i}"), mb(2048));
        n.add_physical_port("eth0");
        n.add_physical_port("eth1");
        d.add_node(n);
    }
    for i in 0..NODES {
        let (graph, hints) = node_chain(&format!("n{i}"));
        d.deploy_with(&graph, &hints)
            .expect("per-node chain deploys");
    }
    d
}

fn ingress_burst(frames: u64) -> Vec<(String, String, Packet)> {
    (0..frames)
        .map(|i| {
            let node = format!("n{}", i as usize % NODES);
            let pkt = PacketBuilder::new()
                .ethernet(MacAddr::local(1), MacAddr::local(2))
                .ipv4(
                    Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                    Ipv4Addr::new(192, 0, 2, 9),
                )
                .udp(5000, 5001)
                .payload(&[0xAB; 256])
                .build();
            (node, "eth0".to_string(), pkt)
        })
        .collect()
}

/// Order-independent digest of one egress: summing per-frame hashes is
/// commutative, so equal digests mean equal `(node, port, bytes)`
/// multisets regardless of worker interleaving.
fn egress_digest(emitted: &[(un_core::Name, un_core::Name, Packet)]) -> (u64, u64) {
    let mut digest = 0u64;
    for (node, port, pkt) in emitted {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in node
            .as_str()
            .as_bytes()
            .iter()
            .chain([0u8].iter())
            .chain(port.as_str().as_bytes())
            .chain([0u8].iter())
            .chain(pkt.data())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        digest = digest.wrapping_add(h);
    }
    (emitted.len() as u64, digest)
}

/// Bursts the fleet workload is split into, so multi-worker runs
/// exercise the persistent shard runtime across calls (workers park
/// between bursts instead of being spawned per burst).
const BURSTS: usize = 4;

/// Run the fleet workload with `workers` in `BURSTS` inject_batch
/// calls; returns (pps, egress digest).
fn measure_fleet(workers: usize, frames: u64) -> (f64, (u64, u64)) {
    let mut d = fleet();
    let ingress = ingress_burst(frames);
    let chunk = ingress.len().div_ceil(BURSTS).max(1);
    let mut emitted = Vec::new();
    let start = Instant::now();
    let mut rest = ingress;
    while !rest.is_empty() {
        let tail = rest.split_off(chunk.min(rest.len()));
        let io = d.inject_batch(rest, workers);
        emitted.extend(io.emitted);
        rest = tail;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (frames as f64 / secs, egress_digest(&emitted))
}

/// The pre-batch baseline: one `Domain::inject` call per frame.
fn measure_fleet_per_frame(frames: u64) -> (f64, (u64, u64)) {
    let mut d = fleet();
    let ingress = ingress_burst(frames);
    let mut emitted = Vec::new();
    let start = Instant::now();
    for (node, port, pkt) in ingress {
        let io = d.inject(&node, &port, pkt);
        emitted.extend(io.emitted);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (frames as f64 / secs, egress_digest(&emitted))
}

fn main() {
    let frames = frames_budget();
    println!("Data-plane sweep ({frames} frames per measurement)\n");

    // ---- Phase 1 ----
    let (linear_pps, _) = measure_switch(ClassifierMode::Linear, frames);
    let (indexed_pps, hit_rate) = measure_switch(ClassifierMode::Indexed, frames);
    let speedup = indexed_pps / linear_pps.max(1.0);
    println!("fast path   ({RULES} rules, {FLOWS} flows):");
    println!("  linear scan : {linear_pps:>12.0} pkts/s");
    println!(
        "  indexed     : {indexed_pps:>12.0} pkts/s   ({speedup:.1}x, cache hit rate {:.1}%)",
        hit_rate * 100.0
    );
    assert!(
        hit_rate > 0.0,
        "microflow cache must take hits on repeating flows"
    );

    // ---- Phase 2 ----
    let (wc_linear_pps, _) = measure_wildcard(ClassifierMode::Linear, frames);
    let (wc_indexed_pps, megaflow_hits) = measure_wildcard(ClassifierMode::Indexed, frames);
    let megaflow_speedup = wc_indexed_pps / wc_linear_pps.max(1.0);
    let wc_rules = u64::from(WC_SRC_RULES + WC_DST_RULES + WC_VLAN_RULES);
    println!("\nwildcard path ({wc_rules} CIDR/AnyTagged rules, 3 masks, no key reuse):");
    println!("  linear scan : {wc_linear_pps:>12.0} pkts/s");
    println!(
        "  megaflow    : {wc_indexed_pps:>12.0} pkts/s   ({megaflow_speedup:.1}x, {megaflow_hits} megaflow hits)"
    );
    assert!(
        megaflow_hits > 0,
        "wildcard-heavy traffic must resolve through the megaflow layer"
    );
    assert!(
        wc_indexed_pps > wc_linear_pps,
        "megaflow (O(#masks) probes) must strictly beat the linear rule scan"
    );

    // ---- Phase 3 ----
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\nshard scaling ({NODES} nodes × {CHAIN}-bridge chains, {cpus} cpu(s)):");
    let (per_frame_pps, per_frame_digest) = measure_fleet_per_frame(frames);
    println!("  per-frame   : {per_frame_pps:>12.0} pkts/s   (pre-batch baseline)");
    let mut per_workers: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (pps, digest) = measure_fleet(workers, frames);
        // Full multiset equality via the commutative digest — count,
        // routing, and payload bytes all have to match the baseline.
        assert_eq!(
            digest, per_frame_digest,
            "sharded run ({workers} workers) diverged from the per-frame egress"
        );
        println!("  {workers} worker(s): {pps:>12.0} pkts/s");
        per_workers.push((workers, pps));
    }
    let pps_of = |w: usize| {
        per_workers
            .iter()
            .find(|(workers, _)| *workers == w)
            .map(|(_, pps)| *pps)
            .expect("measured")
    };
    let batching_speedup = pps_of(1) / per_frame_pps.max(1.0);
    let scaling = pps_of(4) / pps_of(1).max(1.0);
    println!("  batching speedup (per-frame → 1-worker batch): {batching_speedup:.2}x");
    println!("  1→4 worker scaling: {scaling:.2}x (needs ≥4 cpus to show)");
    let delivered = per_frame_digest.0;
    assert_eq!(delivered, frames, "chains must be lossless");

    // ---- Machine-readable trajectory ----
    let json = Json::obj()
        .set("frames", frames)
        .set(
            "fast_path",
            Json::obj()
                .set("rules", u64::from(RULES))
                .set("flows", u64::from(FLOWS))
                .set("linear_pps", linear_pps)
                .set("indexed_pps", indexed_pps)
                .set("speedup", speedup)
                .set("cache_hit_rate", hit_rate),
        )
        .set(
            "megaflow",
            Json::obj()
                .set("rules", wc_rules)
                .set("masks", 3u64)
                .set("linear_pps", wc_linear_pps)
                .set("indexed_pps", wc_indexed_pps)
                .set("speedup", megaflow_speedup)
                .set("megaflow_hits", megaflow_hits),
        )
        .set(
            "shard_scaling",
            Json::obj()
                .set("nodes", NODES as u64)
                .set("chain_len", CHAIN as u64)
                .set("cpus", cpus as u64)
                .set("bursts", BURSTS as u64)
                .set("per_frame_pps", per_frame_pps)
                .set("batching_speedup", batching_speedup)
                .set(
                    "per_workers",
                    Json::Arr(
                        per_workers
                            .iter()
                            .map(|(w, pps)| Json::obj().set("workers", *w as u64).set("pps", *pps))
                            .collect(),
                    ),
                )
                .set("scaling_1_to_4", scaling)
                .set("delivered", delivered)
                .set(
                    "note",
                    if cpus < 4 {
                        format!(
                            "host exposes {cpus} cpu(s): worker scaling is \
                             correctness coverage here, not a speedup claim"
                        )
                    } else {
                        format!("host exposes {cpus} cpus")
                    },
                ),
        );
    std::fs::write("BENCH_dataplane.json", json.render_pretty())
        .expect("write BENCH_dataplane.json");
    println!("\nwrote BENCH_dataplane.json");
}
