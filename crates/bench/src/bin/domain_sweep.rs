//! Ext-E: partitioned-chain throughput vs. single-node.
//!
//! Deploys the same bridge chain (length 1..=4) three ways — wholly on
//! one node, split across two nodes over the plain overlay, and split
//! over the ESP-protected overlay — and drives an iperf-like saturation
//! run through each, reporting virtual-time throughput. The gap between
//! the columns is the price of the inter-node wire (and of protecting
//! it), mirroring how the paper's Table 1 prices NF flavors.
//!
//! ```sh
//! cargo run --release -p un-bench --bin domain_sweep
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use un_core::UniversalNode;
use un_domain::{DeployHints, Domain, DomainConfig};
use un_nffg::{NfFg, NfFgBuilder};
use un_packet::ethernet::MacAddr;
use un_packet::PacketBuilder;
use un_sim::mem::mb;
use un_sim::SimTime;

const FRAMES: u64 = 2_000;
const PAYLOAD: usize = 1400;

fn chain(len: usize) -> NfFg {
    let ids: Vec<String> = (0..len).map(|i| format!("br{i}")).collect();
    let mut b = NfFgBuilder::new("sweep", "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for id in &ids {
        b = b.nf(id, "bridge", 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    b.chain("lan", &refs, "wan").build()
}

/// Split hints: first half of the chain on n1, second half on n2.
fn split_hints(len: usize) -> DeployHints {
    let nf_node: BTreeMap<String, String> = (0..len)
        .map(|i| {
            let node = if i < len.div_ceil(2) { "n1" } else { "n2" };
            (format!("br{i}"), node.to_string())
        })
        .collect();
    DeployHints {
        nf_node,
        ..Default::default()
    }
}

fn single_node_domain() -> Domain {
    let mut d = Domain::with_defaults();
    let mut n = UniversalNode::new("n1", mb(4096));
    n.add_physical_port("eth0");
    n.add_physical_port("eth1");
    d.add_node(n);
    d
}

fn two_node_domain(protect: bool) -> Domain {
    let mut d = Domain::new(DomainConfig {
        protect_overlay: protect,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(4096));
    n1.add_physical_port("eth0");
    let mut n2 = UniversalNode::new("n2", mb(4096));
    n2.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    d
}

/// Saturating measurement across the domain: back-to-back frames from
/// `n1/eth0` driven through the batched shuttle in bursts, counting
/// bytes that leave on `eth1` anywhere. Virtual-time throughput is
/// identical to the per-frame path (total cost is order-independent);
/// the bursts exercise the run-to-completion batch pipeline.
fn measure(domain: &mut Domain) -> (f64, f64, u64) {
    const BURST: u64 = 64;
    let mut clock = SimTime::ZERO;
    let mut bytes = 0u64;
    let mut delivered = 0u64;
    let mut hops = 0u64;
    let mut sent = 0u64;
    while sent < FRAMES {
        domain.set_time(clock);
        let n = BURST.min(FRAMES - sent);
        let ingress: Vec<(String, String, un_packet::Packet)> = (sent..sent + n)
            .map(|i| {
                let frame = PacketBuilder::new()
                    .ethernet(MacAddr::local(1), MacAddr::local(2))
                    .ipv4(
                        Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
                        Ipv4Addr::new(192, 0, 2, 9),
                    )
                    .udp(5000, 5001)
                    .payload(&[0x5A; PAYLOAD])
                    .build();
                ("n1".to_string(), "eth0".to_string(), frame)
            })
            .collect();
        sent += n;
        let io = domain.inject_batch(ingress, 1);
        clock += io.cost.duration();
        hops += u64::from(io.overlay_hops);
        for (_node, port, pkt) in &io.emitted {
            if port == "eth1" {
                delivered += 1;
                bytes += pkt.len() as u64;
            }
        }
    }
    let secs = clock.duration_since(SimTime::ZERO).as_secs_f64();
    let mbps = if secs > 0.0 {
        bytes as f64 * 8.0 / 1e6 / secs
    } else {
        0.0
    };
    let loss = 1.0 - delivered as f64 / FRAMES as f64;
    (mbps, loss, hops)
}

fn main() {
    println!("Ext-E: partitioned chain vs single node ({FRAMES} frames of {PAYLOAD} B payload)\n");
    println!(
        "{:<6} {:>14} {:>16} {:>18} {:>10}",
        "chain", "1-node Mbps", "2-node Mbps", "2-node+ESP Mbps", "overlay%"
    );
    for len in 1..=4usize {
        let g = chain(len);

        let mut single = single_node_domain();
        single.deploy(&g).expect("single-node deploy");
        let (mbps_single, loss_s, _) = measure(&mut single);

        let mut split = two_node_domain(false);
        split
            .deploy_with(&g, &split_hints(len))
            .expect("split deploy");
        let (mbps_split, loss_p, hops) = measure(&mut split);

        let mut protected = two_node_domain(true);
        protected
            .deploy_with(&g, &split_hints(len))
            .expect("protected deploy");
        let (mbps_esp, loss_e, _) = measure(&mut protected);

        assert!(
            loss_s == 0.0 && loss_p == 0.0 && loss_e == 0.0,
            "lossless chains expected (got {loss_s}/{loss_p}/{loss_e})"
        );
        println!(
            "{:<6} {:>14.0} {:>16.0} {:>18.0} {:>9.0}%",
            len,
            mbps_single,
            mbps_split,
            mbps_esp,
            100.0 * mbps_split / mbps_single.max(1.0) - 100.0,
        );
        let _ = hops;
    }
    println!("\n(negative overlay% = slowdown from crossing the inter-node wire)");
}
