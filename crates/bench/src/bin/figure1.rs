//! Reproduces the paper's Figure 1: the compute node architecture.
//!
//! Usage: `cargo run -p un-bench --bin figure1`
//!
//! Builds a node hosting two service graphs that together exercise every
//! component of the figure — per-graph LSIs steered from LSI-0 over
//! virtual links, NFs realized through the VM, Docker, DPDK *and*
//! native drivers, and a sharable NNF with its single-port attach — and
//! prints the resulting architecture tree.

use un_bench::ipsec_config;
use un_core::UniversalNode;
use un_nffg::{NfConfig, NfFgBuilder};
use un_sim::mem::mb;

fn main() {
    let mut node = UniversalNode::new("universal-node", mb(8192));
    node.add_physical_port("eth0");
    node.add_physical_port("eth1");

    // Graph 1: mixed technologies — a VM bridge, a Docker firewall and a
    // native IPsec endpoint in one chain.
    let g1 = NfFgBuilder::new("g1", "mixed-technology-chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("vnf1", "bridge", 2)
        .with_flavor("vm")
        .nf_with_config(
            "vnf2",
            "firewall",
            2,
            NfConfig::default()
                .with_param("policy", "accept")
                .with_param("stateful", "false"),
        )
        .with_flavor("docker")
        .nf_with_config("vnf3", "ipsec", 2, ipsec_config())
        .with_flavor("native")
        .chain("lan", &["vnf1", "vnf2", "vnf3"], "wan")
        .build();
    let r1 = node.deploy(&g1).expect("graph 1 deploys");

    // Graph 2: a VLAN-classified customer sharing the node, using the
    // sharable NAT NNF and a DPDK fast path.
    let mut nat_cfg = NfConfig::default();
    nat_cfg
        .params
        .insert("lan-addr".into(), "192.168.2.1/24".into());
    nat_cfg
        .params
        .insert("wan-addr".into(), "203.0.113.2/24".into());
    let g2 = NfFgBuilder::new("g2", "shared-nat-customer")
        .vlan_endpoint("lan", "eth0", 200)
        .vlan_endpoint("wan", "eth1", 200)
        .nf_with_config("nat", "nat", 2, nat_cfg)
        .nf("fast", "l2fwd-fast", 2)
        .chain("lan", &["nat", "fast"], "wan")
        .build();
    let r2 = node.deploy(&g2).expect("graph 2 deploys");

    println!("{}", node.architecture_diagram());
    println!("Deploy reports:");
    for report in [r1, r2] {
        println!(
            "  graph '{}' → {} flow entries",
            report.graph, report.flow_entries
        );
        for (nf, flavor, inst, shared) in &report.placements {
            println!(
                "    {nf}: {flavor} as {inst}{}",
                if *shared { " (shared NNF)" } else { "" }
            );
        }
    }
    println!("\nNode description (the REST /node payload):");
    println!("{}", node.describe().to_json_pretty());
}
