//! Ext-D ablation: node memory vs number of deployed graphs per flavor.
//!
//! Usage: `cargo run -p un-bench --bin memory_scaling [max_graphs]`
//!
//! Each graph is one bridge NF between VLAN endpoints. The RAM column of
//! Table 1 becomes a *slope* here: every additional VM costs ~326 MB,
//! every container ~8 MB, every native instance well under 1 MB — this
//! is the paper's "not suitable for low-cost devices" argument made
//! quantitative.

use un_core::UniversalNode;
use un_nffg::NfFgBuilder;
use un_sim::mem::mb;

fn run(n_graphs: u32, flavor: &str) -> Option<u64> {
    let mut node = UniversalNode::new("cpe", mb(8_192));
    node.add_physical_port("eth0");
    node.add_physical_port("eth1");
    for i in 1..=n_graphs {
        let g = NfFgBuilder::new(&format!("g{i}"), "bridge")
            .vlan_endpoint("lan", "eth0", (100 + i) as u16)
            .vlan_endpoint("wan", "eth1", (100 + i) as u16)
            .nf("br", "bridge", 2)
            .with_flavor(flavor)
            .chain("lan", &["br"], "wan")
            .build();
        if node.deploy(&g).is_err() {
            return None; // admission control refused (capacity exceeded)
        }
    }
    Some(node.memory_used())
}

fn main() {
    let max: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!("Ext-D: node memory (MB) vs deployed graphs (8 GB CPE)\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "graphs", "native", "docker", "vm"
    );
    for n in (2..=max).step_by(2) {
        let fmt = |v: Option<u64>| match v {
            Some(bytes) => format!("{:.1}", bytes as f64 / 1e6),
            None => "REFUSED".to_string(),
        };
        println!(
            "{:>7} {:>12} {:>12} {:>12}",
            n,
            fmt(run(n, "native")),
            fmt(run(n, "docker")),
            fmt(run(n, "vm")),
        );
    }
    println!(
        "\nREFUSED = the resource manager's admission control rejected the\n\
         deployment; on this 8 GB node the VM flavor runs out first."
    );
}
