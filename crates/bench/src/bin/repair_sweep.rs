//! Repair sweep: incremental repair vs from-scratch re-placement.
//!
//! The scenario is a **split chain**: a bridge chain spread two-NFs-
//! per-rack-node (capacity shaped by VM "filler" NFs that are removed
//! after the deploy, so the placer *had* to spread but a later re-plan
//! is free to consolidate). The rack hosting the chain tail — and the
//! `wan` endpoint — then fails, and the same failure is repaired twice
//! on identical fleets:
//!
//! * **make-before-break** — the victim is marked *suspect* first, so
//!   a standby plan (placement, vids, routes) is pre-staged and the
//!   failure promotes it: the planning phase leaves the downtime
//!   window entirely;
//! * [`RepairPolicy::Incremental`] — survivors pinned, overlay vids
//!   inherited, only the lost sub-partition moves — but planned
//!   reactively, inside the outage;
//! * [`RepairPolicy::FromScratch`] — the pre-incremental baseline:
//!   tear everything down and re-plan, which happily consolidates the
//!   whole chain onto the emptied lan node, moving every survivor.
//!
//! Reported per chain length: NFs moved (the **blast radius**), NFs
//! preserved, overlay links rewired vs kept, nodes touched, the
//! wall-clock repair latency, and the min-of-reps downtime estimate.
//! Writes `BENCH_repair.json` and asserts the invariants CI
//! smoke-checks: incremental repair moves strictly fewer NFs than
//! from-scratch on the longer chains (and never more), and the
//! make-before-break swap shows strictly lower downtime than reactive
//! incremental repair at every length.
//!
//! ```sh
//! cargo run --release -p un-bench --bin repair_sweep
//! ```

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::time::Instant;

use un_core::UniversalNode;
use un_domain::{DeployHints, Domain, DomainConfig, RepairOutcome, RepairPolicy};
use un_nffg::{Json, NfFg, NfFgBuilder};
use un_packet::ethernet::MacAddr;
use un_packet::PacketBuilder;
use un_sim::mem::mb;

/// Chain lengths measured (even: two NFs per rack node).
const LENGTHS: [usize; 3] = [4, 6, 8];

fn chain(len: usize) -> NfFg {
    let ids: Vec<String> = (0..len).map(|i| format!("br{i}")).collect();
    let mut b = NfFgBuilder::new("svc", "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for id in &ids {
        b = b.nf(id, "bridge", 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    b.chain("lan", &refs, "wan").build()
}

/// A capacity filler: one VM-flavored bridge behind VLAN endpoints on
/// the management interface (no conflict with the service chain).
fn filler(id: &str, vid: u16) -> NfFg {
    NfFgBuilder::new(id, "filler")
        .vlan_endpoint("in", "mgmt", vid)
        .vlan_endpoint("out", "mgmt", vid + 1)
        .nf("f0", "bridge", 2)
        .with_flavor("vm")
        .chain("in", &["f0"], "out")
        .build()
}

/// Measure what the scheduler and the ledger think one NF costs.
fn probe_costs() -> (u64, u64) {
    let mut probe = UniversalNode::new("probe", mb(8192));
    probe.add_physical_port("mgmt");
    let native_est = probe
        .estimate_nf_ram("bridge", None)
        .expect("bridge template");
    let before = probe.memory_used();
    probe.deploy(&filler("probe-f", 100)).expect("vm filler");
    let vm_actual = probe.memory_used() - before;
    (native_est, vm_actual)
}

struct Scenario {
    domain: Domain,
    victim: String,
    assignment_before: BTreeMap<String, String>,
}

/// Build the fleet, shape capacity with fillers, deploy the chain
/// unpinned (it is forced to spread), then free the filler capacity.
fn build(len: usize, policy: RepairPolicy, native_est: u64, vm_actual: u64) -> Scenario {
    let racks = len / 2;
    // Enough filler headroom that a free re-plan could consolidate the
    // whole chain on one node, plus room for exactly two natives while
    // the fillers are in place (2.5 estimates: the third does not fit).
    let fillers_per_node =
        1 + (len as u64 * native_est).saturating_sub(native_est * 5 / 2) / vm_actual;
    let capacity = fillers_per_node * vm_actual + native_est * 5 / 2;

    let mut d = Domain::new(DomainConfig {
        repair: policy,
        ..DomainConfig::default()
    });
    let mut names: Vec<String> = Vec::new();
    for i in 1..=racks {
        let mut n = UniversalNode::new(&format!("n{i}"), capacity);
        n.add_physical_port("mgmt");
        if i == 1 {
            n.add_physical_port("eth0");
        }
        if i == racks {
            n.add_physical_port("eth1");
        }
        names.push(d.add_node(n));
    }
    let mut spare = UniversalNode::new("spare", capacity);
    spare.add_physical_port("mgmt");
    spare.add_physical_port("eth1");
    names.push(d.add_node(spare));

    // Fillers: pin one batch per node, globally unique VLAN ids.
    let mut vid = 200u16;
    for name in &names {
        for f in 0..fillers_per_node {
            let fid = format!("fill-{name}-{f}");
            let hints = DeployHints {
                endpoint_node: [
                    ("in".to_string(), name.clone()),
                    ("out".to_string(), name.clone()),
                ]
                .into(),
                nf_node: [("f0".to_string(), name.clone())].into(),
                ..Default::default()
            };
            d.deploy_with(&filler(&fid, vid), &hints).expect("filler");
            vid += 2;
        }
    }

    // The chain deploys unpinned: capacity forces two NFs per rack.
    d.deploy(&chain(len)).expect("chain deploys");
    let assignment_before = d.assignment_of("svc").expect("deployed").clone();
    let spread: std::collections::BTreeSet<&String> = assignment_before.values().collect();
    assert!(
        spread.len() >= racks,
        "chain must spread across the racks: {assignment_before:?}"
    );

    // Free the filler capacity: a later re-plan may now consolidate.
    let filler_ids: Vec<String> = d
        .graph_ids()
        .into_iter()
        .filter(|g| g.starts_with("fill-"))
        .collect();
    for fid in filler_ids {
        d.undeploy(&fid).expect("filler undeploy");
    }

    Scenario {
        domain: d,
        victim: format!("n{racks}"),
        assignment_before,
    }
}

/// Downtime repetitions: the estimate is wall-clock and jittery, so
/// each scenario re-runs and the minimum (the clean signal) is kept.
const REPS: usize = 5;

struct Measured {
    outcome: RepairOutcome,
    latency_us: f64,
}

fn run_policy(
    len: usize,
    policy: RepairPolicy,
    warn: bool,
    native_est: u64,
    vm_actual: u64,
) -> Measured {
    let Scenario {
        mut domain,
        victim,
        assignment_before,
    } = build(len, policy, native_est, vm_actual);
    if warn {
        // The failure detector's early warning: the standby plan is
        // computed here, *outside* the downtime window.
        domain.suspect_node(&victim).expect("victim exists");
        assert!(!domain.standby_graphs().is_empty(), "standby must stage");
    }
    let start = Instant::now();
    let report = domain.fail_node(&victim).expect("victim exists");
    let latency_us = start.elapsed().as_secs_f64() * 1e6;
    assert_eq!(report.replaced, vec!["svc".to_string()], "{policy:?}");
    assert!(report.stranded.is_empty());
    let outcome = report.repairs.into_iter().next().expect("one repair");

    // Post-repair validity: nothing lives on the dead node and the
    // chain still forwards lan → wan end to end.
    let after = domain.assignment_of("svc").expect("still deployed");
    assert!(
        after.values().all(|n| *n != victim),
        "{policy:?}: {after:?}"
    );
    let moved = after
        .iter()
        .filter(|(nf, node)| assignment_before.get(*nf) != Some(node))
        .count();
    assert_eq!(moved, outcome.nfs_moved, "report must match observation");
    let frame = PacketBuilder::new()
        .ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 0, 2, 9))
        .udp(5000, 5001)
        .payload(&[0x5A; 256])
        .build();
    let io = domain.inject("n1", "eth0", frame);
    assert_eq!(io.emitted.len(), 1, "{policy:?} chain must forward");
    assert_eq!(io.emitted[0].1, "eth1");
    assert_eq!(
        outcome.standby_promoted, warn,
        "warned repairs swap, surprised repairs plan: {outcome:?}"
    );

    Measured {
        outcome,
        latency_us,
    }
}

/// Best-of-[`REPS`] by downtime estimate.
fn run_min(
    len: usize,
    policy: RepairPolicy,
    warn: bool,
    native_est: u64,
    vm_actual: u64,
) -> Measured {
    (0..REPS)
        .map(|_| run_policy(len, policy, warn, native_est, vm_actual))
        .min_by_key(|m| m.outcome.downtime_estimate_ns)
        .expect("REPS > 0")
}

fn outcome_json(m: &Measured) -> Json {
    Json::obj()
        .set("nfs_moved", m.outcome.nfs_moved)
        .set("nfs_preserved", m.outcome.nfs_preserved)
        .set("links_rewired", m.outcome.links_rewired)
        .set("links_kept", m.outcome.links_kept)
        .set("nodes_touched", m.outcome.nodes_touched)
        .set("full_replace", m.outcome.full_replace)
        .set("standby_promoted", m.outcome.standby_promoted)
        .set("downtime_estimate_ns", m.outcome.downtime_estimate_ns)
        .set("modeled_downtime_ns", m.outcome.modeled_downtime_ns)
        .set("latency_us", m.latency_us)
}

fn main() {
    let (native_est, vm_actual) = probe_costs();
    println!("Repair sweep: incremental vs from-scratch (split chain, tail rack dies)\n");
    println!(
        "{:<6} {:>6} | {:>9} {:>10} {:>8} {:>11} | {:>9} {:>10} {:>8} {:>11}",
        "chain",
        "racks",
        "inc-moved",
        "inc-touch",
        "inc-us",
        "inc-rewired",
        "fs-moved",
        "fs-touch",
        "fs-us",
        "fs-rewired",
    );

    let mut rows: Vec<Json> = Vec::new();
    let (mut total_inc, mut total_fs) = (0usize, 0usize);
    let (mut downtime_mbb, mut downtime_inc) = (0u64, 0u64);
    for len in LENGTHS {
        let mbb = run_min(len, RepairPolicy::Incremental, true, native_est, vm_actual);
        let inc = run_min(len, RepairPolicy::Incremental, false, native_est, vm_actual);
        let fs = run_min(len, RepairPolicy::FromScratch, false, native_est, vm_actual);
        assert!(!inc.outcome.full_replace, "incremental must not fall back");
        assert!(fs.outcome.full_replace);
        assert!(
            inc.outcome.nfs_moved <= fs.outcome.nfs_moved,
            "incremental repair must never move more NFs"
        );
        if len >= 6 {
            assert!(
                inc.outcome.nfs_moved < fs.outcome.nfs_moved,
                "incremental repair must shrink the blast radius \
                 (len {len}: {} vs {})",
                inc.outcome.nfs_moved,
                fs.outcome.nfs_moved
            );
        }
        // The pre-staged swap lands on the same placement as reactive
        // incremental repair — and spends strictly less of the outage
        // doing it, since planning happened at suspect time.
        assert_eq!(mbb.outcome.nfs_moved, inc.outcome.nfs_moved);
        assert_eq!(mbb.outcome.links_kept, inc.outcome.links_kept);
        assert!(
            mbb.outcome.downtime_estimate_ns < inc.outcome.downtime_estimate_ns,
            "make-before-break must beat reactive repair (len {len}: {} vs {} ns)",
            mbb.outcome.downtime_estimate_ns,
            inc.outcome.downtime_estimate_ns
        );
        total_inc += inc.outcome.nfs_moved;
        total_fs += fs.outcome.nfs_moved;
        downtime_mbb += mbb.outcome.downtime_estimate_ns;
        downtime_inc += inc.outcome.downtime_estimate_ns;
        println!(
            "{:<6} {:>6} | {:>9} {:>10} {:>8.0} {:>11} | {:>9} {:>10} {:>8.0} {:>11}",
            len,
            len / 2,
            inc.outcome.nfs_moved,
            inc.outcome.nodes_touched,
            inc.latency_us,
            inc.outcome.links_rewired,
            fs.outcome.nfs_moved,
            fs.outcome.nodes_touched,
            fs.latency_us,
            fs.outcome.links_rewired,
        );
        println!(
            "       downtime (min of {REPS}): make-before-break {:>7} ns | \
             reactive {:>7} ns | from-scratch {:>7} ns",
            mbb.outcome.downtime_estimate_ns,
            inc.outcome.downtime_estimate_ns,
            fs.outcome.downtime_estimate_ns,
        );
        rows.push(
            Json::obj()
                .set("chain_len", len)
                .set("racks", len / 2)
                .set("make_before_break", outcome_json(&mbb))
                .set("incremental", outcome_json(&inc))
                .set("from_scratch", outcome_json(&fs)),
        );
    }
    assert!(
        total_inc < total_fs,
        "blast radius must shrink overall ({total_inc} vs {total_fs})"
    );
    println!(
        "\ntotal NFs moved: incremental {total_inc} vs from-scratch {total_fs} \
         ({:.1}x blast-radius reduction)",
        total_fs as f64 / total_inc as f64
    );
    println!(
        "total downtime: make-before-break {downtime_mbb} ns vs reactive \
         {downtime_inc} ns ({:.1}x downtime reduction)",
        downtime_inc as f64 / downtime_mbb as f64
    );

    let json = Json::obj()
        .set("scenario", "split-chain, tail rack fails")
        .set("native_estimate_bytes", native_est)
        .set("vm_filler_bytes", vm_actual)
        .set("lengths", Json::Arr(rows))
        .set("total_moved_incremental", total_inc)
        .set("total_moved_from_scratch", total_fs)
        .set("blast_radius_reduction", total_fs as f64 / total_inc as f64)
        .set("total_downtime_make_before_break_ns", downtime_mbb)
        .set("total_downtime_reactive_ns", downtime_inc)
        .set(
            "downtime_reduction",
            downtime_inc as f64 / downtime_mbb as f64,
        );
    std::fs::write("BENCH_repair.json", json.render_pretty()).expect("write BENCH_repair.json");
    println!("wrote BENCH_repair.json");
}
