//! Routing sweep: multi-hop overlay paths vs the full-mesh baseline.
//!
//! One split chain (`br1@n1`, `br2@n3`, ingress `eth0@n1`, egress
//! `eth1@n3`) is deployed on four fabrics over the same fleet:
//!
//! * **full-mesh** — the pre-fabric baseline: every overlay link is a
//!   direct wire (path stretch 1);
//! * **line** — `n1–n2–n3–n4`: the cut edges transit n2;
//! * **ring** — the line closed into a cycle: equal-hop detours exist,
//!   the path engine picks deterministically;
//! * **fat-tree-ish** — leaves `n1..n4` each wired to spines `s1`/`s2`
//!   (lower-latency links): leaf-to-leaf goes via a spine.
//!
//! Per topology the sweep records the **path stretch** (overlay
//! crossings per logical frame vs the mesh), the simulated end-to-end
//! latency per frame, and the wall-clock shuttle time — and asserts
//! the CI smoke invariant: every multi-hop fabric produces the *exact
//! same egress* (node, port, payload) as the full mesh. Transit must
//! route, never rewrite.
//!
//! Writes `BENCH_routing.json`.
//!
//! ```sh
//! cargo run --release -p un-bench --bin routing_sweep
//! ```

use std::net::Ipv4Addr;
use std::time::Instant;

use un_core::UniversalNode;
use un_domain::{DeployHints, Domain, DomainConfig, EdgeAttrs, Topology};
use un_nffg::{Json, NfFg, NfFgBuilder};
use un_packet::ethernet::MacAddr;
use un_packet::{Packet, PacketBuilder};
use un_sim::mem::mb;

fn chain() -> NfFg {
    NfFgBuilder::new("svc", "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br1", "bridge", 2)
        .nf("br2", "bridge", 2)
        .chain("lan", &["br1", "br2"], "wan")
        .build()
}

fn frame(seq: u32) -> Packet {
    PacketBuilder::new()
        .ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 0, 2, 9))
        .udp(5000, 5001)
        .payload(&seq.to_be_bytes())
        .build()
}

struct Fabric {
    name: &'static str,
    topology: Topology,
    /// Spine nodes to add beyond the n1..n4 leaves.
    spines: &'static [&'static str],
}

fn fabrics() -> Vec<Fabric> {
    let leaf = EdgeAttrs::default();
    let spine = EdgeAttrs {
        latency_ns: 2_000,
        ..EdgeAttrs::default()
    };
    let mut fat_tree = Topology::explicit();
    for l in ["n1", "n2", "n3", "n4"] {
        for s in ["s1", "s2"] {
            fat_tree.add_edge(l, s, spine);
        }
    }
    vec![
        Fabric {
            name: "full-mesh",
            topology: Topology::full_mesh(),
            spines: &[],
        },
        Fabric {
            name: "line",
            topology: Topology::line(&["n1", "n2", "n3", "n4"], leaf),
            spines: &[],
        },
        Fabric {
            name: "ring",
            topology: Topology::ring(&["n1", "n2", "n3", "n4"], leaf),
            spines: &[],
        },
        Fabric {
            name: "fat-tree",
            topology: fat_tree,
            spines: &["s1", "s2"],
        },
    ]
}

struct Measured {
    egress: Vec<(String, String, Vec<u8>)>,
    links: usize,
    avg_path_hops: f64,
    overlay_hops: u32,
    cost_ns_per_frame: f64,
    wall_us: f64,
    transit_nodes: usize,
}

fn run(fabric: &Fabric, frames: usize) -> Measured {
    let mut d = Domain::new(DomainConfig {
        topology: fabric.topology.clone(),
        ..DomainConfig::default()
    });
    for name in ["n1", "n2", "n3", "n4"] {
        let mut n = UniversalNode::new(name, mb(2048));
        if name == "n1" {
            n.add_physical_port("eth0");
        }
        if name == "n3" {
            n.add_physical_port("eth1");
        }
        d.add_node(n);
    }
    for name in fabric.spines {
        d.add_node(UniversalNode::new(name, mb(2048)));
    }
    let hints = DeployHints {
        nf_node: [
            ("br1".to_string(), "n1".to_string()),
            ("br2".to_string(), "n3".to_string()),
        ]
        .into(),
        ..DeployHints::default()
    };
    d.deploy_with(&chain(), &hints).expect("chain deploys");

    let partition = d.partition_of("svc").expect("deployed");
    let links = partition.links.len();
    let total_hops: usize = partition
        .links
        .iter()
        .map(|l| d.link_path(l.vid).expect("routed").len() - 1)
        .sum();
    let transit_nodes = partition
        .parts
        .values()
        .filter(|p| p.nfs.is_empty() && p.endpoints.iter().all(|e| e.id.starts_with("ovl-")))
        .count();

    let ingress: Vec<(String, String, Packet)> = (0..frames)
        .map(|i| ("n1".to_string(), "eth0".to_string(), frame(i as u32)))
        .collect();
    let start = Instant::now();
    let io = d.inject_batch(ingress, 1);
    let wall_us = start.elapsed().as_secs_f64() * 1e6;
    assert_eq!(
        io.emitted.len(),
        frames,
        "{}: every frame must egress",
        fabric.name
    );

    let mut egress: Vec<(String, String, Vec<u8>)> = io
        .emitted
        .iter()
        .map(|(n, p, pkt)| (n.to_string(), p.to_string(), pkt.data().to_vec()))
        .collect();
    egress.sort();
    Measured {
        egress,
        links,
        avg_path_hops: total_hops as f64 / links.max(1) as f64,
        overlay_hops: io.overlay_hops,
        cost_ns_per_frame: io.cost.as_nanos() as f64 / frames as f64,
        wall_us,
        transit_nodes,
    }
}

fn main() {
    let frames: usize = std::env::var("UN_ROUTING_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    println!("Routing sweep: {frames} frames per fabric, chain split n1 → n3\n");
    println!(
        "{:<10} {:>6} {:>10} {:>8} {:>13} {:>14} {:>9}",
        "fabric", "links", "path-hops", "transit", "overlay-hops", "cost-ns/frame", "wall-us"
    );

    let fabrics = fabrics();
    let mut rows: Vec<Json> = Vec::new();
    let mut baseline: Option<Measured> = None;
    for fabric in &fabrics {
        let m = run(fabric, frames);
        if let Some(mesh) = &baseline {
            // The CI smoke invariant: multi-hop egress ≡ full-mesh
            // egress, frame for frame.
            assert_eq!(
                m.egress, mesh.egress,
                "{}: egress must match the full mesh",
                fabric.name
            );
            assert!(
                m.avg_path_hops >= mesh.avg_path_hops,
                "{}: stretch below 1",
                fabric.name
            );
        } else {
            assert_eq!(m.avg_path_hops, 1.0, "mesh paths are direct");
            assert_eq!(m.transit_nodes, 0);
        }
        let stretch = baseline
            .as_ref()
            .map_or(1.0, |mesh| m.overlay_hops as f64 / mesh.overlay_hops as f64);
        println!(
            "{:<10} {:>6} {:>10.1} {:>8} {:>13} {:>14.0} {:>9.0}",
            fabric.name,
            m.links,
            m.avg_path_hops,
            m.transit_nodes,
            m.overlay_hops,
            m.cost_ns_per_frame,
            m.wall_us,
        );
        rows.push(
            Json::obj()
                .set("fabric", fabric.name)
                .set("overlay_links", m.links)
                .set("avg_path_hops", m.avg_path_hops)
                .set("path_stretch", stretch)
                .set("transit_nodes", m.transit_nodes)
                .set("overlay_hops", m.overlay_hops)
                .set("cost_ns_per_frame", m.cost_ns_per_frame)
                .set("wall_us", m.wall_us)
                .set("egress_frames", m.egress.len()),
        );
        if baseline.is_none() {
            baseline = Some(m);
        }
    }

    let json = Json::obj()
        .set("scenario", "split chain n1→n3, four fabrics, same fleet")
        .set("frames", frames)
        .set("topologies", Json::Arr(rows));
    std::fs::write("BENCH_routing.json", json.render_pretty()).expect("write BENCH_routing.json");
    println!("\nwrote BENCH_routing.json");
}
