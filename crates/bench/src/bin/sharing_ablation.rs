//! Ext-A ablation: one *shared* NAT NNF vs per-graph Docker NATs.
//!
//! Usage: `cargo run --release -p un-bench --bin sharing_ablation [max_graphs]`
//!
//! The paper's sharable-NNF mechanism exists because some native
//! functions cannot be instantiated per graph. This ablation quantifies
//! what sharing buys: deploy 1..N customer graphs that each need a NAT,
//! once with the sharable native instance (marking + per-graph internal
//! paths) and once with a dedicated Docker NAT per graph, and compare
//! node memory.

use un_core::UniversalNode;
use un_nffg::{NfConfig, NfFgBuilder};
use un_sim::mem::mb;

fn nat_graph(i: u32, flavor: Option<&str>) -> un_nffg::NfFg {
    let mut cfg = NfConfig::default();
    cfg.params
        .insert("lan-addr".into(), format!("192.168.{i}.1/24"));
    cfg.params
        .insert("wan-addr".into(), format!("203.0.{i}.1/24"));
    let mut b = NfFgBuilder::new(&format!("g{i}"), "customer-nat")
        .vlan_endpoint("lan", "eth0", (10 + i) as u16)
        .vlan_endpoint("wan", "eth1", (10 + i) as u16)
        .nf_with_config("nat", "nat", 2, cfg);
    if let Some(f) = flavor {
        b = b.with_flavor(f);
    }
    b.chain("lan", &["nat"], "wan").build()
}

fn run(n_graphs: u32, flavor: Option<&str>) -> (u64, usize) {
    let mut node = UniversalNode::new("cpe", mb(16_384));
    node.add_physical_port("eth0");
    node.add_physical_port("eth1");
    for i in 1..=n_graphs {
        node.deploy(&nat_graph(i, flavor)).expect("deploys");
    }
    (node.memory_used(), node.compute.len())
}

fn main() {
    let max: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("Ext-A: shared native NAT vs per-graph Docker NAT\n");
    println!(
        "{:>7} {:>18} {:>10} {:>18} {:>10}",
        "graphs", "shared-NNF RAM", "instances", "docker RAM", "instances"
    );
    for n in 1..=max {
        let (shared_ram, shared_inst) = run(n, None); // placement picks shared native
        let (docker_ram, docker_inst) = run(n, Some("docker"));
        println!(
            "{:>7} {:>15.1} MB {:>10} {:>15.1} MB {:>10}",
            n,
            shared_ram as f64 / 1e6,
            shared_inst,
            docker_ram as f64 / 1e6,
            docker_inst,
        );
    }
    println!(
        "\nShared mode keeps ONE native instance regardless of graph count\n\
         (marking + conntrack zones + per-graph tables provide isolation);\n\
         the Docker column pays one container per graph."
    );
}
