//! Sharing sweep: one fleet-shared NAT instance vs per-graph NAT.
//!
//! The scenario is **N tenant NAT services spread over a 4-node line
//! fabric** (tenant *i* keeps its endpoints on its home rack), deployed
//! twice on identical fleets:
//!
//! * **shared** — the domain sharable-NNF registry is on
//!   (first-demand election): every tenant leases the single NAT
//!   instance elected onto the first tenant's rack, reaching it over
//!   the overlay (multi-hop for the far racks);
//! * **per-graph** — the registry is off (pre-registry behavior):
//!   each rack instantiates its own NAT for the tenants that live
//!   there.
//!
//! Reported per mode: total fleet memory, node-level NAT instance
//! count, deploy wall-clock, and the data-plane price of sharing —
//! average overlay hops and virtual-time cost per frame (the
//! **stretch** the shared mode pays for its memory win). The binary
//! asserts what CI smoke-checks: byte-identical egress between the two
//! modes, every frame delivered, exactly one shared instance, and
//! shared-mode memory **strictly below** per-graph memory. Writes
//! `BENCH_sharing.json`.
//!
//! ```sh
//! cargo run --release -p un-bench --bin sharing_sweep
//! ```

use std::collections::BTreeMap;
use std::time::Instant;

use un_core::UniversalNode;
use un_domain::{DeployHints, Domain, DomainConfig, EdgeAttrs, SharingConfig, Topology};
use un_nffg::{Json, NfFg, NfFgBuilder};
use un_packet::ethernet::MacAddr;
use un_packet::PacketBuilder;
use un_sim::mem::mb;

const RACKS: usize = 4;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn rack(i: usize) -> String {
    format!("n{}", i + 1)
}

fn home_of(tenant: usize) -> String {
    rack(tenant % RACKS)
}

fn tenant_vid(tenant: usize) -> u16 {
    10 + tenant as u16
}

/// Tenant NAT service: per-tenant VLAN endpoints around one NAT NF.
fn tenant_graph(tenant: usize) -> NfFg {
    let cfg = un_nffg::NfConfig::default()
        .with_param("lan-addr", "192.168.1.1/24")
        .with_param("wan-addr", &format!("203.0.113.{}/24", tenant + 1));
    NfFgBuilder::new(&format!("tenant-{tenant}"), "nat service")
        .vlan_endpoint("lan", "eth0", tenant_vid(tenant))
        .vlan_endpoint("wan", "eth1", tenant_vid(tenant))
        .nf_with_config("nat", "nat", 2, cfg)
        .chain("lan", &["nat"], "wan")
        .build()
}

fn fleet(sharing: SharingConfig) -> Domain {
    let racks: Vec<String> = (0..RACKS).map(rack).collect();
    let names: Vec<&str> = racks.iter().map(String::as_str).collect();
    let mut d = Domain::new(DomainConfig {
        topology: Topology::line(&names, EdgeAttrs::default()),
        sharing,
        ..DomainConfig::default()
    });
    for name in &racks {
        let mut n = UniversalNode::new(name, mb(2048));
        n.add_physical_port("eth0");
        n.add_physical_port("eth1");
        d.add_node(n);
    }
    d
}

struct Measured {
    deploy_us: f64,
    memory_bytes: u64,
    nat_instances: usize,
    frames: u64,
    overlay_hops: u64,
    cost_ns: u64,
    /// Tenant → sorted egress frame bytes (for cross-mode equivalence).
    egress: BTreeMap<usize, Vec<Vec<u8>>>,
}

/// `pin_nat` is the per-graph baseline: the NAT is explicitly pinned
/// next to its tenant (an explicit NF pin also opts the NF out of the
/// registry), so each rack instantiates its own. Without it, the
/// legacy cross-node shared-NNF *bonus* would still consolidate NATs —
/// but with no leases, no capacity accounting, and no failure-time
/// re-election; the registry is what makes that reuse a first-class,
/// accounted resource.
fn run_mode(
    sharing: SharingConfig,
    tenants: usize,
    frames_per_tenant: usize,
    pin_nat: bool,
) -> Measured {
    let mut d = fleet(sharing);
    let start = Instant::now();
    for t in 0..tenants {
        let home = home_of(t);
        let hints = DeployHints {
            endpoint_node: [
                ("lan".to_string(), home.clone()),
                ("wan".to_string(), home.clone()),
            ]
            .into(),
            nf_node: if pin_nat {
                [("nat".to_string(), home.clone())].into()
            } else {
                Default::default()
            },
            ..DeployHints::default()
        };
        d.deploy_with(&tenant_graph(t), &hints).expect("deploys");
    }
    let deploy_us = start.elapsed().as_secs_f64() * 1e6;

    // Every node hosting a NAT namespace learns the upstream neighbor.
    let hosts: Vec<(String, String)> = (0..tenants)
        .map(|t| {
            let gid = format!("tenant-{t}");
            let host = d.assignment_of(&gid).expect("deployed")["nat"].clone();
            (host, gid)
        })
        .collect();
    let mut seeded: std::collections::BTreeSet<String> = Default::default();
    for (host, gid) in &hosts {
        if !seeded.insert(host.clone()) {
            continue;
        }
        let node = d.node_mut(host).expect("host exists");
        let (inst, _) = node.instance_of(gid, "nat").expect("nat placed");
        let ns = node.compute.native.namespace_of(inst.0).expect("namespace");
        node.host
            .neigh_add(ns, "8.8.8.8".parse().unwrap(), MacAddr::local(0x99))
            .expect("neigh");
    }

    let memory_bytes: u64 = d
        .node_names()
        .iter()
        .map(|n| d.node(n).unwrap().memory_used())
        .sum();
    let nat_instances = d
        .node_names()
        .iter()
        .filter(|n| {
            d.node(n)
                .unwrap()
                .shared_nnf_types()
                .contains(&"nat".to_string())
        })
        .count();

    let mut out = Measured {
        deploy_us,
        memory_bytes,
        nat_instances,
        frames: 0,
        overlay_hops: 0,
        cost_ns: 0,
        egress: BTreeMap::new(),
    };
    for t in 0..tenants {
        let home = home_of(t);
        let mut egress: Vec<Vec<u8>> = Vec::new();
        for f in 0..frames_per_tenant {
            let pkt = PacketBuilder::new()
                .ethernet(MacAddr::local(5), MacAddr::BROADCAST)
                .vlan(tenant_vid(t))
                .ipv4("192.168.1.10".parse().unwrap(), "8.8.8.8".parse().unwrap())
                .udp(5000 + (f % 32) as u16, 53)
                .payload(b"sweep")
                .build();
            let io = d.inject(&home, "eth0", pkt);
            assert_eq!(io.emitted.len(), 1, "tenant-{t} frame {f} must egress");
            assert_eq!(io.emitted[0].0, home.as_str(), "egress at the home rack");
            out.frames += 1;
            out.overlay_hops += u64::from(io.overlay_hops);
            out.cost_ns += io.cost.as_nanos();
            egress.push(io.emitted[0].2.data().to_vec());
        }
        egress.sort();
        out.egress.insert(t, egress);
    }
    out
}

fn mode_json(m: &Measured) -> Json {
    Json::obj()
        .set("deploy_us", m.deploy_us)
        .set("memory_bytes", m.memory_bytes)
        .set("nat_instances", m.nat_instances)
        .set("frames", m.frames)
        .set(
            "avg_overlay_hops",
            m.overlay_hops as f64 / m.frames.max(1) as f64,
        )
        .set(
            "cost_ns_per_frame",
            m.cost_ns as f64 / m.frames.max(1) as f64,
        )
}

fn main() {
    let tenants = env_usize("UN_SHARING_TENANTS", 6);
    let frames = env_usize("UN_SHARING_FRAMES", 200);
    println!(
        "Sharing sweep: {tenants} tenant NAT services on a {RACKS}-rack line, \
         {frames} frames each\n"
    );

    let shared = run_mode(SharingConfig::for_types(&["nat"]), tenants, frames, false);
    let per_graph = run_mode(SharingConfig::default(), tenants, frames, true);

    // The tradeoff, asserted. One fleet-wide instance:
    assert_eq!(shared.nat_instances, 1, "one shared instance fleet-wide");
    assert!(
        per_graph.nat_instances > 1,
        "per-graph mode must instantiate per rack"
    );
    // Strict memory win (what CI smoke-checks):
    assert!(
        shared.memory_bytes < per_graph.memory_bytes,
        "shared mode must use strictly less memory \
         ({} vs {})",
        shared.memory_bytes,
        per_graph.memory_bytes
    );
    // Transparency: byte-identical egress, tenant by tenant.
    assert_eq!(
        shared.egress, per_graph.egress,
        "shared and per-graph egress must be byte-identical"
    );
    // The price: visible data-plane stretch.
    assert!(shared.overlay_hops > 0, "remote tenants cross the fabric");
    assert_eq!(per_graph.overlay_hops, 0, "private NATs stay local");

    let saved = per_graph.memory_bytes - shared.memory_bytes;
    println!(
        "{:<10} {:>12} {:>10} {:>11} {:>10} {:>14}",
        "mode", "memory", "instances", "deploy-us", "avg-hops", "ns/frame"
    );
    for (name, m) in [("shared", &shared), ("per-graph", &per_graph)] {
        println!(
            "{:<10} {:>12} {:>10} {:>11.0} {:>10.2} {:>14.0}",
            name,
            m.memory_bytes,
            m.nat_instances,
            m.deploy_us,
            m.overlay_hops as f64 / m.frames.max(1) as f64,
            m.cost_ns as f64 / m.frames.max(1) as f64,
        );
    }
    println!(
        "\nmemory saved: {:.1} MB ({:.2}x); stretch paid: {:.2} overlay hops/frame",
        saved as f64 / 1e6,
        per_graph.memory_bytes as f64 / shared.memory_bytes as f64,
        shared.overlay_hops as f64 / shared.frames.max(1) as f64,
    );

    let json = Json::obj()
        .set(
            "scenario",
            "N tenant NATs on a 4-rack line: fleet-shared instance vs per-graph",
        )
        .set("racks", RACKS)
        .set("tenants", tenants)
        .set("frames_per_tenant", frames)
        .set("shared", mode_json(&shared))
        .set("per_graph", mode_json(&per_graph))
        .set("memory_saved_bytes", saved)
        .set(
            "memory_ratio",
            per_graph.memory_bytes as f64 / shared.memory_bytes as f64,
        )
        .set("egress_equivalent", true);
    std::fs::write("BENCH_sharing.json", json.render_pretty()).expect("write BENCH_sharing.json");
    println!("wrote BENCH_sharing.json");
}
