//! Regenerates the paper's Table 1: "Results with IPSec client VNFs".
//!
//! Usage: `cargo run --release -p un-bench --bin table1 [packets]`
//!
//! For each flavor (KVM/QEMU, Docker, Native NF) the harness deploys the
//! same IPSec NF-FG on a fresh CPE node, saturates it with 1500-byte
//! frames from the customer LAN, terminates the ESP tunnel at a remote
//! gateway, and reports virtual-time throughput plus the RAM and image
//! footprint queried from the node's resource ledger.

use un_bench::{render_table1, run_table1_flavor};

fn main() {
    let packets: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    println!("Reproducing Table 1 with {packets} frames of 1500 B per flavor…\n");
    let rows = [
        run_table1_flavor("vm", 1500, packets),
        run_table1_flavor("docker", 1500, packets),
        run_table1_flavor("native", 1500, packets),
    ];
    println!("{}", render_table1(&rows));
    println!("Paper reference:");
    println!("  KVM/QEMU      796 Mbps   390.6 MB   522 MB");
    println!("  Docker       1095 Mbps    24.2 MB   240 MB");
    println!("  Native NF    1094 Mbps    19.4 MB     5 MB");
}
