//! Flight-recorder overhead: the same per-frame workload, metered with
//! the recorder detached and attached.
//!
//! Drives one frame at a time through a fleet of per-node bridge
//! chains — first through plain `Domain::inject_batch` (no sink; the
//! recorder must cost nothing beyond a dead `Option` check), then
//! through `Domain::inject_traced` (every frame records its full walk
//! and lands in the recent-trace ring). Both configurations must stay
//! lossless; the traced one must produce a walk with at least ingress,
//! classify, and egress hops for every frame.
//!
//! Writes machine-readable results to `BENCH_trace.json`.
//!
//! ```sh
//! UN_SWEEP_FRAMES=2000 cargo run --release -p un-bench --bin trace_sweep
//! ```

use std::net::Ipv4Addr;
use std::time::Instant;

use un_core::UniversalNode;
use un_domain::{DeployHints, Domain, DomainConfig, PlacementStrategy};
use un_nffg::{Json, NfFg, NfFgBuilder};
use un_packet::{Packet, PacketBuilder};
use un_sim::mem::mb;

/// Fleet size (matches the dataplane sweep).
const NODES: usize = 8;
/// Chain length per node graph.
const CHAIN: usize = 3;
/// Repetitions per configuration; best-of is reported.
const REPS: usize = 3;

fn frames_budget() -> u64 {
    std::env::var("UN_SWEEP_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40_000)
}

fn node_chain(node: &str) -> (NfFg, DeployHints) {
    let ids: Vec<String> = (0..CHAIN).map(|i| format!("{node}-br{i}")).collect();
    let mut b = NfFgBuilder::new(&format!("g-{node}"), "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1");
    for id in &ids {
        b = b.nf(id, "bridge", 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    let graph = b.chain("lan", &refs, "wan").build();
    let hints = DeployHints {
        endpoint_node: [
            ("lan".to_string(), node.to_string()),
            ("wan".to_string(), node.to_string()),
        ]
        .into(),
        nf_node: ids
            .iter()
            .map(|id| (id.clone(), node.to_string()))
            .collect(),
        strategy: Some(PlacementStrategy::Spread),
    };
    (graph, hints)
}

fn fleet() -> Domain {
    let mut d = Domain::new(DomainConfig::default());
    for i in 0..NODES {
        let mut n = UniversalNode::new(&format!("n{i}"), mb(2048));
        n.add_physical_port("eth0");
        n.add_physical_port("eth1");
        d.add_node(n);
    }
    for i in 0..NODES {
        let (graph, hints) = node_chain(&format!("n{i}"));
        d.deploy_with(&graph, &hints)
            .expect("per-node chain deploys");
    }
    d
}

fn frame(i: u64) -> (String, String, Packet) {
    let node = format!("n{}", i as usize % NODES);
    let pkt = PacketBuilder::new()
        .ethernet(
            un_packet::ethernet::MacAddr::local(1),
            un_packet::ethernet::MacAddr::local(2),
        )
        .ipv4(
            Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8),
            Ipv4Addr::new(192, 0, 2, 9),
        )
        .udp(5000, 5001)
        .payload(&[0xAB; 256])
        .build();
    (node, "eth0".to_string(), pkt)
}

/// One run: fresh fleet, one frame per injection (the per-frame shape
/// is what the recorder attaches to). Returns pkts/s.
fn measure(traced: bool, frames: u64) -> f64 {
    let mut d = fleet();
    let bursts: Vec<(String, String, Packet)> = (0..frames).map(frame).collect();
    let mut emitted = 0u64;
    let start = Instant::now();
    for (node, port, pkt) in bursts {
        if traced {
            let (io, trace) = d.inject_traced(&node, &port, pkt, 1);
            emitted += io.emitted.len() as u64;
            debug_assert!(trace.hops.len() >= 3);
        } else {
            let io = d.inject_batch(vec![(node, port, pkt)], 1);
            emitted += io.emitted.len() as u64;
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(emitted, frames, "chains must be lossless");
    if traced {
        // Prove the recorder was actually live: the ring is full and
        // the newest walk has real hops.
        let ring = d.recent_traces();
        assert_eq!(
            ring.len(),
            (frames as usize).min(un_obs::DEFAULT_TRACE_CAPACITY)
        );
        let last = ring.last().expect("a recorded walk");
        assert!(
            last.hops.len() >= 3 && last.egress_count() == 1,
            "recorded walk too short: {}",
            last.render()
        );
    }
    frames as f64 / secs
}

fn main() {
    let frames = frames_budget();
    println!("Flight-recorder overhead ({frames} frames, best of {REPS})\n");

    let mut off_runs = Vec::new();
    let mut on_runs = Vec::new();
    for _ in 0..REPS {
        off_runs.push(measure(false, frames));
        on_runs.push(measure(true, frames));
    }
    let best = |runs: &[f64]| runs.iter().cloned().fold(f64::MIN, f64::max);
    let off_pps = best(&off_runs);
    let on_pps = best(&on_runs);
    let ratio = on_pps / off_pps.max(1.0);

    println!("  recorder detached : {off_pps:>12.0} pkts/s");
    println!("  recorder attached : {on_pps:>12.0} pkts/s");
    println!("  on/off throughput ratio: {ratio:.3}");

    let json = Json::obj()
        .set("frames", frames)
        .set("reps", REPS as u64)
        .set("nodes", NODES as u64)
        .set("chain_len", CHAIN as u64)
        .set("off_pps", off_pps)
        .set("on_pps", on_pps)
        .set("on_off_ratio", ratio)
        .set(
            "off_runs",
            Json::Arr(off_runs.iter().map(|&v| Json::from(v)).collect()),
        )
        .set(
            "on_runs",
            Json::Arr(on_runs.iter().map(|&v| Json::from(v)).collect()),
        );
    std::fs::write("BENCH_trace.json", json.render_pretty()).expect("write BENCH_trace.json");
    println!("\nwrote BENCH_trace.json");
}
