//! Verification sweep: full vs incremental static verification cost.
//!
//! The scenario scales a fleet of node pairs, each pair hosting one
//! split bridge chain (lan on the first node of the pair, wan on the
//! second — the partitioner synthesizes two overlay links per graph).
//! Per fleet size the sweep measures:
//!
//! * **full** — `Domain::verify_full()`: every graph re-checked,
//!   every serving node re-audited;
//! * **incremental** — one graph is touched (undeploy + redeploy) and
//!   `Domain::verify()` re-checks only that graph and its two hosts,
//!   splicing cached results for the rest of the fleet.
//!
//! Both modes must come back clean, the incremental pass must re-check
//! exactly one graph, and its min-of-reps latency must beat the full
//! pass at every fleet size ≥ the smallest — the acceptance gate CI
//! smoke-checks. Writes `BENCH_verify.json`.
//!
//! ```sh
//! cargo run --release -p un-bench --bin verify_sweep
//! ```

use std::time::Instant;

use un_core::UniversalNode;
use un_domain::Domain;
use un_nffg::{Json, NfFg, NfFgBuilder};
use un_sim::mem::mb;

/// Fleet sizes (node count; graphs = nodes / 2).
const FLEETS: [usize; 3] = [4, 8, 16];
/// NFs per chain.
const CHAIN_LEN: usize = 4;
/// Measurement repetitions (min taken).
const REPS: usize = 5;

/// A chain split across one node pair: lan rides the pair's first
/// node (port `p<2k>`), wan the second (port `p<2k+1>`).
fn chain(k: usize) -> NfFg {
    let ids: Vec<String> = (0..CHAIN_LEN).map(|i| format!("g{k}-br{i}")).collect();
    let mut b = NfFgBuilder::new(&format!("g{k}"), "chain")
        .interface_endpoint("lan", &format!("p{}", 2 * k))
        .interface_endpoint("wan", &format!("p{}", 2 * k + 1));
    for id in &ids {
        b = b.nf(id, "bridge", 2);
    }
    let refs: Vec<&str> = ids.iter().map(|s| s.as_str()).collect();
    b.chain("lan", &refs, "wan").build()
}

fn fleet(nodes: usize) -> Domain {
    let mut d = Domain::with_defaults();
    for i in 0..nodes {
        let mut n = UniversalNode::new(&format!("n{i}"), mb(2048));
        n.add_physical_port(&format!("p{i}"));
        d.add_node(n);
    }
    for k in 0..nodes / 2 {
        d.deploy(&chain(k)).expect("split chain deploys");
    }
    d
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("verify sweep: full vs incremental static verification ({cpus} cpu)\n");
    println!(
        "{:<6} {:>7} {:>7} | {:>10} {:>12} {:>8}",
        "nodes", "graphs", "rules", "full (µs)", "incr (µs)", "speedup"
    );

    let mut rows = Vec::new();
    for &nodes in &FLEETS {
        let mut d = fleet(nodes);
        let graphs = nodes / 2;
        let snap = d.verify_snapshot();
        let rules = snap.installed_rules();

        // Full pass: everything re-checked, every rep.
        let mut full_ns = u64::MAX;
        let mut full_report = d.verify_full();
        assert!(
            full_report.ok(),
            "full verification found violations: {:#?}",
            full_report.violations
        );
        assert_eq!(full_report.graphs_checked, graphs);
        for _ in 0..REPS {
            let t = Instant::now();
            full_report = d.verify_full();
            full_ns = full_ns.min(t.elapsed().as_nanos() as u64);
            assert!(full_report.ok());
        }

        // Incremental pass: touch one graph, re-verify. Only the
        // touched graph (and its two hosts) should re-check.
        let mut incr_ns = u64::MAX;
        let mut incr_report = None;
        for _ in 0..REPS {
            d.undeploy("g0").expect("undeploy touches one graph");
            d.deploy(&chain(0)).expect("redeploy");
            let t = Instant::now();
            let report = d.verify();
            incr_ns = incr_ns.min(t.elapsed().as_nanos() as u64);
            assert!(
                report.ok(),
                "incremental verification found violations: {:#?}",
                report.violations
            );
            assert_eq!(report.mode, "incremental");
            assert_eq!(
                report.graphs_checked, 1,
                "touching one graph must re-check exactly one graph"
            );
            assert_eq!(report.graphs_reused, graphs - 1);
            assert_eq!(report.nodes_checked, 2);
            incr_report = Some(report);
        }
        let incr_report = incr_report.expect("REPS > 0");

        assert!(
            incr_ns < full_ns,
            "incremental must beat full at {nodes} nodes: {incr_ns} !< {full_ns} ns"
        );
        let speedup = full_ns as f64 / incr_ns as f64;
        println!(
            "{:<6} {:>7} {:>7} | {:>10.1} {:>12.1} {:>7.1}x",
            nodes,
            graphs,
            rules,
            full_ns as f64 / 1e3,
            incr_ns as f64 / 1e3,
            speedup
        );
        rows.push(
            Json::obj()
                .set("nodes", nodes)
                .set("graphs", graphs)
                .set("installed_rules", rules)
                .set("full_ns", full_ns)
                .set("full_rules_checked", full_report.stats.rules_checked)
                .set("full_classes", full_report.stats.classes)
                .set("incremental_ns", incr_ns)
                .set("incremental_graphs_checked", incr_report.graphs_checked)
                .set("incremental_nodes_checked", incr_report.nodes_checked)
                .set("incremental_rules_checked", incr_report.stats.rules_checked)
                .set("speedup", speedup),
        );
    }

    let json = Json::obj()
        .set(
            "scenario",
            "paired split chains; touch one graph, re-verify",
        )
        .set("cpus", cpus)
        .set("chain_len", CHAIN_LEN)
        .set("reps", REPS)
        .set("fleets", Json::Arr(rows));
    std::fs::write("BENCH_verify.json", json.render_pretty()).expect("write BENCH_verify.json");
    println!("\nwrote BENCH_verify.json");
}
