//! # un-bench — harnesses that regenerate the paper's evaluation
//!
//! The central artifact is the **Table 1 harness**: deploy the same
//! IPSec endpoint NF-FG three times — as a KVM/QEMU VM, a Docker
//! container and a Native NF — drive iperf-like saturating traffic
//! through each, terminate the ESP tunnel at a simulated remote
//! gateway, and report throughput / RAM / image size per flavor.
//!
//! Binaries (`cargo run -p un-bench --bin <name>`):
//!
//! * `table1` — regenerates Table 1.
//! * `figure1` — builds a mixed-technology node and prints the Figure 1
//!   architecture.
//! * `sharing_ablation` — Ext-A: N graphs through one shared NAT NNF
//!   vs per-graph Docker NATs.
//! * `chain_sweep` — Ext-B: throughput vs chain length per flavor.
//! * `memory_scaling` — Ext-D: node memory vs number of graphs.
//!
//! Criterion micro-benches live in `benches/`.

#![forbid(unsafe_code)]
#![deny(warnings)]

use std::net::Ipv4Addr;

use un_core::{DeployReport, UniversalNode};
use un_ipsec::esp;
use un_ipsec::sa::SecurityAssociation;
use un_nffg::{NfConfig, NfFg, NfFgBuilder};
use un_nnf::translate::derive_psk_tunnel;
use un_packet::ipv4::{IpProtocol, Ipv4Packet};
use un_packet::Packet;
use un_sim::mem::mb;
use un_traffic::{measure_via_peer, FrameSpec, Measurement, StreamGenerator};

/// The PSK used throughout the Table 1 scenario.
pub const PSK: &str = "table1-psk";

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Platform name as in the paper.
    pub platform: &'static str,
    /// Measured throughput (virtual-time Mbps of delivered inner bytes).
    pub mbps: f64,
    /// RAM allocated at runtime for the NF instance (bytes).
    pub ram_bytes: u64,
    /// NF image size (bytes).
    pub image_bytes: u64,
}

/// The generic IPSec endpoint configuration (identical across flavors —
/// that is the point of the abstraction).
pub fn ipsec_config() -> NfConfig {
    NfConfig::default()
        .with_param("psk", PSK)
        .with_param("local-addr", "192.0.2.1")
        .with_param("peer-addr", "192.0.2.2")
        .with_param("protected-local", "192.168.1.0/24")
        .with_param("protected-remote", "172.16.0.0/16")
        .with_param("lan-addr", "192.168.1.1/24")
        .with_param("wan-addr", "192.0.2.1/24")
        .with_param("role", "initiator")
}

/// The Table 1 NF-FG: customer LAN → IPSec endpoint → WAN.
pub fn ipsec_graph(id: &str, flavor_hint: &str) -> NfFg {
    NfFgBuilder::new(id, "ipsec-cpe")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf_with_config("ipsec", "ipsec", 2, ipsec_config())
        .with_flavor(flavor_hint)
        .chain("lan", &["ipsec"], "wan")
        .build()
}

/// Build a CPE node and deploy the IPSec graph with the given flavor.
pub fn build_ipsec_node(flavor_hint: &str) -> (UniversalNode, DeployReport) {
    let mut node = UniversalNode::new("cpe", mb(4096));
    node.add_physical_port("eth0");
    node.add_physical_port("eth1");
    let graph = ipsec_graph("g-ipsec", flavor_hint);
    let report = node.deploy(&graph).expect("ipsec graph deploys");

    // The kernel-backed flavors need a neighbor entry for the tunnel
    // peer (the node fabric carries the frames; the remote gateway is
    // off-node, so ARP cannot resolve it inside the simulation).
    let (instance, flavor) = node.instance_of("g-ipsec", "ipsec").expect("placed");
    let ns = match flavor {
        un_compute::Flavor::Native => node.compute.native.namespace_of(instance.0),
        un_compute::Flavor::Docker => node.compute.docker.namespace_of(instance.0),
        _ => None,
    };
    if let Some(ns) = ns {
        node.host
            .neigh_add(
                ns,
                Ipv4Addr::new(192, 0, 2, 2),
                un_packet::MacAddr::local(0xBEEF),
            )
            .expect("namespace exists");
    }
    (node, report)
}

/// The frame spec for the LAN-side client traffic, with the destination
/// MAC matching the NF's LAN port (kernel flavors L2-filter).
pub fn lan_spec(node: &UniversalNode) -> FrameSpec {
    let spec = FrameSpec::udp(
        Ipv4Addr::new(192, 168, 1, 10),
        Ipv4Addr::new(172, 16, 0, 9),
        5001,
        5201,
    );
    let (instance, flavor) = node.instance_of("g-ipsec", "ipsec").expect("placed");
    let ns = match flavor {
        un_compute::Flavor::Native => node.compute.native.namespace_of(instance.0),
        un_compute::Flavor::Docker => node.compute.docker.namespace_of(instance.0),
        _ => None,
    };
    match ns {
        Some(ns) => {
            let port_name = match flavor {
                un_compute::Flavor::Native => "port0",
                _ => "eth0",
            };
            let mac = node
                .host
                .iface_by_name(ns, port_name)
                .map(|i| i.mac)
                .unwrap_or(un_packet::MacAddr::BROADCAST);
            spec.with_macs(un_packet::MacAddr::local(0xC1), mac)
        }
        None => spec,
    }
}

/// The remote security gateway terminating the tunnel: decapsulates
/// every ESP frame leaving the node's WAN and returns the inner bytes
/// delivered (0 for anything it cannot authenticate).
pub struct GatewayPeer {
    sa_in: SecurityAssociation,
    /// Frames successfully decapsulated.
    pub accepted: u64,
    /// Frames rejected (not ESP / auth failure / replay).
    pub rejected: u64,
}

impl GatewayPeer {
    /// A gateway sharing the scenario PSK (responder role).
    pub fn new() -> Self {
        let (_ko, _so, key_in, salt_in, _spo, spi_in) = derive_psk_tunnel(PSK.as_bytes(), false);
        GatewayPeer {
            sa_in: SecurityAssociation::inbound(
                spi_in,
                Ipv4Addr::new(192, 0, 2, 1),
                Ipv4Addr::new(192, 0, 2, 2),
                key_in,
                salt_in,
            ),
            accepted: 0,
            rejected: 0,
        }
    }

    /// Try to terminate one wire frame; returns delivered inner bytes.
    pub fn receive(&mut self, frame: &Packet) -> u64 {
        let Ok(eth) = frame.ethernet() else {
            self.rejected += 1;
            return 0;
        };
        let Ok(ip) = Ipv4Packet::new_checked(eth.payload()) else {
            self.rejected += 1;
            return 0;
        };
        if ip.protocol() != IpProtocol::Esp {
            self.rejected += 1;
            return 0;
        }
        match esp::decapsulate(&mut self.sa_in, ip.payload()) {
            Ok(inner) => {
                self.accepted += 1;
                inner.len() as u64
            }
            Err(_) => {
                self.rejected += 1;
                0
            }
        }
    }
}

impl Default for GatewayPeer {
    fn default() -> Self {
        Self::new()
    }
}

/// Run the Table 1 measurement for one flavor.
pub fn run_table1_flavor(flavor_hint: &str, frame_len: usize, packets: u64) -> Table1Row {
    let (mut node, _report) = build_ipsec_node(flavor_hint);
    let spec = lan_spec(&node);
    let mut generator = StreamGenerator::new(spec, frame_len);
    let mut gateway = GatewayPeer::new();
    let mut peer = |p: &Packet| gateway.receive(p);
    let m: Measurement = measure_via_peer(
        &mut node,
        "eth0",
        "eth1",
        &mut generator,
        packets,
        &mut peer,
    );

    let platform = match flavor_hint {
        "vm" => "KVM/QEMU",
        "docker" => "Docker",
        "native" => "Native NF",
        other => Box::leak(other.to_string().into_boxed_str()),
    };
    Table1Row {
        platform,
        mbps: m.mbps(),
        ram_bytes: node.nf_ram_usage("g-ipsec", "ipsec"),
        image_bytes: node.nf_image_footprint("g-ipsec", "ipsec"),
    }
}

/// Render rows in the paper's format.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Results with IPSec client VNFs\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>10} {:>12}\n",
        "Platform", "Through.", "RAM", "Image size"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8.0} Mbps {:>7.1} MB {:>9.1} MB\n",
            r.platform,
            r.mbps,
            r.ram_bytes as f64 / 1e6,
            r.image_bytes as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_terminates_native_flavor() {
        let (mut node, report) = build_ipsec_node("native");
        assert_eq!(report.placements[0].1, un_compute::Flavor::Native);
        let spec = lan_spec(&node);
        let mut generator = StreamGenerator::new(spec, 1500);
        let mut gw = GatewayPeer::new();
        let mut peer = |p: &Packet| gw.receive(p);
        let m = measure_via_peer(&mut node, "eth0", "eth1", &mut generator, 50, &mut peer);
        assert_eq!(m.delivered, 50, "all frames decrypt at the gateway");
        assert!(m.mbps() > 100.0);
    }

    #[test]
    fn table1_shape_holds() {
        let rows = [
            run_table1_flavor("vm", 1500, 60),
            run_table1_flavor("docker", 1500, 60),
            run_table1_flavor("native", 1500, 60),
        ];
        let (vm, docker, native) = (&rows[0], &rows[1], &rows[2]);
        // Throughput: VM well below the other two; Docker ≈ Native.
        assert!(
            vm.mbps < docker.mbps * 0.85,
            "{} vs {}",
            vm.mbps,
            docker.mbps
        );
        assert!((docker.mbps - native.mbps).abs() / native.mbps < 0.05);
        // RAM: VM ≫ Docker > Native.
        assert!(vm.ram_bytes > 10 * docker.ram_bytes);
        assert!(docker.ram_bytes > native.ram_bytes);
        // Image: 522 / 240 / 5 MB.
        assert_eq!(vm.image_bytes, mb(522));
        assert_eq!(docker.image_bytes, mb(240));
        assert_eq!(native.image_bytes, mb(5));
    }
}
