//! The Docker driver.
//!
//! Containers share the host kernel: the driver creates a network
//! namespace, joins the container to it, and configures the NF's kernel
//! state with the *same* plugin code the native driver uses — that is
//! the entrypoint script of the containerized NF. Packaging and
//! footprint differ (image layers, runtime shim); the data path does
//! not. Table 1's near-identical Docker/native throughput follows.

use std::collections::HashMap;

use un_container::{ContainerId, ContainerRuntime, Registry};
use un_linux::{Host, IfaceId, NsId};
use un_nffg::NfConfig;
use un_nnf::{NnfCatalog, NnfContext, NnfPlugin};
use un_packet::Packet;
use un_sim::{AccountId, MemLedger};

use crate::types::{ComputeError, IoOutcome};

struct DockerInstance {
    container: ContainerId,
    ns: NsId,
    ports: Vec<IfaceId>,
    base_tag: u64,
    plugin: Box<dyn NnfPlugin>,
    config: NfConfig,
    account: AccountId,
    started: bool,
}

/// Driver state: the container engine plus per-instance bookkeeping.
pub struct DockerDriver {
    /// The container engine (image store inside).
    pub runtime: ContainerRuntime,
    /// The registry images are pulled from.
    pub registry: Registry,
    catalog: NnfCatalog,
    instances: HashMap<u64, DockerInstance>,
}

impl Default for DockerDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl DockerDriver {
    /// Fresh driver with an empty registry.
    pub fn new() -> Self {
        DockerDriver {
            runtime: ContainerRuntime::new(),
            registry: Registry::new(),
            catalog: NnfCatalog::standard(),
            instances: HashMap::new(),
        }
    }

    /// Create a container NF: pull image, make namespace + ports.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        key: u64,
        name: &str,
        functional_type: &str,
        image: &str,
        tag: &str,
        process_rss: u64,
        n_ports: usize,
        base_tag: u64,
        config: &NfConfig,
        host: &mut Host,
        ledger: &mut MemLedger,
        account: AccountId,
    ) -> Result<(), ComputeError> {
        let plugin = self.catalog.instantiate(functional_type).ok_or_else(|| {
            ComputeError::Unsupported(format!("no container entrypoint for '{functional_type}'"))
        })?;
        self.runtime
            .store
            .pull(&self.registry, image, tag)
            .ok_or_else(|| {
                ComputeError::Substrate(format!("image {image}:{tag} not in registry"))
            })?;

        let ns = host.add_namespace(&format!("docker-{name}"));
        let mut ports = Vec::with_capacity(n_ports);
        for i in 0..n_ports {
            let ifc = host
                .add_external(ns, &format!("eth{i}"), base_tag + i as u64)
                .map_err(|e| ComputeError::Substrate(e.to_string()))?;
            ports.push(ifc);
        }
        let container = self
            .runtime
            .create(name, image, tag, ns, process_rss, ledger, account)
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;

        self.instances.insert(
            key,
            DockerInstance {
                container,
                ns,
                ports,
                base_tag,
                plugin,
                config: config.clone(),
                account,
                started: false,
            },
        );
        Ok(())
    }

    /// Start the container and run its entrypoint configuration.
    pub fn start(
        &mut self,
        key: u64,
        host: &mut Host,
        ledger: &mut MemLedger,
    ) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        self.runtime
            .start(inst.container, ledger)
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;
        let mut ctx = NnfContext {
            host,
            ns: inst.ns,
            ledger,
            account: inst.account,
        };
        inst.plugin
            .start(&mut ctx, &inst.ports, &inst.config)
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;
        inst.started = true;
        Ok(())
    }

    /// Stop the container (entrypoint teardown + runtime stop).
    pub fn stop(
        &mut self,
        key: u64,
        host: &mut Host,
        ledger: &mut MemLedger,
    ) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        if inst.started {
            let mut ctx = NnfContext {
                host,
                ns: inst.ns,
                ledger,
                account: inst.account,
            };
            inst.plugin
                .stop(&mut ctx)
                .map_err(|e| ComputeError::Substrate(e.to_string()))?;
            inst.started = false;
        }
        self.runtime
            .stop(inst.container, ledger)
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Remove a stopped container.
    pub fn destroy(&mut self, key: u64) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .remove(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        self.runtime
            .remove(inst.container)
            .map(|_| ())
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Unified packet delivery: inject into the instance's port iface.
    pub fn deliver(&mut self, key: u64, port: u32, pkt: Packet, host: &mut Host) -> IoOutcome {
        let Some(inst) = self.instances.get(&key) else {
            return IoOutcome::default();
        };
        let Some(&iface) = inst.ports.get(port as usize) else {
            return IoOutcome::default();
        };
        let base = inst.base_tag;
        let n = inst.ports.len() as u64;
        Self::tag_filter(base, n, host.inject(iface, pkt))
    }

    /// Batched delivery: resolve the container and its port map once,
    /// inject the whole burst, one `IoOutcome` per frame in order.
    pub fn deliver_batch(
        &mut self,
        key: u64,
        frames: Vec<(u32, Packet)>,
        host: &mut Host,
    ) -> Vec<IoOutcome> {
        let Some(inst) = self.instances.get(&key) else {
            return frames.iter().map(|_| IoOutcome::default()).collect();
        };
        let base = inst.base_tag;
        let n = inst.ports.len() as u64;
        frames
            .into_iter()
            .map(|(port, pkt)| match inst.ports.get(port as usize) {
                Some(&iface) => Self::tag_filter(base, n, host.inject(iface, pkt)),
                None => IoOutcome::default(),
            })
            .collect()
    }

    /// Keep only the emissions tagged into this instance's port range,
    /// rebased to instance-local port numbers.
    fn tag_filter(base: u64, n: u64, res: un_linux::IoResult) -> IoOutcome {
        IoOutcome {
            outputs: res
                .emitted
                .into_iter()
                .filter(|(tag, _)| *tag >= base && *tag < base + n)
                .map(|(tag, p)| ((tag - base) as u32, p))
                .collect(),
            cost: res.cost,
        }
    }

    /// The image footprint (virtual size) of an instance's image.
    pub fn image_footprint(&self, image: &str, tag: &str) -> u64 {
        self.runtime
            .store
            .image_virtual_size(image, tag)
            .unwrap_or(0)
    }

    /// The network namespace of an instance (diagnostics).
    pub fn namespace_of(&self, key: u64) -> Option<NsId> {
        self.instances.get(&key).map(|i| i.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_container::{Image, Layer};
    use un_sim::mem::{mb, mb_f};
    use un_sim::CostModel;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.push(Image {
            name: "strongswan".into(),
            tag: "latest".into(),
            layers: vec![
                Layer::new("sha256:base", mb(235)),
                Layer::new("sha256:swan", mb(5)),
            ],
        });
        r
    }

    fn ipsec_config() -> NfConfig {
        NfConfig::default()
            .with_param("psk", "hunter2")
            .with_param("local-addr", "192.0.2.1")
            .with_param("peer-addr", "192.0.2.2")
            .with_param("protected-local", "192.168.1.0/24")
            .with_param("protected-remote", "172.16.0.0/16")
            .with_param("lan-addr", "192.168.1.1/24")
            .with_param("wan-addr", "192.0.2.1/24")
    }

    #[test]
    fn containerized_ipsec_encrypts_via_host_kernel() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let acct = ledger.create_account("docker-ipsec", Some(node));

        let mut d = DockerDriver::new();
        d.registry = registry();
        d.create(
            1,
            "ipsec-1",
            "ipsec",
            "strongswan",
            "latest",
            mb_f(19.4),
            2,
            16,
            &ipsec_config(),
            &mut host,
            &mut ledger,
            acct,
        )
        .unwrap();
        d.start(1, &mut host, &mut ledger).unwrap();

        // RAM = process + shim + charon bookkeeping (plugin).
        assert!(ledger.usage(acct) >= mb_f(19.4) + mb_f(4.8));
        assert_eq!(d.image_footprint("strongswan", "latest"), mb(240));

        // Static neighbor toward the peer, then traffic through port 0
        // leaves encrypted on port 1 — all in the *host* kernel.
        let ns = d.namespace_of(1).unwrap();
        host.neigh_add(
            ns,
            "192.0.2.2".parse().unwrap(),
            un_packet::MacAddr::local(99),
        )
        .unwrap();
        let lan_iface = host.iface_by_name(ns, "eth0").unwrap().id;
        let lan_mac = host.iface(lan_iface).unwrap().mac;
        let payload = vec![0x77u8; 333];
        let pkt = un_packet::PacketBuilder::new()
            .ethernet(un_packet::MacAddr::local(5), lan_mac)
            .ipv4(
                "192.168.1.10".parse().unwrap(),
                "172.16.0.9".parse().unwrap(),
            )
            .udp(1000, 2000)
            .payload(&payload)
            .build();
        let io = d.deliver(1, 0, pkt, &mut host);
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(io.outputs[0].0, 1, "out the WAN port");
        assert!(
            !io.outputs[0]
                .1
                .data()
                .windows(payload.len())
                .any(|w| w == &payload[..]),
            "encrypted on the wire"
        );

        d.stop(1, &mut host, &mut ledger).unwrap();
        assert_eq!(ledger.usage(acct), 0);
        d.destroy(1).unwrap();
    }

    #[test]
    fn create_failures() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let acct = ledger.create_account("a", None);
        let mut d = DockerDriver::new();
        // No such functional type.
        assert!(matches!(
            d.create(
                1,
                "x",
                "quantum",
                "img",
                "latest",
                0,
                2,
                0,
                &NfConfig::default(),
                &mut host,
                &mut ledger,
                acct
            ),
            Err(ComputeError::Unsupported(_))
        ));
        // Image not in registry.
        assert!(matches!(
            d.create(
                1,
                "x",
                "ipsec",
                "ghost",
                "latest",
                0,
                2,
                0,
                &NfConfig::default(),
                &mut host,
                &mut ledger,
                acct
            ),
            Err(ComputeError::Substrate(_))
        ));
    }
}
