//! The DPDK driver: poll-mode userspace NF processes.
//!
//! A DPDK process bypasses the kernel entirely — per-packet cost is a
//! few tens of nanoseconds of PMD work, no interrupts, no syscalls —
//! but each instance pins dedicated cores and hugepage memory, which is
//! why the orchestrator reserves it for NFs that need the speed.

use std::collections::HashMap;

use un_packet::Packet;
use un_sim::mem::mb;
use un_sim::{AccountId, Cost, CostModel, MemLedger};

use crate::types::{ComputeError, IoOutcome};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Created,
    Running,
    Stopped,
}

#[derive(Debug)]
struct DpdkProc {
    cores: u32,
    hugepages_mb: u64,
    n_ports: usize,
    state: ProcState,
    account: AccountId,
    rx_packets: u64,
}

/// Driver state.
#[derive(Debug, Default)]
pub struct DpdkDriver {
    procs: HashMap<u64, DpdkProc>,
    /// Cores currently pinned by running instances.
    pub cores_in_use: u32,
}

impl DpdkDriver {
    /// Fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a DPDK process NF (a transparent forwarder between its
    /// ports, processed at PMD cost).
    pub fn create(
        &mut self,
        key: u64,
        cores: u32,
        hugepages_mb: u64,
        n_ports: usize,
        account: AccountId,
    ) -> Result<(), ComputeError> {
        self.procs.insert(
            key,
            DpdkProc {
                cores,
                hugepages_mb,
                n_ports,
                state: ProcState::Created,
                account,
                rx_packets: 0,
            },
        );
        Ok(())
    }

    /// Start: pins cores, maps hugepages.
    pub fn start(&mut self, key: u64, ledger: &mut MemLedger) -> Result<(), ComputeError> {
        let p = self
            .procs
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        if p.state == ProcState::Running {
            return Err(ComputeError::BadState("already running"));
        }
        ledger
            .alloc(p.account, "hugepages", mb(p.hugepages_mb))
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;
        self.cores_in_use += p.cores;
        p.state = ProcState::Running;
        Ok(())
    }

    /// Stop: releases cores and hugepages.
    pub fn stop(&mut self, key: u64, ledger: &mut MemLedger) -> Result<(), ComputeError> {
        let p = self
            .procs
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        if p.state != ProcState::Running {
            return Err(ComputeError::BadState("not running"));
        }
        ledger
            .free(p.account, "hugepages", mb(p.hugepages_mb))
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;
        self.cores_in_use -= p.cores;
        p.state = ProcState::Stopped;
        Ok(())
    }

    /// Remove a stopped process.
    pub fn destroy(&mut self, key: u64) -> Result<(), ComputeError> {
        match self.procs.get(&key) {
            None => Err(ComputeError::NoSuchInstance(key)),
            Some(p) if p.state == ProcState::Running => {
                Err(ComputeError::BadState("destroy while running"))
            }
            Some(_) => {
                self.procs.remove(&key);
                Ok(())
            }
        }
    }

    /// Unified packet delivery: PMD-forward to the next port.
    pub fn deliver(&mut self, key: u64, port: u32, pkt: Packet, costs: &CostModel) -> IoOutcome {
        let Some(p) = self.procs.get_mut(&key) else {
            return IoOutcome::default();
        };
        if p.state != ProcState::Running || (port as usize) >= p.n_ports {
            return IoOutcome::default();
        }
        p.rx_packets += 1;
        let out = if p.n_ports >= 2 {
            if port == 0 {
                1
            } else {
                0
            }
        } else {
            port
        };
        IoOutcome {
            outputs: vec![(out, pkt)],
            cost: Cost::from_nanos(costs.pmd_per_packet_ns),
        }
    }

    /// Batched delivery: one PMD poll slot serves the whole burst —
    /// the process resolves once, frames forward in order.
    pub fn deliver_batch(
        &mut self,
        key: u64,
        frames: Vec<(u32, Packet)>,
        costs: &CostModel,
    ) -> Vec<IoOutcome> {
        let Some(p) = self.procs.get_mut(&key) else {
            return frames.iter().map(|_| IoOutcome::default()).collect();
        };
        frames
            .into_iter()
            .map(|(port, pkt)| {
                if p.state != ProcState::Running || (port as usize) >= p.n_ports {
                    return IoOutcome::default();
                }
                p.rx_packets += 1;
                let out = if p.n_ports >= 2 {
                    if port == 0 {
                        1
                    } else {
                        0
                    }
                } else {
                    port
                };
                IoOutcome {
                    outputs: vec![(out, pkt)],
                    cost: Cost::from_nanos(costs.pmd_per_packet_ns),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_resources_and_forwarding() {
        let mut d = DpdkDriver::new();
        let mut ledger = MemLedger::new();
        let a = ledger.create_account("dpdk", None);
        d.create(1, 2, 512, 2, a).unwrap();
        d.start(1, &mut ledger).unwrap();
        assert_eq!(d.cores_in_use, 2);
        assert_eq!(ledger.usage(a), mb(512));

        let io = d.deliver(1, 0, Packet::from_slice(&[0u8; 64]), &CostModel::default());
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(io.outputs[0].0, 1);
        assert_eq!(
            io.cost.as_nanos(),
            CostModel::default().pmd_per_packet_ns,
            "DPDK path is cheap and kernel-free"
        );

        assert!(matches!(d.destroy(1), Err(ComputeError::BadState(_))));
        d.stop(1, &mut ledger).unwrap();
        assert_eq!(d.cores_in_use, 0);
        assert_eq!(ledger.usage(a), 0);
        d.destroy(1).unwrap();
        assert!(matches!(
            d.deliver(1, 0, Packet::from_slice(&[0]), &CostModel::default()),
            IoOutcome { ref outputs, .. } if outputs.is_empty()
        ));
    }

    #[test]
    fn stopped_process_drops() {
        let mut d = DpdkDriver::new();
        let mut ledger = MemLedger::new();
        let a = ledger.create_account("dpdk", None);
        d.create(1, 1, 64, 2, a).unwrap();
        let io = d.deliver(1, 0, Packet::from_slice(&[0u8; 64]), &CostModel::default());
        assert!(io.outputs.is_empty());
    }
}
