//! The management drivers (Figure 1: "Management drivers").

pub mod docker;
pub mod dpdk;
pub mod native;
pub mod vm;

pub use docker::DockerDriver;
pub use dpdk::DpdkDriver;
pub use native::NativeDriver;
pub use vm::VmDriver;
