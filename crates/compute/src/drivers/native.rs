//! The native (NNF) driver — the paper's contribution.
//!
//! "When a NNF should be used, the compute manager selects a NNF driver
//! developed as part of this work. This NNF driver implements the same
//! abstraction defined for the other compute drivers and dynamically
//! activates the plugin associated to the selected NNF … The NNF driver
//! starts the NNF in a new network namespace, to provide a basic form
//! of isolation, and configures the NNF with a predefined configuration
//! script." — §2.

use std::collections::HashMap;

use un_linux::{Host, IfaceId, NsId};
use un_nffg::NfConfig;
use un_nnf::{GraphBinding, NnfCatalog, NnfContext, NnfPlugin};
use un_packet::Packet;
use un_sim::{AccountId, MemLedger};

use crate::types::{ComputeError, IoOutcome};

struct NativeInstance {
    functional_type: String,
    ns: NsId,
    ports: Vec<IfaceId>,
    base_tag: u64,
    plugin: Box<dyn NnfPlugin>,
    config: NfConfig,
    account: AccountId,
    started: bool,
    shared: bool,
    bindings: Vec<GraphBinding>,
}

/// Driver state: catalogue + instance table.
pub struct NativeDriver {
    /// The node's NNF catalogue (capability set for the orchestrator).
    pub catalog: NnfCatalog,
    instances: HashMap<u64, NativeInstance>,
    /// functional type → instance key, for single-instance NNFs.
    singletons: HashMap<String, u64>,
}

impl Default for NativeDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeDriver {
    /// Fresh driver with the standard CPE catalogue.
    pub fn new() -> Self {
        NativeDriver {
            catalog: NnfCatalog::standard(),
            instances: HashMap::new(),
            singletons: HashMap::new(),
        }
    }

    /// Is there already a live instance of this functional type?
    pub fn existing_instance(&self, functional_type: &str) -> Option<u64> {
        self.singletons.get(functional_type).copied()
    }

    /// Graphs bound to an instance (shared mode).
    pub fn binding_count(&self, key: u64) -> usize {
        self.instances
            .get(&key)
            .map(|i| i.bindings.len())
            .unwrap_or(0)
    }

    /// Create an NNF instance in a fresh namespace with external ports.
    ///
    /// `shared` requests single-port shared mode (only valid for
    /// sharable NNFs; graphs then attach via [`bind_graph`](Self::bind_graph)).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        key: u64,
        name: &str,
        functional_type: &str,
        n_ports: usize,
        base_tag: u64,
        shared: bool,
        config: &NfConfig,
        host: &mut Host,
        account: AccountId,
    ) -> Result<(), ComputeError> {
        let desc = self
            .catalog
            .get(functional_type)
            .ok_or_else(|| ComputeError::NoSuchNnf(functional_type.to_string()))?
            .clone();
        if !desc.multi_instance && self.singletons.contains_key(functional_type) {
            return Err(ComputeError::NnfBusy(functional_type.to_string()));
        }
        if shared && !desc.sharable {
            return Err(ComputeError::Unsupported(format!(
                "'{functional_type}' is not sharable"
            )));
        }
        let plugin = self
            .catalog
            .instantiate(functional_type)
            .ok_or_else(|| ComputeError::NoSuchNnf(functional_type.to_string()))?;

        let ns = host.add_namespace(&format!("nnf-{name}"));
        let port_count = if shared {
            1
        } else {
            n_ports.max(desc.min_ports)
        };
        let mut ports = Vec::with_capacity(port_count);
        for i in 0..port_count {
            let ifc = host
                .add_external(ns, &format!("port{i}"), base_tag + i as u64)
                .map_err(|e| ComputeError::Substrate(e.to_string()))?;
            ports.push(ifc);
        }

        if !desc.multi_instance {
            self.singletons.insert(functional_type.to_string(), key);
        }
        self.instances.insert(
            key,
            NativeInstance {
                functional_type: functional_type.to_string(),
                ns,
                ports,
                base_tag,
                plugin,
                config: config.clone(),
                account,
                started: false,
                shared,
                bindings: Vec::new(),
            },
        );
        Ok(())
    }

    /// Start: run the plugin's lifecycle script.
    pub fn start(
        &mut self,
        key: u64,
        host: &mut Host,
        ledger: &mut MemLedger,
    ) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        let mut ctx = NnfContext {
            host,
            ns: inst.ns,
            ledger,
            account: inst.account,
        };
        inst.plugin
            .start(&mut ctx, &inst.ports, &inst.config)
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;
        inst.started = true;
        Ok(())
    }

    /// Attach another service graph to a shared instance.
    pub fn bind_graph(
        &mut self,
        key: u64,
        binding: &GraphBinding,
        host: &mut Host,
        ledger: &mut MemLedger,
    ) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        if !inst.shared {
            return Err(ComputeError::Unsupported(
                "instance not in shared mode".into(),
            ));
        }
        let mut ctx = NnfContext {
            host,
            ns: inst.ns,
            ledger,
            account: inst.account,
        };
        inst.plugin
            .bind_graph(&mut ctx, binding)
            .map_err(|e| ComputeError::Substrate(e.to_string()))?;
        inst.bindings.push(binding.clone());
        Ok(())
    }

    /// Detach a service graph from a shared instance.
    pub fn unbind_graph(
        &mut self,
        key: u64,
        graph: &str,
        host: &mut Host,
        ledger: &mut MemLedger,
    ) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        let Some(pos) = inst.bindings.iter().position(|b| b.graph == graph) else {
            return Err(ComputeError::BadState("graph not bound"));
        };
        let binding = inst.bindings.remove(pos);
        let mut ctx = NnfContext {
            host,
            ns: inst.ns,
            ledger,
            account: inst.account,
        };
        inst.plugin
            .unbind_graph(&mut ctx, &binding)
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Stop the NNF.
    pub fn stop(
        &mut self,
        key: u64,
        host: &mut Host,
        ledger: &mut MemLedger,
    ) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .get_mut(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        if inst.started {
            let mut ctx = NnfContext {
                host,
                ns: inst.ns,
                ledger,
                account: inst.account,
            };
            inst.plugin
                .stop(&mut ctx)
                .map_err(|e| ComputeError::Substrate(e.to_string()))?;
            inst.started = false;
        }
        Ok(())
    }

    /// Remove the instance.
    pub fn destroy(&mut self, key: u64) -> Result<(), ComputeError> {
        let inst = self
            .instances
            .remove(&key)
            .ok_or(ComputeError::NoSuchInstance(key))?;
        if inst.started {
            self.instances.insert(key, inst);
            return Err(ComputeError::BadState("destroy while running"));
        }
        self.singletons.retain(|_, v| *v != key);
        Ok(())
    }

    /// Unified packet delivery.
    pub fn deliver(&mut self, key: u64, port: u32, pkt: Packet, host: &mut Host) -> IoOutcome {
        let Some(inst) = self.instances.get(&key) else {
            return IoOutcome::default();
        };
        let Some(&iface) = inst.ports.get(port as usize) else {
            return IoOutcome::default();
        };
        let base = inst.base_tag;
        let n = inst.ports.len() as u64;
        Self::tag_filter(base, n, host.inject(iface, pkt))
    }

    /// Batched delivery: resolve the instance and its port map once,
    /// then inject the whole burst. Returns one `IoOutcome` per input
    /// frame, in order, so callers keep per-frame accounting.
    pub fn deliver_batch(
        &mut self,
        key: u64,
        frames: Vec<(u32, Packet)>,
        host: &mut Host,
    ) -> Vec<IoOutcome> {
        let Some(inst) = self.instances.get(&key) else {
            return frames.iter().map(|_| IoOutcome::default()).collect();
        };
        let base = inst.base_tag;
        let n = inst.ports.len() as u64;
        frames
            .into_iter()
            .map(|(port, pkt)| match inst.ports.get(port as usize) {
                Some(&iface) => Self::tag_filter(base, n, host.inject(iface, pkt)),
                None => IoOutcome::default(),
            })
            .collect()
    }

    /// Keep only the emissions tagged into this instance's port range,
    /// rebased to instance-local port numbers.
    fn tag_filter(base: u64, n: u64, res: un_linux::IoResult) -> IoOutcome {
        IoOutcome {
            outputs: res
                .emitted
                .into_iter()
                .filter(|(tag, _)| *tag >= base && *tag < base + n)
                .map(|(tag, p)| ((tag - base) as u32, p))
                .collect(),
            cost: res.cost,
        }
    }

    /// Native "image" footprint: the package size from the catalogue.
    pub fn image_footprint(&self, functional_type: &str) -> u64 {
        self.catalog
            .get(functional_type)
            .map(|d| d.package_bytes)
            .unwrap_or(0)
    }

    /// The namespace of an instance (diagnostics / tests).
    pub fn namespace_of(&self, key: u64) -> Option<NsId> {
        self.instances.get(&key).map(|i| i.ns)
    }

    /// The functional type of an instance.
    pub fn functional_type_of(&self, key: u64) -> Option<&str> {
        self.instances.get(&key).map(|i| i.functional_type.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_sim::CostModel;

    fn ipsec_config() -> NfConfig {
        NfConfig::default()
            .with_param("psk", "hunter2")
            .with_param("local-addr", "192.0.2.1")
            .with_param("peer-addr", "192.0.2.2")
            .with_param("protected-local", "192.168.1.0/24")
            .with_param("protected-remote", "172.16.0.0/16")
            .with_param("lan-addr", "192.168.1.1/24")
            .with_param("wan-addr", "192.0.2.1/24")
    }

    #[test]
    fn single_instance_nnf_enforced() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let a1 = ledger.create_account("i1", None);
        let a2 = ledger.create_account("i2", None);
        let mut d = NativeDriver::new();
        d.create(
            1,
            "ipsec-a",
            "ipsec",
            2,
            16,
            false,
            &ipsec_config(),
            &mut host,
            a1,
        )
        .unwrap();
        // A second native IPsec must be refused (charon is a singleton).
        let err = d
            .create(
                2,
                "ipsec-b",
                "ipsec",
                2,
                32,
                false,
                &ipsec_config(),
                &mut host,
                a2,
            )
            .unwrap_err();
        assert!(matches!(err, ComputeError::NnfBusy(_)));
        assert_eq!(d.existing_instance("ipsec"), Some(1));

        // Multi-instance NNFs are fine twice.
        d.create(
            3,
            "fw-a",
            "firewall",
            2,
            48,
            false,
            &NfConfig::default(),
            &mut host,
            a1,
        )
        .unwrap();
        d.create(
            4,
            "fw-b",
            "firewall",
            2,
            64,
            false,
            &NfConfig::default(),
            &mut host,
            a2,
        )
        .unwrap();
    }

    #[test]
    fn shared_mode_rules() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let a = ledger.create_account("i", None);
        let mut d = NativeDriver::new();
        // firewall is not sharable.
        assert!(matches!(
            d.create(
                1,
                "fw",
                "firewall",
                2,
                16,
                true,
                &NfConfig::default(),
                &mut host,
                a
            ),
            Err(ComputeError::Unsupported(_))
        ));
        // nat is sharable; shared instance gets a single port.
        d.create(
            2,
            "nat",
            "nat",
            2,
            32,
            true,
            &NfConfig::default(),
            &mut host,
            a,
        )
        .unwrap();
        d.start(2, &mut host, &mut ledger).unwrap();

        let mut params = std::collections::BTreeMap::new();
        params.insert("lan-addr".into(), "192.168.1.1/24".into());
        params.insert("wan-addr".into(), "203.0.113.1/24".into());
        let binding = GraphBinding {
            graph: "g1".into(),
            mark: 1,
            zone: 1,
            vid_lan: 100,
            vid_wan: 101,
            params,
        };
        d.bind_graph(2, &binding, &mut host, &mut ledger).unwrap();
        assert_eq!(d.binding_count(2), 1);
        d.unbind_graph(2, "g1", &mut host, &mut ledger).unwrap();
        assert_eq!(d.binding_count(2), 0);
        assert!(matches!(
            d.unbind_graph(2, "g1", &mut host, &mut ledger),
            Err(ComputeError::BadState(_))
        ));
    }

    #[test]
    fn lifecycle_and_packet_path() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let a = ledger.create_account("i", None);
        let mut d = NativeDriver::new();
        d.create(
            1,
            "swan",
            "ipsec",
            2,
            16,
            false,
            &ipsec_config(),
            &mut host,
            a,
        )
        .unwrap();
        d.start(1, &mut host, &mut ledger).unwrap();

        let ns = d.namespace_of(1).unwrap();
        host.neigh_add(
            ns,
            "192.0.2.2".parse().unwrap(),
            un_packet::MacAddr::local(99),
        )
        .unwrap();
        let lan = host.iface_by_name(ns, "port0").unwrap().id;
        let lan_mac = host.iface(lan).unwrap().mac;
        let pkt = un_packet::PacketBuilder::new()
            .ethernet(un_packet::MacAddr::local(5), lan_mac)
            .ipv4(
                "192.168.1.10".parse().unwrap(),
                "172.16.0.9".parse().unwrap(),
            )
            .udp(1, 2)
            .payload(&[0xEE; 100])
            .build();
        let io = d.deliver(1, 0, pkt, &mut host);
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(io.outputs[0].0, 1);
        assert!(io.cost.as_nanos() > 0);

        // destroy-while-running is refused; stop then destroy works and
        // frees the singleton slot.
        assert!(matches!(d.destroy(1), Err(ComputeError::BadState(_))));
        d.stop(1, &mut host, &mut ledger).unwrap();
        d.destroy(1).unwrap();
        assert_eq!(d.existing_instance("ipsec"), None);
        let a2 = ledger.create_account("i2", None);
        d.create(
            9,
            "swan2",
            "ipsec",
            2,
            64,
            false,
            &ipsec_config(),
            &mut host,
            a2,
        )
        .unwrap();
    }
}
