//! The VM (libvirt/KVM-QEMU) driver.

use un_hypervisor::{GuestApp, Hypervisor, UserspaceIpsecApp, VmId};
use un_ipsec::sa::SecurityAssociation;
use un_ipsec::spd::{PolicyAction, PolicyDirection, SecurityPolicy, TrafficSelector};
use un_nffg::NfConfig;
use un_nnf::translate::derive_psk_tunnel;
use un_packet::Packet;
use un_sim::{AccountId, MemLedger};

use crate::types::{ComputeError, GuestAppKind, IoOutcome};

/// Driver state: the hypervisor plus per-instance VM handles.
#[derive(Debug, Default)]
pub struct VmDriver {
    /// The node's hypervisor (image store + VMs).
    pub hypervisor: Hypervisor,
}

impl VmDriver {
    /// Fresh driver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the guest application for a functional type.
    fn build_app(kind: GuestAppKind, config: &NfConfig) -> Result<GuestApp, ComputeError> {
        match kind {
            GuestAppKind::L2Forward => Ok(GuestApp::L2Forward),
            GuestAppKind::Reflector => Ok(GuestApp::Reflector),
            GuestAppKind::IpsecUserspace => {
                let psk = config
                    .param("psk")
                    .ok_or(ComputeError::Substrate("ipsec VM needs 'psk'".into()))?;
                let local: std::net::Ipv4Addr = config
                    .param("local-addr")
                    .and_then(|v| v.parse().ok())
                    .ok_or(ComputeError::Substrate(
                        "ipsec VM needs 'local-addr'".into(),
                    ))?;
                let peer: std::net::Ipv4Addr = config
                    .param("peer-addr")
                    .and_then(|v| v.parse().ok())
                    .ok_or(ComputeError::Substrate("ipsec VM needs 'peer-addr'".into()))?;
                let prot_local: un_packet::Ipv4Cidr = config
                    .param("protected-local")
                    .and_then(|v| v.parse().ok())
                    .ok_or(ComputeError::Substrate(
                        "ipsec VM needs 'protected-local'".into(),
                    ))?;
                let prot_remote: un_packet::Ipv4Cidr = config
                    .param("protected-remote")
                    .and_then(|v| v.parse().ok())
                    .ok_or(ComputeError::Substrate(
                        "ipsec VM needs 'protected-remote'".into(),
                    ))?;
                let initiator = config.param("role").unwrap_or("initiator") == "initiator";
                let (key_out, salt_out, key_in, salt_in, spi_out, spi_in) =
                    derive_psk_tunnel(psk.as_bytes(), initiator);

                let mut app = UserspaceIpsecApp::new();
                app.sa_out = Some(SecurityAssociation::outbound(
                    spi_out, local, peer, key_out, salt_out,
                ));
                app.sa_in = Some(SecurityAssociation::inbound(
                    spi_in, peer, local, key_in, salt_in,
                ));
                app.spd.install(SecurityPolicy {
                    selector: TrafficSelector::between(prot_local, prot_remote),
                    direction: PolicyDirection::Out,
                    action: PolicyAction::Protect(spi_out),
                    priority: 10,
                });
                Ok(GuestApp::UserspaceIpsec(app))
            }
        }
    }

    /// Define a VM for an NF.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        name: &str,
        image: &str,
        vcpus: u32,
        mem_mb: u64,
        n_ports: usize,
        app: GuestAppKind,
        config: &NfConfig,
        ledger: &mut MemLedger,
        account: AccountId,
    ) -> Result<VmId, ComputeError> {
        let guest_app = Self::build_app(app, config)?;
        self.hypervisor
            .create_vm(
                name, image, vcpus, mem_mb, n_ports, guest_app, ledger, account,
            )
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Boot.
    pub fn start(&mut self, vm: VmId, ledger: &mut MemLedger) -> Result<(), ComputeError> {
        self.hypervisor
            .start(vm, ledger)
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Shut down.
    pub fn stop(&mut self, vm: VmId, ledger: &mut MemLedger) -> Result<(), ComputeError> {
        self.hypervisor
            .stop(vm, ledger)
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Undefine.
    pub fn destroy(&mut self, vm: VmId) -> Result<(), ComputeError> {
        self.hypervisor
            .destroy(vm)
            .map(|_| ())
            .map_err(|e| ComputeError::Substrate(e.to_string()))
    }

    /// Unified packet delivery.
    pub fn deliver(
        &mut self,
        vm: VmId,
        port: u32,
        pkt: Packet,
        costs: &un_sim::CostModel,
    ) -> IoOutcome {
        let io = self.hypervisor.deliver(vm, port as usize, pkt, costs);
        IoOutcome {
            outputs: io
                .outputs
                .into_iter()
                .map(|(nic, p)| (nic as u32, p))
                .collect(),
            cost: io.cost,
        }
    }

    /// Batched delivery: the guest keeps per-frame virtio semantics,
    /// but the VM handle resolves once per burst at the manager layer.
    /// One `IoOutcome` per input frame, in order.
    pub fn deliver_batch(
        &mut self,
        vm: VmId,
        frames: Vec<(u32, Packet)>,
        costs: &un_sim::CostModel,
    ) -> Vec<IoOutcome> {
        frames
            .into_iter()
            .map(|(port, pkt)| self.deliver(vm, port, pkt, costs))
            .collect()
    }

    /// Disk image footprint for an instance's image.
    pub fn image_footprint(&self, image: &str) -> u64 {
        self.hypervisor
            .images
            .get(image)
            .map(|i| i.size)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_hypervisor::DiskImage;
    use un_sim::mem::mb;
    use un_sim::CostModel;

    #[test]
    fn create_requires_image_and_config() {
        let mut d = VmDriver::new();
        let mut ledger = MemLedger::new();
        let acct = ledger.create_account("n", None);
        // Missing image.
        assert!(matches!(
            d.create(
                "x",
                "ghost",
                1,
                64,
                2,
                GuestAppKind::L2Forward,
                &NfConfig::default(),
                &mut ledger,
                acct
            ),
            Err(ComputeError::Substrate(_))
        ));
        d.hypervisor.images.add(DiskImage {
            name: "img".into(),
            size: mb(522),
        });
        // IPsec app without PSK.
        assert!(matches!(
            d.create(
                "x",
                "img",
                1,
                64,
                2,
                GuestAppKind::IpsecUserspace,
                &NfConfig::default(),
                &mut ledger,
                acct
            ),
            Err(ComputeError::Substrate(_))
        ));
        // Forwarder needs nothing.
        let vm = d
            .create(
                "x",
                "img",
                1,
                64,
                2,
                GuestAppKind::L2Forward,
                &NfConfig::default(),
                &mut ledger,
                acct,
            )
            .unwrap();
        d.start(vm, &mut ledger).unwrap();
        let io = d.deliver(vm, 0, Packet::from_slice(&[0u8; 64]), &CostModel::default());
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(d.image_footprint("img"), mb(522));
        assert_eq!(d.image_footprint("ghost"), 0);
    }
}
