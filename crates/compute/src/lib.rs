//! # un-compute — the compute manager and its management drivers
//!
//! Figure 1 of the paper: "VNFs are instantiated and managed by a
//! compute manager through ad-hoc drivers matching the specific VNF
//! support technology (e.g., VM, Docker, DPDK process) … all the above
//! drivers must implement a specific abstraction defined by the local
//! orchestrator, which enables multiple drivers to coexist."
//!
//! * [`types`] — that abstraction: [`types::Flavor`],
//!   [`types::FlavorSpec`], instance handles, the unified
//!   deliver-a-packet result.
//! * [`drivers`] — the four drivers:
//!   * [`drivers::VmDriver`] — KVM/QEMU via `un-hypervisor`;
//!   * [`drivers::DockerDriver`] — containers via `un-container`
//!     (kernel state configured by the same plugins as native — which is
//!     exactly why Docker matches native throughput in Table 1);
//!   * [`drivers::DpdkDriver`] — poll-mode userspace processes (fast,
//!     but each instance pins a core);
//!   * [`drivers::NativeDriver`] — the paper's contribution: NNFs via
//!     `un-nnf` plugins, namespaces and the adaptation layer.
//! * [`manager`] — the compute manager: instance table, lifecycle
//!   fan-out, unified packet delivery, resource queries.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod drivers;
pub mod manager;
pub mod types;

pub use manager::{ComputeManager, NodeEnv};
pub use types::{
    ComputeError, Flavor, FlavorSpec, GuestAppKind, InstanceId, InstanceState, IoOutcome,
};
