//! The compute manager: one instance table over all drivers.

use std::collections::BTreeMap;

use un_hypervisor::VmId;
use un_linux::Host;
use un_nffg::NfConfig;
use un_nnf::GraphBinding;
use un_packet::Packet;
use un_sim::{AccountId, CostModel, MemLedger};

use crate::drivers::{DockerDriver, DpdkDriver, NativeDriver, VmDriver};
use crate::types::{ComputeError, Flavor, FlavorSpec, InstanceId, InstanceState, IoOutcome};

/// Mutable node-level state every compute call threads through.
pub struct NodeEnv<'a> {
    /// The CPE's kernel (namespaces for docker/native NFs, taps).
    pub host: &'a mut Host,
    /// Memory accounting.
    pub ledger: &'a mut MemLedger,
    /// Cost model for data-path charging.
    pub costs: &'a CostModel,
}

#[derive(Debug)]
enum Handle {
    Vm(VmId),
    Docker,
    Dpdk,
    Native,
}

#[derive(Debug)]
struct InstanceInfo {
    name: String,
    functional_type: String,
    flavor: Flavor,
    handle: Handle,
    state: InstanceState,
    account: AccountId,
    /// Image identity for footprint queries.
    image_ref: (String, String),
}

/// Ports per instance are tagged `instance_id * TAG_STRIDE + port` on
/// the host side.
pub const TAG_STRIDE: u64 = 16;

/// The compute manager.
pub struct ComputeManager {
    /// VM driver (public for image-store provisioning).
    pub vm: VmDriver,
    /// Docker driver (public for registry provisioning).
    pub docker: DockerDriver,
    /// DPDK driver.
    pub dpdk: DpdkDriver,
    /// Native NNF driver.
    pub native: NativeDriver,
    instances: BTreeMap<u64, InstanceInfo>,
    next_id: u64,
}

impl Default for ComputeManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ComputeManager {
    /// A manager with all four drivers available.
    pub fn new() -> Self {
        ComputeManager {
            vm: VmDriver::new(),
            docker: DockerDriver::new(),
            dpdk: DpdkDriver::new(),
            native: NativeDriver::new(),
            instances: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Create an NF instance with the chosen flavor.
    ///
    /// `shared_native` requests the sharable single-port mode for native
    /// NFs (ignored for other flavors).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        env: &mut NodeEnv<'_>,
        name: &str,
        functional_type: &str,
        spec: &FlavorSpec,
        n_ports: usize,
        config: &NfConfig,
        shared_native: bool,
        parent_account: AccountId,
    ) -> Result<InstanceId, ComputeError> {
        let id = self.next_id;
        let base_tag = id * TAG_STRIDE;
        let account = env
            .ledger
            .create_account(&format!("{}:{name}", spec.flavor()), Some(parent_account));

        let (handle, image_ref) = match spec {
            FlavorSpec::Vm {
                image,
                vcpus,
                mem_mb,
                app,
            } => {
                let vm = self.vm.create(
                    name, image, *vcpus, *mem_mb, n_ports, *app, config, env.ledger, account,
                )?;
                (Handle::Vm(vm), (image.clone(), String::new()))
            }
            FlavorSpec::Docker {
                image,
                tag,
                process_rss,
            } => {
                self.docker.create(
                    id,
                    name,
                    functional_type,
                    image,
                    tag,
                    *process_rss,
                    n_ports,
                    base_tag,
                    config,
                    env.host,
                    env.ledger,
                    account,
                )?;
                (Handle::Docker, (image.clone(), tag.clone()))
            }
            FlavorSpec::Dpdk {
                cores,
                hugepages_mb,
            } => {
                self.dpdk
                    .create(id, *cores, *hugepages_mb, n_ports, account)?;
                (Handle::Dpdk, (String::new(), String::new()))
            }
            FlavorSpec::Native => {
                self.native.create(
                    id,
                    name,
                    functional_type,
                    n_ports,
                    base_tag,
                    shared_native,
                    config,
                    env.host,
                    account,
                )?;
                (Handle::Native, (functional_type.to_string(), String::new()))
            }
        };

        self.instances.insert(
            id,
            InstanceInfo {
                name: name.to_string(),
                functional_type: functional_type.to_string(),
                flavor: spec.flavor(),
                handle,
                state: InstanceState::Created,
                account,
                image_ref,
            },
        );
        self.next_id += 1;
        Ok(InstanceId(id))
    }

    /// Start an instance.
    pub fn start(&mut self, env: &mut NodeEnv<'_>, id: InstanceId) -> Result<(), ComputeError> {
        let info = self
            .instances
            .get_mut(&id.0)
            .ok_or(ComputeError::NoSuchInstance(id.0))?;
        match &info.handle {
            Handle::Vm(vm) => self.vm.start(*vm, env.ledger)?,
            Handle::Docker => self.docker.start(id.0, env.host, env.ledger)?,
            Handle::Dpdk => self.dpdk.start(id.0, env.ledger)?,
            Handle::Native => self.native.start(id.0, env.host, env.ledger)?,
        }
        info.state = InstanceState::Running;
        Ok(())
    }

    /// Stop an instance.
    pub fn stop(&mut self, env: &mut NodeEnv<'_>, id: InstanceId) -> Result<(), ComputeError> {
        let info = self
            .instances
            .get_mut(&id.0)
            .ok_or(ComputeError::NoSuchInstance(id.0))?;
        match &info.handle {
            Handle::Vm(vm) => self.vm.stop(*vm, env.ledger)?,
            Handle::Docker => self.docker.stop(id.0, env.host, env.ledger)?,
            Handle::Dpdk => self.dpdk.stop(id.0, env.ledger)?,
            Handle::Native => self.native.stop(id.0, env.host, env.ledger)?,
        }
        info.state = InstanceState::Stopped;
        Ok(())
    }

    /// Destroy a stopped instance and free its accounts.
    pub fn destroy(&mut self, env: &mut NodeEnv<'_>, id: InstanceId) -> Result<(), ComputeError> {
        let info = self
            .instances
            .get(&id.0)
            .ok_or(ComputeError::NoSuchInstance(id.0))?;
        if info.state == InstanceState::Running {
            return Err(ComputeError::BadState("destroy while running"));
        }
        match &info.handle {
            Handle::Vm(vm) => self.vm.destroy(*vm)?,
            Handle::Docker => self.docker.destroy(id.0)?,
            Handle::Dpdk => self.dpdk.destroy(id.0)?,
            Handle::Native => self.native.destroy(id.0)?,
        }
        let info = self.instances.remove(&id.0).unwrap();
        env.ledger.free_account(info.account);
        Ok(())
    }

    /// Deliver a packet to an instance port.
    pub fn deliver(
        &mut self,
        env: &mut NodeEnv<'_>,
        id: InstanceId,
        port: u32,
        pkt: Packet,
    ) -> IoOutcome {
        let Some(info) = self.instances.get(&id.0) else {
            return IoOutcome::default();
        };
        match &info.handle {
            Handle::Vm(vm) => self.vm.deliver(*vm, port, pkt, env.costs),
            Handle::Docker => self.docker.deliver(id.0, port, pkt, env.host),
            Handle::Dpdk => self.dpdk.deliver(id.0, port, pkt, env.costs),
            Handle::Native => self.native.deliver(id.0, port, pkt, env.host),
        }
    }

    /// Deliver a burst of packets to one instance: the instance table
    /// and driver-side dispatch resolve once for the whole burst
    /// instead of per packet. Returns one `IoOutcome` per input frame,
    /// in order and semantically identical to calling [`Self::deliver`]
    /// frame by frame, so per-frame accounting (TTL, ledger, cost)
    /// stays exact.
    pub fn deliver_batch(
        &mut self,
        env: &mut NodeEnv<'_>,
        id: InstanceId,
        frames: Vec<(u32, Packet)>,
    ) -> Vec<IoOutcome> {
        let Some(info) = self.instances.get(&id.0) else {
            return frames.iter().map(|_| IoOutcome::default()).collect();
        };
        match &info.handle {
            Handle::Vm(vm) => self.vm.deliver_batch(*vm, frames, env.costs),
            Handle::Docker => self.docker.deliver_batch(id.0, frames, env.host),
            Handle::Dpdk => self.dpdk.deliver_batch(id.0, frames, env.costs),
            Handle::Native => self.native.deliver_batch(id.0, frames, env.host),
        }
    }

    /// Bind a service graph to a shared native instance.
    pub fn bind_native_graph(
        &mut self,
        env: &mut NodeEnv<'_>,
        id: InstanceId,
        binding: &GraphBinding,
    ) -> Result<(), ComputeError> {
        self.native.bind_graph(id.0, binding, env.host, env.ledger)
    }

    /// Unbind a service graph from a shared native instance.
    pub fn unbind_native_graph(
        &mut self,
        env: &mut NodeEnv<'_>,
        id: InstanceId,
        graph: &str,
    ) -> Result<(), ComputeError> {
        self.native.unbind_graph(id.0, graph, env.host, env.ledger)
    }

    /// RAM allocated to an instance right now (the paper's RAM column).
    pub fn ram_usage(&self, ledger: &MemLedger, id: InstanceId) -> u64 {
        self.instances
            .get(&id.0)
            .map(|i| ledger.usage(i.account))
            .unwrap_or(0)
    }

    /// Image footprint of an instance (the paper's image-size column).
    pub fn image_footprint(&self, id: InstanceId) -> u64 {
        let Some(info) = self.instances.get(&id.0) else {
            return 0;
        };
        match info.flavor {
            Flavor::Vm => self.vm.image_footprint(&info.image_ref.0),
            Flavor::Docker => self
                .docker
                .image_footprint(&info.image_ref.0, &info.image_ref.1),
            Flavor::Native => self.native.image_footprint(&info.image_ref.0),
            Flavor::Dpdk => 12_000_000, // statically linked DPDK app binary
        }
    }

    /// Instance state.
    pub fn state(&self, id: InstanceId) -> Option<InstanceState> {
        self.instances.get(&id.0).map(|i| i.state)
    }

    /// Instance flavor.
    pub fn flavor(&self, id: InstanceId) -> Option<Flavor> {
        self.instances.get(&id.0).map(|i| i.flavor)
    }

    /// Instance name.
    pub fn name(&self, id: InstanceId) -> Option<&str> {
        self.instances.get(&id.0).map(|i| i.name.as_str())
    }

    /// Functional type of an instance.
    pub fn functional_type(&self, id: InstanceId) -> Option<&str> {
        self.instances
            .get(&id.0)
            .map(|i| i.functional_type.as_str())
    }

    /// Iterate (id, flavor, name) of all instances.
    pub fn iter(&self) -> impl Iterator<Item = (InstanceId, Flavor, &str)> {
        self.instances
            .iter()
            .map(|(k, v)| (InstanceId(*k), v.flavor, v.name.as_str()))
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if no instances exist.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GuestAppKind;
    use un_container::{Image, Layer};
    use un_hypervisor::DiskImage;
    use un_sim::mem::{mb, mb_f};

    fn provision(mgr: &mut ComputeManager) {
        mgr.vm.hypervisor.images.add(DiskImage {
            name: "strongswan-vm".into(),
            size: mb(522),
        });
        mgr.docker.registry.push(Image {
            name: "strongswan".into(),
            tag: "latest".into(),
            layers: vec![
                Layer::new("sha256:base", mb(235)),
                Layer::new("sha256:swan", mb(5)),
            ],
        });
    }

    fn ipsec_config() -> NfConfig {
        NfConfig::default()
            .with_param("psk", "hunter2")
            .with_param("local-addr", "192.0.2.1")
            .with_param("peer-addr", "192.0.2.2")
            .with_param("protected-local", "192.168.1.0/24")
            .with_param("protected-remote", "172.16.0.0/16")
            .with_param("lan-addr", "192.168.1.1/24")
            .with_param("wan-addr", "192.0.2.1/24")
    }

    /// The three flavors of Table 1, created through one manager, with
    /// the resource ordering the paper reports.
    #[test]
    fn three_flavors_resource_ordering() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let costs = CostModel::default();
        let mut mgr = ComputeManager::new();
        provision(&mut mgr);
        let mut env = NodeEnv {
            host: &mut host,
            ledger: &mut ledger,
            costs: &costs,
        };

        let vm = mgr
            .create(
                &mut env,
                "ipsec-vm",
                "ipsec",
                &FlavorSpec::Vm {
                    image: "strongswan-vm".into(),
                    vcpus: 1,
                    mem_mb: 320,
                    app: GuestAppKind::IpsecUserspace,
                },
                2,
                &ipsec_config(),
                false,
                node,
            )
            .unwrap();
        let docker = mgr
            .create(
                &mut env,
                "ipsec-docker",
                "ipsec",
                &FlavorSpec::Docker {
                    image: "strongswan".into(),
                    tag: "latest".into(),
                    process_rss: mb_f(19.4) - mb_f(0.9), // plugin adds tooling RSS
                },
                2,
                &ipsec_config(),
                false,
                node,
            )
            .unwrap();
        let native = mgr
            .create(
                &mut env,
                "ipsec-native",
                "ipsec",
                &FlavorSpec::Native,
                2,
                &ipsec_config(),
                false,
                node,
            )
            .unwrap();

        for id in [vm, docker, native] {
            mgr.start(&mut env, id).unwrap();
            assert_eq!(mgr.state(id), Some(InstanceState::Running));
        }

        let ram_vm = mgr.ram_usage(env.ledger, vm);
        let ram_docker = mgr.ram_usage(env.ledger, docker);
        let ram_native = mgr.ram_usage(env.ledger, native);
        assert!(ram_vm > ram_docker, "{ram_vm} vs {ram_docker}");
        assert!(ram_docker > ram_native, "{ram_docker} vs {ram_native}");

        let img_vm = mgr.image_footprint(vm);
        let img_docker = mgr.image_footprint(docker);
        let img_native = mgr.image_footprint(native);
        assert_eq!(img_vm, mb(522));
        assert_eq!(img_docker, mb(240));
        assert_eq!(img_native, mb(5));

        // Teardown.
        for id in [vm, docker, native] {
            mgr.stop(&mut env, id).unwrap();
            mgr.destroy(&mut env, id).unwrap();
        }
        assert!(mgr.is_empty());
    }

    #[test]
    fn dpdk_flavor_through_manager() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let costs = CostModel::default();
        let mut mgr = ComputeManager::new();
        let mut env = NodeEnv {
            host: &mut host,
            ledger: &mut ledger,
            costs: &costs,
        };
        let id = mgr
            .create(
                &mut env,
                "fastpath",
                "l2fwd",
                &FlavorSpec::Dpdk {
                    cores: 1,
                    hugepages_mb: 256,
                },
                2,
                &NfConfig::default(),
                false,
                node,
            )
            .unwrap();
        mgr.start(&mut env, id).unwrap();
        let io = mgr.deliver(&mut env, id, 0, Packet::from_slice(&[0u8; 128]));
        assert_eq!(io.outputs.len(), 1);
        assert_eq!(mgr.flavor(id), Some(Flavor::Dpdk));
        assert_eq!(mgr.ram_usage(env.ledger, id), mb(256));
    }

    #[test]
    fn deliver_batch_matches_per_frame_semantics() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let costs = CostModel::default();
        let mut mgr = ComputeManager::new();
        let mut env = NodeEnv {
            host: &mut host,
            ledger: &mut ledger,
            costs: &costs,
        };
        let id = mgr
            .create(
                &mut env,
                "fastpath",
                "l2fwd",
                &FlavorSpec::Dpdk {
                    cores: 1,
                    hugepages_mb: 256,
                },
                2,
                &NfConfig::default(),
                false,
                node,
            )
            .unwrap();
        mgr.start(&mut env, id).unwrap();
        let frames: Vec<(u32, Packet)> = (0..4)
            .map(|i| (i % 2, Packet::from_slice(&[i as u8; 64])))
            .collect();
        let outs = mgr.deliver_batch(&mut env, id, frames);
        assert_eq!(outs.len(), 4, "one outcome per input frame");
        for (i, io) in outs.iter().enumerate() {
            // l2fwd crosses ports 0<->1, charged per packet.
            assert_eq!(io.outputs[0].0, ((i as u32) % 2) ^ 1);
            assert_eq!(io.cost.as_nanos(), costs.pmd_per_packet_ns);
        }
        // Unknown instances yield one default outcome per frame.
        let outs = mgr.deliver_batch(
            &mut env,
            InstanceId(999),
            vec![(0, Packet::from_slice(&[0]))],
        );
        assert_eq!(outs.len(), 1);
        assert!(outs[0].outputs.is_empty());
    }

    #[test]
    fn destroy_guards_and_unknown_ids() {
        let mut host = Host::new("cpe", CostModel::default());
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let costs = CostModel::default();
        let mut mgr = ComputeManager::new();
        provision(&mut mgr);
        let mut env = NodeEnv {
            host: &mut host,
            ledger: &mut ledger,
            costs: &costs,
        };
        let id = mgr
            .create(
                &mut env,
                "n",
                "ipsec",
                &FlavorSpec::Native,
                2,
                &ipsec_config(),
                false,
                node,
            )
            .unwrap();
        mgr.start(&mut env, id).unwrap();
        assert!(matches!(
            mgr.destroy(&mut env, id),
            Err(ComputeError::BadState(_))
        ));
        assert!(matches!(
            mgr.start(&mut env, InstanceId(999)),
            Err(ComputeError::NoSuchInstance(999))
        ));
        let io = mgr.deliver(&mut env, InstanceId(999), 0, Packet::from_slice(&[0]));
        assert!(io.outputs.is_empty());
    }
}
