//! The driver abstraction shared by all execution technologies.

use std::fmt;

use un_packet::Packet;
use un_sim::Cost;

/// An NF instance handle, unique per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nf{}", self.0)
    }
}

/// Execution technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// KVM/QEMU virtual machine.
    Vm,
    /// Docker container.
    Docker,
    /// DPDK poll-mode userspace process.
    Dpdk,
    /// Native network function.
    Native,
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Flavor::Vm => "vm",
            Flavor::Docker => "docker",
            Flavor::Dpdk => "dpdk",
            Flavor::Native => "native",
        };
        f.write_str(s)
    }
}

impl Flavor {
    /// Parse a flavor name (as used in NF-FG `flavor` hints).
    pub fn parse(s: &str) -> Option<Flavor> {
        match s {
            "vm" => Some(Flavor::Vm),
            "docker" => Some(Flavor::Docker),
            "dpdk" => Some(Flavor::Dpdk),
            "native" => Some(Flavor::Native),
            _ => None,
        }
    }
}

/// What runs inside a VM for a given functional type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestAppKind {
    /// strongSwan in guest userspace (the paper's VM workload).
    IpsecUserspace,
    /// Generic transparent middlebox.
    L2Forward,
    /// Diagnostics bounce.
    Reflector,
}

/// How to realize an NF in a specific technology — the repository entry
/// the resolver picks from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlavorSpec {
    /// A VM flavor.
    Vm {
        /// Disk image name (must exist in the hypervisor store).
        image: String,
        /// vCPUs.
        vcpus: u32,
        /// Guest RAM in MB.
        mem_mb: u64,
        /// Guest workload.
        app: GuestAppKind,
    },
    /// A Docker flavor.
    Docker {
        /// Image repository name.
        image: String,
        /// Image tag.
        tag: String,
        /// Entrypoint RSS in bytes.
        process_rss: u64,
    },
    /// A DPDK process flavor.
    Dpdk {
        /// Dedicated cores (each pins one).
        cores: u32,
        /// Hugepage memory in MB.
        hugepages_mb: u64,
    },
    /// A native flavor (details come from the NNF catalogue).
    Native,
}

impl FlavorSpec {
    /// The technology of this spec.
    pub fn flavor(&self) -> Flavor {
        match self {
            FlavorSpec::Vm { .. } => Flavor::Vm,
            FlavorSpec::Docker { .. } => Flavor::Docker,
            FlavorSpec::Dpdk { .. } => Flavor::Dpdk,
            FlavorSpec::Native => Flavor::Native,
        }
    }
}

/// Instance lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    /// Created, not started.
    Created,
    /// Running.
    Running,
    /// Stopped.
    Stopped,
}

/// Result of delivering one packet to an instance port.
#[derive(Debug, Default)]
pub struct IoOutcome {
    /// Packets emitted on instance ports, in order.
    pub outputs: Vec<(u32, Packet)>,
    /// Virtual time charged.
    pub cost: Cost,
}

/// Compute-layer failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComputeError {
    /// No such instance.
    NoSuchInstance(u64),
    /// The requested technology cannot realize this NF.
    Unsupported(String),
    /// The underlying substrate failed.
    Substrate(String),
    /// Lifecycle misuse.
    BadState(&'static str),
    /// The NNF catalogue does not offer this functional type.
    NoSuchNnf(String),
    /// Single-instance NNF already in use and not sharable.
    NnfBusy(String),
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::NoSuchInstance(i) => write!(f, "no such instance nf{i}"),
            ComputeError::Unsupported(s) => write!(f, "unsupported: {s}"),
            ComputeError::Substrate(s) => write!(f, "substrate error: {s}"),
            ComputeError::BadState(s) => write!(f, "lifecycle misuse: {s}"),
            ComputeError::NoSuchNnf(s) => write!(f, "no native implementation of '{s}'"),
            ComputeError::NnfBusy(s) => write!(f, "NNF '{s}' already in use and not sharable"),
        }
    }
}

impl std::error::Error for ComputeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_parse_display_roundtrip() {
        for f in [Flavor::Vm, Flavor::Docker, Flavor::Dpdk, Flavor::Native] {
            assert_eq!(Flavor::parse(&f.to_string()), Some(f));
        }
        assert_eq!(Flavor::parse("unikernel"), None);
    }

    #[test]
    fn spec_flavor_mapping() {
        assert_eq!(FlavorSpec::Native.flavor(), Flavor::Native);
        assert_eq!(
            FlavorSpec::Dpdk {
                cores: 1,
                hugepages_mb: 64
            }
            .flavor(),
            Flavor::Dpdk
        );
    }
}
