//! Layered container images with content-addressed storage.

use std::collections::{BTreeMap, HashMap};

/// One image layer: a content digest plus its size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Content digest (any stable string; registries use sha256 hex).
    pub digest: String,
    /// Layer size in bytes.
    pub size: u64,
}

impl Layer {
    /// Convenience constructor.
    pub fn new(digest: &str, size: u64) -> Self {
        Layer {
            digest: digest.to_string(),
            size,
        }
    }
}

/// An image: an ordered list of layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Repository name, e.g. `"strongswan"`.
    pub name: String,
    /// Tag, e.g. `"latest"`.
    pub tag: String,
    /// Layers, base first.
    pub layers: Vec<Layer>,
}

impl Image {
    /// Total (un-deduplicated) size of the image.
    pub fn virtual_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }

    /// `name:tag`.
    pub fn reference(&self) -> String {
        format!("{}:{}", self.name, self.tag)
    }
}

/// A remote registry: a catalog images can be pulled from.
#[derive(Debug, Default)]
pub struct Registry {
    images: BTreeMap<String, Image>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish an image.
    pub fn push(&mut self, image: Image) {
        self.images.insert(image.reference(), image);
    }

    /// Fetch an image manifest.
    pub fn manifest(&self, name: &str, tag: &str) -> Option<&Image> {
        self.images.get(&format!("{name}:{tag}"))
    }
}

/// Local content-addressed layer store + image catalog.
#[derive(Debug, Default)]
pub struct ImageStore {
    /// digest → (size, refcount).
    layers: HashMap<String, (u64, u32)>,
    images: BTreeMap<String, Image>,
}

impl ImageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pull an image from a registry. Layers already present locally are
    /// shared, not duplicated. Returns the number of bytes actually
    /// downloaded (new layers only).
    pub fn pull(&mut self, registry: &Registry, name: &str, tag: &str) -> Option<u64> {
        let manifest = registry.manifest(name, tag)?.clone();
        if self.images.contains_key(&manifest.reference()) {
            return Some(0);
        }
        let mut downloaded = 0;
        for layer in &manifest.layers {
            match self.layers.get_mut(&layer.digest) {
                Some((_, rc)) => *rc += 1,
                None => {
                    self.layers.insert(layer.digest.clone(), (layer.size, 1));
                    downloaded += layer.size;
                }
            }
        }
        self.images.insert(manifest.reference(), manifest);
        Some(downloaded)
    }

    /// Remove an image; layers are freed when their refcount drops to 0.
    /// Returns bytes reclaimed.
    pub fn remove(&mut self, name: &str, tag: &str) -> u64 {
        let Some(image) = self.images.remove(&format!("{name}:{tag}")) else {
            return 0;
        };
        let mut reclaimed = 0;
        for layer in &image.layers {
            if let Some((size, rc)) = self.layers.get_mut(&layer.digest) {
                *rc -= 1;
                if *rc == 0 {
                    reclaimed += *size;
                    self.layers.remove(&layer.digest);
                }
            }
        }
        reclaimed
    }

    /// A locally available image.
    pub fn image(&self, name: &str, tag: &str) -> Option<&Image> {
        self.images.get(&format!("{name}:{tag}"))
    }

    /// Bytes of unique layers on disk — this is the number the paper's
    /// "image size" column reports for Docker.
    pub fn disk_usage(&self) -> u64 {
        self.layers.values().map(|(size, _)| size).sum()
    }

    /// The on-disk footprint attributable to one image (its share of
    /// unique bytes — full layer size counted once per image referencing
    /// it would double count; this reports the image's virtual size).
    pub fn image_virtual_size(&self, name: &str, tag: &str) -> Option<u64> {
        self.image(name, tag).map(|i| i.virtual_size())
    }

    /// Number of locally stored images.
    pub fn image_count(&self) -> usize {
        self.images.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_sim::mem::mb;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.push(Image {
            name: "strongswan".into(),
            tag: "latest".into(),
            layers: vec![
                Layer::new("sha256:base-os", mb(235)),
                Layer::new("sha256:swan-pkg", mb(5)),
            ],
        });
        r.push(Image {
            name: "firewall".into(),
            tag: "latest".into(),
            layers: vec![
                Layer::new("sha256:base-os", mb(235)),
                Layer::new("sha256:iptables-pkg", mb(2)),
            ],
        });
        r
    }

    #[test]
    fn pull_and_sizes() {
        let r = registry();
        let mut s = ImageStore::new();
        let dl = s.pull(&r, "strongswan", "latest").unwrap();
        assert_eq!(dl, mb(240));
        assert_eq!(s.disk_usage(), mb(240));
        assert_eq!(s.image_virtual_size("strongswan", "latest"), Some(mb(240)));
    }

    #[test]
    fn shared_base_layer_dedup() {
        let r = registry();
        let mut s = ImageStore::new();
        s.pull(&r, "strongswan", "latest").unwrap();
        let dl2 = s.pull(&r, "firewall", "latest").unwrap();
        assert_eq!(dl2, mb(2), "base layer must not be re-downloaded");
        assert_eq!(s.disk_usage(), mb(242));
        assert_eq!(s.image_count(), 2);
    }

    #[test]
    fn repull_is_noop() {
        let r = registry();
        let mut s = ImageStore::new();
        s.pull(&r, "strongswan", "latest").unwrap();
        assert_eq!(s.pull(&r, "strongswan", "latest"), Some(0));
        assert_eq!(s.disk_usage(), mb(240));
    }

    #[test]
    fn remove_respects_refcounts() {
        let r = registry();
        let mut s = ImageStore::new();
        s.pull(&r, "strongswan", "latest").unwrap();
        s.pull(&r, "firewall", "latest").unwrap();
        // Removing strongswan only reclaims its unique layer.
        assert_eq!(s.remove("strongswan", "latest"), mb(5));
        assert_eq!(s.disk_usage(), mb(237));
        // Removing the last user of the base reclaims it too.
        assert_eq!(s.remove("firewall", "latest"), mb(237));
        assert_eq!(s.disk_usage(), 0);
    }

    #[test]
    fn missing_image_errors() {
        let r = registry();
        let mut s = ImageStore::new();
        assert!(s.pull(&r, "nope", "latest").is_none());
        assert_eq!(s.remove("nope", "latest"), 0);
    }
}
