//! # un-container — the Docker-like container substrate
//!
//! Models the two properties of the Docker flavor that the paper's
//! Table 1 turns on:
//!
//! * **Data plane**: containers share the *host* kernel. Packet
//!   processing for a containerized NF happens in `un-linux` namespaces
//!   exactly like a native NF — which is why the paper measures Docker
//!   and native throughput as near-identical (1095 vs 1094 Mbps).
//! * **Footprint**: a container needs a layered base image (hundreds of
//!   MB for a distro base) and a per-container runtime shim, which is
//!   why Docker loses to native on RAM (24.2 vs 19.4 MB) and image size
//!   (240 vs 5 MB).
//!
//! [`image`] implements content-addressed layered images with shared-
//! layer deduplication (pull twice, store once); [`runtime`] implements
//! the container lifecycle with memory accounting into a
//! [`un_sim::MemLedger`].

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod image;
pub mod runtime;

pub use image::{Image, ImageStore, Layer, Registry};
pub use runtime::{Container, ContainerId, ContainerRuntime, ContainerState, RuntimeError};
