//! Container lifecycle and memory accounting.
//!
//! A container is a process (or processes) in dedicated namespaces on
//! the *host* kernel, plus a runtime shim. The data path of a
//! containerized NF therefore lives entirely in `un-linux` — the
//! runtime's job here is lifecycle + footprint.

use std::collections::BTreeMap;
use std::fmt;

use un_linux::NsId;
use un_sim::mem::mb_f;
use un_sim::{AccountId, MemLedger};

use crate::image::ImageStore;

/// Container handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u32);

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerState {
    /// Created but not started.
    Created,
    /// Running.
    Running,
    /// Stopped (resources released except image).
    Stopped,
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Image not present in the local store.
    NoSuchImage(String),
    /// Container id unknown.
    NoSuchContainer(u32),
    /// Invalid state transition.
    BadState {
        /// Attempted operation.
        op: &'static str,
        /// Current state.
        state: ContainerState,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NoSuchImage(i) => write!(f, "no such image {i}"),
            RuntimeError::NoSuchContainer(c) => write!(f, "no such container {c}"),
            RuntimeError::BadState { op, state } => {
                write!(f, "cannot {op} a container in state {state:?}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// One container.
#[derive(Debug)]
pub struct Container {
    /// Handle.
    pub id: ContainerId,
    /// Name.
    pub name: String,
    /// Image reference (`name:tag`).
    pub image: String,
    /// Network namespace on the host kernel.
    pub netns: NsId,
    /// Lifecycle state.
    pub state: ContainerState,
    /// Memory account (shim + process RSS).
    pub account: AccountId,
    /// Entrypoint process RSS in bytes while running.
    pub process_rss: u64,
}

/// Per-container runtime shim overhead (containerd-shim + pause-ish),
/// in MB. Part of why Docker's RAM column exceeds native's in Table 1.
pub const SHIM_OVERHEAD_MB: f64 = 4.8;

/// The container engine.
#[derive(Debug, Default)]
pub struct ContainerRuntime {
    /// Local image store.
    pub store: ImageStore,
    containers: BTreeMap<u32, Container>,
    next_id: u32,
}

impl ContainerRuntime {
    /// A fresh engine with an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a container from a locally available image.
    ///
    /// `netns` is the (already created) host network namespace the
    /// container joins; `process_rss` is the entrypoint's runtime RSS.
    /// Memory is recorded under a child of `parent_account`.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        &mut self,
        name: &str,
        image: &str,
        tag: &str,
        netns: NsId,
        process_rss: u64,
        ledger: &mut MemLedger,
        parent_account: AccountId,
    ) -> Result<ContainerId, RuntimeError> {
        if self.store.image(image, tag).is_none() {
            return Err(RuntimeError::NoSuchImage(format!("{image}:{tag}")));
        }
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        let account = ledger.create_account(&format!("container:{name}"), Some(parent_account));
        self.containers.insert(
            id.0,
            Container {
                id,
                name: name.to_string(),
                image: format!("{image}:{tag}"),
                netns,
                state: ContainerState::Created,
                account,
                process_rss,
            },
        );
        Ok(id)
    }

    /// Start a created/stopped container: allocates shim + process RSS.
    pub fn start(&mut self, id: ContainerId, ledger: &mut MemLedger) -> Result<(), RuntimeError> {
        let c = self
            .containers
            .get_mut(&id.0)
            .ok_or(RuntimeError::NoSuchContainer(id.0))?;
        match c.state {
            ContainerState::Created | ContainerState::Stopped => {
                ledger
                    .alloc(c.account, "runtime-shim", mb_f(SHIM_OVERHEAD_MB))
                    .expect("account alive");
                ledger
                    .alloc(c.account, "process-rss", c.process_rss)
                    .expect("account alive");
                c.state = ContainerState::Running;
                Ok(())
            }
            s => Err(RuntimeError::BadState {
                op: "start",
                state: s,
            }),
        }
    }

    /// Stop a running container: releases its runtime memory.
    pub fn stop(&mut self, id: ContainerId, ledger: &mut MemLedger) -> Result<(), RuntimeError> {
        let c = self
            .containers
            .get_mut(&id.0)
            .ok_or(RuntimeError::NoSuchContainer(id.0))?;
        match c.state {
            ContainerState::Running => {
                ledger
                    .free(c.account, "runtime-shim", mb_f(SHIM_OVERHEAD_MB))
                    .expect("allocated at start");
                ledger
                    .free(c.account, "process-rss", c.process_rss)
                    .expect("allocated at start");
                c.state = ContainerState::Stopped;
                Ok(())
            }
            s => Err(RuntimeError::BadState {
                op: "stop",
                state: s,
            }),
        }
    }

    /// Remove a stopped container.
    pub fn remove(&mut self, id: ContainerId) -> Result<Container, RuntimeError> {
        match self.containers.get(&id.0) {
            None => Err(RuntimeError::NoSuchContainer(id.0)),
            Some(c) if c.state == ContainerState::Running => Err(RuntimeError::BadState {
                op: "remove",
                state: ContainerState::Running,
            }),
            Some(_) => Ok(self.containers.remove(&id.0).unwrap()),
        }
    }

    /// Look up a container.
    pub fn get(&self, id: ContainerId) -> Option<&Container> {
        self.containers.get(&id.0)
    }

    /// Iterate containers.
    pub fn iter(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Number of containers (any state).
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// True if no containers exist.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{Image, Layer, Registry};
    use un_sim::mem::mb;

    fn engine_with_image() -> ContainerRuntime {
        let mut registry = Registry::new();
        registry.push(Image {
            name: "strongswan".into(),
            tag: "latest".into(),
            layers: vec![
                Layer::new("sha256:base", mb(235)),
                Layer::new("sha256:swan", mb(5)),
            ],
        });
        let mut rt = ContainerRuntime::new();
        rt.store.pull(&registry, "strongswan", "latest").unwrap();
        rt
    }

    #[test]
    fn lifecycle_and_memory() {
        let mut rt = engine_with_image();
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);

        let id = rt
            .create(
                "ipsec-1",
                "strongswan",
                "latest",
                NsId(3),
                mb_f(19.4),
                &mut ledger,
                node,
            )
            .unwrap();
        assert_eq!(ledger.usage(node), 0, "creation allocates nothing yet");

        rt.start(id, &mut ledger).unwrap();
        let ram = ledger.usage(node);
        // 19.4 process + 4.8 shim = 24.2 MB — the paper's Docker RAM cell.
        assert_eq!(ram, mb_f(19.4) + mb_f(4.8));
        assert_eq!(rt.get(id).unwrap().state, ContainerState::Running);

        rt.stop(id, &mut ledger).unwrap();
        assert_eq!(ledger.usage(node), 0);
        rt.remove(id).unwrap();
        assert!(rt.is_empty());
    }

    #[test]
    fn create_requires_local_image() {
        let mut rt = ContainerRuntime::new();
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let err = rt
            .create("x", "ghost", "latest", NsId(0), 0, &mut ledger, node)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::NoSuchImage(_)));
    }

    #[test]
    fn state_machine_guards() {
        let mut rt = engine_with_image();
        let mut ledger = MemLedger::new();
        let node = ledger.create_account("node", None);
        let id = rt
            .create(
                "c",
                "strongswan",
                "latest",
                NsId(0),
                mb(1),
                &mut ledger,
                node,
            )
            .unwrap();
        // stop before start
        assert!(matches!(
            rt.stop(id, &mut ledger),
            Err(RuntimeError::BadState { op: "stop", .. })
        ));
        rt.start(id, &mut ledger).unwrap();
        // double start
        assert!(matches!(
            rt.start(id, &mut ledger),
            Err(RuntimeError::BadState { op: "start", .. })
        ));
        // remove while running
        assert!(matches!(
            rt.remove(id),
            Err(RuntimeError::BadState { op: "remove", .. })
        ));
        rt.stop(id, &mut ledger).unwrap();
        // restart works
        rt.start(id, &mut ledger).unwrap();
        rt.stop(id, &mut ledger).unwrap();
        rt.remove(id).unwrap();
        assert!(matches!(
            rt.remove(id),
            Err(RuntimeError::NoSuchContainer(_))
        ));
    }
}
