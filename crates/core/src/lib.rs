//! # un-core — the local orchestrator (the paper's compute node)
//!
//! This crate assembles the whole compute node of Figure 1:
//!
//! ```text
//!                   Local Orchestrator  ←  NF-FG (REST / API)
//!        ┌─────────────┬────────────────┬──────────────┐
//!   VNF repository   VNF scheduler   Traffic steering   Resource mgr
//!   (resolver)       (NNF vs VNF)    (LSI-0 + LSIs)    (admission)
//!        └─────────────┴───────┬────────┴──────────────┘
//!                       Compute manager
//!        VM drv │ Docker drv │ DPDK drv │ **Native drv**
//! ```
//!
//! * [`repository`] — NF templates with their per-technology flavors
//!   (VM image / Docker image / DPDK process / native), plus the node
//!   provisioning helpers that load the standard images.
//! * [`placement`] — the paper's placement policy: prefer an NNF when
//!   the node offers one and it is free / multi-instance / sharable;
//!   fall back to Docker, then VM; honor explicit flavor hints.
//! * [`node`] — [`node::UniversalNode`]: the CPE kernel (`un-linux`),
//!   the compute manager, LSI-0 and per-graph LSIs, virtual links, NF-FG
//!   deploy / update / undeploy, the synchronous packet fabric, resource
//!   admission, and the Figure 1 architecture description.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod node;
pub mod placement;
pub mod repository;

pub use node::{
    graph_cookie, rule_cookie, DeployError, DeployReport, Name, NodeDescription, NodeIo, PortId,
    UniversalNode,
};
pub use placement::{decide, Decision};
pub use repository::{NfTemplate, VnfRepository};
