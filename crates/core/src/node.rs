//! The Universal Node: orchestrator + steering + fabric.
//!
//! One [`UniversalNode`] is the whole compute node of Figure 1. It owns
//! the CPE kernel ([`un_linux::Host`]), the compute manager with its
//! four drivers, the base LSI (LSI-0) and one LSI per deployed NF-FG,
//! and the virtual links between them. Deploying an NF-FG:
//!
//! 1. validate the graph;
//! 2. for every NF, run the placement policy (NNF vs VNF) and create /
//!    reuse an instance through the compute manager;
//! 3. create the per-graph LSI, one virtual link per endpoint (plus one
//!    per *shared* NNF), and LSI-0 classification rules;
//! 4. compile the graph's big-switch rules into LSI flow entries —
//!    including the VLAN push/pop translation for sharable NNFs behind
//!    the adaptation layer;
//! 5. admission-check memory; roll everything back on failure.
//!
//! The data plane is a synchronous work-queue fabric: a packet injected
//! on a physical port traverses LSI-0, virtual links, graph LSIs and NF
//! instances until it is emitted or dropped, accumulating virtual-time
//! cost along the way.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use un_compute::{ComputeError, ComputeManager, Flavor, FlavorSpec, InstanceId, NodeEnv};
use un_linux::Host;
use un_nffg::{validate, EndpointKind, NfFg, PortRef, RuleAction, TrafficMatch};
use un_nnf::GraphBinding;
use un_obs::{ClassifierStage, DropReason, HopKind, TraceSink};
use un_packet::ethernet::MacAddr;
use un_packet::{Ipv4Cidr, Packet};
use un_sim::mem::format_bytes;
use un_sim::{AccountId, Cost, CostModel, MemLedger, SimTime, TraceLog};
use un_switch::{
    Backend, FlowAction, FlowEntry, FlowMatch, LogicalSwitch, LookupPath, PipelineStep, PortNo,
    ProcessOptions, VlanSpec,
};

use crate::placement::{decide, Decision, NativeStatus};
use crate::repository::{provision_standard_images, VnfRepository};

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// Static validation failed.
    Invalid(Vec<un_nffg::ValidationError>),
    /// A graph with this id is already deployed.
    AlreadyDeployed(String),
    /// No graph with this id.
    NoSuchGraph(String),
    /// The referenced physical interface does not exist on the node.
    NoSuchInterface(String),
    /// Another deployed graph already owns this traffic.
    EndpointConflict(String),
    /// The repository has no template for a functional type.
    NoTemplate(String),
    /// The compute layer failed.
    Compute(String),
    /// Admission control: node memory exhausted.
    InsufficientMemory {
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        capacity: u64,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Invalid(errs) => write!(f, "invalid NF-FG: {} problems", errs.len()),
            DeployError::AlreadyDeployed(g) => write!(f, "graph '{g}' already deployed"),
            DeployError::NoSuchGraph(g) => write!(f, "no such graph '{g}'"),
            DeployError::NoSuchInterface(i) => write!(f, "no such interface '{i}'"),
            DeployError::EndpointConflict(e) => write!(f, "endpoint conflict on '{e}'"),
            DeployError::NoTemplate(t) => write!(f, "no template for '{t}'"),
            DeployError::Compute(e) => write!(f, "compute error: {e}"),
            DeployError::InsufficientMemory { needed, capacity } => {
                write!(f, "insufficient memory: need {needed}, capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

impl From<ComputeError> for DeployError {
    fn from(e: ComputeError) -> Self {
        DeployError::Compute(e.to_string())
    }
}

/// What `deploy` reports back (the REST layer serializes this).
#[derive(Debug, Clone)]
pub struct DeployReport {
    /// Graph id.
    pub graph: String,
    /// Per-NF placements: (nf id, flavor, instance, shared?).
    pub placements: Vec<(String, Flavor, InstanceId, bool)>,
    /// Flow entries installed across LSIs.
    pub flow_entries: usize,
}

/// A cheaply-cloneable interned string for hot-path identifiers
/// (physical port names, node names): cloning bumps an `Arc`, so the
/// data plane never copies name bytes per frame.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Intern a string.
    pub fn new(s: &str) -> Self {
        Name(Arc::from(s))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for Name {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl std::borrow::Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == &*other.0
    }
}

/// Opaque handle to a physical port, resolved from its name once per
/// batch instead of one string lookup per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(PortNo);

/// Result of injecting packets into the node.
#[derive(Debug, Default)]
pub struct NodeIo {
    /// Frames leaving the node: (physical port name, packet).
    pub emitted: Vec<(Name, Packet)>,
    /// Virtual time consumed.
    pub cost: Cost,
}

/// Per-frame hop budget inside the node fabric: every virtual-link or
/// NF crossing decrements it, so one looping frame dies alone instead
/// of starving the rest of its batch.
const FABRIC_TTL: u32 = 256;

/// Where a burst currently is inside the fabric (ordered so the work
/// list drains LSI-0 buckets before graph buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LocKey {
    L0(u32),
    Graph(u32, u32), // (graph slot, graph-LSI port)
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum VlinkKey {
    Endpoint(String),
    SharedNf(String),
}

#[derive(Debug, Clone)]
enum L0Port {
    Physical(Name),
    Vlink { graph_slot: u32, peer: PortNo },
    SharedAttach(InstanceId),
}

#[derive(Debug, Clone)]
enum GPort {
    Vlink { l0_port: PortNo },
    Nf(InstanceId, u32),
}

#[derive(Debug, Clone)]
struct PlacedNf {
    instance: InstanceId,
    flavor: Flavor,
    shared: Option<GraphBinding>,
    /// True if this graph created the instance (owns its lifecycle).
    owned: bool,
}

struct DeployedGraph {
    nffg: NfFg,
    lsi: LogicalSwitch,
    slot: u32,
    ports: BTreeMap<PortNo, GPort>,
    vlinks: BTreeMap<VlinkKey, PortNo>, // graph-side port
    rev_nf: BTreeMap<(InstanceId, u32), PortNo>,
    nfs: BTreeMap<String, PlacedNf>,
    next_port: u32,
}

struct SharedInfo {
    instance: InstanceId,
    attach_port: PortNo,
    graphs: Vec<String>,
}

/// Serializable node self-description ("node description, capabilities
/// and resources" in Figure 1).
#[derive(Debug, Clone)]
pub struct NodeDescription {
    /// Node name.
    pub name: String,
    /// Supported flavors.
    pub flavors: Vec<String>,
    /// Native NFs offered: (type, sharable, multi-instance).
    pub nnfs: Vec<(String, bool, bool)>,
    /// Deployed graph ids.
    pub graphs: Vec<String>,
    /// Running instances: (name, flavor, functional type).
    pub instances: Vec<(String, String, String)>,
    /// Memory in use (bytes).
    pub memory_used: u64,
    /// Memory capacity (bytes).
    pub memory_capacity: u64,
    /// Aggregated flow fast-path hits (microflow cache) across LSIs.
    pub flow_cache_hits: u64,
    /// Aggregated flow fast-path misses across LSIs.
    pub flow_cache_misses: u64,
}

impl NodeDescription {
    fn json_value(&self) -> un_nffg::Json {
        use un_nffg::Json;
        Json::obj()
            .set("name", self.name.as_str())
            .set(
                "flavors",
                Json::Arr(
                    self.flavors
                        .iter()
                        .map(|f| Json::from(f.as_str()))
                        .collect(),
                ),
            )
            .set(
                "nnfs",
                Json::Arr(
                    self.nnfs
                        .iter()
                        .map(|(ft, sharable, multi)| {
                            Json::Arr(vec![
                                Json::from(ft.as_str()),
                                Json::from(*sharable),
                                Json::from(*multi),
                            ])
                        })
                        .collect(),
                ),
            )
            .set(
                "graphs",
                Json::Arr(self.graphs.iter().map(|g| Json::from(g.as_str())).collect()),
            )
            .set(
                "instances",
                Json::Arr(
                    self.instances
                        .iter()
                        .map(|(name, flavor, ft)| {
                            Json::Arr(vec![
                                Json::from(name.as_str()),
                                Json::from(flavor.as_str()),
                                Json::from(ft.as_str()),
                            ])
                        })
                        .collect(),
                ),
            )
            .set("memory_used", self.memory_used)
            .set("memory_capacity", self.memory_capacity)
            .set("flow_cache_hits", self.flow_cache_hits)
            .set("flow_cache_misses", self.flow_cache_misses)
    }

    /// Compact JSON rendering (the REST `/node` document).
    pub fn to_json(&self) -> String {
        self.json_value().render()
    }

    /// Pretty JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        self.json_value().render_pretty()
    }
}

/// The compute node.
pub struct UniversalNode {
    /// Node name.
    pub name: String,
    /// The CPE kernel.
    pub host: Host,
    /// Memory accounting.
    pub ledger: MemLedger,
    node_account: AccountId,
    /// Cost model (shared by every component).
    pub costs: CostModel,
    /// The compute manager.
    pub compute: ComputeManager,
    /// The VNF repository.
    pub repository: VnfRepository,
    lsi0: LogicalSwitch,
    l0_ports: BTreeMap<PortNo, L0Port>,
    physical: BTreeMap<String, PortNo>,
    next_l0_port: u32,
    graphs: BTreeMap<String, DeployedGraph>,
    slots: Vec<Option<String>>,           // slot index → graph id
    shared: BTreeMap<String, SharedInfo>, // functional type → info
    internal_groups: BTreeMap<String, Vec<PortNo>>, // group → lsi0 vlink ports
    next_mark: u32,
    next_dpid: u64,
    clock: SimTime,
    /// Node-level trace/counters.
    pub trace: TraceLog,
    mem_capacity: u64,
    classifier_mode: un_switch::ClassifierMode,
    /// Observability handle; `None` when disabled so the hot path pays
    /// only `Option` checks.
    obs: Option<Arc<un_obs::Obs>>,
    /// Cached per-instance deliver-latency histogram handles (avoids
    /// registry lookups inside the fabric loop).
    obs_nf_hist: BTreeMap<InstanceId, Arc<un_obs::Histogram>>,
    /// Cached burst-size histogram handle.
    obs_burst_hist: Option<Arc<un_obs::Histogram>>,
}

fn fnv1a(data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The cookie stamped on a compiled graph rule (`<graph>/<rule>`), the
/// contract between the orchestrator's install receipts and anything
/// auditing the tables (rule-level updates and the static verifier key
/// on it).
pub fn rule_cookie(graph_id: &str, rule_id: &str) -> u64 {
    fnv1a(&format!("{graph_id}/{rule_id}"))
}

/// The cookie stamped on a graph's LSI-0 plumbing rules (endpoint
/// classification, internal groups, shared-NNF vlinks).
pub fn graph_cookie(graph_id: &str) -> u64 {
    fnv1a(graph_id)
}

/// Translate an LSI pipeline's recorded steps into classify hops on an
/// active flight-recorder sink.
fn record_classify_hops(f: &TraceSink, node: &str, lsi: &str, steps: &[PipelineStep]) {
    for s in steps {
        let (stage, cookie, priority) = match &s.hit {
            Some(h) => (
                match h.path {
                    LookupPath::CacheHit => ClassifierStage::Microflow,
                    LookupPath::ExactHit => ClassifierStage::Exact,
                    LookupPath::MegaflowHit => ClassifierStage::Megaflow,
                    // `LookupPath::Miss` on a *hit* is the residual
                    // wildcard/linear scan, not a table miss.
                    LookupPath::Miss => ClassifierStage::Wildcard,
                },
                Some(h.cookie),
                Some(h.priority),
            ),
            None => (ClassifierStage::Miss, None, None),
        };
        f.hop(
            node,
            HopKind::Classify {
                lsi: lsi.to_string(),
                table: s.table,
                stage,
                cookie,
                priority,
                outputs: s.outputs,
            },
        );
    }
}

impl UniversalNode {
    /// A node with the standard repository, catalogue and images, a
    /// given memory capacity, and LSI-0 using the OvS-like backend.
    pub fn new(name: &str, mem_capacity: u64) -> Self {
        let mut ledger = MemLedger::new();
        let node_account = ledger.create_account(&format!("node:{name}"), None);
        let mut compute = ComputeManager::new();
        provision_standard_images(&mut compute);
        UniversalNode {
            name: name.to_string(),
            host: Host::new(name, CostModel::default()),
            ledger,
            node_account,
            costs: CostModel::default(),
            compute,
            repository: VnfRepository::standard(),
            lsi0: LogicalSwitch::new("LSI-0", 1, Backend::SingleTableCached),
            l0_ports: BTreeMap::new(),
            physical: BTreeMap::new(),
            next_l0_port: 1,
            graphs: BTreeMap::new(),
            slots: Vec::new(),
            shared: BTreeMap::new(),
            internal_groups: BTreeMap::new(),
            next_mark: 1,
            next_dpid: 2,
            clock: SimTime::ZERO,
            trace: TraceLog::new(16_384),
            mem_capacity,
            classifier_mode: un_switch::ClassifierMode::default(),
            obs: None,
            obs_nf_hist: BTreeMap::new(),
            obs_burst_hist: None,
        }
    }

    /// Attach an observability handle. A disabled handle is discarded so
    /// the fabric loop keeps its zero-instrumentation fast path.
    pub fn set_obs(&mut self, obs: Arc<un_obs::Obs>) {
        self.obs_nf_hist.clear();
        if obs.is_enabled() {
            self.obs_burst_hist = Some(obs.registry().histogram(
                "un_node_burst_frames",
                &[("node", &self.name)],
                &un_obs::Histogram::size_bounds(),
            ));
            self.obs = Some(obs);
        } else {
            self.obs_burst_hist = None;
            self.obs = None;
        }
    }

    /// Record one NF deliver latency into the per-(node, nf-type)
    /// histogram, resolving and caching the series handle on first use.
    fn record_nf_latency(&mut self, inst: InstanceId, ns: u64) {
        let Some(obs) = &self.obs else { return };
        let hist = self.obs_nf_hist.entry(inst).or_insert_with(|| {
            let nf = self
                .compute
                .functional_type(inst)
                .unwrap_or("unknown")
                .to_string();
            obs.registry().histogram(
                "un_nf_deliver_ns",
                &[("node", &self.name), ("nf", &nf)],
                &un_obs::Histogram::latency_bounds(),
            )
        });
        hist.record(ns);
    }

    /// Register a physical interface (e.g. `"eth0"`) as an LSI-0 port.
    pub fn add_physical_port(&mut self, name: &str) -> PortNo {
        let port = PortNo(self.next_l0_port);
        self.next_l0_port += 1;
        self.lsi0
            .add_port(port, name)
            .expect("fresh port number cannot collide");
        self.l0_ports
            .insert(port, L0Port::Physical(Name::new(name)));
        self.physical.insert(name.to_string(), port);
        port
    }

    /// Resolve a physical port name to its interned id (for the batch
    /// data-plane API).
    pub fn port_id(&self, name: &str) -> Option<PortId> {
        self.physical.get(name).copied().map(PortId)
    }

    /// Switch every LSI's classifier pipeline — existing LSIs and any
    /// created by later deploys. `ClassifierMode::Linear` reproduces the
    /// pre-optimization scan for baseline benchmarking.
    pub fn set_classifier_mode(&mut self, mode: un_switch::ClassifierMode) {
        self.classifier_mode = mode;
        self.lsi0.set_classifier_mode(mode);
        for g in self.graphs.values_mut() {
            g.lsi.set_classifier_mode(mode);
        }
    }

    /// Aggregated flow-table fast-path counters across LSI-0 and every
    /// graph LSI (exported through [`NodeDescription`] and REST).
    pub fn flow_cache_stats(&self) -> un_switch::TableStats {
        let mut stats = self.lsi0.cache_stats();
        for g in self.graphs.values() {
            stats.merge(&g.lsi.cache_stats());
        }
        stats
    }

    /// Total installed flow entries across LSI-0 and every graph LSI
    /// (table occupancy, exported as a gauge through `/metrics`).
    pub fn flow_table_occupancy(&self) -> usize {
        self.lsi0.flow_count()
            + self
                .graphs
                .values()
                .map(|g| g.lsi.flow_count())
                .sum::<usize>()
    }

    /// Advance the node clock (stamps traces, host time).
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
        self.host.set_time(now);
    }

    /// Current virtual time.
    pub fn time(&self) -> SimTime {
        self.clock
    }

    /// Deployed graph ids.
    pub fn graph_ids(&self) -> Vec<String> {
        self.graphs.keys().cloned().collect()
    }

    /// The stored NF-FG of a deployed graph.
    pub fn graph(&self, id: &str) -> Option<&NfFg> {
        self.graphs.get(id).map(|g| &g.nffg)
    }

    /// Instance placed for an NF of a deployed graph.
    pub fn instance_of(&self, graph: &str, nf: &str) -> Option<(InstanceId, Flavor)> {
        self.graphs
            .get(graph)
            .and_then(|g| g.nfs.get(nf))
            .map(|p| (p.instance, p.flavor))
    }

    /// RAM currently attributed to one NF of a graph.
    pub fn nf_ram_usage(&self, graph: &str, nf: &str) -> u64 {
        self.instance_of(graph, nf)
            .map(|(id, _)| self.compute.ram_usage(&self.ledger, id))
            .unwrap_or(0)
    }

    /// Image footprint of one NF of a graph.
    pub fn nf_image_footprint(&self, graph: &str, nf: &str) -> u64 {
        self.instance_of(graph, nf)
            .map(|(id, _)| self.compute.image_footprint(id))
            .unwrap_or(0)
    }

    /// Total memory in use on the node.
    pub fn memory_used(&self) -> u64 {
        self.ledger.usage(self.node_account)
    }

    /// Configured memory capacity.
    pub fn mem_capacity(&self) -> u64 {
        self.mem_capacity
    }

    /// Memory still available for admission.
    pub fn free_memory(&self) -> u64 {
        self.mem_capacity.saturating_sub(self.memory_used())
    }

    /// Names of the node's physical interfaces.
    pub fn physical_port_names(&self) -> Vec<String> {
        self.physical.keys().cloned().collect()
    }

    /// True if a physical interface with this name exists.
    pub fn has_physical_port(&self, name: &str) -> bool {
        self.physical.contains_key(name)
    }

    /// Functional types this node offers as native NFs.
    pub fn native_nnf_types(&self) -> Vec<String> {
        self.compute
            .native
            .catalog
            .iter()
            .map(|d| d.functional_type.to_string())
            .collect()
    }

    /// Functional types with a *shared* native instance currently
    /// running (joinable by further graphs).
    pub fn shared_nnf_types(&self) -> Vec<String> {
        self.shared.keys().cloned().collect()
    }

    /// Functional types whose catalog descriptor marks a single native
    /// instance *sharable* across graphs — the types this node could
    /// host a domain-shared instance of (whether or not one runs yet).
    pub fn sharable_nnf_types(&self) -> Vec<String> {
        self.compute
            .native
            .catalog
            .iter()
            .filter(|d| d.sharable)
            .map(|d| d.functional_type.to_string())
            .collect()
    }

    /// Graph ids currently bound to the running shared instance of a
    /// functional type (empty when no shared instance runs). The
    /// domain's lease-conservation invariant cross-checks its registry
    /// against this node-level truth.
    pub fn shared_nnf_graphs(&self, functional_type: &str) -> Vec<String> {
        self.shared
            .get(functional_type)
            .map(|info| info.graphs.clone())
            .unwrap_or_default()
    }

    /// Rough RAM a new NF of this type would consume, for fleet-level
    /// bin-packing. Mirrors the placement policy: a joinable shared
    /// instance costs ~nothing extra, native instances are cheap, VNF
    /// flavors carry their guest/runtime footprints. Real admission
    /// still happens at deploy time; this is only a scheduler estimate.
    pub fn estimate_nf_ram(&self, functional_type: &str, flavor_hint: Option<&str>) -> Option<u64> {
        use un_sim::mem::mb;
        struct Status<'a>(&'a BTreeMap<String, SharedInfo>, &'a ComputeManager);
        impl NativeStatus for Status<'_> {
            fn existing(&self, ft: &str) -> Option<(InstanceId, bool)> {
                if let Some(info) = self.0.get(ft) {
                    return Some((info.instance, true));
                }
                self.1
                    .native
                    .existing_instance(ft)
                    .map(|k| (InstanceId(k), false))
            }
        }
        let template = self.repository.resolve(functional_type)?;
        let decision = decide(
            template,
            flavor_hint,
            &self.compute.native.catalog,
            &Status(&self.shared, &self.compute),
        )
        .ok()?;
        Some(match decision {
            Decision::NativeShare(_) => 0,
            Decision::NativeNew | Decision::NativeNewShared => mb(24),
            Decision::Vnf(FlavorSpec::Vm { mem_mb, .. }) => mb(mem_mb) + mb(71),
            Decision::Vnf(FlavorSpec::Docker { process_rss, .. }) => process_rss + mb(25),
            Decision::Vnf(FlavorSpec::Dpdk { hugepages_mb, .. }) => mb(hugepages_mb),
            Decision::Vnf(FlavorSpec::Native) => mb(24),
        })
    }

    // ------------------------------------------------------------------
    // Deploy / undeploy / update
    // ------------------------------------------------------------------

    /// Deploy an NF-FG.
    pub fn deploy(&mut self, nffg: &NfFg) -> Result<DeployReport, DeployError> {
        let errs = validate(nffg);
        if !errs.is_empty() {
            return Err(DeployError::Invalid(errs));
        }
        if self.graphs.contains_key(&nffg.id) {
            return Err(DeployError::AlreadyDeployed(nffg.id.clone()));
        }
        // Endpoints must reference existing physical interfaces.
        for ep in &nffg.endpoints {
            match &ep.kind {
                EndpointKind::Interface { if_name } | EndpointKind::Vlan { if_name, .. } => {
                    if !self.physical.contains_key(if_name) {
                        return Err(DeployError::NoSuchInterface(if_name.clone()));
                    }
                }
                EndpointKind::Internal { .. } => {}
            }
        }

        let slot = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .unwrap_or_else(|| {
                self.slots.push(None);
                self.slots.len() - 1
            }) as u32;

        let dpid = self.next_dpid;
        self.next_dpid += 1;
        let mut graph = DeployedGraph {
            nffg: nffg.clone(),
            lsi: LogicalSwitch::new(
                &format!("LSI-{}", nffg.id),
                dpid,
                Backend::SingleTableCached,
            ),
            slot,
            ports: BTreeMap::new(),
            vlinks: BTreeMap::new(),
            rev_nf: BTreeMap::new(),
            nfs: BTreeMap::new(),
            next_port: 1,
        };
        graph.lsi.set_classifier_mode(self.classifier_mode);

        // Track created state for rollback.
        let mut created_instances: Vec<InstanceId> = Vec::new();
        let mut created_l0_ports: Vec<PortNo> = Vec::new();
        let result = self.deploy_inner(
            nffg,
            &mut graph,
            &mut created_instances,
            &mut created_l0_ports,
        );
        match result {
            Ok(report) => {
                self.slots[slot as usize] = Some(nffg.id.clone());
                self.graphs.insert(nffg.id.clone(), graph);
                self.trace.count("graphs_deployed", 1);
                Ok(report)
            }
            Err(e) => {
                // Roll back: instances, LSI-0 ports+rules, shared bindings.
                let cookie = fnv1a(&nffg.id);
                self.lsi0.remove_by_cookie(cookie);
                for p in created_l0_ports {
                    let _ = self.lsi0.remove_port(p);
                    self.l0_ports.remove(&p);
                }
                for (_, info) in self.shared.iter_mut() {
                    info.graphs.retain(|g| g != &nffg.id);
                }
                let mut env = NodeEnv {
                    host: &mut self.host,
                    ledger: &mut self.ledger,
                    costs: &self.costs,
                };
                for id in created_instances {
                    let _ = self.compute.stop(&mut env, id);
                    let _ = self.compute.destroy(&mut env, id);
                }
                self.shared.retain(|_, info| {
                    !info.graphs.is_empty() || {
                        // Drop owner-less shared instances created here.
                        true
                    }
                });
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn deploy_inner(
        &mut self,
        nffg: &NfFg,
        graph: &mut DeployedGraph,
        created_instances: &mut Vec<InstanceId>,
        created_l0_ports: &mut Vec<PortNo>,
    ) -> Result<DeployReport, DeployError> {
        let cookie = fnv1a(&nffg.id);
        let mut placements = Vec::new();

        // ---- NF placement + instantiation ----
        struct Status<'a>(&'a BTreeMap<String, SharedInfo>, &'a ComputeManager);
        impl NativeStatus for Status<'_> {
            fn existing(&self, ft: &str) -> Option<(InstanceId, bool)> {
                if let Some(info) = self.0.get(ft) {
                    return Some((info.instance, true));
                }
                self.1
                    .native
                    .existing_instance(ft)
                    .map(|k| (InstanceId(k), false))
            }
        }

        for nf in &nffg.nfs {
            let template = self
                .repository
                .resolve(&nf.functional_type)
                .ok_or_else(|| DeployError::NoTemplate(nf.functional_type.clone()))?
                .clone();
            let decision = decide(
                &template,
                nf.flavor.as_deref(),
                &self.compute.native.catalog,
                &Status(&self.shared, &self.compute),
            )
            .map_err(DeployError::from)?;

            let n_ports = nf.ports.len().max(1);
            // Bindings must be allocated before `env` borrows the node.
            let prebinding = match &decision {
                Decision::NativeNewShared | Decision::NativeShare(_) => {
                    Some(self.make_binding(&nffg.id, nf))
                }
                _ => None,
            };
            let mut env = NodeEnv {
                host: &mut self.host,
                ledger: &mut self.ledger,
                costs: &self.costs,
            };
            let placed = match decision {
                Decision::NativeNew => {
                    let id = self.compute.create(
                        &mut env,
                        &format!("{}-{}", nffg.id, nf.id),
                        &nf.functional_type,
                        &FlavorSpec::Native,
                        n_ports,
                        &nf.config,
                        false,
                        self.node_account,
                    )?;
                    self.compute.start(&mut env, id)?;
                    created_instances.push(id);
                    PlacedNf {
                        instance: id,
                        flavor: Flavor::Native,
                        shared: None,
                        owned: true,
                    }
                }
                Decision::NativeNewShared => {
                    let id = self.compute.create(
                        &mut env,
                        &format!("shared-{}", nf.functional_type),
                        &nf.functional_type,
                        &FlavorSpec::Native,
                        n_ports,
                        &nf.config,
                        true,
                        self.node_account,
                    )?;
                    self.compute.start(&mut env, id)?;
                    created_instances.push(id);
                    let binding = prebinding.clone().expect("allocated above");
                    self.compute.bind_native_graph(&mut env, id, &binding)?;
                    // Attach port on LSI-0.
                    let attach = PortNo(self.next_l0_port);
                    self.next_l0_port += 1;
                    self.lsi0
                        .add_port(attach, &format!("nnf-{}", nf.functional_type))
                        .expect("fresh port");
                    created_l0_ports.push(attach);
                    self.l0_ports.insert(attach, L0Port::SharedAttach(id));
                    self.shared.insert(
                        nf.functional_type.clone(),
                        SharedInfo {
                            instance: id,
                            attach_port: attach,
                            graphs: vec![nffg.id.clone()],
                        },
                    );
                    PlacedNf {
                        instance: id,
                        flavor: Flavor::Native,
                        shared: Some(binding),
                        owned: true,
                    }
                }
                Decision::NativeShare(id) => {
                    let binding = prebinding.clone().expect("allocated above");
                    self.compute.bind_native_graph(&mut env, id, &binding)?;
                    if let Some(info) = self.shared.get_mut(&nf.functional_type) {
                        info.graphs.push(nffg.id.clone());
                    }
                    self.trace.count("nnf_shares", 1);
                    PlacedNf {
                        instance: id,
                        flavor: Flavor::Native,
                        shared: Some(binding),
                        owned: false,
                    }
                }
                Decision::Vnf(spec) => {
                    let id = self.compute.create(
                        &mut env,
                        &format!("{}-{}", nffg.id, nf.id),
                        &nf.functional_type,
                        &spec,
                        n_ports,
                        &nf.config,
                        false,
                        self.node_account,
                    )?;
                    self.compute.start(&mut env, id)?;
                    created_instances.push(id);
                    PlacedNf {
                        instance: id,
                        flavor: spec.flavor(),
                        shared: None,
                        owned: true,
                    }
                }
            };
            placements.push((
                nf.id.clone(),
                placed.flavor,
                placed.instance,
                placed.shared.is_some(),
            ));
            graph.nfs.insert(nf.id.clone(), placed);
        }

        // ---- Admission control ----
        let used = self.ledger.usage(self.node_account);
        if used > self.mem_capacity {
            return Err(DeployError::InsufficientMemory {
                needed: used,
                capacity: self.mem_capacity,
            });
        }

        // ---- Ports & virtual links ----
        // Graph-LSI ports for dedicated NF ports.
        for nf in &nffg.nfs {
            let placed = graph.nfs.get(&nf.id).unwrap().clone();
            if placed.shared.is_some() {
                continue; // shared NFs are reached via LSI-0
            }
            for port in &nf.ports {
                let p = PortNo(graph.next_port);
                graph.next_port += 1;
                graph
                    .lsi
                    .add_port(p, &format!("to-{}:{}", nf.id, port.id))
                    .expect("fresh port");
                graph.ports.insert(p, GPort::Nf(placed.instance, port.id));
                graph.rev_nf.insert((placed.instance, port.id), p);
            }
        }
        // Virtual links per endpoint.
        for ep in &nffg.endpoints {
            let l0_port = PortNo(self.next_l0_port);
            self.next_l0_port += 1;
            self.lsi0
                .add_port(l0_port, &format!("vlink-{}-{}", nffg.id, ep.id))
                .expect("fresh port");
            created_l0_ports.push(l0_port);
            let g_port = PortNo(graph.next_port);
            graph.next_port += 1;
            graph
                .lsi
                .add_port(g_port, &format!("vlink-{}", ep.id))
                .expect("fresh port");
            self.l0_ports.insert(
                l0_port,
                L0Port::Vlink {
                    graph_slot: graph.slot,
                    peer: g_port,
                },
            );
            graph.ports.insert(g_port, GPort::Vlink { l0_port });
            graph
                .vlinks
                .insert(VlinkKey::Endpoint(ep.id.clone()), g_port);

            // LSI-0 classification rules for this endpoint.
            match &ep.kind {
                EndpointKind::Interface { if_name } => {
                    let phys = *self.physical.get(if_name).unwrap();
                    // Conflict detection: untagged traffic of this iface
                    // must not already be claimed.
                    let m = FlowMatch::in_port(phys).with_vlan(VlanSpec::Untagged);
                    if self
                        .lsi0
                        .table(0)
                        .map(|t| t.find(5, &m).is_some())
                        .unwrap_or(false)
                    {
                        return Err(DeployError::EndpointConflict(if_name.clone()));
                    }
                    self.lsi0
                        .install(
                            0,
                            FlowEntry::new(5, m, vec![FlowAction::Output(l0_port)])
                                .with_cookie(cookie),
                        )
                        .expect("table 0 exists");
                    self.lsi0
                        .install(
                            0,
                            FlowEntry::new(
                                5,
                                FlowMatch::in_port(l0_port),
                                vec![FlowAction::Output(phys)],
                            )
                            .with_cookie(cookie),
                        )
                        .expect("table 0 exists");
                }
                EndpointKind::Vlan { if_name, vlan_id } => {
                    let phys = *self.physical.get(if_name).unwrap();
                    self.lsi0
                        .install(
                            0,
                            FlowEntry::new(
                                10,
                                FlowMatch::in_port(phys).with_vlan(VlanSpec::Id(*vlan_id)),
                                vec![FlowAction::PopVlan, FlowAction::Output(l0_port)],
                            )
                            .with_cookie(cookie),
                        )
                        .expect("table 0 exists");
                    self.lsi0
                        .install(
                            0,
                            FlowEntry::new(
                                10,
                                FlowMatch::in_port(l0_port),
                                vec![FlowAction::PushVlan(*vlan_id), FlowAction::Output(phys)],
                            )
                            .with_cookie(cookie),
                        )
                        .expect("table 0 exists");
                }
                EndpointKind::Internal { group } => {
                    let members = self.internal_groups.entry(group.clone()).or_default();
                    // Cross-connect with every existing member.
                    for other in members.clone() {
                        self.lsi0
                            .install(
                                0,
                                FlowEntry::new(
                                    7,
                                    FlowMatch::in_port(l0_port),
                                    vec![FlowAction::Output(other)],
                                )
                                .with_cookie(cookie),
                            )
                            .expect("table 0 exists");
                        self.lsi0
                            .install(
                                0,
                                FlowEntry::new(
                                    7,
                                    FlowMatch::in_port(other),
                                    vec![FlowAction::Output(l0_port)],
                                )
                                .with_cookie(cookie),
                            )
                            .expect("table 0 exists");
                    }
                    members.push(l0_port);
                }
            }
        }
        // Virtual links + LSI-0 rules per shared NF used by this graph.
        for nf in &nffg.nfs {
            let placed = graph.nfs.get(&nf.id).unwrap().clone();
            let Some(binding) = placed.shared.as_ref() else {
                continue;
            };
            let attach = self
                .shared
                .get(&nf.functional_type)
                .map(|i| i.attach_port)
                .expect("shared info recorded");

            let l0_port = PortNo(self.next_l0_port);
            self.next_l0_port += 1;
            self.lsi0
                .add_port(l0_port, &format!("vlink-{}-{}", nffg.id, nf.id))
                .expect("fresh port");
            created_l0_ports.push(l0_port);
            let g_port = PortNo(graph.next_port);
            graph.next_port += 1;
            graph
                .lsi
                .add_port(g_port, &format!("vlink-shared-{}", nf.id))
                .expect("fresh port");
            self.l0_ports.insert(
                l0_port,
                L0Port::Vlink {
                    graph_slot: graph.slot,
                    peer: g_port,
                },
            );
            graph.ports.insert(g_port, GPort::Vlink { l0_port });
            graph
                .vlinks
                .insert(VlinkKey::SharedNf(nf.id.clone()), g_port);

            for vid in [binding.vid_lan, binding.vid_wan] {
                self.lsi0
                    .install(
                        0,
                        FlowEntry::new(
                            20,
                            FlowMatch::in_port(l0_port).with_vlan(VlanSpec::Id(vid)),
                            vec![FlowAction::Output(attach)],
                        )
                        .with_cookie(cookie),
                    )
                    .expect("table 0 exists");
                self.lsi0
                    .install(
                        0,
                        FlowEntry::new(
                            20,
                            FlowMatch::in_port(attach).with_vlan(VlanSpec::Id(vid)),
                            vec![FlowAction::Output(l0_port)],
                        )
                        .with_cookie(cookie),
                    )
                    .expect("table 0 exists");
            }
        }

        // ---- Compile the graph's big-switch rules ----
        let mut flow_entries = self.lsi0.flow_count();
        for rule in &nffg.flow_rules {
            let entry = compile_rule(nffg, graph, rule)
                .map_err(DeployError::Compute)?
                .with_cookie(fnv1a(&format!("{}/{}", nffg.id, rule.id)));
            graph.lsi.install(0, entry).expect("table 0 exists");
        }
        flow_entries += graph.lsi.flow_count();

        Ok(DeployReport {
            graph: nffg.id.clone(),
            placements,
            flow_entries,
        })
    }

    fn make_binding(&mut self, graph_id: &str, nf: &un_nffg::NetworkFunction) -> GraphBinding {
        let mark = self.next_mark;
        self.next_mark += 1;
        GraphBinding {
            graph: graph_id.to_string(),
            mark,
            zone: mark as u16,
            vid_lan: (100 + mark * 2) as u16,
            vid_wan: (101 + mark * 2) as u16,
            params: nf.config.params.clone(),
        }
    }

    /// Undeploy a graph: remove rules, virtual links, and instances
    /// (shared NNF instances survive until their last graph leaves).
    pub fn undeploy(&mut self, graph_id: &str) -> Result<(), DeployError> {
        let graph = self
            .graphs
            .remove(graph_id)
            .ok_or_else(|| DeployError::NoSuchGraph(graph_id.to_string()))?;
        let cookie = fnv1a(graph_id);
        self.lsi0.remove_by_cookie(cookie);

        // Remove the graph's LSI-0 vlink ports.
        let to_remove: Vec<PortNo> = self
            .l0_ports
            .iter()
            .filter(
                |(_, k)| matches!(k, L0Port::Vlink { graph_slot, .. } if *graph_slot == graph.slot),
            )
            .map(|(p, _)| *p)
            .collect();
        for p in to_remove {
            let _ = self.lsi0.remove_port(p);
            self.l0_ports.remove(&p);
            for members in self.internal_groups.values_mut() {
                members.retain(|m| *m != p);
            }
        }

        let mut env = NodeEnv {
            host: &mut self.host,
            ledger: &mut self.ledger,
            costs: &self.costs,
        };
        for (nf_id, placed) in &graph.nfs {
            match &placed.shared {
                None => {
                    debug_assert!(placed.owned, "dedicated instances are always owned");
                    self.compute.stop(&mut env, placed.instance)?;
                    self.compute.destroy(&mut env, placed.instance)?;
                }
                Some(_binding) => {
                    self.compute
                        .unbind_native_graph(&mut env, placed.instance, graph_id)?;
                    let ft = self
                        .compute
                        .functional_type(placed.instance)
                        .unwrap_or(nf_id)
                        .to_string();
                    let mut drop_shared = false;
                    if let Some(info) = self.shared.get_mut(&ft) {
                        info.graphs.retain(|g| g != graph_id);
                        drop_shared = info.graphs.is_empty();
                    }
                    if drop_shared {
                        let info = self.shared.remove(&ft).unwrap();
                        let _ = self.lsi0.remove_port(info.attach_port);
                        self.l0_ports.remove(&info.attach_port);
                        self.compute.stop(&mut env, info.instance)?;
                        self.compute.destroy(&mut env, info.instance)?;
                    }
                }
            }
        }
        self.slots[graph.slot as usize] = None;
        self.trace.count("graphs_undeployed", 1);
        Ok(())
    }

    /// Undeploy every graph whose id is **not** in `keep`, releasing
    /// its instances, LSI-0 ports and memory; returns the ids removed.
    ///
    /// The domain layer uses this when a failed node rejoins the fleet:
    /// partitions that were re-placed elsewhere (or parked) while the
    /// node was unreachable are stale state whose capacity must be
    /// released before new work is admitted here.
    pub fn retain_graphs(&mut self, keep: &[String]) -> Vec<String> {
        let stale: Vec<String> = self
            .graphs
            .keys()
            .filter(|g| !keep.contains(g))
            .cloned()
            .collect();
        for gid in &stale {
            let _ = self.undeploy(gid);
        }
        stale
    }

    /// Number of live compute instances across all flavors (repair
    /// blast-radius introspection: an untouched node keeps its count).
    pub fn total_instances(&self) -> usize {
        self.compute.len()
    }

    /// Update a deployed graph.
    ///
    /// Rule-only changes are applied in place (remove + reinstall flow
    /// entries); structural changes (NFs or endpoints) trigger an
    /// undeploy + redeploy of the graph.
    pub fn update(&mut self, nffg: &NfFg) -> Result<DeployReport, DeployError> {
        let old = self
            .graphs
            .get(&nffg.id)
            .ok_or_else(|| DeployError::NoSuchGraph(nffg.id.clone()))?;
        let diff = un_nffg::diff(&old.nffg, nffg);
        if diff.is_structural() {
            self.undeploy(&nffg.id)?;
            self.trace.count("graph_updates_structural", 1);
            return self.deploy(nffg);
        }
        // Rule-level update.
        let errs = validate(nffg);
        if !errs.is_empty() {
            return Err(DeployError::Invalid(errs));
        }
        let graph = self.graphs.get_mut(&nffg.id).unwrap();
        for rule_id in diff
            .removed_rules
            .iter()
            .chain(diff.changed_rules.iter().map(|r| &r.id))
        {
            graph
                .lsi
                .remove_by_cookie(fnv1a(&format!("{}/{}", nffg.id, rule_id)));
        }
        for rule in diff.added_rules.iter().chain(diff.changed_rules.iter()) {
            let entry = compile_rule(nffg, graph, rule)
                .map_err(DeployError::Compute)?
                .with_cookie(fnv1a(&format!("{}/{}", nffg.id, rule.id)));
            graph.lsi.install(0, entry).expect("table 0 exists");
        }
        graph.nffg = nffg.clone();
        self.trace.count("graph_updates_rules", 1);
        let placements = graph
            .nfs
            .iter()
            .map(|(id, p)| (id.clone(), p.flavor, p.instance, p.shared.is_some()))
            .collect();
        let flow_entries = graph.lsi.flow_count() + self.lsi0.flow_count();
        Ok(DeployReport {
            graph: nffg.id.clone(),
            placements,
            flow_entries,
        })
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Inject a frame on a physical port and run it to completion.
    ///
    /// Thin wrapper over [`UniversalNode::inject_batch`] with a
    /// one-frame burst.
    pub fn inject(&mut self, port_name: &str, pkt: Packet) -> NodeIo {
        match self.port_id(port_name) {
            Some(id) => self.inject_batch(vec![(id, pkt)]),
            None => {
                self.trace.count("inject_unknown_port", 1);
                NodeIo::default()
            }
        }
    }

    /// Inject a burst of frames and run the whole burst to completion.
    ///
    /// This is the run-to-completion fast path: frames are bucketed by
    /// fabric location, so each hop resolves its LSI / graph / NF
    /// instance once per burst instead of once per frame. Every frame
    /// carries its own hop TTL — a looping (but non-amplifying) frame
    /// is dropped alone (counted as `fabric_loop_drops`) and cannot
    /// starve the rest of the burst. A total work budget of
    /// `batch × TTL` fabric steps additionally bounds *amplifying*
    /// workloads — a flood rule in a virtual-link cycle, or loop-free
    /// fan-out multiplying one frame past the budget — which the
    /// per-frame depth limit alone would let grow exponentially. The
    /// valve is a last resort: once tripped it drops everything still
    /// in flight, including well-behaved batchmates, counted as
    /// `fabric_work_exhausted` so the two drop causes stay
    /// distinguishable.
    pub fn inject_batch(&mut self, batch: Vec<(PortId, Packet)>) -> NodeIo {
        self.inject_batch_flight(batch, None)
    }

    /// [`UniversalNode::inject_batch`] with an optional flight-recorder
    /// sink riding along. With a sink, every fabric crossing appends a
    /// hop record (classifier provenance, NF delivery, typed drops,
    /// egress). A *ghost* sink additionally freezes every counter —
    /// trace counters, LSI port/table stats, microflow caches, NF
    /// latency histograms — so a synthetic frame can walk the genuine
    /// pipeline without leaving a statistical footprint.
    pub fn inject_batch_flight(
        &mut self,
        batch: Vec<(PortId, Packet)>,
        flight: Option<&TraceSink>,
    ) -> NodeIo {
        let ghost = flight.is_some_and(|f| f.ghost());
        let popts = ProcessOptions {
            ghost,
            record: flight.is_some(),
        };
        let mut io = NodeIo::default();
        if !ghost {
            self.trace.count("fabric_frames_in", batch.len() as u64);
            if let Some(h) = &self.obs_burst_hist {
                h.record(batch.len() as u64);
            }
        }
        let obs_on = self.obs.is_some();
        // Conservation ledger terms, accumulated in locals so the fabric
        // loop pays plain integer adds: every processing step consumes one
        // frame and produces k — `fanout_extra` sums (k-1) for k >= 1,
        // `absorbed` counts k == 0 steps (table miss, NF consumed it).
        let mut absorbed: u64 = 0;
        let mut fanout_extra: u64 = 0;
        let mut unmapped_nf: u64 = 0;
        let mut dead_slot: u64 = 0;
        let mut work_budget: u64 = (batch.len() as u64).saturating_mul(u64::from(FABRIC_TTL));
        let mut pending: BTreeMap<LocKey, Vec<(Packet, u32)>> = BTreeMap::new();
        for (PortId(port), pkt) in batch {
            pending
                .entry(LocKey::L0(port.0))
                .or_default()
                .push((pkt, FABRIC_TTL));
        }
        while let Some((&loc, _)) = pending.iter().next() {
            let burst = pending.remove(&loc).expect("key just observed");
            match loc {
                LocKey::L0(p) => {
                    // Stage 1: classify the whole burst through LSI-0
                    // under one borrow, preserving (frame, output) order.
                    let mut routed: Vec<(PortNo, Packet, u32)> = Vec::new();
                    for (pkt, ttl) in burst {
                        if ttl == 0 {
                            self.drop_hop(flight, ghost, DropReason::FabricLoop);
                            continue;
                        }
                        if work_budget == 0 {
                            self.drop_hop(flight, ghost, DropReason::FabricWorkExhausted);
                            continue;
                        }
                        work_budget -= 1;
                        let res = self.lsi0.process_opts(PortNo(p), pkt, &self.costs, popts);
                        if let Some(f) = flight {
                            record_classify_hops(f, &self.name, &self.lsi0.name, &res.steps);
                        }
                        io.cost += res.cost;
                        match res.outputs.len() {
                            0 => absorbed += 1,
                            k => fanout_extra += (k - 1) as u64,
                        }
                        for (out, out_pkt) in res.outputs {
                            routed.push((out, out_pkt, ttl));
                        }
                    }
                    // Stage 2: dispatch in the same order; consecutive
                    // frames bound for the same shared-NF attach port
                    // cross the boundary as one `deliver_batch` burst.
                    let mut it = routed.into_iter().peekable();
                    while let Some((out, out_pkt, ttl)) = it.next() {
                        match self.l0_ports.get(&out) {
                            Some(L0Port::Physical(name)) => {
                                if let Some(f) = flight {
                                    f.hop(
                                        &self.name,
                                        HopKind::Egress {
                                            port: name.as_str().to_string(),
                                        },
                                    );
                                }
                                io.emitted.push((name.clone(), out_pkt));
                            }
                            Some(L0Port::Vlink { graph_slot, peer }) => {
                                io.cost += Cost::from_nanos(self.costs.virtual_link_ns);
                                pending
                                    .entry(LocKey::Graph(*graph_slot, peer.0))
                                    .or_default()
                                    .push((out_pkt, ttl - 1));
                            }
                            Some(L0Port::SharedAttach(inst)) => {
                                let inst = *inst;
                                let mut frames: Vec<(u32, Packet)> = vec![(0, out_pkt)];
                                let mut ttls: Vec<u32> = vec![ttl];
                                while matches!(it.peek(), Some((next, _, _)) if *next == out) {
                                    let (_, p2, t2) = it.next().expect("just peeked");
                                    frames.push((0, p2));
                                    ttls.push(t2);
                                }
                                let n = frames.len() as u64;
                                let mut env = NodeEnv {
                                    host: &mut self.host,
                                    ledger: &mut self.ledger,
                                    costs: &self.costs,
                                };
                                let t0 = (obs_on || flight.is_some()).then(Instant::now);
                                let outs = self.compute.deliver_batch(&mut env, inst, frames);
                                if let Some(t0) = t0 {
                                    let per = t0.elapsed().as_nanos() as u64 / n;
                                    if obs_on && !ghost {
                                        for _ in 0..n {
                                            self.record_nf_latency(inst, per);
                                        }
                                    }
                                    if let Some(f) = flight {
                                        for _ in 0..n {
                                            self.nf_hop(f, inst, per);
                                        }
                                    }
                                }
                                for (out_io, ttl) in outs.into_iter().zip(ttls) {
                                    io.cost += out_io.cost;
                                    match out_io.outputs.len() {
                                        0 => absorbed += 1,
                                        k => fanout_extra += (k - 1) as u64,
                                    }
                                    for (_p, p2) in out_io.outputs {
                                        pending
                                            .entry(LocKey::L0(out.0))
                                            .or_default()
                                            .push((p2, ttl - 1));
                                    }
                                }
                            }
                            None => {
                                self.drop_hop(flight, ghost, DropReason::L0UnmappedPort);
                            }
                        }
                    }
                }
                LocKey::Graph(slot, p) => {
                    let Some(gid) = self.slots.get(slot as usize).and_then(|s| s.clone()) else {
                        dead_slot += burst.len() as u64;
                        if let Some(f) = flight {
                            for _ in 0..burst.len() {
                                f.hop(
                                    &self.name,
                                    HopKind::Drop {
                                        reason: DropReason::FabricDeadSlot,
                                        detail: format!("graph slot {slot} is gone"),
                                    },
                                );
                            }
                        }
                        continue;
                    };
                    // Run the whole burst through the graph LSI under a
                    // single borrow, then deliver to instances.
                    let mut mapped: Vec<(Option<GPort>, Packet, u32)> = Vec::new();
                    {
                        let graph = self.graphs.get_mut(&gid).expect("slot consistent");
                        for (pkt, ttl) in burst {
                            if ttl == 0 {
                                if !ghost {
                                    self.trace.count(DropReason::FabricLoop.as_str(), 1);
                                }
                                if let Some(f) = flight {
                                    f.hop(
                                        &self.name,
                                        HopKind::Drop {
                                            reason: DropReason::FabricLoop,
                                            detail: String::new(),
                                        },
                                    );
                                }
                                continue;
                            }
                            if work_budget == 0 {
                                if !ghost {
                                    self.trace
                                        .count(DropReason::FabricWorkExhausted.as_str(), 1);
                                }
                                if let Some(f) = flight {
                                    f.hop(
                                        &self.name,
                                        HopKind::Drop {
                                            reason: DropReason::FabricWorkExhausted,
                                            detail: String::new(),
                                        },
                                    );
                                }
                                continue;
                            }
                            work_budget -= 1;
                            let res = graph.lsi.process_opts(PortNo(p), pkt, &self.costs, popts);
                            if let Some(f) = flight {
                                record_classify_hops(f, &self.name, &graph.lsi.name, &res.steps);
                            }
                            io.cost += res.cost;
                            match res.outputs.len() {
                                0 => absorbed += 1,
                                k => fanout_extra += (k - 1) as u64,
                            }
                            for (out, out_pkt) in res.outputs {
                                mapped.push((graph.ports.get(&out).cloned(), out_pkt, ttl));
                            }
                        }
                    }
                    // Dispatch in order; consecutive frames bound for
                    // the same NF instance (any of its ports) cross the
                    // boundary as one `deliver_batch` burst.
                    let mut it = mapped.into_iter().peekable();
                    while let Some((kind, out_pkt, ttl)) = it.next() {
                        match kind {
                            Some(GPort::Vlink { l0_port }) => {
                                io.cost += Cost::from_nanos(self.costs.virtual_link_ns);
                                pending
                                    .entry(LocKey::L0(l0_port.0))
                                    .or_default()
                                    .push((out_pkt, ttl - 1));
                            }
                            Some(GPort::Nf(inst, nf_port)) => {
                                let mut frames: Vec<(u32, Packet)> = vec![(nf_port, out_pkt)];
                                let mut ttls: Vec<u32> = vec![ttl];
                                while matches!(
                                    it.peek(),
                                    Some((Some(GPort::Nf(ni, _)), _, _)) if *ni == inst
                                ) {
                                    let Some((Some(GPort::Nf(_, np)), p2, t2)) = it.next() else {
                                        unreachable!("just peeked an NF frame");
                                    };
                                    frames.push((np, p2));
                                    ttls.push(t2);
                                }
                                let n = frames.len() as u64;
                                let mut env = NodeEnv {
                                    host: &mut self.host,
                                    ledger: &mut self.ledger,
                                    costs: &self.costs,
                                };
                                let t0 = (obs_on || flight.is_some()).then(Instant::now);
                                let outs = self.compute.deliver_batch(&mut env, inst, frames);
                                if let Some(t0) = t0 {
                                    let per = t0.elapsed().as_nanos() as u64 / n;
                                    if obs_on && !ghost {
                                        for _ in 0..n {
                                            self.record_nf_latency(inst, per);
                                        }
                                    }
                                    if let Some(f) = flight {
                                        for _ in 0..n {
                                            self.nf_hop(f, inst, per);
                                        }
                                    }
                                }
                                let graph = self.graphs.get(&gid).expect("still there");
                                for (out_io, ttl) in outs.into_iter().zip(ttls) {
                                    io.cost += out_io.cost;
                                    match out_io.outputs.len() {
                                        0 => absorbed += 1,
                                        k => fanout_extra += (k - 1) as u64,
                                    }
                                    for (p2, pkt2) in out_io.outputs {
                                        if let Some(&gp) = graph.rev_nf.get(&(inst, p2)) {
                                            pending
                                                .entry(LocKey::Graph(slot, gp.0))
                                                .or_default()
                                                .push((pkt2, ttl - 1));
                                        } else {
                                            unmapped_nf += 1;
                                            if let Some(f) = flight {
                                                f.hop(
                                                    &self.name,
                                                    HopKind::Drop {
                                                        reason: DropReason::GraphUnmappedNfPort,
                                                        detail: format!("nf port {p2}"),
                                                    },
                                                );
                                            }
                                        }
                                    }
                                }
                            }
                            None => {
                                self.drop_hop(flight, ghost, DropReason::GraphUnmappedPort);
                            }
                        }
                    }
                }
            }
        }
        if !ghost {
            self.trace
                .count("fabric_frames_out", io.emitted.len() as u64);
            if absorbed > 0 {
                self.trace.count("fabric_absorbed", absorbed);
            }
            if fanout_extra > 0 {
                self.trace.count("fabric_fanout_extra", fanout_extra);
            }
            if unmapped_nf > 0 {
                self.trace
                    .count(DropReason::GraphUnmappedNfPort.as_str(), unmapped_nf);
            }
            if dead_slot > 0 {
                self.trace
                    .count(DropReason::FabricDeadSlot.as_str(), dead_slot);
            }
        }
        io
    }

    /// Count one typed fabric drop and (when tracing) append the drop
    /// hop; ghost walks record the hop but freeze the counter.
    fn drop_hop(&mut self, flight: Option<&TraceSink>, ghost: bool, reason: DropReason) {
        if !ghost {
            self.trace.count(reason.as_str(), 1);
        }
        if let Some(f) = flight {
            f.hop(
                &self.name,
                HopKind::Drop {
                    reason,
                    detail: String::new(),
                },
            );
        }
    }

    /// Append one NF-delivery hop (instance, functional type, driver
    /// flavor, measured latency) to an active trace.
    fn nf_hop(&self, f: &TraceSink, inst: InstanceId, latency_ns: u64) {
        f.hop(
            &self.name,
            HopKind::NfDeliver {
                instance: self.compute.name(inst).unwrap_or("unknown").to_string(),
                nf_type: self
                    .compute
                    .functional_type(inst)
                    .unwrap_or("unknown")
                    .to_string(),
                flavor: self
                    .compute
                    .flavor(inst)
                    .map(|fl| fl.to_string())
                    .unwrap_or_else(|| "unknown".to_string()),
                latency_ns,
            },
        );
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The node's self-description.
    pub fn describe(&self) -> NodeDescription {
        let cache_stats = self.flow_cache_stats();
        NodeDescription {
            name: self.name.clone(),
            flavors: vec!["vm".into(), "docker".into(), "dpdk".into(), "native".into()],
            nnfs: self
                .compute
                .native
                .catalog
                .iter()
                .map(|d| (d.functional_type.to_string(), d.sharable, d.multi_instance))
                .collect(),
            graphs: self.graph_ids(),
            instances: self
                .compute
                .iter()
                .map(|(id, flavor, name)| {
                    (
                        name.to_string(),
                        flavor.to_string(),
                        self.compute
                            .functional_type(id)
                            .unwrap_or_default()
                            .to_string(),
                    )
                })
                .collect(),
            memory_used: self.memory_used(),
            memory_capacity: self.mem_capacity,
            flow_cache_hits: cache_stats.cache_hits,
            flow_cache_misses: cache_stats.cache_misses,
        }
    }

    /// Render the node architecture as an ASCII tree (the Figure 1
    /// reproduction; validated structurally in tests).
    pub fn architecture_diagram(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("NFV Compute Node '{}'\n", self.name));
        out.push_str("└─ Local Orchestrator (REST → deploy/update/undeploy)\n");
        out.push_str(&format!(
            "   ├─ VNF repository: {} templates\n",
            self.repository.len()
        ));
        out.push_str(&format!(
            "   ├─ NNF catalogue: {} native functions\n",
            self.compute.native.catalog.len()
        ));
        out.push_str(&format!(
            "   ├─ Resource manager: {} / {} used\n",
            format_bytes(self.memory_used()),
            format_bytes(self.mem_capacity)
        ));
        out.push_str("   ├─ Traffic steering\n");
        out.push_str(&format!(
            "   │  ├─ {} (dpid {}): {} ports, {} flows\n",
            self.lsi0.name,
            self.lsi0.dpid,
            self.lsi0.port_count(),
            self.lsi0.flow_count()
        ));
        for (pno, kind) in &self.l0_ports {
            let desc = match kind {
                L0Port::Physical(n) => format!("physical '{n}'"),
                L0Port::Vlink { graph_slot, .. } => {
                    let g = self.slots[*graph_slot as usize].clone().unwrap_or_default();
                    format!("virtual link → LSI-{g}")
                }
                L0Port::SharedAttach(i) => format!("shared NNF attach ({i})"),
            };
            out.push_str(&format!("   │  │   {pno}: {desc}\n"));
        }
        for graph in self.graphs.values() {
            out.push_str(&format!(
                "   │  ├─ {} (dpid {}): {} ports, {} flows\n",
                graph.lsi.name,
                graph.lsi.dpid,
                graph.lsi.port_count(),
                graph.lsi.flow_count()
            ));
        }
        out.push_str("   └─ Compute manager\n");
        for (id, flavor, name) in self.compute.iter() {
            let driver = match flavor {
                Flavor::Vm => "VM driver (libvirt/KVM)",
                Flavor::Docker => "Docker driver",
                Flavor::Dpdk => "DPDK driver",
                Flavor::Native => "Native driver (NNF)",
            };
            out.push_str(&format!("      ├─ {id} '{name}' via {driver}\n"));
        }
        out
    }

    /// LSI-0 statistics (tests / metrics endpoint).
    pub fn lsi0_stats(&self) -> un_switch::SwitchStats {
        self.lsi0.stats
    }

    /// Flow count across all LSIs.
    pub fn total_flows(&self) -> usize {
        self.lsi0.flow_count()
            + self
                .graphs
                .values()
                .map(|g| g.lsi.flow_count())
                .sum::<usize>()
    }

    /// Iterate every LSI on the node — LSI-0 first, then one per
    /// deployed graph (`Some(graph id)`). Read-only view for static
    /// analysis and table dumps.
    pub fn lsis(&self) -> impl Iterator<Item = (Option<&str>, &un_switch::LogicalSwitch)> {
        std::iter::once((None, &self.lsi0)).chain(
            self.graphs
                .iter()
                .map(|(id, g)| (Some(id.as_str()), &g.lsi)),
        )
    }
}

/// Compile one NF-FG rule into a graph-LSI flow entry.
fn compile_rule(
    _nffg: &NfFg,
    graph: &DeployedGraph,
    rule: &un_nffg::FlowRule,
) -> Result<FlowEntry, String> {
    let mut m = FlowMatch::any();
    let mut actions: Vec<FlowAction> = Vec::new();

    let resolve = |r: &PortRef| -> Result<(PortNo, Option<u16>), String> {
        match r {
            PortRef::Endpoint(ep) => graph
                .vlinks
                .get(&VlinkKey::Endpoint(ep.clone()))
                .map(|p| (*p, None))
                .ok_or_else(|| format!("endpoint '{ep}' has no vlink")),
            PortRef::Nf(nf, port) => {
                let placed = graph
                    .nfs
                    .get(nf)
                    .ok_or_else(|| format!("NF '{nf}' not placed"))?;
                match &placed.shared {
                    None => graph
                        .rev_nf
                        .get(&(placed.instance, *port))
                        .map(|p| (*p, None))
                        .ok_or_else(|| format!("NF '{nf}' port {port} not mapped")),
                    Some(binding) => {
                        let vid = if *port == 0 {
                            binding.vid_lan
                        } else {
                            binding.vid_wan
                        };
                        graph
                            .vlinks
                            .get(&VlinkKey::SharedNf(nf.clone()))
                            .map(|p| (*p, Some(vid)))
                            .ok_or_else(|| format!("shared NF '{nf}' has no vlink"))
                    }
                }
            }
        }
    };

    // port-in (validated earlier to be present).
    let port_in = rule
        .matches
        .port_in
        .as_ref()
        .ok_or_else(|| "rule missing port-in".to_string())?;
    let (in_port, in_vid) = resolve(port_in)?;
    m.in_port = Some(in_port);
    if let Some(vid) = in_vid {
        // Traffic from a shared NNF arrives tagged: match + strip.
        m.vlan = Some(VlanSpec::Id(vid));
        actions.push(FlowAction::PopVlan);
    }

    apply_match_fields(&rule.matches, &mut m)?;

    for action in &rule.actions {
        match action {
            RuleAction::Output(r) => {
                let (out_port, out_vid) = resolve(r)?;
                if let Some(vid) = out_vid {
                    actions.push(FlowAction::PushVlan(vid));
                }
                actions.push(FlowAction::Output(out_port));
            }
            RuleAction::PushVlan(v) => actions.push(FlowAction::PushVlan(*v)),
            RuleAction::PopVlan => actions.push(FlowAction::PopVlan),
            RuleAction::SetFwmark(mark) => actions.push(FlowAction::SetFwmark(*mark)),
        }
    }

    Ok(FlowEntry::new(rule.priority, m, actions))
}

fn apply_match_fields(tm: &TrafficMatch, m: &mut FlowMatch) -> Result<(), String> {
    if let Some(s) = &tm.eth_src {
        m.eth_src = Some(s.parse::<MacAddr>().map_err(|_| format!("bad MAC '{s}'"))?);
    }
    if let Some(s) = &tm.eth_dst {
        m.eth_dst = Some(s.parse::<MacAddr>().map_err(|_| format!("bad MAC '{s}'"))?);
    }
    if let Some(t) = tm.ether_type {
        m.eth_type = Some(t);
    }
    if let Some(v) = tm.vlan_id {
        m.vlan = Some(VlanSpec::Id(v));
    }
    if let Some(s) = &tm.ip_src {
        m.ip_src = Some(parse_prefix(s)?);
    }
    if let Some(s) = &tm.ip_dst {
        m.ip_dst = Some(parse_prefix(s)?);
    }
    if let Some(p) = tm.ip_proto {
        m.ip_proto = Some(p);
    }
    if let Some(p) = tm.src_port {
        m.l4_src = Some(p);
    }
    if let Some(p) = tm.dst_port {
        m.l4_dst = Some(p);
    }
    Ok(())
}

fn parse_prefix(s: &str) -> Result<Ipv4Cidr, String> {
    if s.contains('/') {
        s.parse().map_err(|_| format!("bad prefix '{s}'"))
    } else {
        let ip: std::net::Ipv4Addr = s.parse().map_err(|_| format!("bad address '{s}'"))?;
        Ok(Ipv4Cidr::new(ip, 32))
    }
}

#[cfg(test)]
mod tests;
