//! Orchestrator tests: deploy, steer, share, update, tear down.

use super::*;
use un_nffg::NfFgBuilder;
use un_sim::mem::mb;

fn node() -> UniversalNode {
    let mut n = UniversalNode::new("cpe-1", mb(2048));
    n.add_physical_port("eth0");
    n.add_physical_port("eth1");
    n
}

fn bridge_graph(id: &str) -> un_nffg::NfFg {
    NfFgBuilder::new(id, "l2")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br", "bridge", 2)
        .chain("lan", &["br"], "wan")
        .build()
}

fn frame(payload: &[u8]) -> Packet {
    un_packet::PacketBuilder::new()
        .ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
        .udp(1000, 2000)
        .payload(payload)
        .build()
}

#[test]
fn deploy_and_steer_through_native_bridge() {
    let mut n = node();
    let report = n.deploy(&bridge_graph("g1")).unwrap();
    assert_eq!(report.placements.len(), 1);
    assert_eq!(report.placements[0].1, Flavor::Native);
    assert!(report.flow_entries >= 6, "classification + chain rules");

    // LAN -> bridge NNF -> WAN.
    let io = n.inject("eth0", frame(b"hello"));
    assert_eq!(io.emitted.len(), 1, "exactly one egress");
    assert_eq!(io.emitted[0].0, "eth1");
    assert!(io.cost.as_nanos() > 0);

    // And back.
    let io = n.inject("eth1", frame(b"reply"));
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "eth0");
}

#[test]
fn undeploy_restores_clean_node() {
    let mut n = node();
    n.deploy(&bridge_graph("g1")).unwrap();
    assert_eq!(n.graph_ids(), vec!["g1".to_string()]);
    let flows_before = n.total_flows();
    assert!(flows_before > 0);
    assert!(n.memory_used() > 0);

    n.undeploy("g1").unwrap();
    assert!(n.graph_ids().is_empty());
    assert_eq!(n.total_flows(), 0);
    assert_eq!(n.memory_used(), 0);
    // Traffic now dies at LSI-0.
    let io = n.inject("eth0", frame(b"x"));
    assert!(io.emitted.is_empty());
    // Slot is reusable.
    n.deploy(&bridge_graph("g2")).unwrap();
    assert_eq!(n.inject("eth0", frame(b"y")).emitted.len(), 1);
}

#[test]
fn deploy_validation_failures() {
    let mut n = node();
    // Unknown interface.
    let g = NfFgBuilder::new("g", "x")
        .interface_endpoint("lan", "eth9")
        .build();
    assert!(matches!(n.deploy(&g), Err(DeployError::NoSuchInterface(_))));
    // Invalid graph (no endpoints).
    let g = NfFgBuilder::new("g", "x").build();
    assert!(matches!(n.deploy(&g), Err(DeployError::Invalid(_))));
    // Unknown functional type.
    let g = NfFgBuilder::new("g", "x")
        .interface_endpoint("lan", "eth0")
        .nf("mystery", "quantum-dpi", 2)
        .rule_through("r1", 1, "lan", ("mystery", 0))
        .rule_through("r2", 1, ("mystery", 1), "lan")
        .build();
    assert!(matches!(n.deploy(&g), Err(DeployError::NoTemplate(_))));
    // Duplicate deploy.
    n.deploy(&bridge_graph("dup")).unwrap();
    assert!(matches!(
        n.deploy(&bridge_graph("dup")),
        Err(DeployError::AlreadyDeployed(_))
    ));
}

#[test]
fn endpoint_conflict_detected() {
    let mut n = node();
    n.deploy(&bridge_graph("g1")).unwrap();
    // Second graph claiming eth0 untagged traffic must be refused.
    let g2 = NfFgBuilder::new("g2", "other")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br", "bridge", 2)
        .chain("lan", &["br"], "wan")
        .build();
    assert!(matches!(
        n.deploy(&g2),
        Err(DeployError::EndpointConflict(_))
    ));
    // But VLAN endpoints on the same interface are fine.
    let g3 = NfFgBuilder::new("g3", "tagged")
        .vlan_endpoint("lan", "eth0", 42)
        .vlan_endpoint("wan", "eth1", 42)
        .nf("br", "bridge", 2)
        .chain("lan", &["br"], "wan")
        .build();
    n.deploy(&g3).unwrap();

    // Tagged traffic reaches g3 and comes out re-tagged on eth1.
    let mut f = frame(b"tagged");
    f.vlan_push(42).unwrap();
    let io = n.inject("eth0", f);
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "eth1");
    assert_eq!(io.emitted[0].1.vlan_id(), Some(42));
}

#[test]
fn vm_flavor_hint_is_honored() {
    let mut n = node();
    let g = NfFgBuilder::new("g-vm", "forced-vm")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br", "bridge", 2)
        .with_flavor("vm")
        .chain("lan", &["br"], "wan")
        .build();
    let report = n.deploy(&g).unwrap();
    assert_eq!(report.placements[0].1, Flavor::Vm);
    // The VM path still forwards.
    let io = n.inject("eth0", frame(b"via-vm"));
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "eth1");
    // And costs more than the native path would (structural claim).
    let mut n2 = node();
    n2.deploy(&bridge_graph("g-native")).unwrap();
    let io_native = n2.inject("eth0", frame(b"via-nnf"));
    assert!(
        io.cost.as_nanos() > io_native.cost.as_nanos(),
        "VM {} vs native {}",
        io.cost.as_nanos(),
        io_native.cost.as_nanos()
    );
}

#[test]
fn admission_control_rolls_back() {
    let mut n = UniversalNode::new("tiny", mb(100)); // less than one VM
    n.add_physical_port("eth0");
    n.add_physical_port("eth1");
    let g = NfFgBuilder::new("g", "heavy")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br", "bridge", 2)
        .with_flavor("vm")
        .chain("lan", &["br"], "wan")
        .build();
    assert!(matches!(
        n.deploy(&g),
        Err(DeployError::InsufficientMemory { .. })
    ));
    // Everything rolled back.
    assert_eq!(n.memory_used(), 0);
    assert!(n.graph_ids().is_empty());
    assert_eq!(n.compute.len(), 0);
    assert_eq!(n.total_flows(), 0);
}

#[test]
fn rule_only_update_in_place() {
    let mut n = node();
    n.deploy(&bridge_graph("g1")).unwrap();
    let before_instances = n.compute.len();

    // Change a rule's priority: must not touch instances.
    let mut g2 = bridge_graph("g1");
    g2.flow_rules[0].priority = 99;
    let report = n.update(&g2).unwrap();
    assert_eq!(report.graph, "g1");
    assert_eq!(n.compute.len(), before_instances);
    assert_eq!(n.trace.counter("graph_updates_rules"), 1);
    assert_eq!(n.trace.counter("graph_updates_structural"), 0);
    // Traffic still flows.
    assert_eq!(n.inject("eth0", frame(b"x")).emitted.len(), 1);
}

#[test]
fn structural_update_redeploys() {
    let mut n = node();
    n.deploy(&bridge_graph("g1")).unwrap();
    // Replace the bridge with a router-less chain of two bridges.
    let g2 = NfFgBuilder::new("g1", "two-bridges")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br-a", "bridge", 2)
        .nf("br-b", "bridge", 2)
        .chain("lan", &["br-a", "br-b"], "wan")
        .build();
    let report = n.update(&g2).unwrap();
    assert_eq!(report.placements.len(), 2);
    assert_eq!(n.trace.counter("graph_updates_structural"), 1);
    let io = n.inject("eth0", frame(b"through-two"));
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "eth1");
}

#[test]
fn describe_and_diagram_reflect_architecture() {
    let mut n = node();
    n.deploy(&bridge_graph("g1")).unwrap();
    let desc = n.describe();
    assert_eq!(desc.name, "cpe-1");
    assert_eq!(desc.graphs, vec!["g1".to_string()]);
    assert_eq!(desc.instances.len(), 1);
    assert!(desc.flavors.contains(&"native".to_string()));
    assert!(desc.nnfs.iter().any(|(t, s, _)| t == "nat" && *s));
    assert!(desc.memory_used > 0);

    let diagram = n.architecture_diagram();
    assert!(diagram.contains("LSI-0"));
    assert!(diagram.contains("LSI-g1"));
    assert!(diagram.contains("Native driver"));
    assert!(diagram.contains("virtual link"));
    assert!(diagram.contains("Compute manager"));
}

#[test]
fn three_node_chain_firewall_router_bridge() {
    let mut n = node();
    let mut fw_cfg = un_nffg::NfConfig::default()
        .with_param("addr0", "10.0.0.1/24")
        .with_param("addr1", "10.0.1.1/24")
        .with_param("policy", "accept")
        .with_param("stateful", "false");
    fw_cfg.params.insert("gw".into(), "10.0.1.2".into());
    let g = NfFgBuilder::new("g-chain", "chain")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br1", "bridge", 2)
        .nf("br2", "bridge", 2)
        .chain("lan", &["br1", "br2"], "wan")
        .build();
    let _ = fw_cfg;
    let report = n.deploy(&g).unwrap();
    assert_eq!(report.placements.len(), 2);
    let io = n.inject("eth0", frame(b"chained"));
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "eth1");
}

#[test]
fn inject_batch_equals_sequential_injects() {
    let mut seq = node();
    seq.deploy(&bridge_graph("g1")).unwrap();
    let mut seq_emitted: Vec<(Name, Packet)> = Vec::new();
    let mut seq_cost = un_sim::Cost::ZERO;
    for i in 0..10u8 {
        let io = seq.inject("eth0", frame(&[i]));
        seq_emitted.extend(io.emitted);
        seq_cost += io.cost;
    }

    let mut batched = node();
    batched.deploy(&bridge_graph("g1")).unwrap();
    let lan = batched.port_id("eth0").unwrap();
    let io = batched.inject_batch((0..10u8).map(|i| (lan, frame(&[i]))).collect());

    let flat = |v: &[(Name, Packet)]| -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = v
            .iter()
            .map(|(p, pkt)| (p.to_string(), pkt.data().to_vec()))
            .collect();
        out.sort();
        out
    };
    assert_eq!(flat(&io.emitted), flat(&seq_emitted));
    assert_eq!(io.cost, seq_cost, "batching must not change charged time");
}

#[test]
fn port_ids_resolve_physical_ports_only() {
    let n = node();
    assert!(n.port_id("eth0").is_some());
    assert!(n.port_id("eth1").is_some());
    assert!(n.port_id("ghost").is_none());
    assert_ne!(n.port_id("eth0"), n.port_id("eth1"));
}

#[test]
fn flow_cache_stats_surface_in_description() {
    let mut n = node();
    n.deploy(&bridge_graph("g1")).unwrap();
    for i in 0..4u8 {
        n.inject("eth0", frame(&[i]));
    }
    let stats = n.flow_cache_stats();
    assert!(stats.cache_hits > 0, "repeat flows must hit the cache");
    assert!(stats.cache_misses > 0, "first packet must miss");
    assert!(stats.hit_rate() > 0.0);
    let json = n.describe().to_json();
    assert!(json.contains("\"flow_cache_hits\""), "{json}");
    assert!(json.contains("\"flow_cache_misses\""), "{json}");
}

#[test]
fn linear_classifier_mode_forwards_identically() {
    let mut n = node();
    n.set_classifier_mode(un_switch::ClassifierMode::Linear);
    n.deploy(&bridge_graph("g1")).unwrap();
    let io = n.inject("eth0", frame(b"linear"));
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "eth1");
    let stats = n.flow_cache_stats();
    assert_eq!(stats.cache_hits, 0, "linear mode bypasses the cache");
}
