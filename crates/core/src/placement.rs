//! The VNF scheduler's placement policy: NNF or VNF, and which flavor.
//!
//! Paper §2: "For each NF in a NF-FG, the orchestrator decides whether
//! to deploy it as VNF or NNF based on its knowledge of the node
//! capability set, the available NNFs and their characteristics (e.g.,
//! whether they are sharable), and their status (e.g., already used in
//! another chain)."

use un_compute::{ComputeError, Flavor, FlavorSpec, InstanceId};
use un_nnf::NnfCatalog;

use crate::repository::NfTemplate;

/// The scheduler's verdict for one NF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Deploy a fresh native instance (dedicated ports).
    NativeNew,
    /// Deploy a fresh native instance in shared (single-port) mode —
    /// chosen for sharable single-instance NNFs so later graphs can
    /// join.
    NativeNewShared,
    /// Reuse this existing shared native instance (bind the graph).
    NativeShare(InstanceId),
    /// Deploy a VNF with this spec.
    Vnf(FlavorSpec),
}

/// Status of existing native instances, as the scheduler sees it.
pub trait NativeStatus {
    /// The live instance of a functional type, if any, with whether it
    /// runs in shared mode.
    fn existing(&self, functional_type: &str) -> Option<(InstanceId, bool)>;
}

/// Decide the realization for one NF.
///
/// `flavor_hint` comes from the NF-FG (`"native"`, `"docker"`, …).
pub fn decide(
    template: &NfTemplate,
    flavor_hint: Option<&str>,
    catalog: &NnfCatalog,
    status: &dyn NativeStatus,
) -> Result<Decision, ComputeError> {
    // Explicit hint: obey or fail loudly (the tenant asked for it).
    if let Some(hint) = flavor_hint {
        let flavor = Flavor::parse(hint)
            .ok_or_else(|| ComputeError::Unsupported(format!("unknown flavor '{hint}'")))?;
        if flavor == Flavor::Native {
            return decide_native(template, catalog, status, true);
        }
        let spec = template
            .spec_for(flavor)
            .ok_or_else(|| {
                ComputeError::Unsupported(format!(
                    "'{}' has no {flavor} flavor",
                    template.functional_type
                ))
            })?
            .clone();
        return Ok(Decision::Vnf(spec));
    }

    // No hint: prefer native when the node can (the paper's point:
    // lowest overhead on a resource-constrained CPE).
    match decide_native(template, catalog, status, false) {
        Ok(d) => Ok(d),
        Err(_) => fallback_vnf(template),
    }
}

fn decide_native(
    template: &NfTemplate,
    catalog: &NnfCatalog,
    status: &dyn NativeStatus,
    // The hinted-native and preference paths currently behave the same
    // on a busy singleton (hard error); the flag documents intent at
    // the call sites and keeps the signature stable.
    _strict: bool,
) -> Result<Decision, ComputeError> {
    let ft = template.functional_type.as_str();
    let Some(desc) = catalog.get(ft) else {
        return Err(ComputeError::NoSuchNnf(ft.to_string()));
    };
    match status.existing(ft) {
        None => {
            // First user. Sharable single-instance NNFs start in shared
            // mode so later graphs can join (paper: marking mechanism +
            // internal paths).
            if !desc.multi_instance && desc.sharable && desc.single_port_when_shared {
                Ok(Decision::NativeNewShared)
            } else {
                Ok(Decision::NativeNew)
            }
        }
        Some((id, shared)) => {
            if desc.multi_instance {
                Ok(Decision::NativeNew)
            } else if desc.sharable && shared {
                Ok(Decision::NativeShare(id))
            } else {
                // Busy singleton: hard error whether the native flavor
                // was demanded (`strict`) or merely preferred — the
                // caller decides whether to fall back to a VNF.
                Err(ComputeError::NnfBusy(ft.to_string()))
            }
        }
    }
}

fn fallback_vnf(template: &NfTemplate) -> Result<Decision, ComputeError> {
    // Fallback preference: Docker, then VM, then DPDK (cheapest first on
    // a CPE).
    for flavor in [Flavor::Docker, Flavor::Vm, Flavor::Dpdk] {
        if let Some(spec) = template.spec_for(flavor) {
            return Ok(Decision::Vnf(spec.clone()));
        }
    }
    Err(ComputeError::Unsupported(format!(
        "'{}' has no deployable flavor",
        template.functional_type
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::VnfRepository;

    struct Status(Vec<(&'static str, InstanceId, bool)>);

    impl NativeStatus for Status {
        fn existing(&self, ft: &str) -> Option<(InstanceId, bool)> {
            self.0
                .iter()
                .find(|(t, _, _)| *t == ft)
                .map(|(_, id, s)| (*id, *s))
        }
    }

    fn repo() -> VnfRepository {
        VnfRepository::standard()
    }

    #[test]
    fn prefers_native_when_free() {
        let r = repo();
        let c = NnfCatalog::standard();
        let d = decide(r.resolve("ipsec").unwrap(), None, &c, &Status(vec![])).unwrap();
        assert_eq!(d, Decision::NativeNew);
    }

    #[test]
    fn sharable_nnf_starts_shared_and_then_shares() {
        let r = repo();
        let c = NnfCatalog::standard();
        // First NAT: shared mode from the start.
        let d = decide(r.resolve("nat").unwrap(), None, &c, &Status(vec![])).unwrap();
        assert_eq!(d, Decision::NativeNewShared);
        // Second graph: join the existing instance.
        let st = Status(vec![("nat", InstanceId(7), true)]);
        let d = decide(r.resolve("nat").unwrap(), None, &c, &st).unwrap();
        assert_eq!(d, Decision::NativeShare(InstanceId(7)));
    }

    #[test]
    fn busy_singleton_falls_back_to_docker() {
        let r = repo();
        let c = NnfCatalog::standard();
        // IPsec NNF already used by another chain, not sharable.
        let st = Status(vec![("ipsec", InstanceId(3), false)]);
        let d = decide(r.resolve("ipsec").unwrap(), None, &c, &st).unwrap();
        match d {
            Decision::Vnf(spec) => assert_eq!(spec.flavor(), Flavor::Docker),
            other => panic!("expected docker fallback, got {other:?}"),
        }
    }

    #[test]
    fn multi_instance_nnf_always_new() {
        let r = repo();
        let c = NnfCatalog::standard();
        let st = Status(vec![("firewall", InstanceId(5), false)]);
        let d = decide(r.resolve("firewall").unwrap(), None, &c, &st).unwrap();
        assert_eq!(d, Decision::NativeNew);
    }

    #[test]
    fn explicit_hints_are_obeyed_or_fail() {
        let r = repo();
        let c = NnfCatalog::standard();
        let none = Status(vec![]);

        let d = decide(r.resolve("ipsec").unwrap(), Some("vm"), &c, &none).unwrap();
        match d {
            Decision::Vnf(spec) => assert_eq!(spec.flavor(), Flavor::Vm),
            other => panic!("{other:?}"),
        }
        let d = decide(r.resolve("ipsec").unwrap(), Some("native"), &c, &none).unwrap();
        assert_eq!(d, Decision::NativeNew);

        // Forced native while busy: hard error (no silent fallback).
        let busy = Status(vec![("ipsec", InstanceId(3), false)]);
        assert!(matches!(
            decide(r.resolve("ipsec").unwrap(), Some("native"), &c, &busy),
            Err(ComputeError::NnfBusy(_))
        ));
        // Unknown flavor string.
        assert!(matches!(
            decide(r.resolve("ipsec").unwrap(), Some("unikernel"), &c, &none),
            Err(ComputeError::Unsupported(_))
        ));
        // DPDK NF has no native/docker; hint-free deploy picks DPDK.
        let d = decide(r.resolve("l2fwd-fast").unwrap(), None, &c, &none).unwrap();
        match d {
            Decision::Vnf(spec) => assert_eq!(spec.flavor(), Flavor::Dpdk),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_native_in_catalog_falls_back() {
        let r = repo();
        let c = NnfCatalog::empty();
        let d = decide(r.resolve("ipsec").unwrap(), None, &c, &Status(vec![])).unwrap();
        match d {
            Decision::Vnf(spec) => assert_eq!(spec.flavor(), Flavor::Docker),
            other => panic!("{other:?}"),
        }
    }
}
