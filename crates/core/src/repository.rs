//! The VNF repository: NF templates and their technology flavors.
//!
//! The resolver ("VNF resolver" in Figure 1) answers: *which concrete
//! realizations exist for functional type X on this node?* The
//! scheduler then picks one (see [`crate::placement`]).

use std::collections::BTreeMap;

use un_compute::{FlavorSpec, GuestAppKind};
use un_sim::mem::{mb, mb_f};

/// A deployable NF type and its available realizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfTemplate {
    /// Functional type, e.g. `"ipsec"`.
    pub functional_type: String,
    /// Available flavors, in *fallback preference order* (used when the
    /// native option is unavailable).
    pub flavors: Vec<FlavorSpec>,
    /// Default number of ports.
    pub default_ports: usize,
}

impl NfTemplate {
    /// The spec for a given technology, if offered.
    pub fn spec_for(&self, flavor: un_compute::Flavor) -> Option<&FlavorSpec> {
        self.flavors.iter().find(|s| s.flavor() == flavor)
    }
}

/// The repository: functional type → template.
#[derive(Debug, Default)]
pub struct VnfRepository {
    templates: BTreeMap<String, NfTemplate>,
}

impl VnfRepository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard CPE repository used by the evaluation: every NF type
    /// the NNF catalogue offers also exists as a Docker and a VM flavor,
    /// with footprints matching DESIGN.md §5 (composition of the paper's
    /// Table 1 numbers).
    pub fn standard() -> Self {
        let mut r = Self::new();
        for ft in ["ipsec", "firewall", "nat", "bridge", "router"] {
            let app = if ft == "ipsec" {
                GuestAppKind::IpsecUserspace
            } else {
                GuestAppKind::L2Forward
            };
            // VM: 320 MB guest + 70.6 MB QEMU ⇒ 390.6 MB total.
            // Docker: the NF daemon's RSS is accounted by the plugin
            // (the container entrypoint *is* the NF software: 19.4 MB
            // for charon), plus the 4.8 MB runtime shim ⇒ 24.2 MB.
            // `process_rss` covers extra userland beyond the daemon.
            let (vm_mem, docker_rss) = if ft == "ipsec" {
                (320, 0)
            } else {
                (256, mb_f(3.0))
            };
            r.register(NfTemplate {
                functional_type: ft.to_string(),
                flavors: vec![
                    FlavorSpec::Native,
                    FlavorSpec::Docker {
                        image: ft.to_string(),
                        tag: "latest".to_string(),
                        process_rss: docker_rss,
                    },
                    FlavorSpec::Vm {
                        image: format!("{ft}-vm"),
                        vcpus: 1,
                        mem_mb: vm_mem,
                        app,
                    },
                ],
                default_ports: 2,
            });
        }
        // A DPDK-only fast path NF as well (no native equivalent).
        r.register(NfTemplate {
            functional_type: "l2fwd-fast".to_string(),
            flavors: vec![FlavorSpec::Dpdk {
                cores: 1,
                hugepages_mb: 256,
            }],
            default_ports: 2,
        });
        r
    }

    /// Register (or replace) a template.
    pub fn register(&mut self, t: NfTemplate) {
        self.templates.insert(t.functional_type.clone(), t);
    }

    /// Resolve a functional type.
    pub fn resolve(&self, functional_type: &str) -> Option<&NfTemplate> {
        self.templates.get(functional_type)
    }

    /// Iterate templates.
    pub fn iter(&self) -> impl Iterator<Item = &NfTemplate> {
        self.templates.values()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// Provision the standard images into a compute manager's stores so the
/// standard repository's flavors are actually deployable:
///
/// * VM disk images: full OS + NF ⇒ 522 MB for strongswan-vm, a bit
///   less for the others (no layer sharing between VM images).
/// * Docker images: a shared 235 MB base layer + a small per-NF layer
///   (the strongswan package layer is 5 MB ⇒ 240 MB total).
pub fn provision_standard_images(mgr: &mut un_compute::ComputeManager) {
    use un_container::{Image, Layer};
    use un_hypervisor::DiskImage;

    for (ft, vm_size, pkg_size) in [
        ("ipsec", mb(522), mb(5)),
        ("firewall", mb(519), mb(2)),
        ("nat", mb(519), mb(2)),
        ("bridge", mb(518), mb(1)),
        ("router", mb(518), mb(1)),
    ] {
        mgr.vm.hypervisor.images.add(DiskImage {
            name: format!("{ft}-vm"),
            size: vm_size,
        });
        mgr.docker.registry.push(Image {
            name: ft.to_string(),
            tag: "latest".to_string(),
            layers: vec![
                Layer::new("sha256:base-os", mb(235)),
                Layer::new(&format!("sha256:{ft}-pkg"), pkg_size),
            ],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_compute::Flavor;

    #[test]
    fn standard_repository_contents() {
        let r = VnfRepository::standard();
        assert_eq!(r.len(), 6);
        let ipsec = r.resolve("ipsec").unwrap();
        assert_eq!(ipsec.flavors.len(), 3);
        assert!(ipsec.spec_for(Flavor::Native).is_some());
        assert!(ipsec.spec_for(Flavor::Docker).is_some());
        assert!(ipsec.spec_for(Flavor::Vm).is_some());
        assert!(ipsec.spec_for(Flavor::Dpdk).is_none());
        assert!(r
            .resolve("l2fwd-fast")
            .unwrap()
            .spec_for(Flavor::Dpdk)
            .is_some());
        assert!(r.resolve("quantum").is_none());
    }

    #[test]
    fn provisioning_makes_flavors_deployable() {
        let mut mgr = un_compute::ComputeManager::new();
        provision_standard_images(&mut mgr);
        assert_eq!(
            mgr.vm.hypervisor.images.get("ipsec-vm").unwrap().size,
            mb(522)
        );
        assert!(mgr.docker.registry.manifest("ipsec", "latest").is_some());
        // Docker images share the base layer in the registry definition;
        // pulling two should dedupe in the local store.
        let dl1 = mgr
            .docker
            .runtime
            .store
            .pull(&mgr.docker.registry, "ipsec", "latest")
            .unwrap();
        let dl2 = mgr
            .docker
            .runtime
            .store
            .pull(&mgr.docker.registry, "firewall", "latest")
            .unwrap();
        assert_eq!(dl1, mb(240));
        assert_eq!(dl2, mb(2));
    }
}
