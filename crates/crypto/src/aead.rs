//! The ChaCha20-Poly1305 AEAD construction, per RFC 8439 §2.8.
//!
//! This is the AEAD that ESP uses when configured with
//! `rfc7634`-style ChaCha20-Poly1305, and what the simulated strongSwan
//! (`un-ipsec`) negotiates for its SAs.

use crate::chacha20::ChaCha20;
use crate::poly1305::{tags_equal, Poly1305};

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// AEAD failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The authentication tag did not verify; the ciphertext or AAD was
    /// tampered with (or the wrong key/nonce was used).
    TagMismatch,
    /// Ciphertext shorter than a tag.
    TruncatedInput,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AeadError::TagMismatch => write!(f, "AEAD tag mismatch"),
            AeadError::TruncatedInput => write!(f, "AEAD input shorter than tag"),
        }
    }
}

impl std::error::Error for AeadError {}

fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    // RFC 8439 §2.6: the one-time Poly1305 key is the first 32 bytes of
    // the ChaCha20 keystream block with counter 0.
    let block = ChaCha20::new(key, nonce).block(0);
    block[..32].try_into().unwrap()
}

fn compute_tag(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> [u8; TAG_LEN] {
    let otk = poly_key(key, nonce);
    let mut mac = Poly1305::new(&otk);
    mac.update(aad);
    mac.update(&[0u8; 16][..pad16(aad.len())]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..pad16(ciphertext.len())]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

fn pad16(len: usize) -> usize {
    (16 - (len % 16)) % 16
}

/// Encrypt `plaintext` in place and return the authentication tag.
///
/// `aad` is authenticated but not encrypted (ESP uses the SPI + sequence
/// number here).
pub fn seal(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    plaintext: &mut [u8],
) -> [u8; TAG_LEN] {
    ChaCha20::new(key, nonce).apply_keystream(1, plaintext);
    compute_tag(key, nonce, aad, plaintext)
}

/// Verify `tag` over `ciphertext`/`aad` and decrypt in place.
///
/// On tag mismatch the ciphertext is left **untouched** and an error is
/// returned.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext: &mut [u8],
    tag: &[u8; TAG_LEN],
) -> Result<(), AeadError> {
    let expect = compute_tag(key, nonce, aad, ciphertext);
    if !tags_equal(&expect, tag) {
        return Err(AeadError::TagMismatch);
    }
    ChaCha20::new(key, nonce).apply_keystream(1, ciphertext);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_aead_vector() {
        // RFC 8439 §2.8.2.
        let key: [u8; 32] = hex("808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f")
            .try_into()
            .unwrap();
        let nonce: [u8; 12] = hex("070000004041424344454647").try_into().unwrap();
        let aad = hex("50515253c0c1c2c3c4c5c6c7");
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";

        let mut data = plaintext.to_vec();
        let tag = seal(&key, &nonce, &aad, &mut data);

        let expected_ct = hex(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc
             3ff4def08e4b7a9de576d26586cec64b6116",
        );
        assert_eq!(data, expected_ct);
        assert_eq!(tag.to_vec(), hex("1ae10b594f09e26a7e902ecbd0600691"));

        // And decryption restores the plaintext.
        open(&key, &nonce, &aad, &mut data, &tag).unwrap();
        assert_eq!(data, plaintext.to_vec());
    }

    #[test]
    fn tamper_detection_ciphertext() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut data = b"attack at dawn".to_vec();
        let tag = seal(&key, &nonce, b"hdr", &mut data);
        data[3] ^= 0x80;
        let err = open(&key, &nonce, b"hdr", &mut data, &tag).unwrap_err();
        assert_eq!(err, AeadError::TagMismatch);
    }

    #[test]
    fn tamper_detection_aad() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut data = b"attack at dawn".to_vec();
        let tag = seal(&key, &nonce, b"spi=1,seq=7", &mut data);
        let err = open(&key, &nonce, b"spi=1,seq=8", &mut data, &tag).unwrap_err();
        assert_eq!(err, AeadError::TagMismatch);
    }

    #[test]
    fn wrong_key_or_nonce_fails() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut data = b"hello".to_vec();
        let tag = seal(&key, &nonce, b"", &mut data);
        let mut c1 = data.clone();
        assert!(open(&[3u8; 32], &nonce, b"", &mut c1, &tag).is_err());
        let mut c2 = data.clone();
        assert!(open(&key, &[4u8; 12], b"", &mut c2, &tag).is_err());
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let mut data: Vec<u8> = Vec::new();
        let tag = seal(&key, &nonce, b"", &mut data);
        open(&key, &nonce, b"", &mut data, &tag).unwrap();
    }

    #[test]
    fn failed_open_leaves_ciphertext_intact() {
        let key = [7u8; 32];
        let nonce = [8u8; 12];
        let mut data = b"payload bytes".to_vec();
        let _tag = seal(&key, &nonce, b"", &mut data);
        let ct = data.clone();
        let bad_tag = [0u8; 16];
        assert!(open(&key, &nonce, b"", &mut data, &bad_tag).is_err());
        assert_eq!(data, ct, "ciphertext must not be modified on failure");
    }
}
