//! The ChaCha20 stream cipher, per RFC 8439 §2.3–2.4.
//!
//! State is sixteen 32-bit words: 4 constants, 8 key words, a 32-bit block
//! counter and a 96-bit nonce. Each 64-byte keystream block is produced by
//! 20 rounds (10 column/diagonal double-rounds) plus the feed-forward add.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (the IETF 96-bit variant).
pub const NONCE_LEN: usize = 12;
/// Keystream block length in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 cipher instance bound to a key and nonce.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
}

impl ChaCha20 {
    /// Create a cipher for `key` and `nonce`.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 { key: k, nonce: n }
    }

    /// Compute the raw 64-byte block for `counter` (RFC 8439 §2.3).
    pub fn block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);

        let mut working = state;
        for _ in 0..10 {
            // column rounds
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal rounds
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XOR `data` in place with the keystream starting at block `counter`
    /// (RFC 8439 §2.4). Encryption and decryption are the same operation.
    pub fn apply_keystream(&self, counter: u32, data: &mut [u8]) {
        let mut ctr = counter;
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block(ctr);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            ctr = ctr.wrapping_add(1);
        }
    }
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // RFC 8439 §2.3.2
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex("000000090000004a00000000").try_into().unwrap();
        let cipher = ChaCha20::new(&key, &nonce);
        let block = cipher.block(1);
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: the "sunscreen" plaintext.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex("000000000000004a00000000").try_into().unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let mut data = plaintext.to_vec();
        let cipher = ChaCha20::new(&key, &nonce);
        cipher.apply_keystream(1, &mut data);
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn keystream_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let orig = data.clone();
        cipher.apply_keystream(5, &mut data);
        assert_ne!(data, orig);
        cipher.apply_keystream(5, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn multiblock_counter_advances() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let cipher = ChaCha20::new(&key, &nonce);
        // Encrypting 130 bytes in one call == encrypting per-64B-block
        // with manually advanced counters.
        let mut whole = vec![0u8; 130];
        cipher.apply_keystream(0, &mut whole);
        let mut parts = vec![0u8; 130];
        cipher.apply_keystream(0, &mut parts[..64]);
        cipher.apply_keystream(1, &mut parts[64..128]);
        cipher.apply_keystream(2, &mut parts[128..]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [3u8; 32];
        let c1 = ChaCha20::new(&key, &[0u8; 12]);
        let c2 = ChaCha20::new(&key, &[1u8; 12]);
        assert_ne!(c1.block(0), c2.block(0));
    }
}
