//! HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869).
//!
//! The IKE-lite control plane in `un-ipsec` authenticates its handshake
//! with HMAC over a pre-shared key and derives per-SA traffic keys with
//! HKDF, mirroring (in simplified form) how IKEv2 PRFs derive keying
//! material for child SAs.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Compute HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = Sha256::digest(key);
        k[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(data);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HKDF-Extract: derive a pseudorandom key from input keying material.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expand a PRK into `out.len()` bytes of keying material.
/// Panics if more than 255 blocks (8160 bytes) are requested.
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut written = 0;
    while written < out.len() {
        let mut msg = Vec::with_capacity(t.len() + info.len() + 1);
        msg.extend_from_slice(&t);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk, &msg);
        let take = (out.len() - written).min(DIGEST_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hexstr(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case1() {
        let key = vec![0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hexstr(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hexstr(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_key_data() {
        let key = vec![0xaa; 20];
        let data = vec![0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hexstr(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_key_longer_than_block() {
        let key = vec![0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hexstr(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc5869_case1() {
        // HKDF-SHA256 test case 1.
        let ikm = vec![0x0b; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hexstr(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = vec![0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hexstr(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_multiblock_expand() {
        let prk = hkdf_extract(b"salt", b"ikm");
        let mut okm = vec![0u8; 100];
        hkdf_expand(&prk, b"ctx", &mut okm);
        // Different info must give different output.
        let mut okm2 = vec![0u8; 100];
        hkdf_expand(&prk, b"ctx2", &mut okm2);
        assert_ne!(okm, okm2);
        // Prefix property: requesting fewer bytes yields a prefix.
        let mut short = vec![0u8; 32];
        hkdf_expand(&prk, b"ctx", &mut short);
        assert_eq!(&okm[..32], &short[..]);
    }
}
