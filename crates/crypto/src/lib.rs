//! # un-crypto — from-scratch primitives for the IPsec data plane
//!
//! The paper's evaluation runs strongSwan with ESP in tunnel mode. Rather
//! than stubbing "encryption happened", this crate implements the actual
//! primitives a modern ESP deployment uses, so the data path performs real
//! cryptographic work and the micro-benchmarks (`cargo bench -p un-bench
//! --bench crypto_bench`) measure something genuine:
//!
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439 §2.3–2.4).
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439 §2.5).
//! * [`aead`] — the ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8),
//!   as used by ESP per RFC 7634.
//! * [`sha256`] — SHA-256 (FIPS 180-4).
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104) and HKDF (RFC 5869), used by the
//!   IKE-lite control plane in `un-ipsec` to derive SA keys.
//!
//! All implementations are constant-timeish pure Rust with no unsafe code
//! and are validated against the RFC/FIPS test vectors in their unit
//! tests. They are **not** intended for production use outside this
//! reproduction — no side-channel hardening has been attempted.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod aead;
pub mod chacha20;
pub mod hmac;
pub mod poly1305;
pub mod sha256;

pub use aead::{open, seal, AeadError, KEY_LEN, NONCE_LEN, TAG_LEN};
pub use chacha20::ChaCha20;
pub use hmac::{hkdf_expand, hkdf_extract, hmac_sha256};
pub use poly1305::Poly1305;
pub use sha256::Sha256;
