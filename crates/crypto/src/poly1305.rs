//! The Poly1305 one-time authenticator, per RFC 8439 §2.5.
//!
//! Arithmetic is carried out modulo 2^130 − 5 using five 26-bit limbs
//! (the classic "donna" representation), which keeps every intermediate
//! product within u64 range without needing 128-bit multiplies per limb
//! pair beyond what u64×u64→u128 provides.

/// Key length in bytes (r || s).
pub const KEY_LEN: usize = 32;
/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC computation.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    s: [u32; 4],
    acc: [u32; 5],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Initialize with a 32-byte one-time key (r clamped per the RFC).
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let t0 = u32::from_le_bytes(key[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(key[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(key[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(key[12..16].try_into().unwrap());

        // Clamp and split into 26-bit limbs.
        let r = [
            t0 & 0x3ff_ffff,
            ((t0 >> 26) | (t1 << 6)) & 0x3ff_ff03,
            ((t1 >> 20) | (t2 << 12)) & 0x3ff_c0ff,
            ((t2 >> 14) | (t3 << 18)) & 0x3f0_3fff,
            (t3 >> 8) & 0x00f_ffff,
        ];
        let s = [
            u32::from_le_bytes(key[16..20].try_into().unwrap()),
            u32::from_le_bytes(key[20..24].try_into().unwrap()),
            u32::from_le_bytes(key[24..28].try_into().unwrap()),
            u32::from_le_bytes(key[28..32].try_into().unwrap()),
        ];
        Poly1305 {
            r,
            s,
            acc: [0; 5],
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let want = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + want].copy_from_slice(&data[..want]);
            self.buf_len += want;
            data = &data[want..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let block: [u8; 16] = data[..16].try_into().unwrap();
            self.process_block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1; // the padding 0x01 byte for a short block
            self.process_block(&block, true);
        }

        // Full carry propagation.
        let mut h = self.acc;
        let mut c;
        c = h[1] >> 26;
        h[1] &= 0x3ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x3ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x3ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x3ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x3ff_ffff;
        h[1] += c;

        // Compute h + -p and select.
        let mut g = [0u32; 5];
        let mut carry = 5u32;
        for i in 0..5 {
            let t = h[i] + carry;
            carry = t >> 26;
            g[i] = t & 0x3ff_ffff;
        }
        g[4] = g[4].wrapping_sub(1 << 26);

        let mask = (g[4] >> 31).wrapping_sub(1); // all-ones if h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }

        // Serialize to 128 bits and add s.
        let h0 = h[0] | (h[1] << 26);
        let h1 = (h[1] >> 6) | (h[2] << 20);
        let h2 = (h[2] >> 12) | (h[3] << 14);
        let h3 = (h[3] >> 18) | (h[4] << 8);

        let mut tag = [0u8; TAG_LEN];
        let mut acc: u64;
        acc = h0 as u64 + self.s[0] as u64;
        tag[0..4].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = h1 as u64 + self.s[1] as u64 + (acc >> 32);
        tag[4..8].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = h2 as u64 + self.s[2] as u64 + (acc >> 32);
        tag[8..12].copy_from_slice(&(acc as u32).to_le_bytes());
        acc = h3 as u64 + self.s[3] as u64 + (acc >> 32);
        tag[12..16].copy_from_slice(&(acc as u32).to_le_bytes());
        tag
    }

    /// One-shot MAC.
    pub fn mac(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
        let mut p = Poly1305::new(key);
        p.update(data);
        p.finalize()
    }

    fn process_block(&mut self, block: &[u8; 16], partial: bool) {
        let hibit: u32 = if partial { 0 } else { 1 << 24 };

        let t0 = u32::from_le_bytes(block[0..4].try_into().unwrap());
        let t1 = u32::from_le_bytes(block[4..8].try_into().unwrap());
        let t2 = u32::from_le_bytes(block[8..12].try_into().unwrap());
        let t3 = u32::from_le_bytes(block[12..16].try_into().unwrap());

        self.acc[0] += t0 & 0x3ff_ffff;
        self.acc[1] += ((t0 >> 26) | (t1 << 6)) & 0x3ff_ffff;
        self.acc[2] += ((t1 >> 20) | (t2 << 12)) & 0x3ff_ffff;
        self.acc[3] += ((t2 >> 14) | (t3 << 18)) & 0x3ff_ffff;
        self.acc[4] += (t3 >> 8) | hibit;

        // acc *= r (mod 2^130 - 5)
        let [r0, r1, r2, r3, r4] = self.r.map(|x| x as u64);
        let s1 = r1 * 5;
        let s2 = r2 * 5;
        let s3 = r3 * 5;
        let s4 = r4 * 5;
        let [h0, h1, h2, h3, h4] = self.acc.map(|x| x as u64);

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry propagation back into 26-bit limbs.
        let mut c: u64;
        let mut out = [0u64; 5];
        c = d0 >> 26;
        out[0] = d0 & 0x3ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        out[1] = d1 & 0x3ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        out[2] = d2 & 0x3ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        out[3] = d3 & 0x3ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        out[4] = d4 & 0x3ff_ffff;
        out[0] += c * 5;
        c = out[0] >> 26;
        out[0] &= 0x3ff_ffff;
        out[1] += c;

        self.acc = out.map(|x| x as u32);
    }
}

/// Constant-time tag comparison.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| c.is_ascii_hexdigit()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(tag.to_vec(), hex("a8061dc1305136c6c22b8baf0c0127a9"));
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = [0x42u8; 32];
        let msg: Vec<u8> = (0..200u8).collect();
        let oneshot = Poly1305::mac(&key, &msg);
        for split in [0usize, 1, 15, 16, 17, 33, 199, 200] {
            let mut p = Poly1305::new(&key);
            p.update(&msg[..split]);
            p.update(&msg[split..]);
            assert_eq!(p.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn empty_message() {
        let key = [1u8; 32];
        // Tag of an empty message is just `s` (r*0 + s).
        let tag = Poly1305::mac(&key, b"");
        assert_eq!(&tag[..], &key[16..32]);
    }

    #[test]
    fn tags_equal_constant_time_semantics() {
        let a = [1u8; 16];
        let mut b = [1u8; 16];
        assert!(tags_equal(&a, &b));
        b[15] ^= 1;
        assert!(!tags_equal(&a, &b));
    }

    #[test]
    fn tag_changes_with_message() {
        let key = [9u8; 32];
        let t1 = Poly1305::mac(&key, b"hello");
        let t2 = Poly1305::mac(&key, b"hellp");
        assert_ne!(t1, t2);
    }

    #[test]
    fn donna_boundary_block_sizes() {
        // Exercise the final-block padding path at every size mod 16.
        let key: [u8; 32] = hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
            .try_into()
            .unwrap();
        let data = [0xAAu8; 64];
        let mut tags = std::collections::HashSet::new();
        for len in 0..=64 {
            let tag = Poly1305::mac(&key, &data[..len]);
            assert!(tags.insert(tag.to_vec()), "duplicate tag at len {len}");
        }
    }
}
