//! Property-based tests for the crypto primitives.

use proptest::prelude::*;

proptest! {
    /// Seal/open is the identity for any key, nonce, AAD and plaintext.
    #[test]
    fn aead_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        plaintext in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut data = plaintext.clone();
        let tag = un_crypto::seal(&key, &nonce, &aad, &mut data);
        if !plaintext.is_empty() {
            prop_assert_ne!(&data, &plaintext, "ciphertext differs from plaintext");
        }
        un_crypto::open(&key, &nonce, &aad, &mut data, &tag).unwrap();
        prop_assert_eq!(data, plaintext);
    }

    /// Any single bit flip in the ciphertext is detected.
    #[test]
    fn aead_tamper_detection(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        plaintext in prop::collection::vec(any::<u8>(), 1..512),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut data = plaintext.clone();
        let tag = un_crypto::seal(&key, &nonce, b"", &mut data);
        let idx = flip_byte.index(data.len());
        data[idx] ^= 1 << flip_bit;
        prop_assert!(un_crypto::open(&key, &nonce, b"", &mut data, &tag).is_err());
    }

    /// Incremental SHA-256 equals one-shot for any split.
    #[test]
    fn sha256_incremental(
        data in prop::collection::vec(any::<u8>(), 0..1024),
        split in any::<prop::sample::Index>(),
    ) {
        let oneshot = un_crypto::Sha256::digest(&data);
        let k = split.index(data.len() + 1);
        let mut h = un_crypto::Sha256::new();
        h.update(&data[..k]);
        h.update(&data[k..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// HKDF output is a prefix-stable function of its inputs.
    #[test]
    fn hkdf_prefix_stability(
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info in prop::collection::vec(any::<u8>(), 0..32),
        len_a in 1usize..64,
        len_b in 1usize..64,
    ) {
        let prk = un_crypto::hkdf_extract(b"salt", &ikm);
        let mut a = vec![0u8; len_a];
        let mut b = vec![0u8; len_b];
        un_crypto::hkdf_expand(&prk, &info, &mut a);
        un_crypto::hkdf_expand(&prk, &info, &mut b);
        let n = len_a.min(len_b);
        prop_assert_eq!(&a[..n], &b[..n]);
    }
}
