//! The domain orchestrator: a fleet of Universal Nodes behaving as one.
//!
//! [`Domain`] owns N [`UniversalNode`]s, accepts whole NF-FGs, splits
//! them with [`crate::placement`] + [`crate::partition`], deploys the
//! parts, and stitches cut edges with **inter-node overlay links**:
//! VLAN-tagged virtual wires riding a dedicated fabric interface on
//! every node, optionally ESP-protected with `un-ipsec` (real
//! encrypt/verify per shuttled frame, so corruption on the inter-node
//! wire can never deliver wrong bytes).
//!
//! The data plane is a **batched shuttle**: [`Domain::inject_batch`]
//! drains a node's whole pending burst through the node's
//! run-to-completion batch path, buckets fabric-bound egress by VLAN
//! link, seals/verifies ESP per burst, and hands each peer node its
//! burst at once — optionally sharded across `std::thread` workers
//! (every node is an isolated state machine; per-link locks guard the
//! only shared state). [`Domain::inject`] is the single-frame wrapper.
//!
//! Failure handling is **incremental repair**: a stale heartbeat first
//! marks a node [`NodeHealth::Suspect`] (it keeps serving; a late
//! heartbeat cancels the pending repair), and only grace-window expiry
//! — or an explicit [`Domain::fail_node`] — fails it. The repair then
//! moves *only the lost sub-partition*: surviving NF/endpoint
//! assignments are pinned, cut edges with one surviving side inherit
//! their overlay VLAN id (so the survivor's part stays byte-identical
//! and its LSIs/NNFs are never touched), and each repair returns a
//! [`RepairOutcome`] measuring the blast radius (NFs moved vs
//! preserved, links rewired vs kept, nodes touched).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use un_core::{DeployReport, Name, PortId, UniversalNode};
use un_ipsec::{esp, SecurityAssociation};
use un_nffg::{validate, NfFg, ValidationError};
use un_obs::{DropReason, HopKind, PacketTrace, TraceRing, TraceSink};
use un_packet::Packet;
use un_sim::{Cost, DetRng, SimTime, TraceLog};

use crate::partition::{install_transit, partition, OverlayLink, Partition, PartitionError};
use crate::placement::{assign, assign_endpoints, NodeView, PlaceError, PlacementStrategy};
use crate::runtime::ShardRuntime;
use crate::sharing::{
    elect, ShareKey, SharedClaim, SharedInstance, SharedRegistry, SharingConfig, SharingError,
};
use crate::standby::{
    AvailabilityReport, GraphAvailability, GraphPrediction, GraphStandby, NodeStandby,
    RepairCalibration, RepairKind, StandbyRegistry,
};
use crate::topology::Topology;

/// Header spec of a synthetic flight-recorder probe frame
/// ([`Domain::trace_probe`], `POST /domain/trace`). Defaults give a
/// 64-byte-payload UDP frame on documentation addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeSpec {
    /// IPv4 source address.
    pub src_ip: Ipv4Addr,
    /// IPv4 destination address.
    pub dst_ip: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Optional VLAN tag on the synthesized frame.
    pub vlan: Option<u16>,
}

impl Default for ProbeSpec {
    fn default() -> Self {
        ProbeSpec {
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(192, 0, 2, 9),
            src_port: 5000,
            dst_port: 5001,
            payload_len: 64,
            vlan: None,
        }
    }
}

/// Default first VLAN id of the overlay pool (up to 4094 inclusive).
const OVERLAY_VID_BASE: u16 = 3000;
/// Last valid VLAN id usable by the overlay pool.
const OVERLAY_VID_MAX: u16 = 4094;

/// Domain-wide settings.
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Physical interface reserved on every node for overlay traffic.
    pub fabric_port: String,
    /// Protect overlay frames with ESP (encrypt on egress, verify on
    /// ingress) while crossing between nodes.
    pub protect_overlay: bool,
    /// The fabric topology: which nodes are directly wired. The
    /// default full mesh keeps every overlay path single-hop; an
    /// explicit topology makes the path engine route cut edges over
    /// shortest paths, installing transit rules on intermediate
    /// nodes. Read at plan time — deployed graphs keep the paths they
    /// were routed with until the next update/repair re-plans them.
    pub topology: Topology,
    /// Propagation + switching cost of one overlay hop (explicit
    /// topology edges carry their own per-edge latency instead).
    pub overlay_link_ns: u64,
    /// First VLAN id of the overlay pool (pool runs to 4094
    /// inclusive). Lets operators reserve part of the VLAN space —
    /// and lets tests exhaust the pool cheaply.
    pub overlay_vid_base: u16,
    /// Fixed ESP cost per protected frame (each direction).
    pub esp_fixed_ns: u64,
    /// Per-byte ESP cost (each direction), in nanoseconds.
    pub esp_ns_per_byte: f64,
    /// Heartbeats older than this mark a node **suspect** at
    /// [`Domain::tick`] (slow, not yet dead: it keeps serving and no
    /// repair runs).
    pub heartbeat_timeout_ns: u64,
    /// Extra staleness beyond `heartbeat_timeout_ns` a suspect node is
    /// granted before [`Domain::tick`] declares it failed and repairs
    /// its partitions. A heartbeat arriving inside the window cancels
    /// the pending repair (the node returns to `Alive`).
    pub suspect_grace_ns: u64,
    /// How a node failure is repaired (incremental vs from-scratch).
    pub repair: RepairPolicy,
    /// Make-before-break: when a node turns **suspect**, pre-compute a
    /// standby repair plan per affected graph (placement with
    /// survivors pinned, overlay vids pre-reserved, transit routes
    /// pre-solved) so grace expiry or [`Domain::fail_node`] promotes
    /// the staged plan instead of planning from scratch. A late
    /// heartbeat or [`Domain::recover_node`] discards the standby and
    /// returns its vids. Only meaningful with
    /// [`RepairPolicy::Incremental`].
    pub standby: bool,
    /// Assumed mean time between failures of one node, feeding
    /// [`Domain::availability_report`]'s predicted availability
    /// (`A = 1 − exposed_nodes · predicted_repair_ns / node_mtbf_ns`).
    pub node_mtbf_ns: u64,
    /// Domain-wide sharable-NNF registry settings (disabled by
    /// default: sharing stays strictly per-node, the pre-registry
    /// behavior). See [`crate::sharing`].
    pub sharing: SharingConfig,
    /// Placement tie-break goal.
    pub strategy: PlacementStrategy,
    /// Seed for overlay SA key derivation.
    pub seed: u64,
    /// Per-injected-frame overlay hop budget: how many node-to-node
    /// crossings one frame may make before being dropped as a loop
    /// (`overlay_loop_drops`). Per frame, not per burst, so a large
    /// batch of well-behaved frames is never culled by a shared
    /// counter. A separate last-resort valve of `batch × overlay_ttl`
    /// total crossings bounds *amplifying* loops; once tripped it
    /// drops every further crossing in the call (counted as
    /// `overlay_work_exhausted`).
    pub overlay_ttl: u32,
    /// Record metrics and control-plane spans (see [`crate::Domain::
    /// metrics_prometheus`] and [`crate::Domain::recent_events`]). Off by
    /// default: the hot path then pays only an `Option`/bool check per
    /// batch, and `/metrics` serves scrape-derived series only.
    pub observability: bool,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            fabric_port: "fab0".to_string(),
            protect_overlay: false,
            topology: Topology::full_mesh(),
            overlay_link_ns: 5_000,
            overlay_vid_base: OVERLAY_VID_BASE,
            esp_fixed_ns: 700,
            esp_ns_per_byte: 2.0,
            heartbeat_timeout_ns: 3_000_000_000, // 3 virtual seconds
            suspect_grace_ns: 1_000_000_000,     // 1 more before repair
            repair: RepairPolicy::Incremental,
            standby: true,
            node_mtbf_ns: 2_592_000_000_000_000, // 30 virtual days
            sharing: SharingConfig::default(),
            strategy: PlacementStrategy::Pack,
            seed: 0x5eed_d0ca_1000_0001,
            overlay_ttl: 64,
            observability: false,
        }
    }
}

/// Caller-supplied placement constraints for one graph.
#[derive(Debug, Clone, Default)]
pub struct DeployHints {
    /// Endpoint id → node name.
    pub endpoint_node: BTreeMap<String, String>,
    /// NF id → node name (pin).
    pub nf_node: BTreeMap<String, String>,
    /// Override the domain's default placement strategy.
    pub strategy: Option<PlacementStrategy>,
}

/// Why a domain operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// Static validation failed.
    Invalid(Vec<ValidationError>),
    /// A graph with this id is already deployed.
    AlreadyDeployed(String),
    /// No graph with this id.
    NoSuchGraph(String),
    /// No node with this name.
    NoSuchNode(String),
    /// Fleet-level placement failed.
    Place(PlaceError),
    /// The sharable-NNF registry rejected the plan (no usable host,
    /// pinned host dead, or the instance is at its tenant capacity).
    Sharing(SharingError),
    /// Graph partitioning failed.
    Partition(PartitionError),
    /// The overlay VLAN id pool (`overlay_vid_base..=4094`) has no
    /// free id left for a new cut edge.
    VidPoolExhausted,
    /// The fabric topology offers no usable path between two nodes
    /// that a cut edge must connect.
    NoRoute {
        /// Node hosting the sending side.
        from: String,
        /// Node hosting the receiving side.
        to: String,
    },
    /// A node rejected its part.
    Deploy {
        /// The node that failed.
        node: String,
        /// Its error, stringified.
        error: String,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Invalid(errs) => {
                write!(f, "invalid NF-FG ({} problems): ", errs.len())?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            DomainError::AlreadyDeployed(g) => write!(f, "graph '{g}' already deployed"),
            DomainError::NoSuchGraph(g) => write!(f, "no such graph '{g}'"),
            DomainError::NoSuchNode(n) => write!(f, "no such node '{n}'"),
            DomainError::Place(e) => write!(f, "placement: {e}"),
            DomainError::Sharing(e) => write!(f, "sharing: {e}"),
            DomainError::Partition(e) => write!(f, "partition: {e}"),
            DomainError::VidPoolExhausted => {
                write!(f, "overlay VLAN id pool exhausted (base..=4094 all in use)")
            }
            DomainError::NoRoute { from, to } => {
                write!(f, "no fabric path from '{from}' to '{to}'")
            }
            DomainError::Deploy { node, error } => write!(f, "deploy on '{node}': {error}"),
        }
    }
}

impl std::error::Error for DomainError {}

impl From<PlaceError> for DomainError {
    fn from(e: PlaceError) -> Self {
        DomainError::Place(e)
    }
}

impl From<PartitionError> for DomainError {
    fn from(e: PartitionError) -> Self {
        DomainError::Partition(e)
    }
}

impl From<SharingError> for DomainError {
    fn from(e: SharingError) -> Self {
        DomainError::Sharing(e)
    }
}

/// What a domain deploy reports back.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// Graph id.
    pub graph: String,
    /// Per-node deploy reports, in node-name order.
    pub per_node: Vec<(String, DeployReport)>,
    /// Overlay links stitched for this graph.
    pub overlay_links: usize,
}

/// Result of injecting frames at domain ingresses.
#[derive(Debug, Default)]
pub struct DomainIo {
    /// Frames leaving the domain: (node, physical port, packet).
    pub emitted: Vec<(Name, Name, Packet)>,
    /// Total virtual time consumed, across nodes and overlay hops.
    pub cost: Cost,
    /// Overlay link traversals.
    pub overlay_hops: u32,
    /// Bytes that crossed ESP-protected links (0 when unprotected).
    pub protected_bytes: u64,
}

/// Liveness view of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeating normally.
    Alive,
    /// Heartbeat stale: slow or dead, undecided. The node keeps
    /// serving (traffic, existing partitions) and is still a pinning
    /// target, but a repair is pending — a heartbeat inside the grace
    /// window cancels it, expiry of the window fails the node.
    Suspect,
    /// Declared failed (by grace-window expiry or explicitly).
    Failed,
}

impl NodeHealth {
    /// True while the node can host partitions and carry traffic
    /// (`Alive` or `Suspect`).
    pub fn is_serving(&self) -> bool {
        !matches!(self, NodeHealth::Failed)
    }
}

/// How [`Domain`] repairs graphs when a node fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// Move only the lost sub-partition: surviving NF assignments are
    /// pinned, surviving overlay links keep their VLAN ids (so
    /// untouched nodes' LSIs/NNFs are not redeployed), and only the
    /// cut edges into the dead node are rewired. Falls back to
    /// [`RepairPolicy::FromScratch`] when the pinned plan cannot be
    /// placed or installed.
    #[default]
    Incremental,
    /// Tear down every surviving part and re-plan the whole graph
    /// (the pre-incremental baseline, kept for A/B measurement).
    FromScratch,
}

/// Per-graph repair measurement: what one node failure actually cost.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired graph.
    pub graph: String,
    /// NFs whose node assignment changed (the repair blast radius).
    pub nfs_moved: usize,
    /// NFs left running exactly where they were.
    pub nfs_preserved: usize,
    /// Overlay links rewired: fresh VLAN id or a changed endpoint pair.
    pub links_rewired: usize,
    /// Overlay links whose VLAN id *and* node pair survived untouched.
    pub links_kept: usize,
    /// Nodes whose deployment changed (redeployed, updated, or newly
    /// hosting a part). Untouched survivors are not counted.
    pub nodes_touched: usize,
    /// True if the repair fell back to (or was configured as) a full
    /// from-scratch re-placement.
    pub full_replace: bool,
    /// Of `nfs_moved`, how many moved because the **shared instance**
    /// they ride was re-hosted — blast radius attributed to shared
    /// tenancy rather than to this graph's own placement.
    pub shared_nfs_moved: usize,
    /// Shared instances whose host changed for this graph:
    /// `(share key, new host)`.
    pub shared_migrated: Vec<(String, String)>,
    /// Wall-clock time this graph's repair took (plan + install),
    /// measured on the monotonic clock.
    pub repair_duration_ns: u64,
    /// Estimated wall-clock downtime of this graph's service: from the
    /// failure being declared until *this* graph's repair completed —
    /// graphs repaired later in the sweep wait behind earlier ones, so
    /// their estimate includes the queueing delay.
    pub downtime_estimate_ns: u64,
    /// True when a make-before-break standby plan (staged while the
    /// node was merely suspect) was promoted: the repair skipped the
    /// whole planning phase and installed the pre-staged parts.
    pub standby_promoted: bool,
    /// What the availability model predicted this repair's downtime
    /// would be, stamped *before* the repair ran (calibrated mean for
    /// the repair kind, plus the sweep's queueing delay). The chaos
    /// suites hold modeled-vs-measured within a bracket.
    pub modeled_downtime_ns: u64,
}

/// Frame-conservation ledger across the whole domain.
///
/// Every frame instance the data plane ever created is accounted for:
/// `ingress + fanout_extra == egress + absorbed + dropped()`. Fan-out
/// (flood rules, multi-output NFs) mints `fanout_extra` new instances;
/// `absorbed` counts instances consumed with no output (table miss, NF
/// sink); every other death increments exactly one named drop counter.
/// The chaos suite holds the balance as an invariant after every
/// operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConservationReport {
    /// Frames handed to [`Domain::inject_batch`], pre-validation.
    pub ingress: u64,
    /// Frames that left the domain on a real egress port.
    pub egress: u64,
    /// Extra frame instances minted by fan-out.
    pub fanout_extra: u64,
    /// Frame instances consumed with no output.
    pub absorbed: u64,
    /// Every enumerated drop counter, by name (zero entries omitted).
    pub drops: BTreeMap<&'static str, u64>,
}

impl ConservationReport {
    /// Total frames that died to an enumerated drop cause.
    pub fn dropped(&self) -> u64 {
        self.drops.values().sum()
    }

    /// True when every frame instance is accounted for.
    pub fn balanced(&self) -> bool {
        self.ingress + self.fanout_extra == self.egress + self.absorbed + self.dropped()
    }
}

/// Node-level drop counter names of the conservation ledger, derived
/// from the shared [`DropReason`] enum so ledger terms, metric labels
/// and flight-recorder drop hops can never drift apart.
fn node_drop_counters() -> impl Iterator<Item = &'static str> {
    DropReason::NODE_DROPS.iter().map(|r| r.as_str())
}

/// Domain-level drop counter names of the conservation ledger (same
/// single source of truth: [`DropReason::DOMAIN_DROPS`]).
fn domain_drop_counters() -> impl Iterator<Item = &'static str> {
    DropReason::DOMAIN_DROPS.iter().map(|r| r.as_str())
}

/// Node-level counters that feed the conservation ledger. Folded into
/// the domain trace when a node carcass is replaced on rejoin, so the
/// ledger stays cumulative across the fleet's whole life. The first
/// two are the fan-out/absorption terms of the balance; the rest are
/// the drop causes.
fn node_ledger_counters() -> impl Iterator<Item = &'static str> {
    ["fabric_absorbed", "fabric_fanout_extra"]
        .into_iter()
        .chain(node_drop_counters())
}

/// Outcome of a node failure: which graphs were re-placed, and what
/// each repair cost.
#[derive(Debug, Clone, Default)]
pub struct ReplacementReport {
    /// Graphs successfully re-deployed on the surviving fleet.
    pub replaced: Vec<String>,
    /// Graphs that could not be re-placed (kept as pending specs).
    pub stranded: Vec<String>,
    /// Per-graph repair measurements (one entry per replaced graph).
    pub repairs: Vec<RepairOutcome>,
}

struct ManagedNode {
    node: UniversalNode,
    health: NodeHealth,
    last_heartbeat: SimTime,
}

struct LinkState {
    link: OverlayLink,
    graph: String,
    /// Pinned fabric path `[from_node, …, to_node]` this link rides;
    /// length two when the nodes are adjacent (every full-mesh link).
    path: Vec<String>,
    /// Cost of each path hop, in ns (`path.len() - 1` entries).
    hop_latency_ns: Vec<u64>,
    /// Outbound + inbound SA pair protecting this wire (ESP mode).
    sas: Option<Box<(SecurityAssociation, SecurityAssociation)>>,
    /// Logical frames carried, counted at **every** hop of the pinned
    /// path (`path.len() - 1` hop crossings per end-to-end frame).
    packets: u64,
    bytes: u64,
    /// Per-hop frame counts (`path.len() - 1` entries, hop i =
    /// `path[i] → path[i+1]`). Reset when a repair reroutes the wire.
    hop_packets: Vec<u64>,
    hop_bytes: Vec<u64>,
}

#[derive(Clone)]
struct DomainGraph {
    original: NfFg,
    hints: DeployHints,
    assignment: BTreeMap<String, String>,
    /// Endpoint id → node name (kept so a repair can pin surviving
    /// endpoints without re-deriving them from the partition).
    endpoints: BTreeMap<String, String>,
    partition: Partition,
    /// Leases this graph holds on domain-shared instances (mirrors the
    /// registry's lease table; the chaos suite balances the two).
    shared: BTreeMap<ShareKey, SharedClaim>,
}

/// A computed (but not yet installed) deployment of one graph.
/// `pub(crate)` so [`crate::standby`] can hold pre-computed plans.
pub(crate) struct Plan {
    pub(crate) assignment: BTreeMap<String, String>,
    pub(crate) endpoints: BTreeMap<String, String>,
    pub(crate) partition: Partition,
    /// Fabric path per overlay link vid (`[from, …, to]`).
    pub(crate) paths: BTreeMap<u16, Vec<String>>,
    /// Shared-instance claims this plan rides (committed as leases once
    /// the plan installs).
    pub(crate) shared: BTreeMap<ShareKey, SharedClaim>,
    /// Vids this plan allocated fresh from the pool (reused vids stay
    /// owned by the live deployment). While a standby plan is staged,
    /// these are neither free nor in use: they are reserved.
    pub(crate) taken: Vec<u16>,
}

/// VLAN-id reuse directives for re-planning a live graph. Keys are
/// cut-edge identities; a hit keeps the vid — and with it the
/// synthesized `ovl-<vid>` endpoint id — stable, which is what lets a
/// surviving part come out of re-partitioning byte-identical.
#[derive(Default)]
struct VidReuse {
    /// `(from, to, target)` → vid: both sides survive unchanged.
    exact: BTreeMap<(String, String, un_nffg::PortRef), u16>,
    /// `(from, target)` → vid: the sending side survives but the
    /// target's host died — the new receiver inherits the wire, so the
    /// sender's part (rules retargeted at `ovl-<vid>`) is untouched.
    from_side: BTreeMap<(String, un_nffg::PortRef), u16>,
    /// `(to, target)` → vid: the receiving side survives but the
    /// sender's host died — the receiver keeps its delivery rule and
    /// endpoint, the re-placed sender inherits the wire.
    to_side: BTreeMap<(String, un_nffg::PortRef), u16>,
}

impl VidReuse {
    /// Reuse map keeping only exactly-unchanged cut edges (the update
    /// path: no node died, so no side-inheritance applies).
    fn exact_only(exact: BTreeMap<(String, String, un_nffg::PortRef), u16>) -> Self {
        VidReuse {
            exact,
            ..VidReuse::default()
        }
    }

    /// The vid a new cut edge `(from, to, target)` should inherit.
    ///
    /// Side-map hits are **consumed**: two re-placed cut edges can
    /// legitimately share a surviving side (fan-in from two dead
    /// source nodes to one target), and handing the same vid to both
    /// would collide their synthesized endpoints — the second edge
    /// must take a fresh vid instead.
    fn lookup(&mut self, from: &str, to: &str, target: &un_nffg::PortRef) -> Option<u16> {
        if let Some(vid) = self
            .exact
            .get(&(from.to_string(), to.to_string(), target.clone()))
        {
            return Some(*vid);
        }
        self.from_side
            .remove(&(from.to_string(), target.clone()))
            .or_else(|| self.to_side.remove(&(to.to_string(), target.clone())))
    }
}

/// NFs whose assignment differs between two plans of the same graph.
fn moved_count(old: &BTreeMap<String, String>, new: &BTreeMap<String, String>) -> usize {
    new.iter()
        .filter(|(nf, node)| old.get(*nf) != Some(node))
        .count()
}

/// Shared-tenancy blast radius of a repair: how many of the moved NFs
/// moved because the shared instance they ride was re-hosted, and
/// which instances migrated (`(key, new host)`).
fn shared_blast(entry: &DomainGraph, plan: &Plan) -> (usize, Vec<(String, String)>) {
    let migrated: Vec<(String, String)> = plan
        .shared
        .iter()
        .filter(|(key, claim)| entry.shared.get(key).map(|old| &old.host) != Some(&claim.host))
        .map(|(key, claim)| (key.render(), claim.host.clone()))
        .collect();
    let moved = entry
        .original
        .nfs
        .iter()
        .filter(|nf| {
            plan.shared.contains_key(&ShareKey::of_nf(nf))
                && entry.assignment.get(&nf.id) != plan.assignment.get(&nf.id)
        })
        .count();
    (moved, migrated)
}

/// The domain orchestrator.
pub struct Domain {
    /// Settings.
    pub config: DomainConfig,
    nodes: BTreeMap<String, ManagedNode>,
    graphs: BTreeMap<String, DomainGraph>,
    /// Graphs lost in a failure that no surviving fleet could host.
    pending: BTreeMap<String, (NfFg, DeployHints)>,
    /// Overlay link state, each behind its own lock so the data-plane
    /// shuttle can share the map across workers without building
    /// per-call wrappers (the control plane goes through `get_mut`,
    /// which is lock-free on `&mut self`).
    links: BTreeMap<u16, Mutex<LinkState>>,
    /// The domain-wide sharable-NNF registry (instances, hosts,
    /// leases).
    sharing: SharedRegistry,
    /// Make-before-break standby plans, staged per suspect node.
    standby: StandbyRegistry,
    /// Per-graph measured/modeled downtime ledgers (survive undeploy).
    avail: BTreeMap<String, GraphAvailability>,
    /// Running repair-cost calibration feeding the availability model.
    calibration: RepairCalibration,
    /// When each currently-parked graph lost service (park→drain
    /// downtime is stamped when the graph is restored).
    parked_at: BTreeMap<String, Instant>,
    free_vids: Vec<u16>,
    next_vid: u16,
    clock: SimTime,
    /// Domain-level counters (`graphs_deployed`, `overlay_frames`, …).
    pub trace: TraceLog,
    /// Observability: metric registry + recent-event ring. Inert (one
    /// branch per record call) unless `config.observability` is set.
    obs: Arc<un_obs::Obs>,
    /// Flight recorder: bounded ring of recent real packet traces
    /// (filled by [`Domain::inject_traced`], served by
    /// `GET /domain/traces`). Ghost walks never land here.
    traces: TraceRing,
    /// Persistent shard workers for the data-plane shuttle. Built on
    /// the first multi-worker `inject_batch` call and reused (rebuilt
    /// only if the requested worker count changes); single-worker
    /// injects drain inline and never touch it.
    runtime: Option<ShardRuntime>,
    /// Dirty-set bookkeeping for incremental static verification
    /// ([`Domain::verify`]); behind a lock so read-only verification
    /// can update its caches through `&self`.
    verify_cache: Mutex<verify::VerifyCache>,
}

impl Domain {
    /// An empty domain with the given settings.
    pub fn new(config: DomainConfig) -> Self {
        let next_vid = config.overlay_vid_base;
        let obs = un_obs::Obs::from_flag(config.observability);
        Domain {
            config,
            nodes: BTreeMap::new(),
            graphs: BTreeMap::new(),
            pending: BTreeMap::new(),
            links: BTreeMap::new(),
            sharing: SharedRegistry::default(),
            standby: StandbyRegistry::default(),
            avail: BTreeMap::new(),
            calibration: RepairCalibration::default(),
            parked_at: BTreeMap::new(),
            free_vids: Vec::new(),
            next_vid,
            clock: SimTime::ZERO,
            trace: TraceLog::new(4096),
            obs,
            traces: TraceRing::new(un_obs::DEFAULT_TRACE_CAPACITY),
            runtime: None,
            verify_cache: Mutex::new(verify::VerifyCache::default()),
        }
    }

    /// The domain's observability handle (registry + event ring).
    pub fn obs(&self) -> &Arc<un_obs::Obs> {
        &self.obs
    }

    /// An empty domain with default settings.
    pub fn with_defaults() -> Self {
        Self::new(DomainConfig::default())
    }

    // ------------------------------------------------------------------
    // Fleet management
    // ------------------------------------------------------------------

    /// Adopt a node into the fleet. The fabric interface is created if
    /// the node does not already expose it.
    ///
    /// A node may *rejoin* under the name of a **failed** node (its
    /// partitions were already re-placed or parked by `fail_node`, so
    /// replacing the carcass is safe). Registering a second node under
    /// the name of an **alive** one would silently orphan every graph
    /// partition the original hosts, so that is a hard error.
    ///
    /// # Panics
    ///
    /// If a node with this name is already alive in the fleet.
    pub fn add_node(&mut self, mut node: UniversalNode) -> String {
        if !node.has_physical_port(&self.config.fabric_port) {
            node.add_physical_port(&self.config.fabric_port);
        }
        if self.obs.is_enabled() {
            node.set_obs(self.obs.clone());
        }
        let name = node.name.clone();
        match self.nodes.get(&name) {
            Some(m) if m.health.is_serving() => {
                panic!("node '{name}' is already registered and alive")
            }
            Some(old) => {
                // The carcass's ledger counters must survive the rejoin
                // or the cumulative conservation balance would break.
                for c in node_ledger_counters() {
                    let n = old.node.trace.counter(c);
                    if n > 0 {
                        self.trace.count(c, n);
                    }
                }
                self.trace.count("nodes_rejoined", 1);
            }
            None => self.trace.count("nodes_added", 1),
        }
        self.nodes.insert(
            name.clone(),
            ManagedNode {
                node,
                health: NodeHealth::Alive,
                last_heartbeat: self.clock,
            },
        );
        // Fleet membership changed (and a rejoin may have replaced a
        // carcass wholesale) — re-verify everything.
        self.verify_mark_all();
        name
    }

    /// Fleet size (including failed nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Names of every registered node, including failed carcasses.
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }

    /// Names of alive nodes (excluding suspects).
    pub fn alive_nodes(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, m)| m.health == NodeHealth::Alive)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Names of nodes that can host partitions and carry traffic
    /// (`Alive` or `Suspect` — a suspect is slow, not dead).
    pub fn serving_nodes(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, m)| m.health.is_serving())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Names of nodes currently in the suspect grace window.
    pub fn suspect_nodes(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, m)| m.health == NodeHealth::Suspect)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Borrow a node.
    pub fn node(&self, name: &str) -> Option<&UniversalNode> {
        self.nodes.get(name).map(|m| &m.node)
    }

    /// Borrow a node mutably (tests / harnesses).
    pub fn node_mut(&mut self, name: &str) -> Option<&mut UniversalNode> {
        // The caller can rewrite arbitrary node state through this
        // handle; assume the worst for the verification caches.
        self.verify_mark_all();
        self.nodes.get_mut(name).map(|m| &mut m.node)
    }

    /// Health of one node.
    pub fn health(&self, name: &str) -> Option<NodeHealth> {
        self.nodes.get(name).map(|m| m.health.clone())
    }

    /// Advance the domain clock (propagates to serving nodes).
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
        for managed in self.nodes.values_mut() {
            if managed.health.is_serving() {
                managed.node.set_time(now);
            }
        }
    }

    /// Record a node heartbeat. A heartbeat from a **suspect** node
    /// clears the suspicion and cancels its pending repair; a
    /// heartbeat from a **failed** node is recorded but does not
    /// resurrect it — its partitions are already gone, so rejoining
    /// takes an explicit [`Domain::recover_node`] (or `add_node`).
    pub fn heartbeat(&mut self, name: &str, now: SimTime) -> Result<(), DomainError> {
        let managed = self
            .nodes
            .get_mut(name)
            .ok_or_else(|| DomainError::NoSuchNode(name.to_string()))?;
        managed.last_heartbeat = now;
        if managed.health == NodeHealth::Suspect {
            managed.health = NodeHealth::Alive;
            self.trace.count("suspects_cleared", 1);
            self.discard_standby(name, "heartbeat");
        }
        Ok(())
    }

    /// Explicitly mark an alive node **suspect** (operator signal or an
    /// external failure detector), staging make-before-break standby
    /// plans exactly as a stale heartbeat would. Idempotent no-op on
    /// already-suspect or failed nodes.
    pub fn suspect_node(&mut self, name: &str) -> Result<(), DomainError> {
        let managed = self
            .nodes
            .get_mut(name)
            .ok_or_else(|| DomainError::NoSuchNode(name.to_string()))?;
        if managed.health != NodeHealth::Alive {
            return Ok(());
        }
        managed.health = NodeHealth::Suspect;
        self.trace.count("nodes_suspected", 1);
        self.compute_standby(name);
        Ok(())
    }

    /// Advance time and run the failure detector:
    ///
    /// * alive nodes whose heartbeat is older than
    ///   `heartbeat_timeout_ns` become **suspect** — no repair yet;
    /// * suspect nodes (and alive nodes that skipped the window
    ///   entirely) staler than `heartbeat_timeout_ns +
    ///   suspect_grace_ns` become **failed** and their partitions are
    ///   repaired per [`DomainConfig::repair`].
    ///
    /// Already-failed nodes are ignored, so repeated ticks are
    /// idempotent: a node's failure is reported (and repaired) exactly
    /// once. Returns the repair outcome per newly failed node.
    pub fn tick(&mut self, now: SimTime) -> Vec<(String, ReplacementReport)> {
        self.set_time(now);
        let timeout = self.config.heartbeat_timeout_ns;
        let dead_after = timeout.saturating_add(self.config.suspect_grace_ns);
        // Mark the whole stale set failed *before* re-placing anything,
        // so a graph from the first dead node is never re-placed onto a
        // node that the same sweep is about to declare dead.
        let mut newly_failed: Vec<String> = Vec::new();
        let mut newly_suspected: Vec<String> = Vec::new();
        for (name, m) in self.nodes.iter_mut() {
            let stale_ns = now.duration_since(m.last_heartbeat).as_nanos();
            match m.health {
                NodeHealth::Alive | NodeHealth::Suspect if stale_ns > dead_after => {
                    m.health = NodeHealth::Failed;
                    self.trace.count("nodes_failed", 1);
                    newly_failed.push(name.clone());
                }
                NodeHealth::Alive if stale_ns > timeout => {
                    m.health = NodeHealth::Suspect;
                    self.trace.count("nodes_suspected", 1);
                    newly_suspected.push(name.clone());
                }
                _ => {}
            }
        }
        let reports: Vec<(String, ReplacementReport)> = newly_failed
            .into_iter()
            .map(|n| {
                let report = self.replace_lost_partitions(&n);
                (n, report)
            })
            .collect();
        if !reports.is_empty() {
            // Same blast radius as an explicit fail_node: bystander
            // graphs' overlay paths may have been rerouted.
            self.verify_mark_all();
        }
        // Stage standbys *after* the failure sweep: a plan computed
        // before it could pin parts onto a node the same sweep is
        // about to declare dead.
        for n in newly_suspected {
            self.compute_standby(&n);
        }
        reports
    }

    /// Bring a **failed** node back into service under its old name,
    /// reusing the node object that stayed registered as a carcass.
    ///
    /// Stale graph state still deployed on the node (partitions the
    /// domain re-placed elsewhere, or parked, while the node was dead)
    /// is purged first so its capacity is released and a later deploy
    /// of the same graph id cannot collide. Recovering a **suspect**
    /// node just clears the suspicion (its state is current). Returns
    /// the pending graphs the recovered capacity let
    /// [`Domain::retry_pending`] re-deploy.
    pub fn recover_node(&mut self, name: &str) -> Result<Vec<String>, DomainError> {
        let clock = self.clock;
        let managed = self
            .nodes
            .get_mut(name)
            .ok_or_else(|| DomainError::NoSuchNode(name.to_string()))?;
        match managed.health {
            NodeHealth::Alive => Ok(Vec::new()),
            NodeHealth::Suspect => {
                managed.health = NodeHealth::Alive;
                managed.last_heartbeat = clock;
                self.trace.count("suspects_cleared", 1);
                self.discard_standby(name, "recover");
                Ok(Vec::new())
            }
            NodeHealth::Failed => {
                managed.health = NodeHealth::Alive;
                managed.last_heartbeat = clock;
                managed.node.set_time(clock);
                // Defensive: a partition that still names this node
                // (impossible today — failure always moves them) must
                // not be purged.
                let keep: Vec<String> = self
                    .graphs
                    .iter()
                    .filter(|(_, g)| g.partition.parts.contains_key(name))
                    .map(|(id, _)| id.clone())
                    .collect();
                let dropped = managed.node.retain_graphs(&keep);
                self.trace
                    .count("recover_purged_graphs", dropped.len() as u64);
                self.trace.count("nodes_recovered", 1);
                // Defensive: a failed node's standby was consumed at
                // failure time; any leftover must return its vids.
                self.discard_standby(name, "recover");
                // The node re-enters the audited set with freshly
                // purged tables; cached results for it are stale.
                self.verify_mark_all();
                Ok(self.retry_pending())
            }
        }
    }

    /// The scheduler's view of the fleet. Suspect nodes still count as
    /// placeable (`alive`): suspicion is a short grace window, not a
    /// quarantine, and quarantining them would force every concurrent
    /// update to migrate off a node that is probably just slow.
    pub fn views(&self) -> Vec<NodeView> {
        self.nodes
            .values()
            .map(|m| NodeView {
                name: m.node.name.clone(),
                free_memory: m.node.free_memory(),
                capacity: m.node.mem_capacity(),
                native_types: m.node.native_nnf_types().into_iter().collect(),
                shared_running: m.node.shared_nnf_types().into_iter().collect(),
                sharable_types: m.node.sharable_nnf_types().into_iter().collect(),
                ports: m
                    .node
                    .physical_port_names()
                    .into_iter()
                    .filter(|p| *p != self.config.fabric_port)
                    .collect(),
                alive: m.health.is_serving(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Graph lifecycle
    // ------------------------------------------------------------------

    /// Deploy a graph with default hints.
    pub fn deploy(&mut self, graph: &NfFg) -> Result<DomainReport, DomainError> {
        self.deploy_with(graph, &DeployHints::default())
    }

    /// Deploy a graph across the fleet.
    pub fn deploy_with(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
    ) -> Result<DomainReport, DomainError> {
        let errs = validate(graph);
        if !errs.is_empty() {
            return Err(DomainError::Invalid(errs));
        }
        if self.graphs.contains_key(&graph.id) {
            return Err(DomainError::AlreadyDeployed(graph.id.clone()));
        }
        let plan = self.plan(
            graph,
            hints,
            &BTreeMap::new(),
            &BTreeMap::new(),
            VidReuse::default(),
        )?;
        let report = self.install(graph, hints, plan)?;
        // An explicit deploy supersedes any copy parked by an earlier
        // failure; otherwise retry_pending could double-deploy it. The
        // redeploy ends the park window, so stamp its downtime.
        if self.pending.remove(&graph.id).is_some() {
            self.stamp_park_drain(&graph.id);
        }
        self.trace.count("graphs_deployed", 1);
        Ok(report)
    }

    /// Compute assignment + partition without touching any node.
    ///
    /// `nf_pins` / `ep_pins` force NFs and endpoints onto specific
    /// nodes (used to keep survivors in place across updates and
    /// repairs; they override the caller's hints). `reuse` maps
    /// cut-edge identities to the VLAN ids a live deployment of this
    /// graph already uses, so re-planning keeps unchanged overlay
    /// links (and their synthesized endpoint ids) stable — the
    /// property that lets rule-only updates apply in place, and that
    /// lets a repair leave surviving nodes' parts byte-identical.
    fn plan(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
        nf_pins: &BTreeMap<String, String>,
        ep_pins: &BTreeMap<String, String>,
        reuse: VidReuse,
    ) -> Result<Plan, DomainError> {
        self.plan_ctx(graph, hints, nf_pins, ep_pins, reuse, None, None)
    }

    /// [`Domain::plan`] with standby-planning context: `exclude`
    /// pretends one (suspect) node is already dead, so the plan routes
    /// and places around it; `shared_standby` supplies pre-elected
    /// replacement hosts for shared replicas the excluded node carries.
    #[allow(clippy::too_many_arguments)]
    fn plan_ctx(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
        nf_pins: &BTreeMap<String, String>,
        ep_pins: &BTreeMap<String, String>,
        mut reuse: VidReuse,
        exclude: Option<&str>,
        shared_standby: Option<&BTreeMap<ShareKey, String>>,
    ) -> Result<Plan, DomainError> {
        let plan_started = Instant::now();
        let mut views = self.views();
        if let Some(x) = exclude {
            for v in views.iter_mut() {
                if v.name == x {
                    v.alive = false;
                }
            }
        }
        let serving: BTreeSet<String> = views
            .iter()
            .filter(|v| v.alive)
            .map(|v| v.name.clone())
            .collect();
        // Hop distances feed the scorer's path-length term and the
        // topology-aware endpoint/host choices; `None` in full-mesh
        // mode (every pair is one hop — skip the O(n²) matrix on big
        // fleets).
        let fabric_hops = self.config.topology.hop_matrix(&serving);
        let mut merged_ep_pins = hints.endpoint_node.clone();
        merged_ep_pins.extend(ep_pins.clone());
        let endpoint_node = assign_endpoints(graph, &views, &merged_ep_pins, fabric_hops.as_ref())?;
        let estimates = self.estimates(graph);
        let mut merged_pins = hints.nf_node.clone();
        merged_pins.extend(nf_pins.clone());
        // Fleet-level sharable-NNF claims: every enabled-type NF is
        // pinned onto the registry's host for its share key — the host
        // a live instance already has, or a freshly elected one. The
        // partitioner then cuts the tenant's edges toward that node
        // and the path engine routes them (multi-hop included), so the
        // graph rides the shared instance instead of instantiating its
        // own. An explicit `hints.nf_node` pin opts the NF out of the
        // registry; survivor pins are overridden (tenants converge on
        // the elected host).
        let mut shared: BTreeMap<ShareKey, SharedClaim> = BTreeMap::new();
        if self.config.sharing.enabled {
            let demand: BTreeSet<String> = endpoint_node.values().cloned().collect();
            for nf in &graph.nfs {
                if !self.config.sharing.types.contains(&nf.functional_type)
                    || hints.nf_node.contains_key(&nf.id)
                {
                    continue;
                }
                let key = ShareKey::of_nf(nf);
                if let Some(claim) = shared.get_mut(&key) {
                    // Second NF of the same key: same host, same lease.
                    merged_pins.insert(nf.id.clone(), claim.host.clone());
                    claim.nfs += 1;
                    continue;
                }
                // Replica choice, in decreasing order of stability:
                // (a) the replica this graph already leases (if its
                // host serves) — re-planning never migrates a tenant
                // gratuitously; (b) the serving replica with the most
                // lease headroom (fewest leases, host-name tie-break);
                // (c) a standby host pre-elected at Suspect time;
                // (d) a fresh election — the first instance of the
                // pool, a failover, or (when `scale_out` is on and
                // every serving replica is full) a second instance
                // that splits the tenancy instead of erroring.
                let standby_host: Option<String> = shared_standby
                    .and_then(|m| m.get(&key))
                    .filter(|h| serving.contains(*h))
                    .cloned();
                let mut chosen: Option<String> = self
                    .sharing
                    .replicas(&key)
                    .iter()
                    .find(|i| i.leases.contains_key(&graph.id))
                    .map(|i| i.host.clone())
                    .filter(|h| serving.contains(h));
                let mut full_host: Option<String> = None;
                if chosen.is_none() {
                    let mut best: Option<(usize, String)> = None;
                    for inst in self.sharing.replicas(&key) {
                        if !serving.contains(&inst.host) {
                            continue;
                        }
                        let leases = inst.leases.len();
                        if self
                            .config
                            .sharing
                            .max_leases
                            .is_some_and(|max| leases >= max)
                        {
                            full_host = Some(inst.host.clone());
                            continue;
                        }
                        let better = best
                            .as_ref()
                            .is_none_or(|(l, h)| leases < *l || (leases == *l && inst.host < *h));
                        if better {
                            best = Some((leases, inst.host.clone()));
                        }
                    }
                    chosen = best.map(|(_, h)| h).or(standby_host);
                }
                let host = match chosen {
                    Some(h) => h,
                    None => {
                        let scale_out = full_host.is_some();
                        if scale_out && !self.config.sharing.scale_out {
                            return Err(DomainError::Sharing(SharingError::CapacityExhausted {
                                key: key.render(),
                                host: full_host.expect("checked above"),
                                max_leases: self.config.sharing.max_leases.unwrap_or(0),
                            }));
                        }
                        // Node-level NNF singletons cannot host two
                        // instances of one type, so every host already
                        // carrying this functional type is excluded —
                        // sibling capability pools, same-key replicas
                        // (a scale-out must land elsewhere), AND the
                        // hosts this very plan claimed a few NFs ago.
                        let occupied: BTreeSet<String> = self
                            .sharing
                            .instances()
                            .filter(|i| i.key.functional_type == key.functional_type)
                            .map(|i| i.host.clone())
                            .chain(
                                shared
                                    .iter()
                                    .filter(|(k, _)| k.functional_type == key.functional_type)
                                    .map(|(_, c)| c.host.clone()),
                            )
                            .collect();
                        let elected = elect(
                            &key,
                            &self.config.sharing.election,
                            &views,
                            fabric_hops.as_ref(),
                            &demand,
                            &occupied,
                        )?;
                        if scale_out {
                            self.trace.count("shared_scale_outs", 1);
                            self.obs.event(
                                "domain.shared.scale_out",
                                vec![
                                    ("key", key.render().into()),
                                    ("host", elected.clone().into()),
                                ],
                            );
                        }
                        elected
                    }
                };
                merged_pins.insert(nf.id.clone(), host.clone());
                shared.insert(key, SharedClaim { host, nfs: 1 });
            }
        }
        // Leases the graph already holds confine the scorer's per-node
        // shared-reuse bonus to the lease hosts (no double-counting;
        // one entry per capability pool).
        let mut held_leases: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (key, claim) in self.sharing.leases_of(&graph.id) {
            held_leases
                .entry(key.functional_type)
                .or_default()
                .insert(claim.host);
        }
        let assignment = assign(
            graph,
            &views,
            &estimates,
            &endpoint_node,
            &merged_pins,
            &held_leases,
            hints.strategy.unwrap_or(self.config.strategy),
            fabric_hops.as_ref(),
        )?;
        // Reserve VLAN ids (fresh ones only; reused ids stay owned by
        // the live deployment); fresh ids return to the pool if
        // routing or installation fails.
        let fabric = self.config.fabric_port.clone();
        let mut taken: Vec<u16> = Vec::new();
        let partition_started = Instant::now();
        let part = {
            let free_vids = &mut self.free_vids;
            let next_vid = &mut self.next_vid;
            let mut alloc = |from: &str, to: &str, target: &un_nffg::PortRef| {
                if let Some(vid) = reuse.lookup(from, to, target) {
                    return Some(vid);
                }
                let vid = free_vids.pop().or_else(|| {
                    if *next_vid > OVERLAY_VID_MAX {
                        None
                    } else {
                        let v = *next_vid;
                        *next_vid += 1;
                        Some(v)
                    }
                })?;
                taken.push(vid);
                Some(vid)
            };
            partition(graph, &assignment, &endpoint_node, &fabric, &mut alloc)
        };
        let mut part = match part {
            Ok(part) => part,
            Err(e) => {
                self.free_vids.extend(taken);
                return Err(match e {
                    PartitionError::VidExhausted => DomainError::VidPoolExhausted,
                    other => other.into(),
                });
            }
        };
        self.obs.span(
            "domain.partition",
            partition_started,
            vec![
                ("graph", graph.id.clone().into()),
                ("parts", part.parts.len().into()),
                ("links", part.links.len().into()),
            ],
        );
        // Route every cut edge over the fabric: shortest usable path
        // per link (no path may touch a non-serving node). Multi-hop
        // paths get transit rules installed on intermediate nodes.
        // Routing is capacity-aware: edges already carrying pinned
        // overlay paths repel new ones in proportion to how thin they
        // are (see `Topology::shortest_path_loaded`). The graph's own
        // live links are excluded from the load map so re-planning
        // never repels a kept wire off the route it already rides.
        let usable = |n: &str| serving.contains(n);
        let edge_key = |a: &str, b: &str| {
            if a <= b {
                (a.to_string(), b.to_string())
            } else {
                (b.to_string(), a.to_string())
            }
        };
        let mut edge_paths: BTreeMap<(String, String), u64> = BTreeMap::new();
        for state in self.links.values() {
            let state = state.lock().expect("link lock poisoned");
            if state.graph == graph.id {
                continue;
            }
            for w in state.path.windows(2) {
                *edge_paths.entry(edge_key(&w[0], &w[1])).or_insert(0) += 1;
            }
        }
        let mut paths: BTreeMap<u16, Vec<String>> = BTreeMap::new();
        for link in &part.links {
            let routed = {
                let edge_load =
                    |a: &str, b: &str| edge_paths.get(&edge_key(a, b)).copied().unwrap_or(0);
                self.config.topology.shortest_path_loaded(
                    &link.from_node,
                    &link.to_node,
                    &usable,
                    &edge_load,
                )
            };
            match routed {
                Some(path) => {
                    // Only *other* graphs' pinned paths load the map:
                    // the links of one plan keep the old lexicographic
                    // tie-break among themselves, so a graph's wires
                    // stay co-routed (and re-plans stay stable).
                    paths.insert(link.vid, path);
                }
                None => {
                    self.free_vids.extend(taken);
                    return Err(DomainError::NoRoute {
                        from: link.from_node.clone(),
                        to: link.to_node.clone(),
                    });
                }
            }
        }
        let transit_started = Instant::now();
        install_transit(graph, &mut part.parts, &part.links, &paths, &fabric);
        if self.obs.is_enabled() {
            let multi_hop = paths.values().filter(|p| p.len() > 2).count();
            self.obs.span(
                "domain.install_transit",
                transit_started,
                vec![
                    ("graph", graph.id.clone().into()),
                    ("multi_hop_links", multi_hop.into()),
                ],
            );
            self.obs.span(
                "domain.plan",
                plan_started,
                vec![
                    ("graph", graph.id.clone().into()),
                    ("parts", part.parts.len().into()),
                    ("links", part.links.len().into()),
                    ("shared_claims", shared.len().into()),
                ],
            );
        }
        Ok(Plan {
            assignment,
            endpoints: endpoint_node,
            partition: part,
            paths,
            shared,
            taken,
        })
    }

    /// Commit a successfully installed plan's shared claims as leases,
    /// releasing leases the graph no longer claims (dropping instances
    /// whose last tenant left).
    fn commit_shared(&mut self, gid: &str, claims: &BTreeMap<ShareKey, SharedClaim>) {
        let keep: BTreeSet<ShareKey> = claims.keys().cloned().collect();
        let dropped = self.sharing.release_except(gid, &keep);
        self.trace
            .count("shared_instances_dropped", dropped.len() as u64);
        for (key, claim) in claims {
            let (instance_new, lease_new, replicas_dropped) =
                self.sharing.commit(gid, key, &claim.host, claim.nfs);
            if instance_new {
                self.trace.count("shared_instances_registered", 1);
            }
            if replicas_dropped > 0 {
                // A lease move emptied sibling replica(s) of the pool.
                self.trace
                    .count("shared_instances_dropped", replicas_dropped as u64);
            }
            if lease_new {
                self.trace.count("shared_leases_acquired", 1);
                self.obs.event(
                    "domain.lease.acquire",
                    vec![
                        ("graph", gid.into()),
                        ("key", key.render().into()),
                        ("host", claim.host.clone().into()),
                    ],
                );
            }
        }
    }

    /// Release every shared lease a graph holds (undeploy, park, or
    /// failed update), dropping instances whose last tenant left.
    fn release_shared(&mut self, gid: &str) {
        let dropped = self.sharing.release_graph(gid);
        // Only graphs that actually ride shared instances are worth an
        // event — every undeploy funnels through here.
        if self.config.sharing.enabled {
            self.obs.event(
                "domain.lease.release",
                vec![
                    ("graph", gid.into()),
                    ("instances_dropped", dropped.len().into()),
                ],
            );
        }
        self.trace
            .count("shared_instances_dropped", dropped.len() as u64);
    }

    /// Per-hop cost of one routed path: explicit edges carry their own
    /// latency, full-mesh (implicit) hops cost `overlay_link_ns`. (A
    /// routed path in explicit mode only ever walks explicit edges, so
    /// the default fires exactly for implicit full-mesh hops.)
    fn hop_latencies(&self, path: &[String]) -> Vec<u64> {
        path.windows(2)
            .map(|w| {
                self.config
                    .topology
                    .edge(&w[0], &w[1])
                    .map_or(self.config.overlay_link_ns, |e| e.latency_ns)
            })
            .collect()
    }

    /// Deploy the parts of a planned graph; rolls back on failure.
    fn install(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
        plan: Plan,
    ) -> Result<DomainReport, DomainError> {
        let Plan {
            assignment,
            endpoints,
            partition: part,
            paths,
            shared,
            taken: _,
        } = plan;
        let mut per_node: Vec<(String, DeployReport)> = Vec::new();
        let mut deployed: Vec<String> = Vec::new();
        for (node_name, sub) in &part.parts {
            let managed = self
                .nodes
                .get_mut(node_name)
                .expect("assignment uses fleet");
            match managed.node.deploy(sub) {
                Ok(report) => {
                    per_node.push((node_name.clone(), report));
                    deployed.push(node_name.clone());
                }
                Err(e) => {
                    for prior in &deployed {
                        let m = self.nodes.get_mut(prior).expect("deployed above");
                        let _ = m.node.undeploy(&graph.id);
                    }
                    self.free_vids.extend(part.links.iter().map(|l| l.vid));
                    self.trace.count("deploys_rolled_back", 1);
                    return Err(DomainError::Deploy {
                        node: node_name.clone(),
                        error: e.to_string(),
                    });
                }
            }
        }
        // Stitch the overlay.
        self.register_links(&graph.id, &part.links, &paths);
        let report = DomainReport {
            graph: graph.id.clone(),
            per_node,
            overlay_links: part.links.len(),
        };
        self.commit_shared(&graph.id, &shared);
        self.graphs.insert(
            graph.id.clone(),
            DomainGraph {
                original: graph.clone(),
                hints: hints.clone(),
                assignment,
                endpoints,
                partition: part,
                shared,
            },
        );
        self.verify_mark_graph(&graph.id);
        Ok(report)
    }

    /// Register overlay link state (deriving SA pairs in ESP mode) for
    /// a graph's freshly partitioned links, pinning each to its routed
    /// fabric path.
    fn register_links(
        &mut self,
        graph_id: &str,
        links: &[OverlayLink],
        paths: &BTreeMap<u16, Vec<String>>,
    ) {
        for link in links {
            let sas = self
                .config
                .protect_overlay
                .then(|| Box::new(derive_link_sas(self.config.seed, link)));
            let path = paths
                .get(&link.vid)
                .cloned()
                .unwrap_or_else(|| vec![link.from_node.clone(), link.to_node.clone()]);
            let hop_latency_ns = self.hop_latencies(&path);
            let hops = path.len().saturating_sub(1);
            self.links.insert(
                link.vid,
                Mutex::new(LinkState {
                    link: link.clone(),
                    graph: graph_id.to_string(),
                    path,
                    hop_latency_ns,
                    sas,
                    packets: 0,
                    bytes: 0,
                    hop_packets: vec![0; hops],
                    hop_bytes: vec![0; hops],
                }),
            );
        }
        self.trace.count("overlay_links_up", links.len() as u64);
    }

    /// Scheduler RAM estimates for every NF of a graph (representative
    /// node; the fleet shares one repository).
    fn estimates(&self, graph: &NfFg) -> BTreeMap<String, u64> {
        let probe = self
            .nodes
            .values()
            .find(|m| m.health.is_serving())
            .map(|m| &m.node);
        graph
            .nfs
            .iter()
            .map(|nf| {
                let est = probe
                    .and_then(|n| n.estimate_nf_ram(&nf.functional_type, nf.flavor.as_deref()))
                    .unwrap_or(64 << 20);
                (nf.id.clone(), est)
            })
            .collect()
    }

    /// Update a deployed graph (rule-level changes update parts in
    /// place; structural changes re-plan, keeping surviving NFs on
    /// their nodes).
    pub fn update(&mut self, graph: &NfFg) -> Result<DomainReport, DomainError> {
        let errs = validate(graph);
        if !errs.is_empty() {
            return Err(DomainError::Invalid(errs));
        }
        let Some(existing) = self.graphs.get(&graph.id) else {
            return Err(DomainError::NoSuchGraph(graph.id.clone()));
        };
        let diff = un_nffg::diff(&existing.original, graph);
        if diff.is_empty() {
            return Ok(DomainReport {
                graph: graph.id.clone(),
                per_node: Vec::new(),
                overlay_links: existing.partition.links.len(),
            });
        }
        self.trace.count(
            if diff.is_structural() {
                "graph_updates_structural"
            } else {
                "graph_updates_rules"
            },
            1,
        );
        // Dirty the pre-update hosts now; the post-update hosts are
        // dirtied when the new partition commits.
        self.verify_mark_graph(&graph.id);

        let hints = existing.hints.clone();
        // Keep surviving NFs where they run today (suspect nodes are
        // still "today" — an unrelated update must not migrate them).
        let serving: Vec<String> = self.serving_nodes();
        let pins: BTreeMap<String, String> = existing
            .assignment
            .iter()
            .filter(|(nf, node)| graph.nf(nf).is_some() && serving.iter().any(|a| a == *node))
            .map(|(nf, node)| (nf.clone(), node.clone()))
            .collect();
        let old_parts: BTreeMap<String, NfFg> = existing.partition.parts.clone();
        let old_links: Vec<u16> = existing.partition.links.iter().map(|l| l.vid).collect();
        // Unchanged cut edges keep their VLAN id (and thus their
        // synthesized endpoint id), so a rules-only update leaves the
        // parts' endpoint sets intact and applies in place per node.
        let reuse = VidReuse::exact_only(
            existing
                .partition
                .links
                .iter()
                .map(|l| {
                    (
                        (l.from_node.clone(), l.to_node.clone(), l.dst_target.clone()),
                        l.vid,
                    )
                })
                .collect(),
        );

        // Any staged standby plan of this graph predates the update:
        // discard it (returning its reserved vids) before re-planning.
        self.discard_graph_standby(&graph.id);

        let plan = self.plan(graph, &hints, &pins, &BTreeMap::new(), reuse)?;
        let Plan {
            assignment,
            endpoints,
            partition: part,
            paths,
            shared,
            taken: _,
        } = plan;

        // Reconcile per node.
        let mut per_node: Vec<(String, DeployReport)> = Vec::new();
        let mut failure: Option<DomainError> = None;
        for (node_name, sub) in &part.parts {
            let managed = self
                .nodes
                .get_mut(node_name)
                .expect("assignment uses fleet");
            let result = if old_parts.contains_key(node_name) {
                managed.node.update(sub)
            } else {
                managed.node.deploy(sub)
            };
            match result {
                Ok(report) => per_node.push((node_name.clone(), report)),
                Err(e) => {
                    failure = Some(DomainError::Deploy {
                        node: node_name.clone(),
                        error: e.to_string(),
                    });
                    break;
                }
            }
        }
        if failure.is_none() {
            for node_name in old_parts.keys() {
                if !part.parts.contains_key(node_name) {
                    if let Some(m) = self.nodes.get_mut(node_name) {
                        let _ = m.node.undeploy(&graph.id);
                    }
                }
            }
        }
        if let Some(err) = failure {
            // Best-effort cleanup: drop the graph everywhere; the caller
            // holds the spec and can redeploy.
            for node_name in part.parts.keys().chain(old_parts.keys()) {
                if let Some(m) = self.nodes.get_mut(node_name) {
                    let _ = m.node.undeploy(&graph.id);
                }
            }
            // Reused vids appear in both link sets — free each once.
            let all: std::collections::BTreeSet<u16> = old_links
                .iter()
                .copied()
                .chain(part.links.iter().map(|l| l.vid))
                .collect();
            for vid in all {
                self.links.remove(&vid);
                self.free_vids.push(vid);
            }
            self.graphs.remove(&graph.id);
            self.release_shared(&graph.id);
            self.trace.count("updates_failed", 1);
            // The rollback touched the would-be hosts too, which were
            // never marked — re-verify everything.
            self.verify_mark_all();
            return Err(err);
        }

        // Swap overlay link state: free vids the new partition no
        // longer uses, then (re-)register the new link set (reused vids
        // get fresh LinkState; counters restart, SAs re-derive to the
        // same keys).
        let kept: std::collections::BTreeSet<u16> = part.links.iter().map(|l| l.vid).collect();
        for vid in old_links {
            self.links.remove(&vid);
            if !kept.contains(&vid) {
                self.free_vids.push(vid);
            }
        }
        self.register_links(&graph.id, &part.links, &paths);
        let overlay_links = part.links.len();
        self.commit_shared(&graph.id, &shared);
        self.graphs.insert(
            graph.id.clone(),
            DomainGraph {
                original: graph.clone(),
                hints,
                assignment,
                endpoints,
                partition: part,
                shared,
            },
        );
        self.verify_mark_graph(&graph.id);
        Ok(DomainReport {
            graph: graph.id.clone(),
            per_node,
            overlay_links,
        })
    }

    /// Undeploy a graph from every node that hosts a part of it (and
    /// drop any copy parked for re-placement — an undeployed graph
    /// must never resurrect through `retry_pending`).
    pub fn undeploy(&mut self, graph_id: &str) -> Result<(), DomainError> {
        // Capture the current hosts in the dirty set before the entry
        // is gone.
        self.verify_mark_graph(graph_id);
        let was_pending = self.pending.remove(graph_id).is_some();
        let Some(entry) = self.graphs.remove(graph_id) else {
            if was_pending {
                return Ok(());
            }
            return Err(DomainError::NoSuchGraph(graph_id.to_string()));
        };
        for node_name in entry.partition.parts.keys() {
            if let Some(m) = self.nodes.get_mut(node_name) {
                if m.health.is_serving() {
                    let _ = m.node.undeploy(graph_id);
                }
            }
        }
        for link in &entry.partition.links {
            self.links.remove(&link.vid);
            self.free_vids.push(link.vid);
        }
        // Standby plans staged for this graph are moot; their reserved
        // vids must return to the pool. The park window (if any) ends
        // without a drain: the operator gave the graph up.
        self.discard_graph_standby(graph_id);
        self.parked_at.remove(graph_id);
        self.release_shared(graph_id);
        self.trace.count("graphs_undeployed", 1);
        Ok(())
    }

    /// Deployed graph ids (pending re-placement excluded).
    pub fn graph_ids(&self) -> Vec<String> {
        self.graphs.keys().cloned().collect()
    }

    /// The original (whole) NF-FG of a deployed graph.
    pub fn graph(&self, id: &str) -> Option<&NfFg> {
        self.graphs.get(id).map(|g| &g.original)
    }

    /// The current partition of a deployed graph.
    pub fn partition_of(&self, id: &str) -> Option<&Partition> {
        self.graphs.get(id).map(|g| &g.partition)
    }

    /// Node assignment of a deployed graph's NFs.
    pub fn assignment_of(&self, id: &str) -> Option<&BTreeMap<String, String>> {
        self.graphs.get(id).map(|g| &g.assignment)
    }

    /// Graphs waiting for capacity after a failure.
    pub fn pending_graphs(&self) -> Vec<String> {
        self.pending.keys().cloned().collect()
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// Declare a node failed and repair every partition it hosted per
    /// [`DomainConfig::repair`] (incremental by default: only the lost
    /// sub-partition moves; survivors keep their placements, their
    /// overlay VLAN ids, and — where their part is byte-identical —
    /// their entire local deployment).
    pub fn fail_node(&mut self, name: &str) -> Result<ReplacementReport, DomainError> {
        let managed = self
            .nodes
            .get_mut(name)
            .ok_or_else(|| DomainError::NoSuchNode(name.to_string()))?;
        if managed.health == NodeHealth::Failed {
            // Idempotent: the partitions were already repaired when the
            // node first failed; there is nothing left to move.
            return Ok(ReplacementReport::default());
        }
        managed.health = NodeHealth::Failed;
        self.trace.count("nodes_failed", 1);
        // Repair reroutes overlay paths of *other* graphs riding the
        // casualty (transit rules on bystander nodes), so per-graph
        // dirty marks are not enough.
        self.verify_mark_all();
        Ok(self.replace_lost_partitions(name))
    }

    /// Repair every graph hosting a part on the (already marked
    /// failed) node `name`.
    fn replace_lost_partitions(&mut self, name: &str) -> ReplacementReport {
        // Downtime epoch: the failure is declared now; each graph's
        // estimated downtime runs from here to the end of its own
        // repair (so graphs later in the sweep include queueing delay).
        let failed_at = Instant::now();
        self.obs
            .event("domain.node.failed", vec![("node", name.into())]);
        // Standby plans staged while the node was merely suspect: the
        // make-before-break payload. Graph plans promote below; shared
        // standby hosts promote here.
        let mut node_sb = self.standby.take(name).unwrap_or_default();
        // Shared instances the casualty hosted are re-elected **once**
        // at registry level before any tenant is repaired, so every
        // tenant plan converges on the same new home (demand = the
        // surviving nodes its tenants occupy). A standby host elected
        // at Suspect time short-circuits the election to a promotion.
        // If no candidate exists, the host stays dead: each tenant
        // plan fails, the tenants park, and the last released lease
        // drops the instance.
        if self.config.sharing.enabled {
            let orphaned = self.sharing.hosted_on(name);
            if !orphaned.is_empty() {
                let views = self.views();
                let serving: BTreeSet<String> = self.serving_nodes().into_iter().collect();
                let fabric_hops = self.config.topology.hop_matrix(&serving);
                for key in orphaned {
                    if let Some(host) = node_sb.shared.remove(&key) {
                        // Promote the pre-elected standby host if it
                        // still serves and no sibling instance of the
                        // type landed there since.
                        let vacant = self
                            .sharing
                            .hosted_on(&host)
                            .iter()
                            .all(|k| k.functional_type != key.functional_type);
                        if serving.contains(&host) && vacant {
                            self.sharing.set_host(&key, name, &host);
                            self.trace.count("shared_hosts_reelected", 1);
                            self.trace.count("standby_shared_promoted", 1);
                            self.obs.event(
                                "domain.standby.promoted",
                                vec![
                                    ("kind", "shared".into()),
                                    ("key", key.render().into()),
                                    ("host", host.into()),
                                ],
                            );
                            continue;
                        }
                    }
                    let demand: BTreeSet<String> = self
                        .sharing
                        .replica_on(&key, name)
                        .map(|inst| inst.leases.keys())
                        .into_iter()
                        .flatten()
                        .filter_map(|gid| self.graphs.get(gid))
                        .flat_map(|g| g.assignment.values().chain(g.endpoints.values()))
                        .filter(|n| serving.contains(*n))
                        .cloned()
                        .collect();
                    let occupied: BTreeSet<String> = self
                        .sharing
                        .instances()
                        .filter(|i| i.key.functional_type == key.functional_type)
                        .map(|i| i.host.clone())
                        .collect();
                    if let Ok(host) = elect(
                        &key,
                        &self.config.sharing.election,
                        &views,
                        fabric_hops.as_ref(),
                        &demand,
                        &occupied,
                    ) {
                        self.sharing.set_host(&key, name, &host);
                        self.trace.count("shared_hosts_reelected", 1);
                        self.obs.event(
                            "domain.shared.elect",
                            vec![("key", key.render().into()), ("host", host.into())],
                        );
                    }
                }
            }
        }
        // Graphs with a part on the dead node.
        let affected: Vec<String> = self
            .graphs
            .iter()
            .filter(|(_, g)| g.partition.parts.contains_key(name))
            .map(|(id, _)| id.clone())
            .collect();

        let mut report = ReplacementReport::default();
        // The model's running clock through the sweep: graph i's
        // prediction includes the predicted queueing delay of the
        // i-1 repairs before it, mirroring how `downtime_estimate_ns`
        // accumulates on the measured side.
        let mut queue_model_ns: u64 = 0;
        for gid in affected {
            let repair_started = Instant::now();
            let entry = self.graphs.remove(&gid).expect("listed above");
            // A standby plan is only promotable under the incremental
            // policy, and only while still valid (same wires, every
            // planned node still serving). Invalid plans are discarded
            // explicitly — their reserved vids must return to the pool.
            let standby = if self.config.repair == RepairPolicy::Incremental {
                match node_sb.graphs.remove(&gid) {
                    Some(sb) if self.standby_valid(&sb, &entry) => Some(sb),
                    Some(sb) => {
                        self.discard_standby_plan(name, &gid, sb, "stale");
                        None
                    }
                    None => None,
                }
            } else {
                None
            };
            let predicted_kind = if standby.is_some() {
                RepairKind::StandbySwap
            } else {
                match self.config.repair {
                    RepairPolicy::Incremental => RepairKind::Reactive,
                    RepairPolicy::FromScratch => RepairKind::FromScratch,
                }
            };
            let modeled = queue_model_ns.saturating_add(self.calibration.predict(predicted_kind));
            let outcome = match standby {
                // A promotion failure falls straight to from-scratch:
                // the failed install already tore the survivors down,
                // so the incremental path's diff-skip assumption no
                // longer holds.
                Some(sb) => self
                    .promote_standby(&gid, &entry, sb)
                    .or_else(|_| self.replace_from_scratch(&gid, &entry)),
                // When incremental repair cannot hold the pinned plan,
                // tear everything down and re-plan with full freedom —
                // a repack may fit where the pinned increment could not.
                None => match self.config.repair {
                    RepairPolicy::Incremental => self
                        .repair_incremental(&gid, &entry)
                        .or_else(|_| self.replace_from_scratch(&gid, &entry)),
                    RepairPolicy::FromScratch => self.replace_from_scratch(&gid, &entry),
                },
            };
            match outcome {
                Ok(mut o) => {
                    o.repair_duration_ns = repair_started.elapsed().as_nanos() as u64;
                    o.downtime_estimate_ns = failed_at.elapsed().as_nanos() as u64;
                    o.modeled_downtime_ns = modeled;
                    queue_model_ns = modeled;
                    let actual_kind = if o.standby_promoted {
                        RepairKind::StandbySwap
                    } else if o.full_replace {
                        RepairKind::FromScratch
                    } else {
                        RepairKind::Reactive
                    };
                    self.calibration.record(actual_kind, o.repair_duration_ns);
                    let ledger = self
                        .avail
                        .entry(gid.clone())
                        .or_insert_with(|| GraphAvailability::new(&gid));
                    ledger.repairs += 1;
                    ledger.measured_downtime_ns += o.downtime_estimate_ns;
                    ledger.modeled_downtime_ns += modeled;
                    if o.standby_promoted {
                        ledger.standby_promotions += 1;
                    }
                    self.obs.span(
                        "domain.repair",
                        repair_started,
                        vec![
                            ("graph", o.graph.clone().into()),
                            ("nfs_moved", o.nfs_moved.into()),
                            ("nfs_preserved", o.nfs_preserved.into()),
                            ("links_rewired", o.links_rewired.into()),
                            ("nodes_touched", o.nodes_touched.into()),
                            ("full_replace", o.full_replace.into()),
                            ("standby_promoted", o.standby_promoted.into()),
                            ("downtime_estimate_ns", o.downtime_estimate_ns.into()),
                        ],
                    );
                    self.trace.count("graphs_replaced", 1);
                    self.trace.count("repair_nfs_moved", o.nfs_moved as u64);
                    self.trace
                        .count("repair_nfs_preserved", o.nfs_preserved as u64);
                    self.trace
                        .count("repair_links_rewired", o.links_rewired as u64);
                    self.trace.count("repair_links_kept", o.links_kept as u64);
                    if o.full_replace {
                        self.trace.count("repairs_full", 1);
                    } else {
                        self.trace.count("repairs_incremental", 1);
                    }
                    report.replaced.push(gid);
                    report.repairs.push(o);
                }
                Err(_) => {
                    // Park the spec with pins pruned to the surviving
                    // fleet so retry_pending can re-place it once
                    // capacity returns. A parked tenant is no live wire:
                    // its shared leases are released (the instance drops
                    // with its last tenant and re-registers on retry).
                    let serving = self.serving_nodes();
                    let mut hints = entry.hints.clone();
                    hints.endpoint_node.retain(|_, n| serving.contains(n));
                    hints.nf_node.retain(|_, n| serving.contains(n));
                    self.release_shared(&gid);
                    self.trace.count("graphs_stranded", 1);
                    // Park epoch: the downtime ledger stamps the park→
                    // drain window when the graph is restored.
                    self.parked_at.insert(gid.clone(), Instant::now());
                    self.avail
                        .entry(gid.clone())
                        .or_insert_with(|| GraphAvailability::new(&gid))
                        .park_events += 1;
                    self.pending.insert(gid.clone(), (entry.original, hints));
                    report.stranded.push(gid);
                }
            }
        }
        // Standby plans for graphs the failure no longer touches (the
        // graph was undeployed since, or the policy is from-scratch):
        // discard, returning their reserved vids.
        let leftover: Vec<(String, GraphStandby)> = node_sb.graphs.into_iter().collect();
        for (gid, sb) in leftover {
            self.discard_standby_plan(name, &gid, sb, "stale");
        }
        // Standbys staged for *other* suspect nodes may reference the
        // casualty (as part host, transit hop, or shared host) or a
        // graph this sweep re-planned: re-validate them all.
        self.prune_stale_standbys();
        self.update_standby_gauge();
        report
    }

    /// Incremental repair of one graph: pin everything that survives,
    /// inherit overlay VLAN ids across the cut, and touch only the
    /// nodes whose part actually changed.
    ///
    /// On success the graph is re-registered and the outcome returned.
    /// On failure the graph is fully undeployed from serving nodes and
    /// **old overlay link state is left registered** — the from-scratch
    /// fallback (which the caller always runs next) owns tearing it
    /// down, so each vid is freed exactly once.
    fn repair_incremental(
        &mut self,
        gid: &str,
        entry: &DomainGraph,
    ) -> Result<RepairOutcome, DomainError> {
        let serving = self.serving_nodes();
        let (nf_pins, ep_pins, hints, reuse) = Self::repair_inputs(entry, &serving);
        let plan = self.plan(&entry.original, &hints, &nf_pins, &ep_pins, reuse)?;
        self.install_repair_plan(gid, entry, plan, hints)
    }

    /// Survivor pins, pruned hints, and vid-inheritance directives for
    /// re-planning `entry` onto the `serving` fleet — the inputs of an
    /// incremental repair plan, shared between the reactive path and
    /// Suspect-time standby planning.
    #[allow(clippy::type_complexity)]
    fn repair_inputs(
        entry: &DomainGraph,
        serving: &[String],
    ) -> (
        BTreeMap<String, String>,
        BTreeMap<String, String>,
        DeployHints,
        VidReuse,
    ) {
        // Survivor pins: NFs and endpoints whose node still serves.
        let nf_pins: BTreeMap<String, String> = entry
            .assignment
            .iter()
            .filter(|(_, node)| serving.contains(node))
            .map(|(nf, node)| (nf.clone(), node.clone()))
            .collect();
        let ep_pins: BTreeMap<String, String> = entry
            .endpoints
            .iter()
            .filter(|(_, node)| serving.contains(node))
            .map(|(ep, node)| (ep.clone(), node.clone()))
            .collect();
        let mut hints = entry.hints.clone();
        hints.endpoint_node.retain(|_, n| serving.contains(n));
        hints.nf_node.retain(|_, n| serving.contains(n));
        // Overlay vid inheritance: a cut edge with one surviving side
        // keeps its vid, so the survivor's synthesized `ovl-<vid>`
        // endpoint (and every rule referencing it) stays identical.
        let mut reuse = VidReuse::default();
        for link in &entry.partition.links {
            let key_target = link.dst_target.clone();
            match (
                serving.contains(&link.from_node),
                serving.contains(&link.to_node),
            ) {
                (true, true) => {
                    reuse.exact.insert(
                        (link.from_node.clone(), link.to_node.clone(), key_target),
                        link.vid,
                    );
                }
                (true, false) => {
                    reuse
                        .from_side
                        .insert((link.from_node.clone(), key_target), link.vid);
                }
                (false, true) => {
                    reuse
                        .to_side
                        .insert((link.to_node.clone(), key_target), link.vid);
                }
                (false, false) => {}
            }
        }
        (nf_pins, ep_pins, hints, reuse)
    }

    /// Install an incremental repair plan over the live deployment of
    /// `entry`: reconcile per node (skipping byte-identical survivor
    /// parts), swap overlay link state, and re-register the graph.
    /// The plan may be freshly computed (reactive repair) or a standby
    /// staged at Suspect time (make-before-break promotion).
    ///
    /// On failure the graph is fully undeployed from serving nodes,
    /// the plan's fresh vids return to the pool, and **old overlay
    /// link state is left registered** — the from-scratch fallback
    /// (which the caller always runs next) owns tearing it down, so
    /// each vid is freed exactly once.
    fn install_repair_plan(
        &mut self,
        gid: &str,
        entry: &DomainGraph,
        plan: Plan,
        hints: DeployHints,
    ) -> Result<RepairOutcome, DomainError> {
        // Reconcile per node: untouched parts are skipped entirely.
        let mut nodes_touched = 0usize;
        let mut failure: Option<DomainError> = None;
        for (node_name, sub) in &plan.partition.parts {
            let old_part = entry.partition.parts.get(node_name);
            if let Some(old) = old_part {
                if un_nffg::diff(old, sub).is_empty() {
                    continue; // survivor untouched: no node call at all
                }
            }
            nodes_touched += 1;
            let managed = self
                .nodes
                .get_mut(node_name)
                .expect("assignment uses fleet");
            let result = if old_part.is_some() {
                managed.node.update(sub)
            } else {
                managed.node.deploy(sub)
            };
            if let Err(e) = result {
                failure = Some(DomainError::Deploy {
                    node: node_name.clone(),
                    error: e.to_string(),
                });
                break;
            }
        }
        if let Some(err) = failure {
            // Clean up for the from-scratch fallback: drop the graph
            // from every serving node involved and return *fresh* vids
            // to the pool. Old vids stay registered — the fallback's
            // teardown frees them (exactly once).
            for node_name in plan
                .partition
                .parts
                .keys()
                .chain(entry.partition.parts.keys())
            {
                if let Some(m) = self.nodes.get_mut(node_name) {
                    if m.health.is_serving() {
                        let _ = m.node.undeploy(gid);
                    }
                }
            }
            let old_vids: std::collections::BTreeSet<u16> =
                entry.partition.links.iter().map(|l| l.vid).collect();
            for link in &plan.partition.links {
                if !old_vids.contains(&link.vid) {
                    self.free_vids.push(link.vid);
                }
            }
            self.trace.count("repairs_rolled_back", 1);
            return Err(err);
        }
        // Serving nodes whose part disappeared from the plan: a
        // transit-only node loses its part when the rerouted (or
        // collapsed) path no longer crosses it. The undeploy is a node
        // call, so it counts toward the blast radius.
        for node_name in entry.partition.parts.keys() {
            if !plan.partition.parts.contains_key(node_name) {
                if let Some(m) = self.nodes.get_mut(node_name) {
                    if m.health.is_serving() {
                        let _ = m.node.undeploy(gid);
                        nodes_touched += 1;
                    }
                }
            }
        }

        // Swap overlay link state: free vids the new partition no
        // longer uses. Surviving vids keep their `LinkState` in place —
        // packet/byte counters and SA material (incl. replay windows)
        // carry across the repair, honoring the survivor-untouched
        // contract — with the peer routing and the pinned fabric path
        // updated (a kept wire may have been rerouted around the dead
        // node); genuinely new vids register fresh.
        let kept: std::collections::BTreeSet<u16> =
            plan.partition.links.iter().map(|l| l.vid).collect();
        for link in &entry.partition.links {
            if !kept.contains(&link.vid) {
                self.links.remove(&link.vid);
                self.free_vids.push(link.vid);
            }
        }
        let mut rerouted: Vec<(u16, Vec<String>)> = Vec::new();
        let fresh: Vec<OverlayLink> = plan
            .partition
            .links
            .iter()
            .filter(|link| match self.links.get_mut(&link.vid) {
                Some(state) => {
                    let state = state.get_mut().expect("link lock poisoned");
                    state.link = (*link).clone();
                    if let Some(path) = plan.paths.get(&link.vid) {
                        if state.path != *path {
                            rerouted.push((link.vid, path.clone()));
                        }
                    }
                    false
                }
                None => true,
            })
            .cloned()
            .collect();
        for (vid, path) in rerouted {
            let lats = self.hop_latencies(&path);
            let state = self
                .links
                .get_mut(&vid)
                .expect("kept above")
                .get_mut()
                .expect("link lock poisoned");
            let hops = path.len().saturating_sub(1);
            state.path = path;
            state.hop_latency_ns = lats;
            // The hop axis changed identity; totals survive, per-hop
            // counters restart on the new route.
            state.hop_packets = vec![0; hops];
            state.hop_bytes = vec![0; hops];
            self.trace.count("overlay_paths_rerouted", 1);
        }
        self.register_links(gid, &fresh, &plan.paths);

        let old_by_vid: BTreeMap<u16, &OverlayLink> =
            entry.partition.links.iter().map(|l| (l.vid, l)).collect();
        let (mut links_kept, mut links_rewired) = (0usize, 0usize);
        for link in &plan.partition.links {
            match old_by_vid.get(&link.vid) {
                Some(o) if o.from_node == link.from_node && o.to_node == link.to_node => {
                    links_kept += 1;
                }
                _ => links_rewired += 1,
            }
        }
        let nfs_moved = moved_count(&entry.assignment, &plan.assignment);
        let nfs_preserved = plan.assignment.len() - nfs_moved;
        let (shared_nfs_moved, shared_migrated) = shared_blast(entry, &plan);
        self.commit_shared(gid, &plan.shared);
        self.graphs.insert(
            gid.to_string(),
            DomainGraph {
                original: entry.original.clone(),
                hints,
                assignment: plan.assignment,
                endpoints: plan.endpoints,
                partition: plan.partition,
                shared: plan.shared,
            },
        );
        Ok(RepairOutcome {
            graph: gid.to_string(),
            nfs_moved,
            nfs_preserved,
            links_rewired,
            links_kept,
            nodes_touched,
            full_replace: false,
            shared_nfs_moved,
            shared_migrated,
            // Stamped by the repair sweep, which owns the clocks and
            // the model; `standby_promoted` by `promote_standby`.
            repair_duration_ns: 0,
            downtime_estimate_ns: 0,
            standby_promoted: false,
            modeled_downtime_ns: 0,
        })
    }

    /// From-scratch re-placement of one graph (the baseline, and the
    /// fallback when the incremental plan cannot be held): tear down
    /// every surviving part, free every overlay vid, re-plan with only
    /// the caller's (pruned) hints, and install.
    fn replace_from_scratch(
        &mut self,
        gid: &str,
        entry: &DomainGraph,
    ) -> Result<RepairOutcome, DomainError> {
        for node_name in entry.partition.parts.keys() {
            if let Some(m) = self.nodes.get_mut(node_name) {
                if m.health.is_serving() {
                    let _ = m.node.undeploy(gid);
                }
            }
        }
        for link in &entry.partition.links {
            self.links.remove(&link.vid);
            self.free_vids.push(link.vid);
        }
        // Drop pins that no longer point at a serving node (this one
        // or any other casualty of the same sweep) so the scheduler
        // may move them (interface availability decides).
        let serving = self.serving_nodes();
        let mut hints = entry.hints.clone();
        hints.endpoint_node.retain(|_, n| serving.contains(n));
        hints.nf_node.retain(|_, n| serving.contains(n));
        let plan = self.plan(
            &entry.original,
            &hints,
            &BTreeMap::new(),
            &BTreeMap::new(),
            VidReuse::default(),
        )?;
        let nfs_moved = moved_count(&entry.assignment, &plan.assignment);
        let nfs_preserved = plan.assignment.len() - nfs_moved;
        let nodes_touched = plan.partition.parts.len();
        let links_rewired = plan.partition.links.len();
        let (shared_nfs_moved, shared_migrated) = shared_blast(entry, &plan);
        self.install(&entry.original, &hints, plan)?;
        Ok(RepairOutcome {
            graph: gid.to_string(),
            nfs_moved,
            nfs_preserved,
            links_rewired,
            links_kept: 0,
            nodes_touched,
            full_replace: true,
            shared_nfs_moved,
            shared_migrated,
            // Stamped by the repair sweep, which owns the clocks.
            repair_duration_ns: 0,
            downtime_estimate_ns: 0,
            standby_promoted: false,
            modeled_downtime_ns: 0,
        })
    }

    /// Promote a standby plan staged at Suspect time: install the
    /// pre-computed parts directly, skipping the whole planning phase.
    /// On failure the plan's reserved vids have already returned to
    /// the pool (see [`Domain::install_repair_plan`]) and the caller
    /// falls back to a from-scratch replacement.
    fn promote_standby(
        &mut self,
        gid: &str,
        entry: &DomainGraph,
        sb: GraphStandby,
    ) -> Result<RepairOutcome, DomainError> {
        let serving = self.serving_nodes();
        let mut hints = entry.hints.clone();
        hints.endpoint_node.retain(|_, n| serving.contains(n));
        hints.nf_node.retain(|_, n| serving.contains(n));
        match self.install_repair_plan(gid, entry, sb.plan, hints) {
            Ok(mut o) => {
                o.standby_promoted = true;
                self.trace.count("standby_plans_promoted", 1);
                self.obs.event(
                    "domain.standby.promoted",
                    vec![("kind", "graph".into()), ("graph", gid.into())],
                );
                Ok(o)
            }
            Err(e) => {
                self.trace.count("standby_promotes_failed", 1);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Make-before-break standby lifecycle
    // ------------------------------------------------------------------

    /// Pre-compute a standby repair plan per graph affected by the
    /// newly suspect node `name` (and pre-elect replacement hosts for
    /// shared replicas it carries), so a later failure is a swap
    /// instead of a plan. Gated on `config.standby` and the
    /// incremental repair policy; idempotent while the suspicion
    /// lasts.
    fn compute_standby(&mut self, name: &str) {
        if !self.config.standby
            || self.config.repair != RepairPolicy::Incremental
            || self.standby.contains(name)
        {
            return;
        }
        let serving: Vec<String> = self
            .serving_nodes()
            .into_iter()
            .filter(|n| n != name)
            .collect();
        let mut sb = NodeStandby::default();
        // Pre-elect a replacement host per shared replica the suspect
        // carries, so failure-time re-election is a promotion. The
        // election mirrors `replace_lost_partitions` with the suspect
        // counted dead.
        if self.config.sharing.enabled {
            let hosted = self.sharing.hosted_on(name);
            if !hosted.is_empty() {
                let mut views = self.views();
                for v in views.iter_mut() {
                    if v.name == name {
                        v.alive = false;
                    }
                }
                let serving_set: BTreeSet<String> = serving.iter().cloned().collect();
                let fabric_hops = self.config.topology.hop_matrix(&serving_set);
                for key in hosted {
                    let demand: BTreeSet<String> = self
                        .sharing
                        .replica_on(&key, name)
                        .map(|inst| inst.leases.keys())
                        .into_iter()
                        .flatten()
                        .filter_map(|gid| self.graphs.get(gid))
                        .flat_map(|g| g.assignment.values().chain(g.endpoints.values()))
                        .filter(|n| serving_set.contains(*n))
                        .cloned()
                        .collect();
                    let occupied: BTreeSet<String> = self
                        .sharing
                        .instances()
                        .filter(|i| i.key.functional_type == key.functional_type)
                        .map(|i| i.host.clone())
                        .collect();
                    if let Ok(host) = elect(
                        &key,
                        &self.config.sharing.election,
                        &views,
                        fabric_hops.as_ref(),
                        &demand,
                        &occupied,
                    ) {
                        sb.shared.insert(key, host);
                    }
                }
            }
        }
        // One pre-computed repair plan per graph with a part on the
        // suspect. The plan's fresh vids stay reserved (neither free
        // nor in use) until the standby promotes or is discarded.
        let affected: Vec<String> = self
            .graphs
            .iter()
            .filter(|(_, g)| g.partition.parts.contains_key(name))
            .map(|(id, _)| id.clone())
            .collect();
        for gid in affected {
            let entry = self.graphs.get(&gid).expect("listed above").clone();
            let (nf_pins, ep_pins, hints, reuse) = Self::repair_inputs(&entry, &serving);
            match self.plan_ctx(
                &entry.original,
                &hints,
                &nf_pins,
                &ep_pins,
                reuse,
                Some(name),
                Some(&sb.shared),
            ) {
                Ok(plan) => {
                    self.trace.count("standby_plans_computed", 1);
                    self.obs.event(
                        "domain.standby.computed",
                        vec![
                            ("graph", gid.clone().into()),
                            ("node", name.into()),
                            ("vids_reserved", plan.taken.len().into()),
                        ],
                    );
                    let old_vids: Vec<u16> = entry.partition.links.iter().map(|l| l.vid).collect();
                    sb.graphs.insert(gid, GraphStandby { plan, old_vids });
                }
                Err(_) => {
                    // The survivors cannot absorb this graph today; a
                    // failure will park it (or from-scratch may still
                    // find a repack the pinned plan could not).
                    self.trace.count("standby_plans_unplannable", 1);
                }
            }
        }
        if !sb.graphs.is_empty() || !sb.shared.is_empty() {
            self.standby.insert(name.to_string(), sb);
        }
        self.update_standby_gauge();
    }

    /// Is a staged standby plan still promotable over the live
    /// deployment of its graph? The graph's wires must be exactly the
    /// ones the plan was computed against, and every node the plan
    /// uses (part hosts, transit hops, shared hosts) must still serve.
    fn standby_valid(&self, sb: &GraphStandby, entry: &DomainGraph) -> bool {
        let mut cur: Vec<u16> = entry.partition.links.iter().map(|l| l.vid).collect();
        cur.sort_unstable();
        let mut old = sb.old_vids.clone();
        old.sort_unstable();
        if cur != old {
            return false;
        }
        let serving: BTreeSet<String> = self.serving_nodes().into_iter().collect();
        sb.plan.partition.parts.keys().all(|n| serving.contains(n))
            && sb
                .plan
                .paths
                .values()
                .flatten()
                .all(|n| serving.contains(n))
            && sb.plan.shared.values().all(|c| serving.contains(&c.host))
    }

    /// Return one standby plan's reserved vids to the pool.
    fn discard_standby_plan(
        &mut self,
        node: &str,
        gid: &str,
        sb: GraphStandby,
        reason: &'static str,
    ) {
        let vids = sb.plan.taken.len();
        self.free_vids.extend(sb.plan.taken);
        self.trace.count("standby_plans_discarded", 1);
        self.obs.event(
            "domain.standby.discarded",
            vec![
                ("graph", gid.into()),
                ("node", node.into()),
                ("reason", reason.into()),
                ("vids_returned", vids.into()),
            ],
        );
    }

    /// Discard everything staged for `node` (late heartbeat or
    /// explicit recovery ended the suspicion).
    fn discard_standby(&mut self, node: &str, reason: &'static str) {
        if let Some(sb) = self.standby.take(node) {
            for (gid, g) in sb.graphs {
                self.discard_standby_plan(node, &gid, g, reason);
            }
            self.update_standby_gauge();
        }
    }

    /// Discard `gid`'s standby plan on every suspect node (the graph
    /// was re-planned or undeployed, so those plans are stale).
    fn discard_graph_standby(&mut self, gid: &str) {
        let drained = self.standby.drain_graph(gid);
        if !drained.is_empty() {
            for (node, g) in drained {
                self.discard_standby_plan(&node, gid, g, "replanned");
            }
            self.update_standby_gauge();
        }
    }

    /// Re-validate every staged standby (after a repair sweep changed
    /// the fleet or re-planned graphs) and discard the stale ones.
    fn prune_stale_standbys(&mut self) {
        let mut stale: Vec<(String, String)> = Vec::new();
        for (node, sb) in self.standby.iter() {
            for (gid, g) in &sb.graphs {
                let valid = match self.graphs.get(gid) {
                    Some(entry) => self.standby_valid(g, entry),
                    None => false,
                };
                if !valid {
                    stale.push((node.clone(), gid.clone()));
                }
            }
        }
        for (node, gid) in stale {
            if let Some(g) = self.standby.remove_graph(&node, &gid) {
                self.discard_standby_plan(&node, &gid, g, "stale");
            }
        }
    }

    /// Export how many standby graph plans are staged right now.
    fn update_standby_gauge(&self) {
        if self.obs.is_enabled() {
            self.obs
                .registry()
                .gauge("un_standby_active", &[])
                .set(self.standby.graph_plans() as i64);
        }
    }

    /// Stamp the park→drain downtime of a just-restored graph into its
    /// availability ledger (closing the blind spot where parked graphs
    /// never stamped `downtime_estimate_ns`).
    fn stamp_park_drain(&mut self, gid: &str) {
        if let Some(at) = self.parked_at.remove(gid) {
            let downtime_ns = at.elapsed().as_nanos() as u64;
            let ledger = self
                .avail
                .entry(gid.to_string())
                .or_insert_with(|| GraphAvailability::new(gid));
            ledger.park_downtime_ns += downtime_ns;
            self.trace.count("park_drains", 1);
            self.obs.event(
                "domain.park.drained",
                vec![("graph", gid.into()), ("downtime_ns", downtime_ns.into())],
            );
        }
    }

    /// Try to deploy graphs stranded by earlier failures (call after
    /// adding capacity).
    pub fn retry_pending(&mut self) -> Vec<String> {
        let pending: Vec<(String, (NfFg, DeployHints))> =
            std::mem::take(&mut self.pending).into_iter().collect();
        let mut deployed = Vec::new();
        for (gid, (graph, hints)) in pending {
            if self.graphs.contains_key(&gid) {
                // A live deployment supersedes the parked copy (the
                // operator re-deployed it since the failure; the park
                // window was stamped then).
                self.parked_at.remove(&gid);
                continue;
            }
            match self
                .plan(
                    &graph,
                    &hints,
                    &BTreeMap::new(),
                    &BTreeMap::new(),
                    VidReuse::default(),
                )
                .and_then(|plan| self.install(&graph, &hints, plan))
            {
                Ok(_) => {
                    self.stamp_park_drain(&gid);
                    deployed.push(gid);
                }
                Err(_) => {
                    self.pending.insert(gid, (graph, hints));
                }
            }
        }
        deployed
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Inject a frame on a node's physical port and run it across the
    /// domain until every resulting frame left on a real egress.
    ///
    /// Thin wrapper over [`Domain::inject_batch`] with a one-frame
    /// burst and a single worker. The shuttle's per-call setup is
    /// O(touched nodes), not O(fleet): node state is claimed lazily
    /// from the fleet map and link locks live on the domain itself, so
    /// a single-frame inject on a large fleet costs a handful of map
    /// lookups — and no allocations: the borrowed names flow straight
    /// into the seeding loop. High-rate callers should still batch
    /// frames into `inject_batch`, which amortizes even that across
    /// the burst.
    pub fn inject(&mut self, node: &str, port: &str, pkt: Packet) -> DomainIo {
        self.inject_batch(std::iter::once((node, port, pkt)), 1)
    }

    /// Inject a burst of `(node, port, frame)` triples and drain the
    /// whole burst across the domain, optionally sharded over
    /// `workers` persistent OS threads.
    ///
    /// The shuttle is batched end to end: each node's pending frames
    /// are drained through [`UniversalNode::inject_batch`] in one call,
    /// fabric-bound egress is bucketed by VLAN link, ESP links
    /// seal/verify per burst under one lock, and the peer node receives
    /// its whole burst at once. With `workers > 1` the burst runs on
    /// the domain's persistent shard runtime — long-lived workers that
    /// park between calls, so a line-rate ingress path pays no thread
    /// spawn/join per burst. Each touched node hashes to a home shard
    /// whose ingress ring feeds that worker first; an idle worker
    /// steals from other rings, so the work-conserving any-worker-may-
    /// drive-any-node drain is preserved. Link counters and SAs are
    /// the only cross-shard state and sit behind per-link locks.
    ///
    /// Ingress keys are borrowed (`AsRef<str>`): callers can pass
    /// `&str`, `String`, or interned [`Name`] without allocating per
    /// frame.
    ///
    /// Every frame carries its own overlay-hop TTL
    /// ([`DomainConfig::overlay_ttl`]), so a large burst can never be
    /// spuriously dropped as a loop — only genuinely circulating frames
    /// die (counted as `overlay_loop_drops`).
    pub fn inject_batch<N, P>(
        &mut self,
        ingress: impl IntoIterator<Item = (N, P, Packet)>,
        workers: usize,
    ) -> DomainIo
    where
        N: AsRef<str>,
        P: AsRef<str>,
    {
        self.inject_batch_flight(ingress, workers, None)
    }

    /// Inject one frame with the flight recorder attached: the frame
    /// runs the **real** data plane (every counter moves exactly as
    /// under [`Domain::inject`]) while a [`TraceSink`] records one hop
    /// record per crossing — ingress, per-table classifier verdicts
    /// with matched-rule provenance, NF deliveries, overlay crossings,
    /// egress and typed drops. The finished trace lands in the
    /// domain's bounded recent-trace ring (`GET /domain/traces`) and
    /// is returned alongside the io report.
    pub fn inject_traced(
        &mut self,
        node: &str,
        port: &str,
        pkt: Packet,
        workers: usize,
    ) -> (DomainIo, PacketTrace) {
        let sink = Arc::new(TraceSink::new(node, port, false));
        let io = self.inject_batch_flight(
            std::iter::once((node, port, pkt)),
            workers,
            Some(Arc::clone(&sink)),
        );
        let trace = sink.snapshot();
        self.traces.push(trace.clone());
        (io, trace)
    }

    /// Walk a synthetic frame through the domain in **ghost mode**: the
    /// frame takes exactly the decisions the real data plane would take
    /// (classifier lookups, NF processing, overlay routing, real ESP
    /// seal/verify on cloned SAs) but moves **no counters** — node and
    /// domain trace counters, switch/port statistics, microflow caches,
    /// link wire counters and observability histograms are all left
    /// untouched, so a trace probe is invisible to the conservation
    /// ledger and to `/metrics`. Returns the recorded hop-by-hop trace
    /// (served by `POST /domain/trace`); ghost walks never enter the
    /// recent-trace ring.
    pub fn trace_frame(&mut self, node: &str, port: &str, pkt: Packet) -> PacketTrace {
        let sink = Arc::new(TraceSink::new(node, port, true));
        let _ = self.inject_batch_flight(
            std::iter::once((node, port, pkt)),
            1,
            Some(Arc::clone(&sink)),
        );
        sink.snapshot()
    }

    /// The bounded ring of recent real traces (newest last).
    pub fn recent_traces(&self) -> Vec<PacketTrace> {
        self.traces.snapshot()
    }

    /// Synthesize a probe frame from `spec` and ghost-walk it from
    /// `(node, port)` (see [`Domain::trace_frame`]): the backing for
    /// `POST /domain/trace`. The frame is built here — not by the REST
    /// layer — so every caller gets identical header synthesis.
    pub fn trace_probe(&mut self, node: &str, port: &str, spec: &ProbeSpec) -> PacketTrace {
        let mut b = un_packet::PacketBuilder::new().ethernet(
            un_packet::ethernet::MacAddr::local(1),
            un_packet::ethernet::MacAddr::local(2),
        );
        if let Some(vid) = spec.vlan {
            b = b.vlan(vid);
        }
        let payload = vec![0xA5u8; spec.payload_len];
        let pkt = b
            .ipv4(spec.src_ip, spec.dst_ip)
            .udp(spec.src_port, spec.dst_port)
            .payload(&payload)
            .build();
        self.trace_frame(node, port, pkt)
    }

    fn inject_batch_flight<N, P>(
        &mut self,
        ingress: impl IntoIterator<Item = (N, P, Packet)>,
        workers: usize,
        flight: Option<Arc<TraceSink>>,
    ) -> DomainIo
    where
        N: AsRef<str>,
        P: AsRef<str>,
    {
        let ghost = flight.as_ref().is_some_and(|f| f.ghost());
        let mut io = DomainIo::default();
        let ttl = self.config.overlay_ttl.max(1);
        let fabric = self.config.fabric_port.clone();
        let esp_fixed_ns = self.config.esp_fixed_ns;
        let esp_ns_per_byte = self.config.esp_ns_per_byte;
        let shards = workers.max(1);
        // Build (or resize) the persistent worker pool up front;
        // single-worker calls drain inline and never touch it.
        if workers > 1 && self.runtime.as_ref().is_none_or(|r| r.workers() != workers) {
            self.runtime = Some(ShardRuntime::new(workers));
        }
        let obs = Arc::clone(&self.obs);
        let trace = &mut self.trace;

        // One cell per *touched* node; the cell owns the node state
        // while no worker is driving it. Untouched nodes stay in the
        // fleet map itself — a single-frame inject pays O(log fleet)
        // lookups for the nodes it crosses, nothing per-fleet-member.
        struct NodeCell {
            managed: Option<ManagedNode>,
            fabric_id: Option<PortId>,
            name: Name,
            /// Pending bursts keyed by remaining TTL, freshest first.
            pending: BTreeMap<Reverse<u32>, Vec<(PortId, Packet)>>,
            queued: usize,
            /// Home shard: whose ingress ring this node's work lands on.
            home: usize,
            /// The node currently sits in a ready ring (dedup flag).
            enqueued: bool,
        }

        /// Why a node has no claimable cell.
        #[derive(Clone, Copy)]
        enum CellMiss {
            Unknown,
            Dead,
        }

        /// Stable node→shard assignment (deterministic across calls).
        fn shard_of(node: &str, shards: usize) -> usize {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            node.hash(&mut h);
            (h.finish() % shards.max(1) as u64) as usize
        }

        struct Pool {
            cells: BTreeMap<String, NodeCell>,
            /// The fleet map, moved out of the domain for the call so
            /// persistent workers need no borrowed lifetimes.
            nodes: BTreeMap<String, ManagedNode>,
            /// Per-shard ingress rings of ready nodes. A worker pops
            /// its own ring first, then steals from the others.
            rings: Vec<VecDeque<Name>>,
        }

        impl Pool {
            /// The cell for `node`, claiming it out of the fleet map on
            /// first touch. Suspect nodes keep forwarding: they are
            /// slow, not dead.
            fn cell(&mut self, node: &str, fabric: &str) -> Result<&mut NodeCell, CellMiss> {
                if !self.cells.contains_key(node) {
                    match self.nodes.get(node) {
                        None => return Err(CellMiss::Unknown),
                        Some(m) if m.health == NodeHealth::Failed => return Err(CellMiss::Dead),
                        Some(_) => {}
                    }
                    let (key, managed) = self.nodes.remove_entry(node).expect("checked above");
                    let cell = NodeCell {
                        fabric_id: managed.node.port_id(fabric),
                        name: Name::new(&managed.node.name),
                        home: shard_of(node, self.rings.len()),
                        managed: Some(managed),
                        pending: BTreeMap::new(),
                        queued: 0,
                        enqueued: false,
                    };
                    self.cells.insert(key, cell);
                }
                Ok(self.cells.get_mut(node).expect("inserted above"))
            }

            /// Put `node` on its home shard's ring if it has claimable
            /// work (pending frames + free node state) and is not
            /// already enqueued. Every path that adds work or hands a
            /// node back calls this, so a ready node is always in some
            /// ring.
            fn mark_ready(&mut self, node: &str) {
                let Some(cell) = self.cells.get_mut(node) else {
                    return;
                };
                debug_assert_eq!(
                    cell.queued,
                    cell.pending.values().map(Vec::len).sum::<usize>(),
                    "ingress ring bookkeeping diverged for {node}: queued \
                     count disagrees with pending bursts"
                );
                if !cell.enqueued && cell.queued > 0 && cell.managed.is_some() {
                    cell.enqueued = true;
                    let home = cell.home;
                    let name = cell.name.clone();
                    debug_assert!(
                        !self.rings.iter().any(|r| r.contains(&name)),
                        "{node} enqueued twice: the dedup flag was clear but \
                         the node already sits in a ready ring"
                    );
                    self.rings[home].push_back(name);
                }
            }

            /// Claim a ready node: pop the worker's own ring first,
            /// then steal round-robin from the others. Ring entries go
            /// stale when another worker drains or claims the node
            /// first — they are skipped (flag cleared); `mark_ready`
            /// re-enqueues when work lands again. Returns the claimed
            /// node, its freshest pending burst, and whether the claim
            /// was stolen from a foreign ring.
            #[allow(clippy::type_complexity)]
            fn claim(
                &mut self,
                shard: usize,
            ) -> Option<(Name, ManagedNode, u32, Vec<(PortId, Packet)>, bool)> {
                let shards = self.rings.len();
                for d in 0..shards {
                    let ring = (shard + d) % shards;
                    while let Some(name) = self.rings[ring].pop_front() {
                        let Some(cell) = self.cells.get_mut(name.as_str()) else {
                            continue;
                        };
                        cell.enqueued = false;
                        if cell.queued == 0 || cell.managed.is_none() {
                            continue;
                        }
                        let (&Reverse(t), _) = cell.pending.iter().next().expect("queued > 0");
                        let burst = cell.pending.remove(&Reverse(t)).expect("present");
                        debug_assert!(
                            cell.queued >= burst.len(),
                            "claim of {} frames exceeds the {} queued on {}",
                            burst.len(),
                            cell.queued,
                            name.as_str()
                        );
                        cell.queued -= burst.len();
                        debug_assert_eq!(
                            cell.queued,
                            cell.pending.values().map(Vec::len).sum::<usize>(),
                            "claim left stale queued count on {}",
                            name.as_str()
                        );
                        return Some((
                            cell.name.clone(),
                            cell.managed.take().expect("checked above"),
                            t,
                            burst,
                            d != 0,
                        ));
                    }
                }
                None
            }
        }

        #[derive(Default)]
        struct WorkerOut {
            emitted: Vec<(Name, Name, Packet)>,
            cost: Cost,
            overlay_hops: u32,
            protected_bytes: u64,
            counters: BTreeMap<&'static str, u64>,
            /// The shard index this worker drained as.
            shard: usize,
            /// Ghost walk: decisions only, no counter movement.
            ghost: bool,
            /// Claims served from the worker's own ring / stolen from
            /// foreign rings (utilization signal).
            claims_home: u64,
            claims_stolen: u64,
        }
        impl WorkerOut {
            fn count(&mut self, name: &'static str, n: u64) {
                if n > 0 && !self.ghost {
                    *self.counters.entry(name).or_insert(0) += n;
                }
            }
        }

        let mut state = Pool {
            cells: BTreeMap::new(),
            nodes: std::mem::take(&mut self.nodes),
            rings: (0..shards).map(|_| VecDeque::new()).collect(),
        };

        // Seed the ingress queues, resolving each port name once.
        let mut seeded = 0usize;
        let mut ingressed = 0u64;
        for (node, port, pkt) in ingress {
            ingressed += 1;
            let node = node.as_ref();
            {
                let cell = match state.cell(node, &fabric) {
                    Ok(cell) => cell,
                    Err(miss) => {
                        let reason = match miss {
                            CellMiss::Dead => DropReason::InjectDeadNode,
                            CellMiss::Unknown => DropReason::InjectUnknownNode,
                        };
                        if !ghost {
                            trace.count(reason.as_str(), 1);
                        }
                        if let Some(f) = &flight {
                            f.hop(
                                node,
                                HopKind::Drop {
                                    reason,
                                    detail: String::new(),
                                },
                            );
                        }
                        continue;
                    }
                };
                let managed = cell.managed.as_mut().expect("no worker running yet");
                let Some(pid) = managed.node.port_id(port.as_ref()) else {
                    if !ghost {
                        managed
                            .node
                            .trace
                            .count(DropReason::InjectUnknownPort.as_str(), 1);
                    }
                    if let Some(f) = &flight {
                        f.hop(
                            node,
                            HopKind::Drop {
                                reason: DropReason::InjectUnknownPort,
                                detail: format!("no port '{}'", port.as_ref()),
                            },
                        );
                    }
                    continue;
                };
                if let Some(f) = &flight {
                    f.hop(
                        node,
                        HopKind::Ingress {
                            port: port.as_ref().to_string(),
                        },
                    );
                }
                cell.pending
                    .entry(Reverse(ttl))
                    .or_default()
                    .push((pid, pkt));
                cell.queued += 1;
                seeded += 1;
            }
            state.mark_ready(node);
        }
        if !ghost {
            trace.count("domain_frames_ingress", ingressed);
        }

        // Ring-depth gauges: how the seeded burst spread across shard
        // ingress rings (refreshed per call; inert unless obs is on).
        if !ghost && obs.is_enabled() {
            let reg = obs.registry();
            reg.gauge("un_shuttle_workers", &[]).set(shards as i64);
            for (i, ring) in state.rings.iter().enumerate() {
                reg.gauge("un_shuttle_ring_depth", &[("shard", &i.to_string())])
                    .set(ring.len() as i64);
            }
        }
        // The cross-worker shuttle state. It *owns* the fleet cells
        // and the link-lock map (moved out of the domain above) so the
        // drain job is `'static` and can run on persistent workers;
        // everything moves back into the domain after the round — even
        // a fully mis-addressed burst, so the restore below runs
        // regardless.
        struct Shuttle {
            pool: Mutex<Pool>,
            links: BTreeMap<u16, Mutex<LinkState>>,
            work_ready: std::sync::Condvar,
            in_flight: AtomicUsize,
            crossings: AtomicU64,
            crossing_cap: u64,
            aborted: std::sync::atomic::AtomicBool,
            outs: Mutex<Vec<WorkerOut>>,
        }

        let in_flight = AtomicUsize::new(seeded);
        // Last-resort bound on total overlay crossings per call:
        // single-path traffic needs at most `seeded × ttl` (each frame
        // crosses at most `ttl` times). Workloads that multiply frames
        // — a flood rule around an overlay cycle, or extreme loop-free
        // fan-out past `seeded × ttl` copies — trip it, and everything
        // still crossing is dropped (`overlay_work_exhausted`). The
        // per-frame TTL alone would let amplification grow
        // exponentially; this valve trades completeness under
        // amplification for a hard bound.
        let crossing_cap: u64 = (seeded as u64).saturating_mul(u64::from(ttl));
        let crossings = AtomicU64::new(0);
        // A worker that panics can never decrement `in_flight`; this
        // flag (set by the unwinding worker's drop guard) releases its
        // peers from the idle spin so the panic propagates through
        // `join` instead of hanging the scope.
        struct AbortGuard<'a>(&'a std::sync::atomic::AtomicBool);
        impl Drop for AbortGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }
        let shuttle = Arc::new(Shuttle {
            pool: Mutex::new(state),
            links: std::mem::take(&mut self.links),
            work_ready: std::sync::Condvar::new(),
            in_flight,
            crossings,
            crossing_cap,
            aborted: std::sync::atomic::AtomicBool::new(false),
            outs: Mutex::new(Vec::with_capacity(shards)),
        });

        let drain = {
            let shuttle = Arc::clone(&shuttle);
            let flight = flight.clone();
            move |shard: usize| {
                let sh = &*shuttle;
                let pool = &sh.pool;
                let links = &sh.links;
                let work_ready = &sh.work_ready;
                let in_flight = &sh.in_flight;
                let crossings = &sh.crossings;
                let crossing_cap = sh.crossing_cap;
                let _abort_guard = AbortGuard(&sh.aborted);
                let mut out = WorkerOut {
                    shard,
                    ghost,
                    ..WorkerOut::default()
                };
                loop {
                    // Claim a ready node — own ring first, steal
                    // otherwise; any worker may drive any node. Idle
                    // workers park on the condvar instead of spinning
                    // on the pool lock; the short timeout is a safety
                    // net against a missed wakeup, not a poll interval.
                    let job = {
                        let mut pool = pool.lock().expect("shuttle pool poisoned");
                        'claim: loop {
                            if let Some(claim) = pool.claim(shard) {
                                break 'claim Some(claim);
                            }
                            if in_flight.load(Ordering::Acquire) == 0
                                || sh.aborted.load(Ordering::Acquire)
                            {
                                break 'claim None;
                            }
                            pool = work_ready
                                .wait_timeout(pool, std::time::Duration::from_millis(1))
                                .expect("shuttle pool poisoned")
                                .0;
                        }
                    };
                    let Some((name, mut managed, ttl_left, burst, stolen)) = job else {
                        break;
                    };
                    if stolen {
                        out.claims_stolen += 1;
                    } else {
                        out.claims_home += 1;
                    }
                    let consumed = burst.len();
                    let node_io = managed.node.inject_batch_flight(burst, flight.as_deref());
                    out.cost += node_io.cost;
                    // Hand the node back before shuttling so another worker
                    // can claim it for frames already heading its way.
                    {
                        let mut pool = pool.lock().expect("shuttle pool poisoned");
                        pool.cells
                            .get_mut(name.as_str())
                            .expect("cell exists")
                            .managed = Some(managed);
                        pool.mark_ready(name.as_str());
                    }
                    work_ready.notify_all();
                    // Split node egress: real egress vs fabric-bound,
                    // bucketed by VLAN link identity.
                    let mut fabric_bursts: BTreeMap<u16, Vec<Packet>> = BTreeMap::new();
                    for (port, pkt) in node_io.emitted {
                        if port.as_str() != fabric.as_str() {
                            out.emitted.push((name.clone(), port, pkt));
                            continue;
                        }
                        match pkt.vlan_id() {
                            Some(vid) => fabric_bursts.entry(vid).or_default().push(pkt),
                            None => {
                                out.count(DropReason::OverlayUntagged.as_str(), 1);
                                if let Some(f) = &flight {
                                    f.hop(
                                        name.as_str(),
                                        HopKind::Drop {
                                            reason: DropReason::OverlayUntagged,
                                            detail: String::new(),
                                        },
                                    );
                                }
                            }
                        }
                    }
                    for (vid, frames) in fabric_bursts {
                        let n = frames.len() as u64;
                        let Some(link_mx) = links.get(&vid) else {
                            out.count(DropReason::OverlayUnroutable.as_str(), n);
                            if let Some(f) = &flight {
                                for _ in 0..n {
                                    f.hop(
                                        name.as_str(),
                                        HopKind::Drop {
                                            reason: DropReason::OverlayUnroutable,
                                            detail: format!("no overlay link for vid {vid}"),
                                        },
                                    );
                                }
                            }
                            continue;
                        };
                        let mut survivors: Vec<Packet> = Vec::with_capacity(frames.len());
                        let peer: String;
                        {
                            let mut state = link_mx.lock().expect("link lock poisoned");
                            // Advance along the pinned path: the emitting
                            // node's successor is the next hop. On a
                            // two-node path a frame emitted by the tail
                            // walks back to the head (the old peer
                            // semantics, defensive — links deliver at the
                            // tail, they don't send from it); on a longer
                            // path a tail emission has no forward hop and
                            // would ping-pong against the last transit
                            // node, so it drops as foreign instead.
                            let pos = state.path.iter().position(|p| p == name.as_str());
                            let (next_idx, hop_idx) = match pos {
                                Some(i) if i + 1 < state.path.len() => (i + 1, i),
                                Some(1) if state.path.len() == 2 => (0, 0),
                                _ => {
                                    out.count(DropReason::OverlayForeign.as_str(), n);
                                    if let Some(f) = &flight {
                                        for _ in 0..n {
                                            f.hop(
                                                name.as_str(),
                                                HopKind::Drop {
                                                    reason: DropReason::OverlayForeign,
                                                    detail: format!(
                                                        "not on the pinned path of vid {vid}"
                                                    ),
                                                },
                                            );
                                        }
                                    }
                                    continue;
                                }
                            };
                            peer = state.path[next_idx].clone();
                            let hop_ns = state
                                .hop_latency_ns
                                .get(hop_idx)
                                .copied()
                                .unwrap_or_default();
                            let esp_on = state.sas.is_some();
                            // Ghost walks exercise the real ESP path on
                            // **cloned** SAs: seal/verify mutate sequence
                            // numbers and replay windows, and a probe must
                            // not advance the live wire's state.
                            let mut ghost_sas = if ghost { state.sas.clone() } else { None };
                            for pkt in frames {
                                let len = pkt.len();
                                // Wire counters count logical frames at
                                // every hop of the pinned path: a frame
                                // riding an n-hop wire adds n to `packets`
                                // and one to each `hop_packets[i]` it is
                                // presented to.
                                if !ghost {
                                    state.packets += 1;
                                    state.bytes += len as u64;
                                    if let Some(hp) = state.hop_packets.get_mut(hop_idx) {
                                        *hp += 1;
                                    }
                                    if let Some(hb) = state.hop_bytes.get_mut(hop_idx) {
                                        *hb += len as u64;
                                    }
                                }
                                out.overlay_hops += 1;
                                out.cost += Cost::from_nanos(hop_ns);
                                let sas = if ghost {
                                    ghost_sas.as_deref_mut()
                                } else {
                                    state.sas.as_deref_mut()
                                };
                                if let Some(sas) = sas {
                                    // Protect the wire: real ESP seal on
                                    // egress, real verify+open on ingress. A
                                    // frame that fails to verify never
                                    // reaches the peer.
                                    let (sa_out, sa_in) = sas;
                                    let per_dir =
                                        esp_fixed_ns as f64 + esp_ns_per_byte * len as f64;
                                    out.cost += Cost::from_nanos((2.0 * per_dir) as u64);
                                    let sealed = match esp::encapsulate(sa_out, pkt.data()) {
                                        Ok(s) => s,
                                        Err(_) => {
                                            out.count(DropReason::OverlayEspSealFail.as_str(), 1);
                                            if let Some(f) = &flight {
                                                f.hop(
                                                    name.as_str(),
                                                    HopKind::Drop {
                                                        reason: DropReason::OverlayEspSealFail,
                                                        detail: format!("vid {vid}"),
                                                    },
                                                );
                                            }
                                            continue;
                                        }
                                    };
                                    match esp::decapsulate(sa_in, &sealed) {
                                        Ok(inner) if inner == pkt.data() => {
                                            out.protected_bytes += len as u64;
                                        }
                                        _ => {
                                            out.count(DropReason::OverlayEspVerifyFail.as_str(), 1);
                                            if let Some(f) = &flight {
                                                f.hop(
                                                    name.as_str(),
                                                    HopKind::Drop {
                                                        reason: DropReason::OverlayEspVerifyFail,
                                                        detail: format!("vid {vid}"),
                                                    },
                                                );
                                            }
                                            continue;
                                        }
                                    }
                                }
                                out.count("overlay_frames", 1);
                                if let Some(f) = &flight {
                                    f.hop(
                                        name.as_str(),
                                        HopKind::OverlayHop {
                                            vid,
                                            from: name.to_string(),
                                            to: peer.clone(),
                                            hop: hop_idx,
                                            esp: esp_on,
                                            ttl_left,
                                        },
                                    );
                                }
                                survivors.push(pkt);
                            }
                        }
                        if survivors.is_empty() {
                            continue;
                        }
                        let k = survivors.len();
                        // ttl_left counts remaining crossings: a frame
                        // seeded with overlay_ttl may cross exactly that
                        // many times.
                        if ttl_left == 0 {
                            out.count(DropReason::OverlayLoop.as_str(), k as u64);
                            if let Some(f) = &flight {
                                for _ in 0..k {
                                    f.hop(
                                        name.as_str(),
                                        HopKind::Drop {
                                            reason: DropReason::OverlayLoop,
                                            detail: format!("overlay TTL expired on vid {vid}"),
                                        },
                                    );
                                }
                            }
                            continue;
                        }
                        if crossings.fetch_add(k as u64, Ordering::AcqRel) >= crossing_cap {
                            out.count(DropReason::OverlayWorkExhausted.as_str(), k as u64);
                            if let Some(f) = &flight {
                                for _ in 0..k {
                                    f.hop(
                                        name.as_str(),
                                        HopKind::Drop {
                                            reason: DropReason::OverlayWorkExhausted,
                                            detail: String::new(),
                                        },
                                    );
                                }
                            }
                            continue;
                        }
                        let mut pool = pool.lock().expect("shuttle pool poisoned");
                        let cell = match pool.cell(peer.as_str(), &fabric) {
                            Ok(cell) => cell,
                            Err(miss) => {
                                let reason = match miss {
                                    CellMiss::Dead => DropReason::InjectDeadNode,
                                    CellMiss::Unknown => DropReason::InjectUnknownNode,
                                };
                                out.count(reason.as_str(), k as u64);
                                if let Some(f) = &flight {
                                    for _ in 0..k {
                                        f.hop(
                                            peer.as_str(),
                                            HopKind::Drop {
                                                reason,
                                                detail: String::new(),
                                            },
                                        );
                                    }
                                }
                                continue;
                            }
                        };
                        let Some(fid) = cell.fabric_id else {
                            out.count(DropReason::OverlayUnroutable.as_str(), k as u64);
                            if let Some(f) = &flight {
                                for _ in 0..k {
                                    f.hop(
                                        peer.as_str(),
                                        HopKind::Drop {
                                            reason: DropReason::OverlayUnroutable,
                                            detail: "peer has no fabric port".to_string(),
                                        },
                                    );
                                }
                            }
                            continue;
                        };
                        in_flight.fetch_add(k, Ordering::Release);
                        cell.pending
                            .entry(Reverse(ttl_left - 1))
                            .or_default()
                            .extend(survivors.into_iter().map(|p| (fid, p)));
                        cell.queued += k;
                        pool.mark_ready(peer.as_str());
                        drop(pool);
                        work_ready.notify_all();
                    }
                    in_flight.fetch_sub(consumed, Ordering::Release);
                    work_ready.notify_all();
                }
                sh.outs.lock().expect("shuttle outs poisoned").push(out);
            }
        };

        // Dispatch: inline for one worker (no runtime, no allocation),
        // one round on the persistent shard pool otherwise. A worker
        // panic is caught so claimed state is still restored to the
        // fleet map below, then re-raised.
        let round = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if workers <= 1 {
                drain(0);
            } else {
                self.runtime
                    .as_mut()
                    .expect("runtime built above")
                    .run(drain);
            }
        }));

        // Move the shuttle state back into the domain. The runtime
        // round is over (even on panic `run` waits out the stragglers),
        // so ours is the last reference.
        let shuttle = Arc::try_unwrap(shuttle)
            .ok()
            .expect("all shard workers released the shuttle");
        let state = shuttle
            .pool
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.nodes = state.nodes;
        for (name, cell) in state.cells {
            if let Some(managed) = cell.managed {
                self.nodes.insert(name, managed);
            }
        }
        self.links = shuttle.links;
        if let Err(panic) = round {
            // State is restored (minus any node in flight at that
            // instant — lost with the call, as under the old scoped-
            // thread shuttle); now the panic propagates.
            std::panic::resume_unwind(panic);
        }
        let outs = shuttle
            .outs
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut claims_home = 0u64;
        let mut claims_stolen = 0u64;
        for mut worker in outs {
            io.emitted.append(&mut worker.emitted);
            io.cost += worker.cost;
            io.overlay_hops += worker.overlay_hops;
            io.protected_bytes += worker.protected_bytes;
            claims_home += worker.claims_home;
            claims_stolen += worker.claims_stolen;
            // Per-worker utilization gauge: how many node-bursts this
            // shard drove last round (home + stolen).
            if !ghost && obs.is_enabled() {
                obs.registry()
                    .gauge(
                        "un_shuttle_worker_claims",
                        &[("shard", &worker.shard.to_string())],
                    )
                    .set((worker.claims_home + worker.claims_stolen) as i64);
            }
            for (name, n) in worker.counters {
                self.trace.count(name, n);
            }
        }
        if !ghost {
            if claims_home > 0 {
                self.trace.count("shuttle_claims_home", claims_home);
            }
            if claims_stolen > 0 {
                self.trace.count("shuttle_claims_stolen", claims_stolen);
            }
            self.trace
                .count("domain_frames_egress", io.emitted.len() as u64);
        }
        io
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Per-link counters: (vid, graph, from, to, packets, bytes).
    pub fn link_stats(&self) -> Vec<(u16, String, String, String, u64, u64)> {
        self.links
            .values()
            .map(|s| {
                let s = s.lock().expect("link lock poisoned");
                (
                    s.link.vid,
                    s.graph.clone(),
                    s.link.from_node.clone(),
                    s.link.to_node.clone(),
                    s.packets,
                    s.bytes,
                )
            })
            .collect()
    }

    /// Per-hop link counters: for each live overlay link, `(vid, graph,
    /// path, hop_packets, hop_bytes)` where hop `i` is the crossing
    /// `path[i] → path[i+1]`.
    #[allow(clippy::type_complexity)]
    pub fn link_hop_stats(&self) -> Vec<(u16, String, Vec<String>, Vec<u64>, Vec<u64>)> {
        self.links
            .values()
            .map(|s| {
                let s = s.lock().expect("link lock poisoned");
                (
                    s.link.vid,
                    s.graph.clone(),
                    s.path.clone(),
                    s.hop_packets.clone(),
                    s.hop_bytes.clone(),
                )
            })
            .collect()
    }

    /// The domain-wide frame-conservation ledger (see
    /// [`ConservationReport`]), summed from domain counters plus every
    /// node's fabric counters (including counters folded into the
    /// domain trace from replaced carcasses).
    pub fn conservation_report(&self) -> ConservationReport {
        let mut r = ConservationReport {
            ingress: self.trace.counter("domain_frames_ingress"),
            egress: self.trace.counter("domain_frames_egress"),
            fanout_extra: self.trace.counter("fabric_fanout_extra"),
            absorbed: self.trace.counter("fabric_absorbed"),
            drops: BTreeMap::new(),
        };
        // Node drop counters appear in the domain trace too: counters
        // folded in from replaced carcasses.
        for name in domain_drop_counters().chain(node_drop_counters()) {
            let n = self.trace.counter(name);
            if n > 0 {
                *r.drops.entry(name).or_insert(0) += n;
            }
        }
        for m in self.nodes.values() {
            r.fanout_extra += m.node.trace.counter("fabric_fanout_extra");
            r.absorbed += m.node.trace.counter("fabric_absorbed");
            for name in node_drop_counters() {
                let n = m.node.trace.counter(name);
                if n > 0 {
                    *r.drops.entry(name).or_insert(0) += n;
                }
            }
        }
        r
    }

    /// Render every metric — scraped live state (classifier counters,
    /// table occupancy, per-hop link counters, trace counters, the
    /// conservation ledger) plus the observability registry's hot-path
    /// histograms and span durations — in Prometheus text exposition
    /// format. Always available; the registry section is empty when
    /// `DomainConfig::observability` is off.
    pub fn metrics_prometheus(&self) -> String {
        use std::fmt::Write;
        let esc = un_obs::escape_label;
        let mut out = String::with_capacity(4096);

        // -- classifier stage outcomes + table occupancy + node health
        let _ = writeln!(out, "# TYPE un_classifier_lookups_total counter");
        for (name, m) in &self.nodes {
            let s = m.node.flow_cache_stats();
            for (path, v) in [
                ("cache_hit", s.cache_hits),
                ("cache_miss", s.cache_misses),
                ("exact_hit", s.exact_hits),
                ("megaflow_hit", s.megaflow_hits),
                ("wildcard_hit", s.wildcard_hits),
                ("miss", s.misses),
            ] {
                let _ = writeln!(
                    out,
                    "un_classifier_lookups_total{{node=\"{}\",path=\"{path}\"}} {v}",
                    esc(name)
                );
            }
        }
        let _ = writeln!(out, "# TYPE un_flow_table_entries gauge");
        for (name, m) in &self.nodes {
            let _ = writeln!(
                out,
                "un_flow_table_entries{{node=\"{}\"}} {}",
                esc(name),
                m.node.flow_table_occupancy()
            );
        }
        let _ = writeln!(out, "# TYPE un_node_serving gauge");
        for (name, m) in &self.nodes {
            let _ = writeln!(
                out,
                "un_node_serving{{node=\"{}\"}} {}",
                esc(name),
                u8::from(m.health.is_serving())
            );
        }

        // -- per-link wire counters, totals and per hop
        let _ = writeln!(out, "# TYPE un_link_frames_total counter");
        let _ = writeln!(out, "# TYPE un_link_bytes_total counter");
        for (vid, graph, _, _, packets, bytes) in self.link_stats() {
            let _ = writeln!(
                out,
                "un_link_frames_total{{vid=\"{vid}\",graph=\"{}\"}} {packets}",
                esc(&graph)
            );
            let _ = writeln!(
                out,
                "un_link_bytes_total{{vid=\"{vid}\",graph=\"{}\"}} {bytes}",
                esc(&graph)
            );
        }
        let _ = writeln!(out, "# TYPE un_link_hop_frames_total counter");
        let _ = writeln!(out, "# TYPE un_link_hop_bytes_total counter");
        for (vid, graph, path, hop_packets, hop_bytes) in self.link_hop_stats() {
            for (i, (hp, hb)) in hop_packets.iter().zip(&hop_bytes).enumerate() {
                let from = path.get(i).map(String::as_str).unwrap_or("?");
                let to = path.get(i + 1).map(String::as_str).unwrap_or("?");
                let _ = writeln!(
                    out,
                    "un_link_hop_frames_total{{vid=\"{vid}\",graph=\"{}\",hop=\"{i}\",\
                     from=\"{}\",to=\"{}\"}} {hp}",
                    esc(&graph),
                    esc(from),
                    esc(to)
                );
                let _ = writeln!(
                    out,
                    "un_link_hop_bytes_total{{vid=\"{vid}\",graph=\"{}\",hop=\"{i}\",\
                     from=\"{}\",to=\"{}\"}} {hb}",
                    esc(&graph),
                    esc(from),
                    esc(to)
                );
            }
        }

        // -- trace counters (drops, TTL expiries, control-plane events)
        let _ = writeln!(out, "# TYPE un_domain_events_total counter");
        for (event, n) in self.trace.counters() {
            let _ = writeln!(
                out,
                "un_domain_events_total{{event=\"{}\"}} {n}",
                esc(event)
            );
        }
        let _ = writeln!(out, "# TYPE un_node_events_total counter");
        for (name, m) in &self.nodes {
            for (event, n) in m.node.trace.counters() {
                let _ = writeln!(
                    out,
                    "un_node_events_total{{node=\"{}\",event=\"{}\"}} {n}",
                    esc(name),
                    esc(event)
                );
            }
        }

        // -- conservation ledger
        let ledger = self.conservation_report();
        let _ = writeln!(out, "# TYPE un_conservation_frames_total counter");
        for (term, v) in [
            ("ingress", ledger.ingress),
            ("egress", ledger.egress),
            ("fanout_extra", ledger.fanout_extra),
            ("absorbed", ledger.absorbed),
            ("dropped", ledger.dropped()),
        ] {
            let _ = writeln!(out, "un_conservation_frames_total{{term=\"{term}\"}} {v}");
        }
        let _ = writeln!(out, "# TYPE un_conservation_balanced gauge");
        let _ = writeln!(
            out,
            "un_conservation_balanced {}",
            u8::from(ledger.balanced())
        );

        // -- event-ring overflow: events evicted from the bounded
        //    recent-event ring since the domain came up
        let _ = writeln!(out, "# TYPE un_events_dropped_total counter");
        let _ = writeln!(
            out,
            "un_events_dropped_total {}",
            self.obs.events().dropped()
        );

        // -- hot-path histograms + span durations from the registry
        self.obs.registry().render_prometheus(&mut out);
        out
    }

    /// Recent control-plane events/spans (newest last). Empty unless
    /// `DomainConfig::observability` is on.
    pub fn recent_events(&self) -> Vec<un_obs::Event> {
        self.obs.events().snapshot()
    }

    /// The recent-event ring as a JSON document (for `GET
    /// /domain/events`).
    pub fn events_doc(&self) -> un_nffg::Json {
        self.events_doc_filtered(None, None, None)
    }

    /// [`Domain::events_doc`] with the `GET /domain/events` query
    /// filters applied: `since` keeps events strictly newer than the
    /// given epoch offset (ns), `kind` keeps one event kind
    /// (`"event"` / `"span"`), and `limit` bounds the page to the
    /// **newest** N matches. The `matched` field counts matches before
    /// pagination so a client can tell a short tail from a short ring.
    pub fn events_doc_filtered(
        &self,
        since: Option<u64>,
        kind: Option<&str>,
        limit: Option<usize>,
    ) -> un_nffg::Json {
        use un_nffg::Json;
        let mut matching: Vec<un_obs::Event> = self
            .recent_events()
            .into_iter()
            .filter(|ev| since.is_none_or(|s| ev.at_ns > s))
            .filter(|ev| kind.is_none_or(|k| ev.kind == k))
            .collect();
        let matched = matching.len();
        if let Some(n) = limit {
            // Newest N: the ring is oldest-first, so trim the front.
            if matching.len() > n {
                matching.drain(..matching.len() - n);
            }
        }
        let events: Vec<Json> = matching
            .into_iter()
            .map(|ev| {
                let mut attrs = Json::obj();
                for (k, v) in ev.attrs {
                    attrs = match v {
                        un_obs::AttrValue::Str(s) => attrs.set(k, s),
                        un_obs::AttrValue::U64(n) => attrs.set(k, n),
                        un_obs::AttrValue::I64(n) => attrs.set(k, n as f64),
                        un_obs::AttrValue::F64(f) => attrs.set(k, f),
                        un_obs::AttrValue::Bool(b) => attrs.set(k, b),
                    };
                }
                let mut doc = Json::obj()
                    .set("at-ns", ev.at_ns)
                    .set("kind", ev.kind)
                    .set("name", ev.name)
                    .set("attributes", attrs);
                if let Some(d) = ev.duration_ns {
                    doc = doc.set("duration-ns", d);
                }
                doc
            })
            .collect();
        un_nffg::Json::obj()
            .set("enabled", self.obs.is_enabled())
            .set("dropped", self.obs.events().dropped())
            .set("matched", matched as u64)
            .set("events", events)
    }

    /// The flight recorder's recent-trace ring as a JSON document (for
    /// `GET /domain/traces`): per trace the origin, hop count, drop
    /// reasons and the rendered walk.
    pub fn traces_doc(&self) -> un_nffg::Json {
        use un_nffg::Json;
        let traces: Vec<Json> = self
            .recent_traces()
            .into_iter()
            .map(|t| Self::trace_doc(&t))
            .collect();
        Json::obj()
            .set("capacity", un_obs::DEFAULT_TRACE_CAPACITY as u64)
            .set("traces", traces)
    }

    /// One packet trace as a JSON document (shared by `POST
    /// /domain/trace` and `GET /domain/traces`).
    pub fn trace_doc(trace: &PacketTrace) -> un_nffg::Json {
        use un_nffg::Json;
        let drops: Vec<Json> = trace
            .drops()
            .into_iter()
            .map(|r| Json::from(r.as_str()))
            .collect();
        Json::obj()
            .set("origin-node", trace.origin_node.clone())
            .set("origin-port", trace.origin_port.clone())
            .set("ghost", trace.ghost)
            .set("hops", trace.hops.len() as u64)
            .set("egress", trace.egress_count() as u64)
            .set("drops", drops)
            .set("rendered", trace.render())
    }

    /// The pinned fabric path of one overlay link (`[from, …, to]`).
    pub fn link_path(&self, vid: u16) -> Option<Vec<String>> {
        self.links
            .get(&vid)
            .map(|s| s.lock().expect("link lock poisoned").path.clone())
    }

    /// Overlay VLAN id accounting: `(base, next, free, in_use,
    /// standby_reserved)`. Every id in `base..next` is free, in use,
    /// or reserved by a staged standby plan — exactly once; the chaos
    /// suites hold that as an invariant after every operation.
    #[allow(clippy::type_complexity)]
    pub fn vid_accounting(&self) -> (u16, u16, Vec<u16>, Vec<u16>, Vec<u16>) {
        let mut free = self.free_vids.clone();
        free.sort_unstable();
        let in_use: Vec<u16> = self.links.keys().copied().collect();
        let mut standby_reserved = self.standby.reserved_vids();
        standby_reserved.sort_unstable();
        (
            self.config.overlay_vid_base,
            self.next_vid,
            free,
            in_use,
            standby_reserved,
        )
    }

    /// Graphs with a make-before-break standby plan staged right now.
    pub fn standby_graphs(&self) -> Vec<String> {
        self.standby.ready_graphs().into_iter().collect()
    }

    /// The measured/modeled downtime ledger of one graph (`None` if it
    /// was never repaired or parked).
    pub fn graph_availability(&self, id: &str) -> Option<GraphAvailability> {
        self.avail.get(id).cloned()
    }

    /// The modeled-vs-measured availability report: per deployed
    /// graph, predicted availability from exposure (nodes hosting
    /// parts), redundancy (standby staged or not), and repair policy —
    /// next to the measured downtime ledger the chaos suites validate
    /// the model against.
    pub fn availability_report(&self) -> AvailabilityReport {
        let ready = self.standby.ready_graphs();
        let reactive_kind = match self.config.repair {
            RepairPolicy::Incremental => RepairKind::Reactive,
            RepairPolicy::FromScratch => RepairKind::FromScratch,
        };
        let mtbf = self.config.node_mtbf_ns.max(1);
        let graphs: Vec<GraphPrediction> = self
            .graphs
            .iter()
            .map(|(gid, g)| {
                let exposed = g.partition.parts.len();
                let standby_ready = ready.contains(gid);
                let predicted_reactive_ns = self.calibration.predict(reactive_kind);
                let predicted_repair_ns = if standby_ready {
                    self.calibration.predict(RepairKind::StandbySwap)
                } else {
                    predicted_reactive_ns
                };
                // Each exposed node fails once per MTBF on average,
                // costing one predicted repair of downtime.
                let downtime_frac = exposed as f64 * predicted_repair_ns as f64 / mtbf as f64;
                GraphPrediction {
                    graph: gid.clone(),
                    exposed_nodes: exposed,
                    standby_ready,
                    predicted_repair_ns,
                    predicted_reactive_ns,
                    predicted_availability: (1.0 - downtime_frac).max(0.0),
                    ledger: self
                        .avail
                        .get(gid)
                        .cloned()
                        .unwrap_or_else(|| GraphAvailability::new(gid)),
                }
            })
            .collect();
        let (mut modeled, mut measured, mut events) = (0u64, 0u64, 0u64);
        for ledger in self.avail.values() {
            modeled += ledger.modeled_downtime_ns;
            measured += ledger.measured_downtime_ns;
            events += ledger.repairs;
        }
        AvailabilityReport {
            node_mtbf_ns: self.config.node_mtbf_ns,
            calibration: self.calibration.clone(),
            modeled_downtime_ns: modeled,
            measured_downtime_ns: measured,
            repair_events: events,
            graphs,
        }
    }

    /// [`Domain::availability_report`] as a JSON document (`GET
    /// /domain/availability`).
    pub fn availability_doc(&self) -> un_nffg::Json {
        use un_nffg::Json;
        let r = self.availability_report();
        Json::obj()
            .set("node-mtbf-ns", r.node_mtbf_ns)
            .set("repair-events", r.repair_events)
            .set("modeled-downtime-ns", r.modeled_downtime_ns)
            .set("measured-downtime-ns", r.measured_downtime_ns)
            .set(
                "calibration",
                Json::obj()
                    .set("swap-events", r.calibration.swap_events)
                    .set(
                        "swap-mean-ns",
                        r.calibration.predict(RepairKind::StandbySwap),
                    )
                    .set("reactive-events", r.calibration.reactive_events)
                    .set(
                        "reactive-mean-ns",
                        r.calibration.predict(RepairKind::Reactive),
                    )
                    .set("scratch-events", r.calibration.scratch_events)
                    .set(
                        "scratch-mean-ns",
                        r.calibration.predict(RepairKind::FromScratch),
                    ),
            )
            .set(
                "graphs",
                Json::Arr(
                    r.graphs
                        .into_iter()
                        .map(|g| {
                            Json::obj()
                                .set("id", g.graph.as_str())
                                .set("exposed-nodes", g.exposed_nodes)
                                .set("standby-ready", g.standby_ready)
                                .set("predicted-repair-ns", g.predicted_repair_ns)
                                .set("predicted-reactive-ns", g.predicted_reactive_ns)
                                .set("predicted-availability", g.predicted_availability)
                                .set("repairs", g.ledger.repairs)
                                .set("standby-promotions", g.ledger.standby_promotions)
                                .set("measured-downtime-ns", g.ledger.measured_downtime_ns)
                                .set("modeled-downtime-ns", g.ledger.modeled_downtime_ns)
                                .set("park-events", g.ledger.park_events)
                                .set("park-downtime-ns", g.ledger.park_downtime_ns)
                        })
                        .collect(),
                ),
            )
    }

    /// The fabric topology document: mode, explicit edges, and the
    /// pinned path of every live overlay link.
    pub fn topology_doc(&self) -> un_nffg::Json {
        use un_nffg::Json;
        let topo = &self.config.topology;
        Json::obj()
            .set(
                "mode",
                if topo.is_full_mesh() {
                    "full-mesh"
                } else {
                    "explicit"
                },
            )
            .set(
                "edges",
                Json::Arr(
                    topo.edge_list()
                        .into_iter()
                        .map(|(a, b, attrs)| {
                            Json::obj()
                                .set("a", a.as_str())
                                .set("b", b.as_str())
                                .set("latency-ns", attrs.latency_ns)
                                .set("capacity-bps", attrs.capacity_bps)
                        })
                        .collect(),
                ),
            )
            .set(
                "paths",
                Json::Arr(
                    self.links
                        .values()
                        .map(|s| {
                            let s = s.lock().expect("link lock poisoned");
                            Json::obj()
                                .set("vid", s.link.vid)
                                .set("graph", s.graph.as_str())
                                .set(
                                    "path",
                                    Json::Arr(
                                        s.path.iter().map(|n| Json::from(n.as_str())).collect(),
                                    ),
                                )
                                .set("hops", s.path.len().saturating_sub(1))
                        })
                        .collect(),
                ),
            )
    }

    /// Toggle the domain-wide sharable-NNF registry at runtime.
    /// Deployed graphs keep the leases they hold; new plans (deploys,
    /// updates, repairs) follow the switch.
    pub fn set_sharing_enabled(&mut self, enabled: bool) {
        if self.config.sharing.enabled != enabled {
            self.config.sharing.enabled = enabled;
            self.trace.count(
                if enabled {
                    "sharing_enabled"
                } else {
                    "sharing_disabled"
                },
                1,
            );
        }
    }

    /// Is the fleet-level sharing registry currently consulted?
    pub fn sharing_enabled(&self) -> bool {
        self.config.sharing.enabled
    }

    /// Snapshot of every live shared instance (key, host, leases).
    pub fn shared_instances(&self) -> Vec<SharedInstance> {
        self.sharing.instances().cloned().collect()
    }

    /// The shared leases a deployed graph holds (`None` for unknown
    /// graphs; an empty map for tenants of nothing).
    pub fn graph_shared_leases(&self, id: &str) -> Option<BTreeMap<ShareKey, SharedClaim>> {
        self.graphs.get(id).map(|g| g.shared.clone())
    }

    /// The shared-NNF registry document (`GET /domain/shared`):
    /// settings plus every instance with its host and tenant leases.
    pub fn shared_doc(&self) -> un_nffg::Json {
        use un_nffg::Json;
        Json::obj()
            .set("enabled", self.config.sharing.enabled)
            .set("election", self.config.sharing.election.name())
            .set(
                "types",
                Json::Arr(
                    self.config
                        .sharing
                        .types
                        .iter()
                        .map(|t| Json::from(t.as_str()))
                        .collect(),
                ),
            )
            .set(
                "max-leases",
                match self.config.sharing.max_leases {
                    Some(max) => Json::from(max),
                    None => Json::Null,
                },
            )
            .set(
                "instances",
                Json::Arr(
                    self.sharing
                        .instances()
                        .map(|inst| {
                            Json::obj()
                                .set("type", inst.key.functional_type.as_str())
                                .set("capability", inst.key.capability.as_str())
                                .set("host", inst.host.as_str())
                                .set("tenants", inst.tenant_count())
                                .set("wires", inst.wires())
                                .set(
                                    "leases",
                                    Json::Arr(
                                        inst.leases
                                            .iter()
                                            .map(|(graph, nfs)| {
                                                Json::obj()
                                                    .set("graph", graph.as_str())
                                                    .set("nfs", *nfs)
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
    }

    /// The domain's self-description as a JSON document.
    pub fn describe(&self) -> un_nffg::Json {
        use un_nffg::Json;
        Json::obj()
            .set(
                "nodes",
                Json::Arr(
                    self.nodes
                        .values()
                        .map(|m| {
                            let cache = m.node.flow_cache_stats();
                            let health = match m.health {
                                NodeHealth::Alive => "alive",
                                NodeHealth::Suspect => "suspect",
                                NodeHealth::Failed => "failed",
                            };
                            Json::obj()
                                .set("name", m.node.name.as_str())
                                .set("alive", m.health.is_serving())
                                .set("health", health)
                                .set("memory_used", m.node.memory_used())
                                .set("memory_capacity", m.node.mem_capacity())
                                .set("flow_cache_hits", cache.cache_hits)
                                .set("flow_cache_misses", cache.cache_misses)
                                .set(
                                    "graphs",
                                    Json::Arr(
                                        m.node
                                            .graph_ids()
                                            .iter()
                                            .map(|g| Json::from(g.as_str()))
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .set(
                "graphs",
                Json::Arr(
                    self.graphs
                        .iter()
                        .map(|(id, g)| {
                            Json::obj()
                                .set("id", id.as_str())
                                .set(
                                    "nodes",
                                    Json::Arr(
                                        g.partition
                                            .parts
                                            .keys()
                                            .map(|n| Json::from(n.as_str()))
                                            .collect(),
                                    ),
                                )
                                .set("overlay_links", g.partition.links.len())
                                .set(
                                    "shared-leases",
                                    Json::Arr(
                                        g.shared
                                            .iter()
                                            .map(|(key, claim)| {
                                                Json::obj()
                                                    .set("type", key.functional_type.as_str())
                                                    .set("capability", key.capability.as_str())
                                                    .set("host", claim.host.as_str())
                                                    .set("nfs", claim.nfs)
                                            })
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .set(
                "links",
                Json::Arr(
                    self.links
                        .values()
                        .map(|s| {
                            let s = s.lock().expect("link lock poisoned");
                            Json::obj()
                                .set("vid", s.link.vid)
                                .set("graph", s.graph.as_str())
                                .set("from", s.link.from_node.as_str())
                                .set("to", s.link.to_node.as_str())
                                .set(
                                    "path",
                                    Json::Arr(
                                        s.path.iter().map(|n| Json::from(n.as_str())).collect(),
                                    ),
                                )
                                .set("protected", s.sas.is_some())
                                .set("packets", s.packets)
                                .set("bytes", s.bytes)
                        })
                        .collect(),
                ),
            )
            .set(
                "pending",
                Json::Arr(
                    self.pending
                        .keys()
                        .map(|g| Json::from(g.as_str()))
                        .collect(),
                ),
            )
    }
}

/// Derive a deterministic SA pair for one overlay link.
fn derive_link_sas(seed: u64, link: &OverlayLink) -> (SecurityAssociation, SecurityAssociation) {
    let mut rng = DetRng::new(seed ^ (u64::from(link.vid) << 16));
    let mut key = [0u8; 32];
    let mut salt = [0u8; 4];
    rng.fill(&mut key);
    rng.fill(&mut salt);
    let spi = 0x4f56_0000 | u32::from(link.vid); // 'OV' + vid
    let src = Ipv4Addr::new(10, 255, 255, 1);
    let dst = Ipv4Addr::new(10, 255, 255, 2);
    (
        SecurityAssociation::outbound(spi, src, dst, key, salt),
        SecurityAssociation::inbound(spi, src, dst, key, salt),
    )
}

mod verify;

#[cfg(test)]
mod tests;
