//! The domain orchestrator: a fleet of Universal Nodes behaving as one.
//!
//! [`Domain`] owns N [`UniversalNode`]s, accepts whole NF-FGs, splits
//! them with [`crate::placement`] + [`crate::partition`], deploys the
//! parts, and stitches cut edges with **inter-node overlay links**:
//! VLAN-tagged virtual wires riding a dedicated fabric interface on
//! every node, optionally ESP-protected with `un-ipsec` (real
//! encrypt/verify per shuttled frame, so corruption on the inter-node
//! wire can never deliver wrong bytes).
//!
//! The data plane is a **batched shuttle**: [`Domain::inject_batch`]
//! drains a node's whole pending burst through the node's
//! run-to-completion batch path, buckets fabric-bound egress by VLAN
//! link, seals/verifies ESP per burst, and hands each peer node its
//! burst at once — optionally sharded across `std::thread` workers
//! (every node is an isolated state machine; per-link locks guard the
//! only shared state). [`Domain::inject`] is the single-frame wrapper.

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use un_core::{DeployReport, Name, PortId, UniversalNode};
use un_ipsec::{esp, SecurityAssociation};
use un_nffg::{validate, NfFg, ValidationError};
use un_packet::Packet;
use un_sim::{Cost, DetRng, SimTime, TraceLog};

use crate::partition::{partition, OverlayLink, Partition, PartitionError};
use crate::placement::{assign, assign_endpoints, NodeView, PlaceError, PlacementStrategy};

/// First VLAN id of the overlay pool (up to 4094 inclusive).
const OVERLAY_VID_BASE: u16 = 3000;

/// Domain-wide settings.
#[derive(Debug, Clone)]
pub struct DomainConfig {
    /// Physical interface reserved on every node for overlay traffic.
    pub fabric_port: String,
    /// Protect overlay frames with ESP (encrypt on egress, verify on
    /// ingress) while crossing between nodes.
    pub protect_overlay: bool,
    /// Propagation + switching cost of one overlay hop.
    pub overlay_link_ns: u64,
    /// Fixed ESP cost per protected frame (each direction).
    pub esp_fixed_ns: u64,
    /// Per-byte ESP cost (each direction), in nanoseconds.
    pub esp_ns_per_byte: f64,
    /// Heartbeats older than this mark a node failed at [`Domain::tick`].
    pub heartbeat_timeout_ns: u64,
    /// Placement tie-break goal.
    pub strategy: PlacementStrategy,
    /// Seed for overlay SA key derivation.
    pub seed: u64,
    /// Per-injected-frame overlay hop budget: how many node-to-node
    /// crossings one frame may make before being dropped as a loop
    /// (`overlay_loop_drops`). Per frame, not per burst, so a large
    /// batch of well-behaved frames is never culled by a shared
    /// counter. A separate last-resort valve of `batch × overlay_ttl`
    /// total crossings bounds *amplifying* loops; once tripped it
    /// drops every further crossing in the call (counted as
    /// `overlay_work_exhausted`).
    pub overlay_ttl: u32,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            fabric_port: "fab0".to_string(),
            protect_overlay: false,
            overlay_link_ns: 5_000,
            esp_fixed_ns: 700,
            esp_ns_per_byte: 2.0,
            heartbeat_timeout_ns: 3_000_000_000, // 3 virtual seconds
            strategy: PlacementStrategy::Pack,
            seed: 0x5eed_d0ca_1000_0001,
            overlay_ttl: 64,
        }
    }
}

/// Caller-supplied placement constraints for one graph.
#[derive(Debug, Clone, Default)]
pub struct DeployHints {
    /// Endpoint id → node name.
    pub endpoint_node: BTreeMap<String, String>,
    /// NF id → node name (pin).
    pub nf_node: BTreeMap<String, String>,
    /// Override the domain's default placement strategy.
    pub strategy: Option<PlacementStrategy>,
}

/// Why a domain operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// Static validation failed.
    Invalid(Vec<ValidationError>),
    /// A graph with this id is already deployed.
    AlreadyDeployed(String),
    /// No graph with this id.
    NoSuchGraph(String),
    /// No node with this name.
    NoSuchNode(String),
    /// Fleet-level placement failed.
    Place(PlaceError),
    /// Graph partitioning failed.
    Partition(PartitionError),
    /// A node rejected its part.
    Deploy {
        /// The node that failed.
        node: String,
        /// Its error, stringified.
        error: String,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::Invalid(errs) => {
                write!(f, "invalid NF-FG ({} problems): ", errs.len())?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            DomainError::AlreadyDeployed(g) => write!(f, "graph '{g}' already deployed"),
            DomainError::NoSuchGraph(g) => write!(f, "no such graph '{g}'"),
            DomainError::NoSuchNode(n) => write!(f, "no such node '{n}'"),
            DomainError::Place(e) => write!(f, "placement: {e}"),
            DomainError::Partition(e) => write!(f, "partition: {e}"),
            DomainError::Deploy { node, error } => write!(f, "deploy on '{node}': {error}"),
        }
    }
}

impl std::error::Error for DomainError {}

impl From<PlaceError> for DomainError {
    fn from(e: PlaceError) -> Self {
        DomainError::Place(e)
    }
}

impl From<PartitionError> for DomainError {
    fn from(e: PartitionError) -> Self {
        DomainError::Partition(e)
    }
}

/// What a domain deploy reports back.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// Graph id.
    pub graph: String,
    /// Per-node deploy reports, in node-name order.
    pub per_node: Vec<(String, DeployReport)>,
    /// Overlay links stitched for this graph.
    pub overlay_links: usize,
}

/// Result of injecting frames at domain ingresses.
#[derive(Debug, Default)]
pub struct DomainIo {
    /// Frames leaving the domain: (node, physical port, packet).
    pub emitted: Vec<(Name, Name, Packet)>,
    /// Total virtual time consumed, across nodes and overlay hops.
    pub cost: Cost,
    /// Overlay link traversals.
    pub overlay_hops: u32,
    /// Bytes that crossed ESP-protected links (0 when unprotected).
    pub protected_bytes: u64,
}

/// Liveness view of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeHealth {
    /// Heartbeating normally.
    Alive,
    /// Declared failed (by timeout or explicitly).
    Failed,
}

/// Outcome of a node failure: which graphs were re-placed.
#[derive(Debug, Clone, Default)]
pub struct ReplacementReport {
    /// Graphs successfully re-deployed on the surviving fleet.
    pub replaced: Vec<String>,
    /// Graphs that could not be re-placed (kept as pending specs).
    pub stranded: Vec<String>,
}

struct ManagedNode {
    node: UniversalNode,
    health: NodeHealth,
    last_heartbeat: SimTime,
}

struct LinkState {
    link: OverlayLink,
    graph: String,
    /// Outbound + inbound SA pair protecting this wire (ESP mode).
    sas: Option<Box<(SecurityAssociation, SecurityAssociation)>>,
    packets: u64,
    bytes: u64,
}

struct DomainGraph {
    original: NfFg,
    hints: DeployHints,
    assignment: BTreeMap<String, String>,
    partition: Partition,
}

/// The domain orchestrator.
pub struct Domain {
    /// Settings.
    pub config: DomainConfig,
    nodes: BTreeMap<String, ManagedNode>,
    graphs: BTreeMap<String, DomainGraph>,
    /// Graphs lost in a failure that no surviving fleet could host.
    pending: BTreeMap<String, (NfFg, DeployHints)>,
    links: BTreeMap<u16, LinkState>,
    free_vids: Vec<u16>,
    next_vid: u16,
    clock: SimTime,
    /// Domain-level counters (`graphs_deployed`, `overlay_frames`, …).
    pub trace: TraceLog,
}

impl Domain {
    /// An empty domain with the given settings.
    pub fn new(config: DomainConfig) -> Self {
        Domain {
            config,
            nodes: BTreeMap::new(),
            graphs: BTreeMap::new(),
            pending: BTreeMap::new(),
            links: BTreeMap::new(),
            free_vids: Vec::new(),
            next_vid: OVERLAY_VID_BASE,
            clock: SimTime::ZERO,
            trace: TraceLog::new(4096),
        }
    }

    /// An empty domain with default settings.
    pub fn with_defaults() -> Self {
        Self::new(DomainConfig::default())
    }

    // ------------------------------------------------------------------
    // Fleet management
    // ------------------------------------------------------------------

    /// Adopt a node into the fleet. The fabric interface is created if
    /// the node does not already expose it.
    ///
    /// A node may *rejoin* under the name of a **failed** node (its
    /// partitions were already re-placed or parked by `fail_node`, so
    /// replacing the carcass is safe). Registering a second node under
    /// the name of an **alive** one would silently orphan every graph
    /// partition the original hosts, so that is a hard error.
    ///
    /// # Panics
    ///
    /// If a node with this name is already alive in the fleet.
    pub fn add_node(&mut self, mut node: UniversalNode) -> String {
        if !node.has_physical_port(&self.config.fabric_port) {
            node.add_physical_port(&self.config.fabric_port);
        }
        let name = node.name.clone();
        match self.nodes.get(&name) {
            Some(m) if m.health == NodeHealth::Alive => {
                panic!("node '{name}' is already registered and alive")
            }
            Some(_) => self.trace.count("nodes_rejoined", 1),
            None => self.trace.count("nodes_added", 1),
        }
        self.nodes.insert(
            name.clone(),
            ManagedNode {
                node,
                health: NodeHealth::Alive,
                last_heartbeat: self.clock,
            },
        );
        name
    }

    /// Fleet size (including failed nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Names of alive nodes.
    pub fn alive_nodes(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|(_, m)| m.health == NodeHealth::Alive)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Borrow a node.
    pub fn node(&self, name: &str) -> Option<&UniversalNode> {
        self.nodes.get(name).map(|m| &m.node)
    }

    /// Borrow a node mutably (tests / harnesses).
    pub fn node_mut(&mut self, name: &str) -> Option<&mut UniversalNode> {
        self.nodes.get_mut(name).map(|m| &mut m.node)
    }

    /// Health of one node.
    pub fn health(&self, name: &str) -> Option<NodeHealth> {
        self.nodes.get(name).map(|m| m.health.clone())
    }

    /// Advance the domain clock (propagates to alive nodes).
    pub fn set_time(&mut self, now: SimTime) {
        self.clock = now;
        for managed in self.nodes.values_mut() {
            if managed.health == NodeHealth::Alive {
                managed.node.set_time(now);
            }
        }
    }

    /// Record a node heartbeat.
    pub fn heartbeat(&mut self, name: &str, now: SimTime) -> Result<(), DomainError> {
        let managed = self
            .nodes
            .get_mut(name)
            .ok_or_else(|| DomainError::NoSuchNode(name.to_string()))?;
        managed.last_heartbeat = now;
        Ok(())
    }

    /// Advance time and fail every node whose heartbeat is stale.
    /// Returns the re-placement outcome per newly failed node.
    pub fn tick(&mut self, now: SimTime) -> Vec<(String, ReplacementReport)> {
        self.set_time(now);
        let timeout = self.config.heartbeat_timeout_ns;
        let stale: Vec<String> = self
            .nodes
            .iter()
            .filter(|(_, m)| {
                m.health == NodeHealth::Alive
                    && now.duration_since(m.last_heartbeat).as_nanos() > timeout
            })
            .map(|(n, _)| n.clone())
            .collect();
        // Mark the whole stale set failed *before* re-placing anything,
        // so a graph from the first dead node is never re-placed onto a
        // node that the same sweep is about to declare dead.
        for name in &stale {
            if let Some(m) = self.nodes.get_mut(name) {
                m.health = NodeHealth::Failed;
                self.trace.count("nodes_failed", 1);
            }
        }
        stale
            .into_iter()
            .map(|n| {
                let report = self.replace_lost_partitions(&n);
                (n, report)
            })
            .collect()
    }

    /// The scheduler's view of the fleet.
    pub fn views(&self) -> Vec<NodeView> {
        self.nodes
            .values()
            .map(|m| NodeView {
                name: m.node.name.clone(),
                free_memory: m.node.free_memory(),
                capacity: m.node.mem_capacity(),
                native_types: m.node.native_nnf_types().into_iter().collect(),
                shared_running: m.node.shared_nnf_types().into_iter().collect(),
                ports: m
                    .node
                    .physical_port_names()
                    .into_iter()
                    .filter(|p| *p != self.config.fabric_port)
                    .collect(),
                alive: m.health == NodeHealth::Alive,
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Graph lifecycle
    // ------------------------------------------------------------------

    /// Deploy a graph with default hints.
    pub fn deploy(&mut self, graph: &NfFg) -> Result<DomainReport, DomainError> {
        self.deploy_with(graph, &DeployHints::default())
    }

    /// Deploy a graph across the fleet.
    pub fn deploy_with(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
    ) -> Result<DomainReport, DomainError> {
        let errs = validate(graph);
        if !errs.is_empty() {
            return Err(DomainError::Invalid(errs));
        }
        if self.graphs.contains_key(&graph.id) {
            return Err(DomainError::AlreadyDeployed(graph.id.clone()));
        }
        let (assignment, part) = self.plan(graph, hints, &BTreeMap::new(), &BTreeMap::new())?;
        let report = self.install(graph, hints, assignment, part)?;
        // An explicit deploy supersedes any copy parked by an earlier
        // failure; otherwise retry_pending could double-deploy it.
        self.pending.remove(&graph.id);
        self.trace.count("graphs_deployed", 1);
        Ok(report)
    }

    /// Compute assignment + partition without touching any node.
    ///
    /// `reuse` maps cut-edge identities to the VLAN ids a live
    /// deployment of this graph already uses, so re-planning keeps
    /// unchanged overlay links (and their synthesized endpoint ids)
    /// stable — the property that lets rule-only updates apply in
    /// place instead of forcing a structural redeploy per node.
    fn plan(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
        pins: &BTreeMap<String, String>,
        reuse: &BTreeMap<(String, String, un_nffg::PortRef), u16>,
    ) -> Result<(BTreeMap<String, String>, Partition), DomainError> {
        let views = self.views();
        let endpoint_node = assign_endpoints(graph, &views, &hints.endpoint_node)?;
        let estimates = self.estimates(graph);
        let mut merged_pins = pins.clone();
        merged_pins.extend(hints.nf_node.clone());
        let assignment = assign(
            graph,
            &views,
            &estimates,
            &endpoint_node,
            &merged_pins,
            hints.strategy.unwrap_or(self.config.strategy),
        )?;
        // Reserve VLAN ids (fresh ones only; reused ids stay owned by
        // the live deployment); fresh ids return to the pool if
        // installation fails.
        let fabric = self.config.fabric_port.clone();
        let mut taken: Vec<u16> = Vec::new();
        let part = {
            let free_vids = &mut self.free_vids;
            let next_vid = &mut self.next_vid;
            let mut alloc = |from: &str, to: &str, target: &un_nffg::PortRef| {
                if let Some(vid) = reuse.get(&(from.to_string(), to.to_string(), target.clone())) {
                    return Some(*vid);
                }
                let vid = free_vids.pop().or_else(|| {
                    if *next_vid > 4094 {
                        None
                    } else {
                        let v = *next_vid;
                        *next_vid += 1;
                        Some(v)
                    }
                })?;
                taken.push(vid);
                Some(vid)
            };
            partition(graph, &assignment, &endpoint_node, &fabric, &mut alloc)
        };
        match part {
            Ok(part) => Ok((assignment, part)),
            Err(e) => {
                self.free_vids.extend(taken);
                Err(e.into())
            }
        }
    }

    /// Deploy the parts of a planned graph; rolls back on failure.
    fn install(
        &mut self,
        graph: &NfFg,
        hints: &DeployHints,
        assignment: BTreeMap<String, String>,
        part: Partition,
    ) -> Result<DomainReport, DomainError> {
        let mut per_node: Vec<(String, DeployReport)> = Vec::new();
        let mut deployed: Vec<String> = Vec::new();
        for (node_name, sub) in &part.parts {
            let managed = self
                .nodes
                .get_mut(node_name)
                .expect("assignment uses fleet");
            match managed.node.deploy(sub) {
                Ok(report) => {
                    per_node.push((node_name.clone(), report));
                    deployed.push(node_name.clone());
                }
                Err(e) => {
                    for prior in &deployed {
                        let m = self.nodes.get_mut(prior).expect("deployed above");
                        let _ = m.node.undeploy(&graph.id);
                    }
                    self.free_vids.extend(part.links.iter().map(|l| l.vid));
                    self.trace.count("deploys_rolled_back", 1);
                    return Err(DomainError::Deploy {
                        node: node_name.clone(),
                        error: e.to_string(),
                    });
                }
            }
        }
        // Stitch the overlay.
        self.register_links(&graph.id, &part.links);
        let report = DomainReport {
            graph: graph.id.clone(),
            per_node,
            overlay_links: part.links.len(),
        };
        self.graphs.insert(
            graph.id.clone(),
            DomainGraph {
                original: graph.clone(),
                hints: hints.clone(),
                assignment,
                partition: part,
            },
        );
        Ok(report)
    }

    /// Register overlay link state (deriving SA pairs in ESP mode) for
    /// a graph's freshly partitioned links.
    fn register_links(&mut self, graph_id: &str, links: &[OverlayLink]) {
        for link in links {
            let sas = self
                .config
                .protect_overlay
                .then(|| Box::new(derive_link_sas(self.config.seed, link)));
            self.links.insert(
                link.vid,
                LinkState {
                    link: link.clone(),
                    graph: graph_id.to_string(),
                    sas,
                    packets: 0,
                    bytes: 0,
                },
            );
        }
        self.trace.count("overlay_links_up", links.len() as u64);
    }

    /// Scheduler RAM estimates for every NF of a graph (representative
    /// node; the fleet shares one repository).
    fn estimates(&self, graph: &NfFg) -> BTreeMap<String, u64> {
        let probe = self
            .nodes
            .values()
            .find(|m| m.health == NodeHealth::Alive)
            .map(|m| &m.node);
        graph
            .nfs
            .iter()
            .map(|nf| {
                let est = probe
                    .and_then(|n| n.estimate_nf_ram(&nf.functional_type, nf.flavor.as_deref()))
                    .unwrap_or(64 << 20);
                (nf.id.clone(), est)
            })
            .collect()
    }

    /// Update a deployed graph (rule-level changes update parts in
    /// place; structural changes re-plan, keeping surviving NFs on
    /// their nodes).
    pub fn update(&mut self, graph: &NfFg) -> Result<DomainReport, DomainError> {
        let errs = validate(graph);
        if !errs.is_empty() {
            return Err(DomainError::Invalid(errs));
        }
        let Some(existing) = self.graphs.get(&graph.id) else {
            return Err(DomainError::NoSuchGraph(graph.id.clone()));
        };
        let diff = un_nffg::diff(&existing.original, graph);
        if diff.is_empty() {
            return Ok(DomainReport {
                graph: graph.id.clone(),
                per_node: Vec::new(),
                overlay_links: existing.partition.links.len(),
            });
        }
        let structural = !diff.added_nfs.is_empty()
            || !diff.removed_nfs.is_empty()
            || !diff.changed_nfs.is_empty()
            || !diff.added_endpoints.is_empty()
            || !diff.removed_endpoints.is_empty();
        self.trace.count(
            if structural {
                "graph_updates_structural"
            } else {
                "graph_updates_rules"
            },
            1,
        );

        let hints = existing.hints.clone();
        // Keep surviving NFs where they run today.
        let alive: Vec<String> = self.alive_nodes();
        let pins: BTreeMap<String, String> = existing
            .assignment
            .iter()
            .filter(|(nf, node)| graph.nf(nf).is_some() && alive.iter().any(|a| a == *node))
            .map(|(nf, node)| (nf.clone(), node.clone()))
            .collect();
        let old_parts: BTreeMap<String, NfFg> = existing.partition.parts.clone();
        let old_links: Vec<u16> = existing.partition.links.iter().map(|l| l.vid).collect();
        // Unchanged cut edges keep their VLAN id (and thus their
        // synthesized endpoint id), so a rules-only update leaves the
        // parts' endpoint sets intact and applies in place per node.
        let reuse: BTreeMap<(String, String, un_nffg::PortRef), u16> = existing
            .partition
            .links
            .iter()
            .map(|l| {
                (
                    (l.from_node.clone(), l.to_node.clone(), l.dst_target.clone()),
                    l.vid,
                )
            })
            .collect();

        let (assignment, part) = self.plan(graph, &hints, &pins, &reuse)?;

        // Reconcile per node.
        let mut per_node: Vec<(String, DeployReport)> = Vec::new();
        let mut failure: Option<DomainError> = None;
        for (node_name, sub) in &part.parts {
            let managed = self
                .nodes
                .get_mut(node_name)
                .expect("assignment uses fleet");
            let result = if old_parts.contains_key(node_name) {
                managed.node.update(sub)
            } else {
                managed.node.deploy(sub)
            };
            match result {
                Ok(report) => per_node.push((node_name.clone(), report)),
                Err(e) => {
                    failure = Some(DomainError::Deploy {
                        node: node_name.clone(),
                        error: e.to_string(),
                    });
                    break;
                }
            }
        }
        if failure.is_none() {
            for node_name in old_parts.keys() {
                if !part.parts.contains_key(node_name) {
                    if let Some(m) = self.nodes.get_mut(node_name) {
                        let _ = m.node.undeploy(&graph.id);
                    }
                }
            }
        }
        if let Some(err) = failure {
            // Best-effort cleanup: drop the graph everywhere; the caller
            // holds the spec and can redeploy.
            for node_name in part.parts.keys().chain(old_parts.keys()) {
                if let Some(m) = self.nodes.get_mut(node_name) {
                    let _ = m.node.undeploy(&graph.id);
                }
            }
            // Reused vids appear in both link sets — free each once.
            let all: std::collections::BTreeSet<u16> = old_links
                .iter()
                .copied()
                .chain(part.links.iter().map(|l| l.vid))
                .collect();
            for vid in all {
                self.links.remove(&vid);
                self.free_vids.push(vid);
            }
            self.graphs.remove(&graph.id);
            self.trace.count("updates_failed", 1);
            return Err(err);
        }

        // Swap overlay link state: free vids the new partition no
        // longer uses, then (re-)register the new link set (reused vids
        // get fresh LinkState; counters restart, SAs re-derive to the
        // same keys).
        let kept: std::collections::BTreeSet<u16> = part.links.iter().map(|l| l.vid).collect();
        for vid in old_links {
            self.links.remove(&vid);
            if !kept.contains(&vid) {
                self.free_vids.push(vid);
            }
        }
        self.register_links(&graph.id, &part.links);
        let overlay_links = part.links.len();
        self.graphs.insert(
            graph.id.clone(),
            DomainGraph {
                original: graph.clone(),
                hints,
                assignment,
                partition: part,
            },
        );
        Ok(DomainReport {
            graph: graph.id.clone(),
            per_node,
            overlay_links,
        })
    }

    /// Undeploy a graph from every node that hosts a part of it (and
    /// drop any copy parked for re-placement — an undeployed graph
    /// must never resurrect through `retry_pending`).
    pub fn undeploy(&mut self, graph_id: &str) -> Result<(), DomainError> {
        let was_pending = self.pending.remove(graph_id).is_some();
        let Some(entry) = self.graphs.remove(graph_id) else {
            if was_pending {
                return Ok(());
            }
            return Err(DomainError::NoSuchGraph(graph_id.to_string()));
        };
        for node_name in entry.partition.parts.keys() {
            if let Some(m) = self.nodes.get_mut(node_name) {
                if m.health == NodeHealth::Alive {
                    let _ = m.node.undeploy(graph_id);
                }
            }
        }
        for link in &entry.partition.links {
            self.links.remove(&link.vid);
            self.free_vids.push(link.vid);
        }
        self.trace.count("graphs_undeployed", 1);
        Ok(())
    }

    /// Deployed graph ids (pending re-placement excluded).
    pub fn graph_ids(&self) -> Vec<String> {
        self.graphs.keys().cloned().collect()
    }

    /// The original (whole) NF-FG of a deployed graph.
    pub fn graph(&self, id: &str) -> Option<&NfFg> {
        self.graphs.get(id).map(|g| &g.original)
    }

    /// The current partition of a deployed graph.
    pub fn partition_of(&self, id: &str) -> Option<&Partition> {
        self.graphs.get(id).map(|g| &g.partition)
    }

    /// Node assignment of a deployed graph's NFs.
    pub fn assignment_of(&self, id: &str) -> Option<&BTreeMap<String, String>> {
        self.graphs.get(id).map(|g| &g.assignment)
    }

    /// Graphs waiting for capacity after a failure.
    pub fn pending_graphs(&self) -> Vec<String> {
        self.pending.keys().cloned().collect()
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// Declare a node failed and re-place every partition it hosted
    /// onto the surviving fleet.
    pub fn fail_node(&mut self, name: &str) -> Result<ReplacementReport, DomainError> {
        let managed = self
            .nodes
            .get_mut(name)
            .ok_or_else(|| DomainError::NoSuchNode(name.to_string()))?;
        if managed.health == NodeHealth::Failed {
            return Ok(ReplacementReport::default());
        }
        managed.health = NodeHealth::Failed;
        self.trace.count("nodes_failed", 1);
        Ok(self.replace_lost_partitions(name))
    }

    /// Re-place every graph hosting a part on the (already marked
    /// failed) node `name` onto the surviving fleet.
    fn replace_lost_partitions(&mut self, name: &str) -> ReplacementReport {
        // Graphs with a part on the dead node.
        let affected: Vec<String> = self
            .graphs
            .iter()
            .filter(|(_, g)| g.partition.parts.contains_key(name))
            .map(|(id, _)| id.clone())
            .collect();

        let mut report = ReplacementReport::default();
        for gid in affected {
            let entry = self.graphs.remove(&gid).expect("listed above");
            // Tear down surviving parts; the dead node's state is gone
            // with the node.
            for node_name in entry.partition.parts.keys() {
                if node_name == name {
                    continue;
                }
                if let Some(m) = self.nodes.get_mut(node_name) {
                    if m.health == NodeHealth::Alive {
                        let _ = m.node.undeploy(&gid);
                    }
                }
            }
            for link in &entry.partition.links {
                self.links.remove(&link.vid);
                self.free_vids.push(link.vid);
            }
            // Drop pins that no longer point at an alive node (this one
            // or any other casualty of the same sweep) so the scheduler
            // may move them (interface availability decides).
            let alive = self.alive_nodes();
            let mut hints = entry.hints.clone();
            hints.endpoint_node.retain(|_, n| alive.contains(n));
            hints.nf_node.retain(|_, n| alive.contains(n));
            match self
                .plan(&entry.original, &hints, &BTreeMap::new(), &BTreeMap::new())
                .and_then(|(assignment, part)| {
                    self.install(&entry.original, &hints, assignment, part)
                }) {
                Ok(_) => {
                    self.trace.count("graphs_replaced", 1);
                    report.replaced.push(gid);
                }
                Err(_) => {
                    self.trace.count("graphs_stranded", 1);
                    self.pending.insert(gid.clone(), (entry.original, hints));
                    report.stranded.push(gid);
                }
            }
        }
        report
    }

    /// Try to deploy graphs stranded by earlier failures (call after
    /// adding capacity).
    pub fn retry_pending(&mut self) -> Vec<String> {
        let pending: Vec<(String, (NfFg, DeployHints))> =
            std::mem::take(&mut self.pending).into_iter().collect();
        let mut deployed = Vec::new();
        for (gid, (graph, hints)) in pending {
            if self.graphs.contains_key(&gid) {
                // A live deployment supersedes the parked copy (the
                // operator re-deployed it since the failure).
                continue;
            }
            match self
                .plan(&graph, &hints, &BTreeMap::new(), &BTreeMap::new())
                .and_then(|(assignment, part)| self.install(&graph, &hints, assignment, part))
            {
                Ok(_) => deployed.push(gid),
                Err(_) => {
                    self.pending.insert(gid, (graph, hints));
                }
            }
        }
        deployed
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Inject a frame on a node's physical port and run it across the
    /// domain until every resulting frame left on a real egress.
    ///
    /// Thin wrapper over [`Domain::inject_batch`] with a one-frame
    /// burst and a single worker. Each call pays the shuttle's
    /// per-call setup (an O(fleet) reference map plus O(links) lock
    /// wrappers — pointer work, no per-node allocation); high-rate
    /// callers should batch frames into `inject_batch` instead, which
    /// amortizes that setup across the whole burst.
    pub fn inject(&mut self, node: &str, port: &str, pkt: Packet) -> DomainIo {
        self.inject_batch(vec![(node.to_string(), port.to_string(), pkt)], 1)
    }

    /// Inject a burst of `(node, port, frame)` triples and drain the
    /// whole burst across the domain, optionally sharded over
    /// `workers` OS threads.
    ///
    /// The shuttle is batched end to end: each node's pending frames
    /// are drained through [`UniversalNode::inject_batch`] in one call,
    /// fabric-bound egress is bucketed by VLAN link, ESP links
    /// seal/verify per burst under one lock, and the peer node receives
    /// its whole burst at once. With `workers > 1` the fleet is sharded
    /// across scoped threads: every node is an isolated state machine,
    /// so any idle worker may claim any node with pending frames (a
    /// work-stealing drain); link counters and SAs are the only shared
    /// state and sit behind per-link locks.
    ///
    /// Every frame carries its own overlay-hop TTL
    /// ([`DomainConfig::overlay_ttl`]), so a large burst can never be
    /// spuriously dropped as a loop — only genuinely circulating frames
    /// die (counted as `overlay_loop_drops`).
    pub fn inject_batch(
        &mut self,
        ingress: Vec<(String, String, Packet)>,
        workers: usize,
    ) -> DomainIo {
        let mut io = DomainIo::default();
        let ttl = self.config.overlay_ttl.max(1);
        let fabric = self.config.fabric_port.clone();
        let overlay_link_ns = self.config.overlay_link_ns;
        let esp_fixed_ns = self.config.esp_fixed_ns;
        let esp_ns_per_byte = self.config.esp_ns_per_byte;

        // One cell per *touched* node; the cell owns the node state
        // while no worker is driving it. Untouched nodes stay as bare
        // references in `spare`, so a single-frame inject on a large
        // fleet does no per-node interning or port resolution.
        struct NodeCell<'a> {
            managed: Option<&'a mut ManagedNode>,
            fabric_id: Option<PortId>,
            name: Name,
            /// Pending bursts keyed by remaining TTL, freshest first.
            pending: BTreeMap<Reverse<u32>, Vec<(PortId, Packet)>>,
            queued: usize,
        }

        fn make_cell<'a>(managed: &'a mut ManagedNode, fabric: &str) -> NodeCell<'a> {
            NodeCell {
                fabric_id: managed.node.port_id(fabric),
                name: Name::new(&managed.node.name),
                managed: Some(managed),
                pending: BTreeMap::new(),
                queued: 0,
            }
        }

        struct Pool<'a> {
            cells: BTreeMap<&'a str, NodeCell<'a>>,
            spare: BTreeMap<&'a str, &'a mut ManagedNode>,
        }

        impl<'a> Pool<'a> {
            /// The cell for `node`, creating it from `spare` on first
            /// touch. `None` when the node is unknown or failed.
            fn cell(&mut self, node: &str, fabric: &str) -> Option<&mut NodeCell<'a>> {
                if !self.cells.contains_key(node) {
                    let (key, managed) = self.spare.remove_entry(node)?;
                    self.cells.insert(key, make_cell(managed, fabric));
                }
                self.cells.get_mut(node)
            }
        }

        #[derive(Default)]
        struct WorkerOut {
            emitted: Vec<(Name, Name, Packet)>,
            cost: Cost,
            overlay_hops: u32,
            protected_bytes: u64,
            counters: BTreeMap<&'static str, u64>,
        }
        impl WorkerOut {
            fn count(&mut self, name: &'static str, n: u64) {
                if n > 0 {
                    *self.counters.entry(name).or_insert(0) += n;
                }
            }
        }

        let mut dead: Vec<&str> = Vec::new();
        let mut state = Pool {
            cells: BTreeMap::new(),
            spare: BTreeMap::new(),
        };
        for (name, managed) in self.nodes.iter_mut() {
            if managed.health != NodeHealth::Alive {
                dead.push(name);
                continue;
            }
            state.spare.insert(name.as_str(), managed);
        }

        // Seed the ingress queues, resolving each port name once.
        let mut seeded = 0usize;
        let mut seed_counts: Vec<(&'static str, u64)> = Vec::new();
        for (node, port, pkt) in ingress {
            let Some(cell) = state.cell(node.as_str(), &fabric) else {
                seed_counts.push(if dead.iter().any(|d| *d == node) {
                    ("inject_dead_node", 1)
                } else {
                    ("inject_unknown_node", 1)
                });
                continue;
            };
            let managed = cell.managed.as_mut().expect("no worker running yet");
            let Some(pid) = managed.node.port_id(&port) else {
                managed.node.trace.count("inject_unknown_port", 1);
                continue;
            };
            cell.pending
                .entry(Reverse(ttl))
                .or_default()
                .push((pid, pkt));
            cell.queued += 1;
            seeded += 1;
        }
        for (name, n) in seed_counts {
            self.trace.count(name, n);
        }
        if seeded == 0 {
            return io;
        }

        let pool = Mutex::new(state);
        let in_flight = AtomicUsize::new(seeded);
        // Last-resort bound on total overlay crossings per call:
        // single-path traffic needs at most `seeded × ttl` (each frame
        // crosses at most `ttl` times). Workloads that multiply frames
        // — a flood rule around an overlay cycle, or extreme loop-free
        // fan-out past `seeded × ttl` copies — trip it, and everything
        // still crossing is dropped (`overlay_work_exhausted`). The
        // per-frame TTL alone would let amplification grow
        // exponentially; this valve trades completeness under
        // amplification for a hard bound.
        let crossing_cap: u64 = (seeded as u64).saturating_mul(u64::from(ttl));
        let crossings = AtomicU64::new(0);
        // A worker that panics can never decrement `in_flight`; this
        // flag (set by the unwinding worker's drop guard) releases its
        // peers from the idle spin so the panic propagates through
        // `join` instead of hanging the scope.
        let aborted = std::sync::atomic::AtomicBool::new(false);
        struct AbortGuard<'a>(&'a std::sync::atomic::AtomicBool);
        impl Drop for AbortGuard<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }
        let links: BTreeMap<u16, Mutex<&mut LinkState>> = self
            .links
            .iter_mut()
            .map(|(vid, s)| (*vid, Mutex::new(s)))
            .collect();

        let work_ready = std::sync::Condvar::new();

        let drain = || -> WorkerOut {
            let _abort_guard = AbortGuard(&aborted);
            let mut out = WorkerOut::default();
            loop {
                // Claim the first node with pending frames whose state
                // is free — any worker may drive any node. Idle workers
                // park on the condvar instead of spinning on the pool
                // lock; the short timeout is a safety net against a
                // missed wakeup, not a poll interval.
                let job = {
                    let mut pool = pool.lock().expect("shuttle pool poisoned");
                    'claim: loop {
                        for cell in pool.cells.values_mut() {
                            if cell.queued > 0 && cell.managed.is_some() {
                                let (&Reverse(t), _) =
                                    cell.pending.iter().next().expect("queued > 0");
                                let burst = cell.pending.remove(&Reverse(t)).expect("present");
                                cell.queued -= burst.len();
                                break 'claim Some((
                                    cell.name.clone(),
                                    cell.managed.take().expect("checked above"),
                                    t,
                                    burst,
                                ));
                            }
                        }
                        if in_flight.load(Ordering::Acquire) == 0 || aborted.load(Ordering::Acquire)
                        {
                            break 'claim None;
                        }
                        pool = work_ready
                            .wait_timeout(pool, std::time::Duration::from_millis(1))
                            .expect("shuttle pool poisoned")
                            .0;
                    }
                };
                let Some((name, managed, ttl_left, burst)) = job else {
                    break;
                };
                let consumed = burst.len();
                let node_io = managed.node.inject_batch(burst);
                out.cost += node_io.cost;
                // Hand the node back before shuttling so another worker
                // can claim it for frames already heading its way.
                {
                    let mut pool = pool.lock().expect("shuttle pool poisoned");
                    pool.cells
                        .get_mut(name.as_str())
                        .expect("cell exists")
                        .managed = Some(managed);
                }
                work_ready.notify_all();
                // Split node egress: real egress vs fabric-bound,
                // bucketed by VLAN link identity.
                let mut fabric_bursts: BTreeMap<u16, Vec<Packet>> = BTreeMap::new();
                for (port, pkt) in node_io.emitted {
                    if port.as_str() != fabric.as_str() {
                        out.emitted.push((name.clone(), port, pkt));
                        continue;
                    }
                    match pkt.vlan_id() {
                        Some(vid) => fabric_bursts.entry(vid).or_default().push(pkt),
                        None => out.count("overlay_untagged_drop", 1),
                    }
                }
                for (vid, frames) in fabric_bursts {
                    let n = frames.len() as u64;
                    let Some(link_mx) = links.get(&vid) else {
                        out.count("overlay_unroutable_drop", n);
                        continue;
                    };
                    let mut survivors: Vec<Packet> = Vec::with_capacity(frames.len());
                    let peer: String;
                    {
                        let mut state = link_mx.lock().expect("link lock poisoned");
                        peer = if state.link.from_node == name.as_str() {
                            state.link.to_node.clone()
                        } else if state.link.to_node == name.as_str() {
                            state.link.from_node.clone()
                        } else {
                            out.count("overlay_foreign_drop", n);
                            continue;
                        };
                        for pkt in frames {
                            let len = pkt.len();
                            state.packets += 1;
                            state.bytes += len as u64;
                            out.overlay_hops += 1;
                            out.cost += Cost::from_nanos(overlay_link_ns);
                            if let Some(sas) = state.sas.as_deref_mut() {
                                // Protect the wire: real ESP seal on
                                // egress, real verify+open on ingress. A
                                // frame that fails to verify never
                                // reaches the peer.
                                let (sa_out, sa_in) = sas;
                                let per_dir = esp_fixed_ns as f64 + esp_ns_per_byte * len as f64;
                                out.cost += Cost::from_nanos((2.0 * per_dir) as u64);
                                let sealed = match esp::encapsulate(sa_out, pkt.data()) {
                                    Ok(s) => s,
                                    Err(_) => {
                                        out.count("overlay_esp_seal_fail", 1);
                                        continue;
                                    }
                                };
                                match esp::decapsulate(sa_in, &sealed) {
                                    Ok(inner) if inner == pkt.data() => {
                                        out.protected_bytes += len as u64;
                                    }
                                    _ => {
                                        out.count("overlay_esp_verify_fail", 1);
                                        continue;
                                    }
                                }
                            }
                            out.count("overlay_frames", 1);
                            survivors.push(pkt);
                        }
                    }
                    if survivors.is_empty() {
                        continue;
                    }
                    let k = survivors.len();
                    // ttl_left counts remaining crossings: a frame
                    // seeded with overlay_ttl may cross exactly that
                    // many times.
                    if ttl_left == 0 {
                        out.count("overlay_loop_drops", k as u64);
                        continue;
                    }
                    if crossings.fetch_add(k as u64, Ordering::AcqRel) >= crossing_cap {
                        out.count("overlay_work_exhausted", k as u64);
                        continue;
                    }
                    let mut pool = pool.lock().expect("shuttle pool poisoned");
                    let Some(cell) = pool.cell(peer.as_str(), &fabric) else {
                        out.count(
                            if dead.contains(&peer.as_str()) {
                                "inject_dead_node"
                            } else {
                                "inject_unknown_node"
                            },
                            k as u64,
                        );
                        continue;
                    };
                    let Some(fid) = cell.fabric_id else {
                        out.count("overlay_unroutable_drop", k as u64);
                        continue;
                    };
                    in_flight.fetch_add(k, Ordering::Release);
                    cell.pending
                        .entry(Reverse(ttl_left - 1))
                        .or_default()
                        .extend(survivors.into_iter().map(|p| (fid, p)));
                    cell.queued += k;
                    drop(pool);
                    work_ready.notify_all();
                }
                in_flight.fetch_sub(consumed, Ordering::Release);
                work_ready.notify_all();
            }
            out
        };

        let mut outs: Vec<WorkerOut> = if workers <= 1 {
            vec![drain()]
        } else {
            std::thread::scope(|s| {
                // `&drain` on purpose: the same closure is spawned once
                // per worker, so it must be borrowed, not moved.
                #[allow(clippy::needless_borrows_for_generic_args)]
                let handles: Vec<_> = (0..workers).map(|_| s.spawn(&drain)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shuttle worker panicked"))
                    .collect()
            })
        };
        drop(links);
        drop(pool);
        for mut worker in outs.drain(..) {
            io.emitted.append(&mut worker.emitted);
            io.cost += worker.cost;
            io.overlay_hops += worker.overlay_hops;
            io.protected_bytes += worker.protected_bytes;
            for (name, n) in worker.counters {
                self.trace.count(name, n);
            }
        }
        io
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Per-link counters: (vid, graph, from, to, packets, bytes).
    pub fn link_stats(&self) -> Vec<(u16, String, String, String, u64, u64)> {
        self.links
            .values()
            .map(|s| {
                (
                    s.link.vid,
                    s.graph.clone(),
                    s.link.from_node.clone(),
                    s.link.to_node.clone(),
                    s.packets,
                    s.bytes,
                )
            })
            .collect()
    }

    /// The domain's self-description as a JSON document.
    pub fn describe(&self) -> un_nffg::Json {
        use un_nffg::Json;
        Json::obj()
            .set(
                "nodes",
                Json::Arr(
                    self.nodes
                        .values()
                        .map(|m| {
                            let cache = m.node.flow_cache_stats();
                            Json::obj()
                                .set("name", m.node.name.as_str())
                                .set("alive", m.health == NodeHealth::Alive)
                                .set("memory_used", m.node.memory_used())
                                .set("memory_capacity", m.node.mem_capacity())
                                .set("flow_cache_hits", cache.cache_hits)
                                .set("flow_cache_misses", cache.cache_misses)
                                .set(
                                    "graphs",
                                    Json::Arr(
                                        m.node
                                            .graph_ids()
                                            .iter()
                                            .map(|g| Json::from(g.as_str()))
                                            .collect(),
                                    ),
                                )
                        })
                        .collect(),
                ),
            )
            .set(
                "graphs",
                Json::Arr(
                    self.graphs
                        .iter()
                        .map(|(id, g)| {
                            Json::obj()
                                .set("id", id.as_str())
                                .set(
                                    "nodes",
                                    Json::Arr(
                                        g.partition
                                            .parts
                                            .keys()
                                            .map(|n| Json::from(n.as_str()))
                                            .collect(),
                                    ),
                                )
                                .set("overlay_links", g.partition.links.len())
                        })
                        .collect(),
                ),
            )
            .set(
                "links",
                Json::Arr(
                    self.links
                        .values()
                        .map(|s| {
                            Json::obj()
                                .set("vid", s.link.vid)
                                .set("graph", s.graph.as_str())
                                .set("from", s.link.from_node.as_str())
                                .set("to", s.link.to_node.as_str())
                                .set("protected", s.sas.is_some())
                                .set("packets", s.packets)
                                .set("bytes", s.bytes)
                        })
                        .collect(),
                ),
            )
            .set(
                "pending",
                Json::Arr(
                    self.pending
                        .keys()
                        .map(|g| Json::from(g.as_str()))
                        .collect(),
                ),
            )
    }
}

/// Derive a deterministic SA pair for one overlay link.
fn derive_link_sas(seed: u64, link: &OverlayLink) -> (SecurityAssociation, SecurityAssociation) {
    let mut rng = DetRng::new(seed ^ (u64::from(link.vid) << 16));
    let mut key = [0u8; 32];
    let mut salt = [0u8; 4];
    rng.fill(&mut key);
    rng.fill(&mut salt);
    let spi = 0x4f56_0000 | u32::from(link.vid); // 'OV' + vid
    let src = Ipv4Addr::new(10, 255, 255, 1);
    let dst = Ipv4Addr::new(10, 255, 255, 2);
    (
        SecurityAssociation::outbound(spi, src, dst, key, salt),
        SecurityAssociation::inbound(spi, src, dst, key, salt),
    )
}

#[cfg(test)]
mod tests;
