use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use un_core::UniversalNode;
use un_nffg::{NfFg, NfFgBuilder};
use un_packet::ethernet::MacAddr;
use un_packet::PacketBuilder;
use un_sim::mem::mb;
use un_sim::SimTime;

use super::*;
use crate::topology::EdgeAttrs;
use crate::PlacementStrategy;

fn two_node_domain() -> Domain {
    let mut d = Domain::with_defaults();
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    d
}

fn split_bridge_chain() -> NfFg {
    // Two bridges so the chain can split lan→br1 | br2→wan.
    NfFgBuilder::new("g1", "split")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br1", "bridge", 2)
        .nf("br2", "bridge", 2)
        .chain("lan", &["br1", "br2"], "wan")
        .build()
}

fn split_hints() -> DeployHints {
    DeployHints {
        endpoint_node: BTreeMap::new(),
        nf_node: [
            ("br1".to_string(), "n1".to_string()),
            ("br2".to_string(), "n2".to_string()),
        ]
        .into(),
        strategy: Some(PlacementStrategy::Spread),
    }
}

fn frame() -> un_packet::Packet {
    PacketBuilder::new()
        .ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(192, 0, 2, 9))
        .udp(5000, 5001)
        .payload(&[0xAB; 64])
        .build()
}

#[test]
fn deploy_splits_across_two_nodes() {
    let mut d = two_node_domain();
    let report = d
        .deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    assert_eq!(report.per_node.len(), 2);
    assert_eq!(report.overlay_links, 2); // fwd + rev cut
    assert_eq!(d.node("n1").unwrap().graph_ids(), vec!["g1"]);
    assert_eq!(d.node("n2").unwrap().graph_ids(), vec!["g1"]);
    assert_eq!(d.assignment_of("g1").unwrap()["br1"], "n1");
    assert_eq!(d.assignment_of("g1").unwrap()["br2"], "n2");
}

#[test]
fn traffic_crosses_the_overlay_both_ways() {
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "trace: {:?}", io);
    let (node, port, _) = &io.emitted[0];
    assert_eq!((node.as_str(), port.as_str()), ("n2", "eth1"));
    assert_eq!(io.overlay_hops, 1);
    assert!(io.cost.as_nanos() > 0);

    // Reverse direction uses the other overlay link.
    let io = d.inject("n2", "eth1", frame());
    assert_eq!(io.emitted.len(), 1);
    let (node, port, _) = &io.emitted[0];
    assert_eq!((node.as_str(), port.as_str()), ("n1", "eth0"));
    assert_eq!(d.trace.counter("overlay_frames"), 2);
}

#[test]
fn protected_overlay_verifies_frames_with_esp() {
    let mut d = Domain::new(DomainConfig {
        protect_overlay: true,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    let unprotected_cost = {
        let mut plain = two_node_domain();
        plain
            .deploy_with(&split_bridge_chain(), &split_hints())
            .unwrap();
        plain.inject("n1", "eth0", frame()).cost
    };
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
    assert!(io.protected_bytes > 0);
    assert!(
        io.cost > unprotected_cost,
        "ESP must charge crypto cost ({} <= {})",
        io.cost.as_nanos(),
        unprotected_cost.as_nanos()
    );
    assert_eq!(d.trace.counter("overlay_esp_verify_fail"), 0);
}

#[test]
fn single_node_graph_needs_no_overlay() {
    let mut d = two_node_domain();
    let g = NfFgBuilder::new("solo", "local")
        .interface_endpoint("lan", "eth0")
        .nf("br", "bridge", 2)
        .rule_through("r1", 10, "lan", ("br", 0))
        .rule_through("r2", 10, ("br", 0), "lan")
        .build();
    let report = d.deploy(&g).unwrap();
    assert_eq!(report.per_node.len(), 1);
    assert_eq!(report.overlay_links, 0);
}

#[test]
fn undeploy_releases_links_and_parts() {
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    assert_eq!(d.link_stats().len(), 2);
    d.undeploy("g1").unwrap();
    assert!(d.link_stats().is_empty());
    assert!(d.node("n1").unwrap().graph_ids().is_empty());
    assert!(d.node("n2").unwrap().graph_ids().is_empty());
    // The freed VLAN ids are reused by the next deploy.
    let report = d
        .deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    assert_eq!(report.overlay_links, 2);
    assert!(d.link_stats().iter().all(|(vid, ..)| *vid < 3002 + 2));
}

#[test]
fn node_failure_replaces_partition() {
    let mut d = two_node_domain();
    // n1 also exposes eth1 so the wan endpoint survives n2's death.
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    assert_eq!(d.assignment_of("g1").unwrap()["br2"], "n2");

    let report = d.fail_node("n2").unwrap();
    assert_eq!(report.replaced, vec!["g1".to_string()]);
    assert!(report.stranded.is_empty());
    // The repair was incremental: only the lost NF moved.
    assert_eq!(report.repairs.len(), 1);
    let repair = &report.repairs[0];
    assert_eq!(repair.graph, "g1");
    assert_eq!(repair.nfs_moved, 1, "only br2 was lost");
    assert_eq!(repair.nfs_preserved, 1, "br1 never moved");
    assert!(!repair.full_replace);
    // Everything now runs on n1, no overlay needed.
    let assignment = d.assignment_of("g1").unwrap();
    assert!(assignment.values().all(|n| n == "n1"));
    assert!(d.link_stats().is_empty());
    // End-to-end traffic still flows, wholly on n1.
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "n1");
    assert_eq!(io.emitted[0].1, "eth1");
    assert_eq!(io.overlay_hops, 0);
}

/// A 4-node chain: br1@n1, br2@n2, br3@n3, spare n4. Failing n3 must
/// move br3 only, and n1 — whose cut edges all connect to survivors —
/// must not see a single control-plane call: same instances, no
/// undeploy, no update, and its overlay VLAN ids intact.
#[test]
fn incremental_repair_leaves_unaffected_survivors_untouched() {
    let mut d = Domain::with_defaults();
    for (name, ports) in [
        ("n1", &["eth0"][..]),
        ("n2", &[][..]),
        ("n3", &["eth1"][..]),
        ("n4", &["eth1"][..]),
    ] {
        let mut n = UniversalNode::new(name, mb(2048));
        for p in ports {
            n.add_physical_port(p);
        }
        d.add_node(n);
    }
    let g = NfFgBuilder::new("g1", "chain3")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br1", "bridge", 2)
        .nf("br2", "bridge", 2)
        .nf("br3", "bridge", 2)
        .chain("lan", &["br1", "br2", "br3"], "wan")
        .build();
    let hints = DeployHints {
        nf_node: [
            ("br1".to_string(), "n1".to_string()),
            ("br2".to_string(), "n2".to_string()),
            ("br3".to_string(), "n3".to_string()),
        ]
        .into(),
        strategy: Some(PlacementStrategy::Spread),
        ..Default::default()
    };
    d.deploy_with(&g, &hints).unwrap();
    let vids_n1: Vec<u16> = d
        .link_stats()
        .iter()
        .filter(|(_, _, from, to, ..)| from == "n1" || to == "n1")
        .map(|(vid, ..)| *vid)
        .collect();
    let n1_instances = d.node("n1").unwrap().total_instances();
    let n2_instances = d.node("n2").unwrap().total_instances();

    let report = d.fail_node("n3").unwrap();
    let repair = &report.repairs[0];
    assert_eq!(repair.nfs_moved, 1, "only br3 lost: {repair:?}");
    assert_eq!(repair.nfs_preserved, 2);
    assert!(!repair.full_replace);
    let assignment = d.assignment_of("g1").unwrap();
    assert_eq!(assignment["br1"], "n1");
    assert_eq!(assignment["br2"], "n2");
    assert_ne!(assignment["br3"], "n3");

    // n1's part is byte-identical (its cut edges n1↔n2 kept their
    // vids), so the repair made *zero* calls into n1.
    let n1 = d.node("n1").unwrap();
    assert_eq!(n1.trace.counter("graphs_undeployed"), 0);
    assert_eq!(n1.trace.counter("graph_updates_structural"), 0);
    assert_eq!(n1.trace.counter("graph_updates_rules"), 0);
    assert_eq!(n1.total_instances(), n1_instances, "n1 NFs untouched");
    let vids_n1_after: Vec<u16> = d
        .link_stats()
        .iter()
        .filter(|(_, _, from, to, ..)| from == "n1" || to == "n1")
        .map(|(vid, ..)| *vid)
        .collect();
    assert_eq!(vids_n1, vids_n1_after, "n1 overlay vids stable");
    // n2 gained the cut edges to br3's new home but kept its instances
    // where the node-level reconcile allowed.
    assert!(repair.links_kept >= 2, "n1↔n2 wires survive: {repair:?}");
    let _ = n2_instances;

    // End-to-end traffic still flows through the repaired chain.
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "{:?}", d.trace);
    assert_eq!(io.emitted[0].1, "eth1");
}

/// Fan-in repair: two source NFs on two *simultaneously* failing nodes
/// feed the same target port on a survivor. Each old cut edge offers
/// the survivor-side vid for inheritance under the same `(to, target)`
/// key — the second re-placed edge must take a fresh vid, not collide
/// (a collision duplicates the survivor's `ovl-<vid>` endpoint and
/// forces a from-scratch fallback).
#[test]
fn simultaneous_fan_in_failures_do_not_collide_overlay_vids() {
    let mut d = Domain::with_defaults();
    for (name, ports, mem) in [
        ("n1", &["eth0"][..], mb(256)),
        ("n2", &["eth2"][..], mb(256)),
        // Roomiest node: Pack prefers the fuller spares for the moved
        // sources, keeping the two fan-in edges on distinct nodes.
        ("n3", &["eth1"][..], mb(8192)),
        ("n4", &["eth0"][..], mb(256)),
        ("n5", &["eth2"][..], mb(256)),
    ] {
        let mut n = UniversalNode::new(name, mem);
        for p in ports {
            n.add_physical_port(p);
        }
        d.add_node(n);
    }
    let g = NfFgBuilder::new("fan", "fan-in")
        .interface_endpoint("lan1", "eth0")
        .interface_endpoint("lan2", "eth2")
        .interface_endpoint("wan", "eth1")
        .nf("s1", "bridge", 2)
        .nf("s2", "bridge", 2)
        .nf("d", "bridge", 2)
        .rule_through("a1", 10, "lan1", ("s1", 0))
        .rule_through("a2", 10, ("s1", 1), ("d", 0))
        .rule_through("b1", 10, "lan2", ("s2", 0))
        .rule_through("b2", 10, ("s2", 1), ("d", 0))
        .rule_through("out", 10, ("d", 1), "wan")
        .build();
    let hints = DeployHints {
        nf_node: [
            ("s1".to_string(), "n1".to_string()),
            ("s2".to_string(), "n2".to_string()),
            ("d".to_string(), "n3".to_string()),
        ]
        .into(),
        ..Default::default()
    };
    d.deploy_with(&g, &hints).unwrap();
    assert_eq!(d.link_stats().len(), 2, "two fan-in overlay wires");

    // n1 and n2 go silent together; one tick fails both before any
    // repair runs, so the repair sees both sources lost at once.
    let later = SimTime::from_nanos(d.config.heartbeat_timeout_ns + d.config.suspect_grace_ns + 1);
    for alive in ["n3", "n4", "n5"] {
        d.heartbeat(alive, later).unwrap();
    }
    let failed = d.tick(later);
    assert_eq!(failed.len(), 2);
    let repair = failed
        .iter()
        .flat_map(|(_, r)| r.repairs.iter())
        .find(|o| o.graph == "fan")
        .expect("fan repaired");
    assert!(
        !repair.full_replace,
        "incremental must survive the fan-in: {repair:?}"
    );
    assert_eq!(repair.nfs_moved, 2, "{repair:?}");

    // The two re-placed wires carry distinct vids into n3 and traffic
    // from both ingress sides still reaches the wan.
    let assignment = d.assignment_of("fan").unwrap();
    assert_ne!(assignment["s1"], assignment["s2"], "{assignment:?}");
    let into_n3: Vec<u16> = d
        .link_stats()
        .iter()
        .filter(|(_, _, _, to, ..)| to == "n3")
        .map(|(vid, ..)| *vid)
        .collect();
    assert_eq!(into_n3.len(), 2, "{:?}", d.link_stats());
    let s1_node = assignment["s1"].clone();
    let s2_node = assignment["s2"].clone();
    let io = d.inject(&s1_node, "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "lan1 side must forward");
    assert_eq!(io.emitted[0].1, "eth1");
    let io = d.inject(&s2_node, "eth2", frame());
    assert_eq!(io.emitted.len(), 1, "lan2 side must forward");
}

/// fail → recover → fail again: the recovered carcass must shed its
/// stale partitions (capacity release) so later repairs can land work
/// on it without graph-id collisions.
#[test]
fn fail_recover_fail_cycles_cleanly() {
    let mut d = two_node_domain();
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    d.node_mut("n2").unwrap().add_physical_port("eth0");
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    // First failure: everything consolidates on n1.
    d.fail_node("n2").unwrap();
    assert!(d.assignment_of("g1").unwrap().values().all(|n| n == "n1"));
    // Double-fail is a no-op.
    let again = d.fail_node("n2").unwrap();
    assert!(again.replaced.is_empty() && again.stranded.is_empty());

    // Recover n2: its stale g1 part is purged, memory released.
    let retried = d.recover_node("n2").unwrap();
    assert!(retried.is_empty());
    assert_eq!(d.health("n2"), Some(NodeHealth::Alive));
    assert!(d.node("n2").unwrap().graph_ids().is_empty());
    assert_eq!(d.node("n2").unwrap().memory_used(), 0);
    assert_eq!(d.trace.counter("nodes_recovered"), 1);
    assert_eq!(d.trace.counter("recover_purged_graphs"), 1);

    // Now fail n1: the graph must land cleanly on the recovered n2
    // (a stale part would collide with AlreadyDeployed here).
    let report = d.fail_node("n1").unwrap();
    assert_eq!(report.replaced, vec!["g1".to_string()]);
    assert!(d.assignment_of("g1").unwrap().values().all(|n| n == "n2"));
    let io = d.inject("n2", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);

    // recover on alive / unknown nodes behaves.
    assert!(d.recover_node("n2").unwrap().is_empty());
    assert!(matches!(
        d.recover_node("ghost"),
        Err(DomainError::NoSuchNode(_))
    ));
}

/// The from-scratch policy (the baseline) still repairs correctly and
/// reports itself as a full replace.
#[test]
fn from_scratch_policy_repairs_with_full_replace() {
    let mut d = Domain::new(DomainConfig {
        repair: RepairPolicy::FromScratch,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    n1.add_physical_port("eth1");
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    let report = d.fail_node("n2").unwrap();
    assert_eq!(report.replaced, vec!["g1".to_string()]);
    assert!(report.repairs[0].full_replace);
    assert_eq!(d.trace.counter("repairs_full"), 1);
    assert_eq!(d.trace.counter("repairs_incremental"), 0);
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
}

#[test]
fn failure_without_capacity_strands_then_recovers() {
    let mut d = Domain::with_defaults();
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    n1.add_physical_port("eth1");
    d.add_node(n1);
    d.deploy(&split_bridge_chain()).unwrap();

    let report = d.fail_node("n1").unwrap();
    assert_eq!(report.stranded, vec!["g1".to_string()]);
    assert!(d.graph_ids().is_empty());
    assert_eq!(d.pending_graphs(), vec!["g1".to_string()]);

    // Capacity returns: a fresh node with the needed interfaces.
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth0");
    n2.add_physical_port("eth1");
    d.add_node(n2);
    assert_eq!(d.retry_pending(), vec!["g1".to_string()]);
    assert!(d.pending_graphs().is_empty());
    let io = d.inject("n2", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
}

#[test]
fn explicit_redeploy_supersedes_pending_copy() {
    let mut d = Domain::with_defaults();
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    n1.add_physical_port("eth1");
    d.add_node(n1);
    d.deploy(&split_bridge_chain()).unwrap();
    d.fail_node("n1").unwrap();
    assert_eq!(d.pending_graphs(), vec!["g1".to_string()]);

    // The operator re-deploys g1 on fresh capacity: the parked copy
    // must be dropped, and a later retry must not double-deploy.
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth0");
    n2.add_physical_port("eth1");
    d.add_node(n2);
    d.deploy(&split_bridge_chain()).unwrap();
    assert!(d.pending_graphs().is_empty());
    assert!(d.retry_pending().is_empty());
    assert_eq!(d.link_stats().len(), 0, "single-node redeploy, no links");

    // And an undeployed graph never resurrects from pending.
    d.fail_node("n2").unwrap();
    assert_eq!(d.pending_graphs(), vec!["g1".to_string()]);
    d.undeploy("g1").unwrap();
    let mut n3 = UniversalNode::new("n3", mb(2048));
    n3.add_physical_port("eth0");
    n3.add_physical_port("eth1");
    d.add_node(n3);
    assert!(d.retry_pending().is_empty());
    assert!(d.graph_ids().is_empty());
}

#[test]
fn failed_node_may_rejoin_alive_duplicate_panics() {
    let mut d = two_node_domain();
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    d.fail_node("n2").unwrap();

    // Rejoin under the failed name: clean slate, counted as a rejoin.
    let mut again = UniversalNode::new("n2", mb(2048));
    again.add_physical_port("eth1");
    d.add_node(again);
    assert_eq!(d.health("n2"), Some(NodeHealth::Alive));
    assert_eq!(d.trace.counter("nodes_rejoined"), 1);

    // Registering over an *alive* node is a programming error.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        d.add_node(UniversalNode::new("n1", mb(64)));
    }));
    assert!(result.is_err(), "duplicate alive registration must panic");
}

#[test]
fn heartbeat_timeout_suspects_then_fails() {
    let mut d = two_node_domain();
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    // n1 heartbeats; n2 goes silent past the timeout — that only makes
    // it *suspect*: it keeps its partition and no repair runs yet.
    let later = SimTime::from_nanos(d.config.heartbeat_timeout_ns + 1);
    d.heartbeat("n1", later).unwrap();
    let failed = d.tick(later);
    assert!(failed.is_empty(), "suspects are not failures");
    assert_eq!(d.health("n2"), Some(NodeHealth::Suspect));
    assert_eq!(d.suspect_nodes(), vec!["n2".to_string()]);
    assert_eq!(d.assignment_of("g1").unwrap()["br2"], "n2");
    // A suspect node still forwards traffic.
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);

    // The grace window expires: now it fails and the repair runs.
    let expiry = SimTime::from_nanos(d.config.heartbeat_timeout_ns + d.config.suspect_grace_ns + 2);
    d.heartbeat("n1", expiry).unwrap();
    let failed = d.tick(expiry);
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].0, "n2");
    assert_eq!(d.health("n2"), Some(NodeHealth::Failed));
    assert_eq!(d.health("n1"), Some(NodeHealth::Alive));
    assert_eq!(failed[0].1.replaced, vec!["g1".to_string()]);
    // Repeated ticks are idempotent: the failure is never re-reported
    // and the repair never re-runs (n1 keeps heartbeating).
    let much_later = SimTime::from_nanos(expiry.as_nanos() * 3);
    d.heartbeat("n1", much_later).unwrap();
    assert!(d.tick(expiry).is_empty());
    assert!(d.tick(much_later).is_empty());
    assert_eq!(d.trace.counter("graphs_replaced"), 1);
    assert_eq!(d.trace.counter("nodes_failed"), 1);
}

#[test]
fn late_heartbeat_cancels_pending_repair() {
    let mut d = two_node_domain();
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    let later = SimTime::from_nanos(d.config.heartbeat_timeout_ns + 1);
    d.heartbeat("n1", later).unwrap();
    d.tick(later);
    assert_eq!(d.health("n2"), Some(NodeHealth::Suspect));

    // The slow node's heartbeat arrives inside the grace window: the
    // pending repair is cancelled — nothing ever moved.
    let in_grace = SimTime::from_nanos(later.as_nanos() + d.config.suspect_grace_ns / 2);
    d.heartbeat("n2", in_grace).unwrap();
    assert_eq!(d.health("n2"), Some(NodeHealth::Alive));
    assert_eq!(d.trace.counter("suspects_cleared"), 1);
    d.heartbeat("n1", in_grace).unwrap();
    assert!(d.tick(in_grace).is_empty());
    assert_eq!(d.trace.counter("graphs_replaced"), 0);
    assert_eq!(d.trace.counter("nodes_failed"), 0);
    assert_eq!(d.assignment_of("g1").unwrap()["br2"], "n2");
}

#[test]
fn rule_update_rewires_overlay() {
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    let links_before = d.link_stats().len();

    // Drop the reverse path: rules now only flow lan→wan.
    let mut g = split_bridge_chain();
    g.flow_rules.retain(|r| r.id.ends_with("-fwd"));
    let report = d.update(&g).unwrap();
    assert_eq!(report.overlay_links, 1);
    assert!(report.overlay_links < links_before);
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
}

#[test]
fn rule_only_update_applies_in_place() {
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    let vids_before: Vec<u16> = d.link_stats().iter().map(|(v, ..)| *v).collect();

    // Tweak one rule's priority: topology (NFs, endpoints, cut edges)
    // is unchanged, so every node must take the update rule-level —
    // no instance teardown, and the overlay keeps its VLAN ids.
    let mut g = split_bridge_chain();
    g.flow_rules[0].priority = 42;
    d.update(&g).unwrap();

    for node in ["n1", "n2"] {
        let n = d.node(node).unwrap();
        assert_eq!(
            n.trace.counter("graph_updates_structural"),
            0,
            "{node} redeployed structurally for a rule tweak"
        );
        assert_eq!(n.trace.counter("graphs_undeployed"), 0);
        assert_eq!(n.trace.counter("graph_updates_rules"), 1);
    }
    let vids_after: Vec<u16> = d.link_stats().iter().map(|(v, ..)| *v).collect();
    assert_eq!(vids_before, vids_after, "overlay VLAN ids must be stable");
    // And traffic still flows end-to-end.
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
}

#[test]
fn tick_with_correlated_failures_never_places_on_a_stale_node() {
    let mut d = two_node_domain();
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    // A third node that also survives nothing — only n3 stays alive.
    let mut n3 = UniversalNode::new("n3", mb(2048));
    n3.add_physical_port("eth0");
    n3.add_physical_port("eth1");
    d.add_node(n3);
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    // n1 and n2 both go silent; only n3 heartbeats. One giant staleness
    // jump skips the suspect window entirely (too stale even for the
    // grace), so a single tick fails both.
    let later = SimTime::from_nanos(d.config.heartbeat_timeout_ns + d.config.suspect_grace_ns + 1);
    d.heartbeat("n3", later).unwrap();
    let failed = d.tick(later);
    assert_eq!(failed.len(), 2);
    // The graph was re-placed exactly once, straight onto n3 — never
    // bounced through the other stale node.
    assert_eq!(d.trace.counter("graphs_replaced"), 1);
    assert_eq!(d.trace.counter("graphs_stranded"), 0);
    let assignment = d.assignment_of("g1").unwrap();
    assert!(assignment.values().all(|n| n == "n3"), "{assignment:?}");
    let io = d.inject("n3", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
}

#[test]
fn structural_update_moves_nfs() {
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();

    // Insert a third NF; surviving NFs must stay put.
    let g = NfFgBuilder::new("g1", "longer")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br1", "bridge", 2)
        .nf("mid", "bridge", 2)
        .nf("br2", "bridge", 2)
        .chain("lan", &["br1", "mid", "br2"], "wan")
        .build();
    d.update(&g).unwrap();
    let assignment = d.assignment_of("g1").unwrap();
    assert_eq!(assignment["br1"], "n1");
    assert_eq!(assignment["br2"], "n2");
    assert!(assignment.contains_key("mid"));
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "3-NF chain must still forward");
}

#[test]
fn rejects_bad_requests() {
    let mut d = two_node_domain();
    let g = split_bridge_chain();
    d.deploy_with(&g, &split_hints()).unwrap();
    assert!(matches!(d.deploy(&g), Err(DomainError::AlreadyDeployed(_))));
    assert!(matches!(
        d.undeploy("ghost"),
        Err(DomainError::NoSuchGraph(_))
    ));
    assert!(matches!(
        d.update(
            &NfFgBuilder::new("ghost", "x")
                .interface_endpoint("e", "eth0")
                .build()
        ),
        Err(DomainError::NoSuchGraph(_))
    ));
    let mut invalid = split_bridge_chain();
    invalid.id = "g2".into();
    invalid.flow_rules[0].matches.port_in = None;
    assert!(matches!(d.deploy(&invalid), Err(DomainError::Invalid(_))));
    assert!(matches!(
        d.fail_node("ghost"),
        Err(DomainError::NoSuchNode(_))
    ));
}

#[test]
fn large_bursts_are_not_spuriously_dropped_as_loops() {
    // The pre-batch shuttle had a flat budget of 64 hops shared by the
    // whole cascade — a 200-frame burst would have been culled. The TTL
    // is per injected frame now, so every frame of the burst crosses.
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    let ingress: Vec<(String, String, un_packet::Packet)> = (0..200)
        .map(|_| ("n1".to_string(), "eth0".to_string(), frame()))
        .collect();
    let io = d.inject_batch(ingress, 1);
    assert_eq!(io.emitted.len(), 200, "whole burst must forward");
    assert_eq!(io.overlay_hops, 200);
    assert_eq!(d.trace.counter("overlay_loop_drops"), 0);
    assert_eq!(d.trace.counter("overlay_frames"), 200);
}

#[test]
fn overlay_ttl_exhaustion_is_counted_per_frame() {
    let ttl_domain = |ttl: u32| {
        let mut d = Domain::new(DomainConfig {
            overlay_ttl: ttl,
            ..DomainConfig::default()
        });
        let mut n1 = UniversalNode::new("n1", mb(2048));
        n1.add_physical_port("eth0");
        let mut n2 = UniversalNode::new("n2", mb(2048));
        n2.add_physical_port("eth1");
        d.add_node(n1);
        d.add_node(n2);
        d
    };
    // overlay_ttl counts crossings exactly: the standard split needs
    // one crossing, so ttl = 1 suffices.
    let mut d = ttl_domain(1);
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "one crossing fits in ttl = 1");
    assert_eq!(d.trace.counter("overlay_loop_drops"), 0);

    // Reversed placement (br1 on n2, br2 on n1) needs three crossings:
    // the frame dies mid-path and the drop is visible as a counter.
    let mut d = ttl_domain(1);
    let reversed = DeployHints {
        nf_node: [
            ("br1".to_string(), "n2".to_string()),
            ("br2".to_string(), "n1".to_string()),
        ]
        .into(),
        strategy: Some(PlacementStrategy::Spread),
        ..Default::default()
    };
    d.deploy_with(&split_bridge_chain(), &reversed).unwrap();
    let io = d.inject("n1", "eth0", frame());
    assert!(io.emitted.is_empty(), "frame must die mid-path");
    assert_eq!(d.trace.counter("overlay_loop_drops"), 1);
    // ttl = 3 lets the same path complete.
    let mut d = ttl_domain(3);
    d.deploy_with(&split_bridge_chain(), &reversed).unwrap();
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "three crossings fit in ttl = 3");
    assert_eq!(io.overlay_hops, 3);
}

#[test]
fn sharded_inject_batch_matches_sequential_workers() {
    let build = || {
        let mut d = two_node_domain();
        d.node_mut("n1").unwrap().add_physical_port("eth1");
        d.deploy_with(&split_bridge_chain(), &split_hints())
            .unwrap();
        d
    };
    let ingress = |n: usize| -> Vec<(String, String, un_packet::Packet)> {
        (0..n)
            .map(|_| ("n1".to_string(), "eth0".to_string(), frame()))
            .collect()
    };
    let mut seq = build();
    let seq_io = seq.inject_batch(ingress(64), 1);
    for workers in [2usize, 4, 8] {
        let mut sharded = build();
        let io = sharded.inject_batch(ingress(64), workers);
        assert_eq!(io.emitted.len(), seq_io.emitted.len(), "{workers} workers");
        assert_eq!(io.cost, seq_io.cost);
        assert_eq!(io.overlay_hops, seq_io.overlay_hops);
        let mut a: Vec<(String, String, Vec<u8>)> = io
            .emitted
            .iter()
            .map(|(n, p, pkt)| (n.to_string(), p.to_string(), pkt.data().to_vec()))
            .collect();
        let mut b: Vec<(String, String, Vec<u8>)> = seq_io
            .emitted
            .iter()
            .map(|(n, p, pkt)| (n.to_string(), p.to_string(), pkt.data().to_vec()))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{workers} workers");
    }
}

#[test]
fn batch_ingress_to_unknown_and_dead_nodes_is_counted() {
    let mut d = two_node_domain();
    d.node_mut("n1").unwrap().add_physical_port("eth1");
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    d.fail_node("n2").unwrap();
    let io = d.inject_batch(
        vec![
            ("ghost".to_string(), "eth0".to_string(), frame()),
            ("n2".to_string(), "eth1".to_string(), frame()),
        ],
        1,
    );
    assert!(io.emitted.is_empty());
    assert_eq!(d.trace.counter("inject_unknown_node"), 1);
    assert_eq!(d.trace.counter("inject_dead_node"), 1);
}

/// A line fleet `n1 – n2 – n3`: eth0 on n1, eth1 on n3, chain split
/// br1@n1 / br2@n3, so both overlay links must transit n2.
fn line_domain(protect_overlay: bool) -> Domain {
    let mut d = Domain::new(DomainConfig {
        topology: Topology::line(&["n1", "n2", "n3"], EdgeAttrs::default()),
        protect_overlay,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let n2 = UniversalNode::new("n2", mb(2048));
    let mut n3 = UniversalNode::new("n3", mb(2048));
    n3.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    d.add_node(n3);
    d
}

fn far_hints() -> DeployHints {
    DeployHints {
        nf_node: [
            ("br1".to_string(), "n1".to_string()),
            ("br2".to_string(), "n3".to_string()),
        ]
        .into(),
        ..DeployHints::default()
    }
}

#[test]
fn line_topology_routes_cut_edge_through_transit_node() {
    let mut d = line_domain(false);
    let report = d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();
    assert_eq!(report.overlay_links, 2, "fwd + rev cut");
    // n2 hosts a transit-only part: no NFs, one endpoint + one
    // forwarding rule per link riding through it.
    let part = &d.partition_of("g1").unwrap().parts["n2"];
    assert!(part.nfs.is_empty(), "transit part must host no NFs");
    assert_eq!(part.endpoints.len(), 2);
    assert_eq!(part.flow_rules.len(), 2);
    assert!(part.flow_rules.iter().all(|r| r.id.ends_with("-transit")));
    assert!(d
        .node("n2")
        .unwrap()
        .graph_ids()
        .contains(&"g1".to_string()));
    // Both links are pinned to the 3-node path.
    for (vid, ..) in d.link_stats() {
        let path = d.link_path(vid).unwrap();
        assert_eq!(path.len(), 3, "{path:?}");
        assert_eq!(path[1], "n2");
    }

    // Traffic crosses two fabric hops per direction and still egresses
    // at the far end; the wire counters count the logical frame at
    // *every* hop of the pinned path, with a per-hop breakdown.
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "{:?}", d.trace);
    assert_eq!(io.emitted[0].0, "n3");
    assert_eq!(io.emitted[0].1, "eth1");
    assert_eq!(io.overlay_hops, 2, "n1→n2 and n2→n3");
    let fwd = d
        .link_stats()
        .into_iter()
        .find(|(_, _, from, ..)| from == "n1")
        .unwrap();
    assert_eq!(fwd.4, 2, "one frame counted at each of the two hops");
    let (.., path, hop_packets, hop_bytes) = d
        .link_hop_stats()
        .into_iter()
        .find(|(vid, ..)| *vid == fwd.0)
        .unwrap();
    assert_eq!(path, vec!["n1", "n2", "n3"]);
    assert_eq!(hop_packets, vec![1, 1], "each hop saw the frame once");
    assert_eq!(hop_bytes.iter().sum::<u64>(), fwd.5);
    // Reverse direction works symmetrically.
    let io = d.inject("n3", "eth1", frame());
    assert_eq!(io.emitted.len(), 1);
    assert_eq!(io.emitted[0].0, "n1");
    assert_eq!(io.overlay_hops, 2);
}

#[test]
fn multi_hop_egress_matches_full_mesh_egress() {
    // Same logical graph, one domain full-mesh (n1/n2), one on a line
    // with a transit middle. Payloads out must be identical.
    let mut mesh = two_node_domain();
    let mut line = line_domain(false);
    let mesh_hints = DeployHints {
        nf_node: [
            ("br1".to_string(), "n1".to_string()),
            ("br2".to_string(), "n2".to_string()),
        ]
        .into(),
        ..DeployHints::default()
    };
    mesh.deploy_with(&split_bridge_chain(), &mesh_hints)
        .unwrap();
    line.deploy_with(&split_bridge_chain(), &far_hints())
        .unwrap();
    let a = mesh.inject("n1", "eth0", frame());
    let b = line.inject("n1", "eth0", frame());
    assert_eq!(a.emitted.len(), 1);
    assert_eq!(b.emitted.len(), 1);
    assert_eq!(
        a.emitted[0].2.data(),
        b.emitted[0].2.data(),
        "transit must not alter payloads"
    );
    assert_eq!(a.emitted[0].1, b.emitted[0].1, "same egress interface");
    assert!(b.overlay_hops > a.overlay_hops, "path stretch is visible");
}

#[test]
fn esp_protection_covers_every_fabric_hop() {
    let mut d = line_domain(true);
    d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1);
    // Two hops, each sealed + verified: wire counters now also count
    // per hop, so protected bytes equal the hop-summed wire bytes.
    let wire_bytes: u64 = d.link_stats().iter().map(|(.., bytes)| *bytes).sum();
    assert!(wire_bytes > 0);
    assert_eq!(io.protected_bytes, wire_bytes, "per-hop ESP");
    assert_eq!(d.trace.counter("overlay_esp_verify_fail"), 0);
}

/// Diamond fabric n1–n2–n3 / n1–n4–n3: the pinned path rides n2; when
/// n2 dies the repair must *reroute* the kept wires over n4 without
/// moving any NF — and the transit-only casualty still counts as an
/// affected graph with a visible blast radius.
#[test]
fn transit_node_failure_reroutes_kept_links() {
    let mut topo = Topology::explicit();
    topo.add_edge("n1", "n2", EdgeAttrs::default());
    topo.add_edge("n2", "n3", EdgeAttrs::default());
    topo.add_edge("n1", "n4", EdgeAttrs::default());
    topo.add_edge("n4", "n3", EdgeAttrs::default());
    let mut d = Domain::new(DomainConfig {
        topology: topo,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let n2 = UniversalNode::new("n2", mb(2048));
    let mut n3 = UniversalNode::new("n3", mb(2048));
    n3.add_physical_port("eth1");
    let n4 = UniversalNode::new("n4", mb(2048));
    d.add_node(n1);
    d.add_node(n2);
    d.add_node(n3);
    d.add_node(n4);
    d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();
    let vids_before: Vec<u16> = d.link_stats().iter().map(|(v, ..)| *v).collect();
    for vid in &vids_before {
        assert_eq!(d.link_path(*vid).unwrap()[1], "n2", "lexicographic tie");
    }

    let report = d.fail_node("n2").unwrap();
    assert_eq!(report.replaced, vec!["g1".to_string()]);
    let repair = &report.repairs[0];
    assert_eq!(repair.nfs_moved, 0, "transit failure moves no NF");
    assert_eq!(repair.nfs_preserved, 2);
    assert_eq!(repair.links_kept, 2, "wires keep vids: {repair:?}");
    assert_eq!(repair.links_rewired, 0);
    assert!(repair.nodes_touched >= 1, "n4 gains the transit part");
    assert!(!repair.full_replace);
    assert!(d.trace.counter("overlay_paths_rerouted") >= 2);

    let vids_after: Vec<u16> = d.link_stats().iter().map(|(v, ..)| *v).collect();
    assert_eq!(vids_before, vids_after, "vids survive the reroute");
    for vid in &vids_after {
        let path = d.link_path(*vid).unwrap();
        assert_eq!(path[1], "n4", "rerouted around the casualty: {path:?}");
    }
    assert!(
        !d.partition_of("g1").unwrap().parts.contains_key("n2"),
        "no part may remain on the dead transit node"
    );
    // Traffic flows over the detour.
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "{:?}", d.trace);
    assert_eq!(io.emitted[0].0, "n3");
    assert_eq!(io.overlay_hops, 2);
}

/// Line fleet where the middle dies: the ends survive but are
/// disconnected, so neither the incremental plan nor the from-scratch
/// fallback can route the cut edge — the graph parks with its vid
/// ledger balanced, and healing the middle restores transit service.
#[test]
fn transit_failure_with_no_detour_parks_then_heals() {
    let mut d = line_domain(false);
    d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();
    let (base, next, free, in_use, _) = d.vid_accounting();
    assert_eq!(in_use.len(), 2);
    assert_eq!((next - base) as usize, free.len() + in_use.len());

    let report = d.fail_node("n2").unwrap();
    assert!(report.replaced.is_empty(), "no route, no repair");
    assert_eq!(report.stranded, vec!["g1".to_string()]);
    assert_eq!(d.pending_graphs(), vec!["g1".to_string()]);
    // The surviving ends dropped their halves entirely.
    assert!(d.node("n1").unwrap().graph_ids().is_empty());
    assert!(d.node("n3").unwrap().graph_ids().is_empty());
    // Ledger: every vid ever minted is free, exactly once.
    let (base, next, free, in_use, _) = d.vid_accounting();
    assert!(in_use.is_empty(), "parked graph owns no links");
    assert_eq!((next - base) as usize, free.len());
    let distinct: std::collections::BTreeSet<u16> = free.iter().copied().collect();
    assert_eq!(distinct.len(), free.len(), "double-freed vid: {free:?}");

    // The middle comes back: the parked graph re-places and transit
    // service resumes over n2.
    let retried = d.recover_node("n2").unwrap();
    assert_eq!(retried, vec!["g1".to_string()]);
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "{:?}", d.trace);
    assert_eq!(io.emitted[0].0, "n3");
    assert_eq!(io.overlay_hops, 2, "transit path restored");
}

/// Double failure: the incremental repair fails (no route), and the
/// from-scratch fallback *also* fails (no node carries eth1 anymore),
/// parking the graph. Every vid must be freed exactly once, and the
/// healed fleet must redeploy the parked graph cleanly.
#[test]
fn double_repair_failure_parks_graph_without_leaking_vids() {
    let mut d = line_domain(false);
    d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();
    let minted = {
        let (base, next, ..) = d.vid_accounting();
        (next - base) as usize
    };

    // n3 dies first (the wan side), then n2: with eth1 gone entirely
    // the fallback cannot re-place either, so g1 parks.
    d.fail_node("n3").unwrap();
    let report = d.fail_node("n2").unwrap();
    assert!(report.replaced.is_empty());
    assert_eq!(d.pending_graphs(), vec!["g1".to_string()]);

    let (base, next, free, in_use, _) = d.vid_accounting();
    assert!(in_use.is_empty(), "parked graph owns no links");
    assert_eq!(
        (next - base) as usize,
        free.len(),
        "vid leak: minted {minted}, free {free:?}"
    );
    let distinct: std::collections::BTreeSet<u16> = free.iter().copied().collect();
    assert_eq!(distinct.len(), free.len(), "double-freed vid: {free:?}");

    // Heal: both nodes recover; retry re-places the graph and the
    // ledger still balances.
    d.recover_node("n2").unwrap();
    let retried = d.recover_node("n3").unwrap();
    assert_eq!(retried, vec!["g1".to_string()]);
    let (base, next, free, in_use, _) = d.vid_accounting();
    assert_eq!((next - base) as usize, free.len() + in_use.len());
    let io = d.inject("n1", "eth0", frame());
    assert_eq!(io.emitted.len(), 1, "{:?}", d.trace);
}

#[test]
fn vid_pool_exhaustion_is_a_typed_error() {
    // A pool of exactly one id: the split chain needs two cut edges,
    // so the deploy must fail with the typed error — and the one id
    // taken mid-partition must return to the pool.
    let mut d = Domain::new(DomainConfig {
        overlay_vid_base: 4094,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    let err = d
        .deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap_err();
    assert_eq!(err, DomainError::VidPoolExhausted);
    assert!(d.graph_ids().is_empty());
    let (_, _, free, in_use, _) = d.vid_accounting();
    assert_eq!(free, vec![4094], "taken vid must come back");
    assert!(in_use.is_empty());
    // No id past 4094 may ever be minted silently.
    let one_way = NfFgBuilder::new("ow", "one-way")
        .interface_endpoint("lan", "eth0")
        .interface_endpoint("wan", "eth1")
        .nf("br", "bridge", 2)
        .rule_through("r1", 10, "lan", ("br", 0))
        .rule_through("r2", 10, ("br", 1), "wan")
        .build();
    let hints = DeployHints {
        nf_node: [("br".to_string(), "n1".to_string())].into(),
        ..DeployHints::default()
    };
    let report = d.deploy_with(&one_way, &hints).unwrap();
    assert_eq!(report.overlay_links, 1, "one cut edge fits the pool");
    let (_, _, _, in_use, _) = d.vid_accounting();
    assert_eq!(in_use, vec![4094]);
}

#[test]
fn no_route_is_a_typed_error() {
    // Two explicit islands: a cut edge between them cannot be routed.
    let mut topo = Topology::explicit();
    topo.add_edge("n1", "nx", EdgeAttrs::default());
    topo.add_edge("n2", "ny", EdgeAttrs::default());
    let mut d = Domain::new(DomainConfig {
        topology: topo,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    let err = d
        .deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap_err();
    assert!(
        matches!(err, DomainError::NoRoute { .. }),
        "got {err:?} instead"
    );
    let (_, _, free, in_use, _) = d.vid_accounting();
    assert!(in_use.is_empty());
    let distinct: std::collections::BTreeSet<u16> = free.iter().copied().collect();
    assert_eq!(distinct.len(), free.len());
}

#[test]
fn describe_reports_fleet_and_links() {
    let mut d = two_node_domain();
    d.deploy_with(&split_bridge_chain(), &split_hints())
        .unwrap();
    let json = d.describe().render();
    assert!(json.contains("\"n1\""));
    assert!(json.contains("\"n2\""));
    assert!(json.contains("\"g1\""));
    assert!(json.contains("\"vid\""));
}

// ----------------------------------------------------------------------
// Domain-wide sharable-NNF registry
// ----------------------------------------------------------------------

use crate::sharing::{ElectionPolicy, SharingConfig, SharingError};

/// One tenant NAT service: `lan`/`wan` VLAN endpoints (per-tenant vid)
/// around a single NAT NF carrying the config its shared binding needs.
fn nat_graph(id: &str, vid: u16, wan_cidr: &str) -> NfFg {
    let cfg = un_nffg::NfConfig::default()
        .with_param("lan-addr", "192.168.1.1/24")
        .with_param("wan-addr", wan_cidr);
    NfFgBuilder::new(id, "nat service")
        .vlan_endpoint("lan", "eth0", vid)
        .vlan_endpoint("wan", "eth1", vid)
        .nf_with_config("nat", "nat", 2, cfg)
        .chain("lan", &["nat"], "wan")
        .build()
}

/// Endpoint hints pinning one tenant onto its home node.
fn tenant_hints(node: &str) -> DeployHints {
    DeployHints {
        endpoint_node: [
            ("lan".to_string(), node.to_string()),
            ("wan".to_string(), node.to_string()),
        ]
        .into(),
        ..DeployHints::default()
    }
}

/// A full-mesh fleet of `n` nodes (`n1..`), every node exposing
/// `eth0`/`eth1`, with the given sharing settings.
fn sharing_fleet(n: usize, sharing: SharingConfig) -> Domain {
    let mut d = Domain::new(DomainConfig {
        sharing,
        ..DomainConfig::default()
    });
    for i in 1..=n {
        let mut node = UniversalNode::new(&format!("n{i}"), mb(2048));
        node.add_physical_port("eth0");
        node.add_physical_port("eth1");
        d.add_node(node);
    }
    d
}

/// Make the host's shared-NAT namespace able to resolve 8.8.8.8 (the
/// upstream neighbor every tenant's traffic heads for).
fn nat_neigh(d: &mut Domain, host: &str, gid: &str) {
    let node = d.node_mut(host).unwrap();
    let (inst, _) = node.instance_of(gid, "nat").unwrap();
    let ns = node.compute.native.namespace_of(inst.0).unwrap();
    node.host
        .neigh_add(ns, "8.8.8.8".parse().unwrap(), MacAddr::local(0x99))
        .unwrap();
}

fn tenant_frame(vid: u16) -> un_packet::Packet {
    PacketBuilder::new()
        .ethernet(MacAddr::local(5), MacAddr::BROADCAST)
        .vlan(vid)
        .ipv4("192.168.1.10".parse().unwrap(), "8.8.8.8".parse().unwrap())
        .udp(5000, 53)
        .payload(b"dns?")
        .build()
}

/// The acceptance scenario: a tenant on node A rides a shared NAT
/// pinned to the non-adjacent node C of a line fabric (multi-hop over
/// the transit middle), and its egress is byte-identical to a private
/// (sharing-disabled) deployment of the same graph.
#[test]
fn remote_shared_nnf_over_multihop_is_byte_identical_to_private() {
    let line = |sharing: SharingConfig| {
        let mut d = Domain::new(DomainConfig {
            topology: Topology::line(&["n1", "n2", "n3"], EdgeAttrs::default()),
            sharing,
            ..DomainConfig::default()
        });
        let mut n1 = UniversalNode::new("n1", mb(2048));
        n1.add_physical_port("eth0");
        n1.add_physical_port("eth1");
        d.add_node(n1);
        d.add_node(UniversalNode::new("n2", mb(2048)));
        d.add_node(UniversalNode::new("n3", mb(2048)));
        d
    };
    let mut shared = line(SharingConfig {
        election: ElectionPolicy::Pinned([("nat".to_string(), "n3".to_string())].into()),
        ..SharingConfig::for_types(&["nat"])
    });
    let mut private = line(SharingConfig::default());
    let g = nat_graph("t1", 11, "203.0.113.1/24");
    shared.deploy(&g).unwrap();
    private.deploy(&g).unwrap();

    // Shared: NAT landed on the pinned non-adjacent host, the lease is
    // registered, and every overlay link rides the 3-node path.
    assert_eq!(shared.assignment_of("t1").unwrap()["nat"], "n3");
    let instances = shared.shared_instances();
    assert_eq!(instances.len(), 1);
    assert_eq!(instances[0].host, "n3");
    assert_eq!(instances[0].leases.get("t1"), Some(&1));
    assert_eq!(
        shared.graph_shared_leases("t1").unwrap()[&ShareKey::new("nat", "")],
        SharedClaim {
            host: "n3".to_string(),
            nfs: 1
        }
    );
    assert_eq!(
        shared.node("n3").unwrap().shared_nnf_graphs("nat"),
        vec!["t1".to_string()]
    );
    for (vid, ..) in shared.link_stats() {
        assert_eq!(shared.link_path(vid).unwrap().len(), 3, "multi-hop via n2");
    }
    // Private: everything stays on n1.
    assert!(private
        .assignment_of("t1")
        .unwrap()
        .values()
        .all(|n| n == "n1"));
    assert!(private.shared_instances().is_empty());

    nat_neigh(&mut shared, "n3", "t1");
    nat_neigh(&mut private, "n1", "t1");
    let a = shared.inject("n1", "eth0", tenant_frame(11));
    let b = private.inject("n1", "eth0", tenant_frame(11));
    assert_eq!(a.emitted.len(), 1, "{:?}", shared.trace);
    assert_eq!(b.emitted.len(), 1, "{:?}", private.trace);
    assert_eq!(a.emitted[0].0, "n1");
    assert_eq!(a.emitted[0].1, b.emitted[0].1, "same egress interface");
    assert_eq!(
        a.emitted[0].2.data(),
        b.emitted[0].2.data(),
        "remote shared instance must be transparent byte-for-byte"
    );
    assert_eq!(a.overlay_hops, 4, "2 fabric hops to the NAT, 2 back");
    assert_eq!(b.overlay_hops, 0, "private deployment stays local");
}

#[test]
fn shared_host_failure_reelects_and_reroutes_every_tenant() {
    let mut d = sharing_fleet(3, SharingConfig::for_types(&["nat"]));
    for (i, node) in ["n1", "n2", "n3"].iter().enumerate() {
        let gid = format!("t{}", i + 1);
        let g = nat_graph(&gid, 11 + i as u16, "203.0.113.1/24");
        d.deploy_with(&g, &tenant_hints(node)).unwrap();
    }
    // First demand elected n1; every tenant leases the one instance.
    let inst = &d.shared_instances()[0];
    assert_eq!(inst.host, "n1");
    assert_eq!(inst.tenant_count(), 3);
    assert_eq!(
        d.node("n1").unwrap().shared_nnf_graphs("nat").len(),
        3,
        "one node-level instance binds all three tenants"
    );
    // Tenants off-host reach the instance remotely.
    assert_eq!(d.assignment_of("t2").unwrap()["nat"], "n1");
    assert_eq!(d.assignment_of("t3").unwrap()["nat"], "n1");

    let report = d.fail_node("n1").unwrap();
    assert_eq!(report.replaced.len(), 3, "{report:?}");
    assert!(report.stranded.is_empty());
    // The registry re-elected once; every tenant converged on the new
    // host, and each repair attributes the move to the shared instance.
    let inst = &d.shared_instances()[0];
    assert_eq!(inst.host, "n2", "deterministic re-election");
    assert_eq!(inst.tenant_count(), 3);
    for outcome in &report.repairs {
        assert_eq!(outcome.shared_nfs_moved, 1, "{outcome:?}");
        assert_eq!(
            outcome.shared_migrated,
            vec![("nat".to_string(), "n2".to_string())],
            "{outcome:?}"
        );
        assert!(outcome.nfs_moved >= outcome.shared_nfs_moved);
    }
    for gid in ["t1", "t2", "t3"] {
        assert_eq!(d.assignment_of(gid).unwrap()["nat"], "n2");
    }
    assert_eq!(d.node("n2").unwrap().shared_nnf_graphs("nat").len(), 3);

    // The re-homed instance still serves every tenant end to end
    // (their endpoints stayed home: t2 on n2, t3 on n3 — t3's traffic
    // now crosses the overlay to n2's instance).
    nat_neigh(&mut d, "n2", "t2");
    for (gid, home, vid) in [("t2", "n2", 12u16), ("t3", "n3", 13)] {
        let io = d.inject(home, "eth0", tenant_frame(vid));
        assert_eq!(io.emitted.len(), 1, "{gid} must still forward");
        assert_eq!(io.emitted[0].0, home, "{gid} egresses at home");
    }
}

#[test]
fn lease_capacity_is_typed_and_never_double_counts_a_held_lease() {
    let mut d = sharing_fleet(
        2,
        SharingConfig {
            max_leases: Some(1),
            ..SharingConfig::for_types(&["nat"])
        },
    );
    let t1 = nat_graph("t1", 11, "203.0.113.1/24");
    d.deploy_with(&t1, &tenant_hints("n1")).unwrap();
    // Second tenant: the instance is full — a typed error, no deploy.
    let err = d
        .deploy_with(&nat_graph("t2", 12, "198.51.100.1/24"), &tenant_hints("n2"))
        .unwrap_err();
    assert!(
        matches!(
            err,
            DomainError::Sharing(SharingError::CapacityExhausted { max_leases: 1, .. })
        ),
        "got {err:?}"
    );
    // Regression: re-planning the tenant that holds the lease must not
    // count its own lease against the capacity.
    let mut tweaked = t1.clone();
    tweaked.flow_rules[0].priority += 1;
    d.update(&tweaked).unwrap();
    assert_eq!(d.shared_instances()[0].tenant_count(), 1);
    // The freed lease admits the waiting tenant.
    d.undeploy("t1").unwrap();
    assert!(d.shared_instances().is_empty(), "last lease drops instance");
    d.deploy_with(&nat_graph("t2", 12, "198.51.100.1/24"), &tenant_hints("n2"))
        .unwrap();
    assert_eq!(d.shared_instances()[0].tenant_count(), 1);
}

#[test]
fn sharing_toggle_applies_to_new_plans_only() {
    let mut d = sharing_fleet(
        2,
        SharingConfig {
            enabled: false,
            ..SharingConfig::for_types(&["nat"])
        },
    );
    assert!(!d.sharing_enabled());
    let t1 = nat_graph("t1", 11, "203.0.113.1/24");
    d.deploy_with(&t1, &tenant_hints("n1")).unwrap();
    assert!(d.shared_instances().is_empty(), "disabled: no leases");
    assert_eq!(d.assignment_of("t1").unwrap()["nat"], "n1");

    d.set_sharing_enabled(true);
    d.deploy_with(&nat_graph("t2", 12, "198.51.100.1/24"), &tenant_hints("n2"))
        .unwrap();
    let inst = &d.shared_instances()[0];
    assert_eq!(inst.host, "n2", "first demand after the toggle");
    assert_eq!(inst.tenant_count(), 1, "t1 predates the registry");

    // Updating the pre-registry tenant converges it onto the shared
    // instance (and acquires its lease).
    let mut tweaked = t1.clone();
    tweaked.flow_rules[0].priority += 1;
    d.update(&tweaked).unwrap();
    assert_eq!(d.assignment_of("t1").unwrap()["nat"], "n2");
    assert_eq!(d.shared_instances()[0].tenant_count(), 2);

    // Toggling off releases on the next re-plan, never retroactively.
    d.set_sharing_enabled(false);
    assert_eq!(d.shared_instances()[0].tenant_count(), 2);
    let mut tweaked2 = tweaked.clone();
    tweaked2.flow_rules[0].priority += 1;
    d.update(&tweaked2).unwrap();
    let inst = &d.shared_instances()[0];
    assert_eq!(inst.tenant_count(), 1, "t1 released its lease");
    assert_eq!(
        d.assignment_of("t1").unwrap()["nat"],
        "n2",
        "survivor pin keeps the NF in place without a lease"
    );
}

#[test]
fn pinned_host_death_parks_tenants_until_recovery() {
    let mut d = sharing_fleet(
        3,
        SharingConfig {
            election: ElectionPolicy::Pinned([("nat".to_string(), "n2".to_string())].into()),
            ..SharingConfig::for_types(&["nat"])
        },
    );
    d.deploy_with(&nat_graph("t1", 11, "203.0.113.1/24"), &tenant_hints("n1"))
        .unwrap();
    d.deploy_with(&nat_graph("t3", 13, "198.51.100.1/24"), &tenant_hints("n3"))
        .unwrap();
    assert_eq!(d.shared_instances()[0].host, "n2");

    // The pinned host dies: no re-election is possible, every tenant
    // parks, and the last released lease drops the instance.
    let report = d.fail_node("n2").unwrap();
    assert!(report.replaced.is_empty(), "{report:?}");
    assert_eq!(report.stranded.len(), 2);
    assert!(d.shared_instances().is_empty(), "no orphan instance");
    assert_eq!(d.pending_graphs().len(), 2);

    // Recovery re-places the parked tenants and restores the leases.
    let retried = d.recover_node("n2").unwrap();
    assert_eq!(retried.len(), 2, "{retried:?}");
    let inst = &d.shared_instances()[0];
    assert_eq!(inst.host, "n2");
    assert_eq!(inst.tenant_count(), 2);
}

#[test]
fn shared_docs_surface_instances_and_leases() {
    let mut d = sharing_fleet(2, SharingConfig::for_types(&["nat"]));
    d.deploy_with(&nat_graph("t1", 11, "203.0.113.1/24"), &tenant_hints("n1"))
        .unwrap();
    d.deploy_with(&nat_graph("t2", 12, "198.51.100.1/24"), &tenant_hints("n2"))
        .unwrap();
    let doc = d.shared_doc().render();
    assert!(doc.contains("\"enabled\":true"), "{doc}");
    assert!(doc.contains("\"election\":\"first-demand\""), "{doc}");
    assert!(doc.contains("\"type\":\"nat\""), "{doc}");
    assert!(doc.contains("\"host\":\"n1\""), "{doc}");
    assert!(doc.contains("\"tenants\":2"), "{doc}");
    assert!(doc.contains("\"graph\":\"t1\""), "{doc}");
    // The fleet document carries per-graph lease docs.
    let fleet = d.describe().render();
    assert!(fleet.contains("\"shared-leases\""), "{fleet}");
    assert!(fleet.contains("\"host\":\"n1\""), "{fleet}");
}

#[test]
fn sibling_capability_pools_never_co_elect_one_host() {
    // One graph demands TWO NAT pools (default + cgnat) in a single
    // deploy. Node-level NAT is a singleton, so the registry must put
    // the pools on different hosts — including when both elections
    // happen inside one plan (the registry is still empty for both).
    let mut d = sharing_fleet(2, SharingConfig::for_types(&["nat"]));
    let cfg = |cap: Option<&str>, wan: &str| {
        let mut c = un_nffg::NfConfig::default()
            .with_param("lan-addr", "192.168.1.1/24")
            .with_param("wan-addr", wan);
        if let Some(cap) = cap {
            c = c.with_param("share-capability", cap);
        }
        c
    };
    let g = NfFgBuilder::new("t1", "two pools")
        .vlan_endpoint("lan", "eth0", 11)
        .vlan_endpoint("wan", "eth1", 11)
        .nf_with_config("nat-a", "nat", 2, cfg(None, "203.0.113.1/24"))
        .nf_with_config("nat-b", "nat", 2, cfg(Some("cgnat"), "198.51.100.1/24"))
        .chain("lan", &["nat-a", "nat-b"], "wan")
        .build();
    d.deploy_with(&g, &tenant_hints("n1")).unwrap();
    let instances = d.shared_instances();
    assert_eq!(instances.len(), 2);
    assert_ne!(
        instances[0].host, instances[1].host,
        "sibling pools must not share a node-level singleton"
    );
    let a = d.assignment_of("t1").unwrap();
    assert_ne!(a["nat-a"], a["nat-b"]);
    // One graph, one lease per pool.
    assert_eq!(d.graph_shared_leases("t1").unwrap().len(), 2);
}

// ── Make-before-break standbys & the availability model ─────────────

/// Full-mesh fleet where the whole graph sits on n2 (both physical
/// ports), with n1 (`eth0`) and n3 (`eth1`) as survivors: repairing n2
/// must split the graph across the ends and mint fresh overlay vids —
/// the shape that exercises standby vid pre-reservation.
fn hub_fleet() -> Domain {
    let mut d = Domain::with_defaults();
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    let mut n2 = UniversalNode::new("n2", mb(2048));
    n2.add_physical_port("eth0");
    n2.add_physical_port("eth1");
    let mut n3 = UniversalNode::new("n3", mb(2048));
    n3.add_physical_port("eth1");
    d.add_node(n1);
    d.add_node(n2);
    d.add_node(n3);
    d
}

fn hub_hints() -> DeployHints {
    DeployHints {
        endpoint_node: [
            ("lan".to_string(), "n2".to_string()),
            ("wan".to_string(), "n2".to_string()),
        ]
        .into(),
        nf_node: [
            ("br1".to_string(), "n2".to_string()),
            ("br2".to_string(), "n2".to_string()),
        ]
        .into(),
        ..DeployHints::default()
    }
}

/// Every vid ever minted is in exactly one pool: free, in-use, or
/// standby-reserved.
fn assert_vid_conservation(d: &Domain) {
    let (base, next, free, in_use, standby) = d.vid_accounting();
    let minted = (next - base) as usize;
    assert_eq!(
        minted,
        free.len() + in_use.len() + standby.len(),
        "vid ledger out of balance: free={free:?} in_use={in_use:?} standby={standby:?}"
    );
    let mut all: Vec<u16> = free
        .iter()
        .chain(&in_use)
        .chain(&standby)
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), minted, "a vid appears in two pools");
}

#[test]
fn suspect_stages_standby_and_discard_returns_vids() {
    let mut d = hub_fleet();
    d.deploy_with(&split_bridge_chain(), &hub_hints()).unwrap();
    // Single-node deployment: no overlay links yet.
    let (_, _, _, in_use, _) = d.vid_accounting();
    assert!(in_use.is_empty());

    // Suspecting the hub pre-plans the split: two fresh vids reserved.
    d.suspect_node("n2").unwrap();
    assert_eq!(d.standby_graphs(), vec!["g1".to_string()]);
    assert_eq!(d.trace.counter("standby_plans_computed"), 1);
    let (_, _, _, _, standby) = d.vid_accounting();
    assert_eq!(standby.len(), 2, "fwd + rev cut pre-reserved");
    assert_vid_conservation(&d);

    // A late heartbeat clears the suspicion and returns the vids.
    d.heartbeat("n2", SimTime::from_nanos(1)).unwrap();
    assert!(d.standby_graphs().is_empty());
    assert_eq!(d.trace.counter("standby_plans_discarded"), 1);
    let (_, _, free, _, standby) = d.vid_accounting();
    assert!(standby.is_empty());
    assert_eq!(free.len(), 2, "reserved vids returned to the pool");
    assert_vid_conservation(&d);

    // Same cycle via an explicit recover_node.
    d.suspect_node("n2").unwrap();
    assert_eq!(d.trace.counter("standby_plans_computed"), 2);
    assert_vid_conservation(&d);
    d.recover_node("n2").unwrap();
    assert!(d.standby_graphs().is_empty());
    assert_eq!(d.trace.counter("standby_plans_discarded"), 2);
    assert_vid_conservation(&d);
    assert_eq!(d.health("n2"), Some(NodeHealth::Alive));

    // The graph never moved through any of it.
    assert!(d.assignment_of("g1").unwrap().values().all(|n| n == "n2"));
}

#[test]
fn promoted_standby_matches_reactive_repair_byte_for_byte() {
    // Twin fleets, same graph. One is warned (suspect → standby →
    // fail = swap), the other is surprised (fail = reactive plan).
    // The deterministic planner must make the outcomes identical.
    let mut warned = hub_fleet();
    let mut surprised = hub_fleet();
    warned
        .deploy_with(&split_bridge_chain(), &hub_hints())
        .unwrap();
    surprised
        .deploy_with(&split_bridge_chain(), &hub_hints())
        .unwrap();

    warned.suspect_node("n2").unwrap();
    assert_eq!(warned.trace.counter("standby_plans_computed"), 1);
    let report = warned.fail_node("n2").unwrap();
    assert_eq!(report.replaced, vec!["g1".to_string()]);
    assert!(
        report.repairs[0].standby_promoted,
        "{:?}",
        report.repairs[0]
    );
    assert_eq!(warned.trace.counter("standby_plans_promoted"), 1);
    assert!(warned.standby_graphs().is_empty(), "standby consumed");

    let report = surprised.fail_node("n2").unwrap();
    assert!(!report.repairs[0].standby_promoted);
    assert_eq!(surprised.trace.counter("standby_plans_promoted"), 0);

    // Identical placement, identical overlay vids, identical egress.
    assert_eq!(
        warned.assignment_of("g1").unwrap(),
        surprised.assignment_of("g1").unwrap()
    );
    let vids = |d: &Domain| {
        let mut v: Vec<u16> = d.link_stats().iter().map(|(v, ..)| *v).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(vids(&warned), vids(&surprised));
    assert_vid_conservation(&warned);
    assert_vid_conservation(&surprised);

    let a = warned.inject("n1", "eth0", frame());
    let b = surprised.inject("n1", "eth0", frame());
    assert_eq!(a.emitted.len(), 1, "{:?}", warned.trace);
    assert_eq!(b.emitted.len(), 1, "{:?}", surprised.trace);
    assert_eq!(a.emitted[0].0, b.emitted[0].0, "same egress node");
    assert_eq!(a.emitted[0].1, b.emitted[0].1, "same egress port");
    assert_eq!(
        a.emitted[0].2.data(),
        b.emitted[0].2.data(),
        "promoted standby must be byte-identical to a reactive repair"
    );
}

#[test]
fn shared_standby_promotes_host_on_failure() {
    let mut d = sharing_fleet(3, SharingConfig::for_types(&["nat"]));
    for (i, node) in ["n1", "n2", "n3"].iter().enumerate() {
        let gid = format!("t{}", i + 1);
        d.deploy_with(
            &nat_graph(&gid, 11 + i as u16, "203.0.113.1/24"),
            &tenant_hints(node),
        )
        .unwrap();
    }
    assert_eq!(d.shared_instances()[0].host, "n1");

    // Suspecting the shared host pre-elects its replacement and stages
    // a standby plan per tenant graph.
    d.suspect_node("n1").unwrap();
    assert_eq!(d.standby_graphs().len(), 3, "{:?}", d.standby_graphs());
    assert_vid_conservation(&d);

    let report = d.fail_node("n1").unwrap();
    assert_eq!(report.replaced.len(), 3, "{report:?}");
    assert_eq!(d.trace.counter("standby_shared_promoted"), 1);
    assert!(report.repairs.iter().all(|o| o.standby_promoted));
    let inst = &d.shared_instances()[0];
    assert_eq!(inst.host, "n2", "pre-elected host promoted");
    assert_eq!(inst.tenant_count(), 3);
    assert_vid_conservation(&d);
}

#[test]
fn scale_out_splits_tenants_instead_of_rejecting() {
    let mut d = sharing_fleet(
        2,
        SharingConfig {
            max_leases: Some(1),
            scale_out: true,
            ..SharingConfig::for_types(&["nat"])
        },
    );
    d.deploy_with(&nat_graph("t1", 11, "203.0.113.1/24"), &tenant_hints("n1"))
        .unwrap();
    // The instance is full, but scale-out elects a second replica
    // instead of failing the deploy.
    d.deploy_with(&nat_graph("t2", 12, "198.51.100.1/24"), &tenant_hints("n2"))
        .unwrap();
    assert_eq!(d.trace.counter("shared_scale_outs"), 1);
    let instances = d.shared_instances();
    assert_eq!(instances.len(), 2, "{instances:?}");
    assert_ne!(instances[0].host, instances[1].host);
    assert!(instances.iter().all(|i| i.tenant_count() == 1));
    // Each tenant rides its own replica end to end.
    let nat_host = |gid: &str| d.assignment_of(gid).unwrap()["nat"].clone();
    assert_ne!(nat_host("t1"), nat_host("t2"));
    for (gid, host) in [("t1", nat_host("t1")), ("t2", nat_host("t2"))] {
        nat_neigh(&mut d, &host, gid);
    }
    for (home, vid) in [("n1", 11u16), ("n2", 12)] {
        let io = d.inject(home, "eth0", tenant_frame(vid));
        assert_eq!(io.emitted.len(), 1, "{:?}", d.trace);
        assert_eq!(io.emitted[0].0, home);
    }
}

#[test]
fn loaded_edges_steer_second_graph_onto_other_branch() {
    // Diamond n1–n2–n3 / n1–n4–n3, equal attrs: g1's wires take the
    // lexicographic n2 branch and *load* it, so g2's wires — same
    // hop count either way — are repelled onto n4.
    let mut topo = Topology::explicit();
    topo.add_edge("n1", "n2", EdgeAttrs::default());
    topo.add_edge("n2", "n3", EdgeAttrs::default());
    topo.add_edge("n1", "n4", EdgeAttrs::default());
    topo.add_edge("n4", "n3", EdgeAttrs::default());
    let mut d = Domain::new(DomainConfig {
        topology: topo,
        ..DomainConfig::default()
    });
    let mut n1 = UniversalNode::new("n1", mb(2048));
    n1.add_physical_port("eth0");
    n1.add_physical_port("eth2");
    let n2 = UniversalNode::new("n2", mb(2048));
    let mut n3 = UniversalNode::new("n3", mb(2048));
    n3.add_physical_port("eth1");
    n3.add_physical_port("eth3");
    let n4 = UniversalNode::new("n4", mb(2048));
    d.add_node(n1);
    d.add_node(n2);
    d.add_node(n3);
    d.add_node(n4);

    d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();
    // Same chain on its own ports, so the endpoints don't collide.
    let g2 = NfFgBuilder::new("g2", "split")
        .interface_endpoint("lan", "eth2")
        .interface_endpoint("wan", "eth3")
        .nf("br1", "bridge", 2)
        .nf("br2", "bridge", 2)
        .chain("lan", &["br1", "br2"], "wan")
        .build();
    d.deploy_with(&g2, &far_hints()).unwrap();

    let branch = |d: &Domain, gid: &str| -> Vec<String> {
        let mut out: Vec<String> = d
            .link_stats()
            .iter()
            .filter_map(|(vid, ..)| {
                let path = d.link_path(*vid)?;
                d.partition_of(gid)
                    .unwrap()
                    .parts
                    .contains_key(&path[1])
                    .then(|| path[1].clone())
            })
            .collect();
        out.sort();
        out.dedup();
        out
    };
    assert_eq!(branch(&d, "g1"), vec!["n2".to_string()], "tie-break");
    assert_eq!(branch(&d, "g2"), vec!["n4".to_string()], "load repulsion");
}

#[test]
fn park_drain_downtime_is_stamped_on_retry() {
    let mut d = line_domain(false);
    d.deploy_with(&split_bridge_chain(), &far_hints()).unwrap();

    // The transit middle dies with no detour: the graph parks.
    let report = d.fail_node("n2").unwrap();
    assert_eq!(report.stranded, vec!["g1".to_string()]);
    let ledger = d.graph_availability("g1").unwrap();
    assert_eq!(ledger.park_events, 1);
    assert_eq!(ledger.park_downtime_ns, 0, "still parked — not stamped");

    // Healing drains the park; the outage duration lands in the ledger.
    let retried = d.recover_node("n2").unwrap();
    assert_eq!(retried, vec!["g1".to_string()]);
    assert_eq!(d.trace.counter("park_drains"), 1);
    let ledger = d.graph_availability("g1").unwrap();
    assert_eq!(ledger.park_events, 1);
    assert!(ledger.park_downtime_ns > 0, "park→drain downtime stamped");
}

#[test]
fn availability_report_predicts_and_records() {
    let mut d = hub_fleet();
    d.deploy_with(&split_bridge_chain(), &hub_hints()).unwrap();

    // Before any repair: prediction runs on the calibration default.
    let report = d.availability_report();
    assert_eq!(report.repair_events, 0);
    let g = &report.graphs[0];
    assert_eq!(g.graph, "g1");
    assert_eq!(g.exposed_nodes, 1, "whole graph on the hub");
    assert!(!g.standby_ready);
    assert_eq!(g.predicted_repair_ns, crate::standby::DEFAULT_REPAIR_NS);
    assert!(g.predicted_availability < 1.0);
    assert!(g.predicted_availability > 0.999);

    // Staging a standby flips the prediction to the swap column.
    d.suspect_node("n2").unwrap();
    let report = d.availability_report();
    assert!(report.graphs[0].standby_ready);

    // A real failure populates both sides of the model.
    d.fail_node("n2").unwrap();
    let report = d.availability_report();
    assert_eq!(report.repair_events, 1);
    assert!(report.measured_downtime_ns > 0);
    assert!(report.modeled_downtime_ns > 0);
    assert_eq!(report.calibration.swap_events, 1, "swap was calibrated");
    let g = &report.graphs[0];
    assert_eq!(g.ledger.repairs, 1);
    assert_eq!(g.ledger.standby_promotions, 1);
    assert_eq!(g.exposed_nodes, 2, "now split across the ends");

    // The JSON doc mirrors the report.
    let doc = d.availability_doc().render();
    assert!(doc.contains("\"node-mtbf-ns\""), "{doc}");
    assert!(doc.contains("\"repair-events\":1"), "{doc}");
    assert!(doc.contains("\"predicted-availability\""), "{doc}");
    assert!(doc.contains("\"standby-promotions\":1"), "{doc}");
}
