//! Domain-side bridge to `un-verify` — snapshot extraction, the
//! incremental re-verification cache, and [`Domain::verify`].
//!
//! The checker itself is orchestrator-free (it consumes the plain-data
//! [`Snapshot`]); this module owns the two stateful halves:
//!
//! * **Extraction** — [`Domain::verify_snapshot`] lowers live fleet
//!   state (installed LSI tables, partitions, overlay wires, shared
//!   leases, the vid pool) into a snapshot that the checker, the REST
//!   endpoint, and the negative tests all share.
//! * **Incrementality** — mutations mark the graphs they touched (and
//!   the nodes hosting their parts); [`Domain::verify`] re-checks only
//!   the dirty portion and splices cached results in for the rest.
//!   The ledger checks are global but cheap, so they always re-run;
//!   fleet-wide mutations (membership, health, repair, sharing policy)
//!   force a full pass because their blast radius is unbounded.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use un_verify::check::{self, CheckStats, VerifyReport, Violation};
use un_verify::snapshot::{
    ExpectedRule, GraphLink, GraphState, LeaseInfo, LinkInfo, LsiState, NodeState, RuleState,
    Snapshot, TableState,
};

use super::{Domain, DomainGraph};

/// Dirty-set bookkeeping between verification passes.
#[derive(Default)]
pub(super) struct VerifyCache {
    /// Re-check everything (fleet-wide mutation, or no pass yet).
    dirty_all: bool,
    /// Graphs touched since the last pass.
    graphs_dirty: BTreeSet<String>,
    /// Nodes hosting parts of a touched graph, captured both before
    /// and after the mutation so vacated hosts are re-audited too.
    nodes_dirty: BTreeSet<String>,
    /// Per-graph results from the last pass.
    graph_results: BTreeMap<String, (Vec<Violation>, CheckStats)>,
    /// Per-node audits from the last pass.
    node_results: BTreeMap<String, (Vec<Violation>, CheckStats)>,
    /// False until a pass has populated the caches.
    primed: bool,
}

/// Lower one deployed graph (intent, plan, install receipt) into the
/// verifier's model. Expected-rule cookies reproduce the compiler's
/// convention so the consistency check matches installed entries.
fn snapshot_graph(id: &str, g: &DomainGraph) -> GraphState {
    let expected_rules = g
        .partition
        .parts
        .iter()
        .flat_map(|(node, part)| {
            part.flow_rules.iter().map(move |r| ExpectedRule {
                node: node.clone(),
                rule_id: r.id.clone(),
                cookie: un_core::rule_cookie(id, &r.id),
            })
        })
        .collect();
    GraphState {
        id: id.to_string(),
        original: g.original.clone(),
        parts: g.partition.parts.clone(),
        links: g
            .partition
            .links
            .iter()
            .map(|l| GraphLink {
                vid: l.vid,
                from_node: l.from_node.clone(),
                to_node: l.to_node.clone(),
                endpoint_id: l.endpoint_id.clone(),
                in_rule_id: l.in_rule_id.clone(),
            })
            .collect(),
        expected_rules,
    }
}

impl Domain {
    /// Flag one graph — and the nodes hosting its parts *right now* —
    /// for re-verification. Mutations call this before **and** after
    /// changing a graph, so both the vacated and the new hosts get
    /// re-audited on the next [`Domain::verify`].
    pub(super) fn verify_mark_graph(&self, gid: &str) {
        let mut c = self.verify_cache.lock().expect("verify cache poisoned");
        c.graphs_dirty.insert(gid.to_string());
        if let Some(g) = self.graphs.get(gid) {
            c.nodes_dirty.extend(g.partition.parts.keys().cloned());
        }
    }

    /// Flag the whole domain for re-verification.
    pub(super) fn verify_mark_all(&self) {
        self.verify_cache
            .lock()
            .expect("verify cache poisoned")
            .dirty_all = true;
    }

    /// Lower live domain state into the verifier's plain-data model.
    ///
    /// Public so negative tests can corrupt a *real* snapshot and feed
    /// it straight to [`un_verify::check::run`].
    pub fn verify_snapshot(&self) -> Snapshot {
        let (vid_base, vid_next, free_vids, _in_use, standby_vids) = self.vid_accounting();
        let nodes = self
            .nodes
            .iter()
            .map(|(name, managed)| NodeState {
                name: name.clone(),
                serving: managed.health.is_serving(),
                lsis: managed
                    .node
                    .lsis()
                    .map(|(gid, lsi)| LsiState {
                        name: lsi.name.clone(),
                        graph: gid.map(str::to_string),
                        ports: lsi.ports().map(|(no, _)| no.0).collect(),
                        tables: lsi
                            .tables()
                            .map(|(index, table)| TableState {
                                index,
                                rules: table
                                    .entries()
                                    .map(|e| RuleState {
                                        priority: e.priority,
                                        matches: e.matches.clone(),
                                        actions: e.actions.clone(),
                                        cookie: e.cookie,
                                    })
                                    .collect(),
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        let graphs = self
            .graphs
            .iter()
            .map(|(id, g)| snapshot_graph(id, g))
            .collect();
        let links = self
            .links
            .iter()
            .map(|(vid, state)| {
                let state = state.lock().expect("link lock poisoned");
                LinkInfo {
                    vid: *vid,
                    graph: state.graph.clone(),
                    path: state.path.clone(),
                }
            })
            .collect();
        let leases = self
            .sharing
            .instances()
            .map(|inst| LeaseInfo {
                key: inst.key.render(),
                host: inst.host.clone(),
                tenants: inst.leases.keys().cloned().collect(),
            })
            .collect();
        Snapshot {
            vid_base,
            vid_next,
            free_vids,
            standby_vids,
            nodes,
            graphs,
            links,
            leases,
        }
    }

    /// Statically verify the domain: reachability, loop-freedom,
    /// blackhole-freedom, shadowed rules, and ledger consistency over
    /// a snapshot of current state.
    ///
    /// Incremental: only graphs (and nodes) touched since the last
    /// call are re-checked; cached results cover the rest. The first
    /// call, and any call after a fleet-wide mutation, runs full.
    pub fn verify(&self) -> VerifyReport {
        self.verify_inner(false)
    }

    /// Statically verify the domain, re-checking everything.
    pub fn verify_full(&self) -> VerifyReport {
        self.verify_inner(true)
    }

    fn verify_inner(&self, force_full: bool) -> VerifyReport {
        let started = Instant::now();
        let snap = self.verify_snapshot();
        let mut cache = self.verify_cache.lock().expect("verify cache poisoned");
        let full = force_full || cache.dirty_all || !cache.primed;

        let mut report = VerifyReport {
            mode: if full { "full" } else { "incremental" },
            ..VerifyReport::default()
        };
        report.violations.extend(check::check_ledger(&snap));

        // Cached entries for graphs/nodes that left the domain are
        // dead weight — drop them so they can never be spliced back.
        cache.graph_results.retain(|id, _| snap.graph(id).is_some());
        cache
            .node_results
            .retain(|name, _| snap.node(name).is_some());

        for g in &snap.graphs {
            if !full && !cache.graphs_dirty.contains(&g.id) {
                if let Some((v, _)) = cache.graph_results.get(&g.id) {
                    report.violations.extend(v.iter().cloned());
                    report.graphs_reused += 1;
                    continue;
                }
            }
            let (v, stats) = check::check_graph(&snap, g);
            report.violations.extend(v.iter().cloned());
            report.stats.merge(stats);
            report.graphs_checked += 1;
            cache.graph_results.insert(g.id.clone(), (v, stats));
        }

        // Only serving nodes are audited: a failed carcass keeps its
        // installed state (expected stale) until recovery purges it.
        let in_use: BTreeSet<u16> = snap.links.iter().map(|l| l.vid).collect();
        for node in snap.nodes.iter().filter(|n| n.serving) {
            if !full && !cache.nodes_dirty.contains(&node.name) {
                if let Some((v, _)) = cache.node_results.get(&node.name) {
                    report.violations.extend(v.iter().cloned());
                    report.nodes_reused += 1;
                    continue;
                }
            }
            let (v, stats) = check::audit_node(node, snap.vid_base, snap.vid_next, &in_use);
            report.violations.extend(v.iter().cloned());
            report.stats.merge(stats);
            report.nodes_checked += 1;
            cache.node_results.insert(node.name.clone(), (v, stats));
        }

        cache.graphs_dirty.clear();
        cache.nodes_dirty.clear();
        cache.dirty_all = false;
        cache.primed = true;
        drop(cache);

        report.duration_ns = started.elapsed().as_nanos() as u64;
        if self.obs.is_enabled() {
            let reg = self.obs.registry();
            reg.counter("un_verify_runs_total", &[("mode", report.mode)])
                .inc();
            reg.histogram(
                "un_verify_duration_ns",
                &[],
                &un_obs::Histogram::latency_bounds(),
            )
            .record(report.duration_ns);
            reg.gauge("un_verify_violations", &[])
                .set(report.violations.len() as i64);
        }
        report
    }

    /// The verification report as a JSON document (`GET
    /// /domain/verify`).
    pub fn verify_doc(&self) -> un_nffg::Json {
        use un_nffg::Json;
        let report = self.verify();
        let violations: Vec<Json> = report
            .violations
            .iter()
            .map(|v| {
                let mut doc = Json::obj().set("code", v.code);
                if let Some(g) = &v.graph {
                    doc = doc.set("graph", g.clone());
                }
                if let Some(n) = &v.node {
                    doc = doc.set("node", n.clone());
                }
                if let Some(w) = &v.witness {
                    doc = doc.set("witness", crate::domain::Domain::trace_doc(w));
                }
                doc.set("detail", v.detail.clone())
            })
            .collect();
        Json::obj()
            .set("ok", report.ok())
            .set("mode", report.mode)
            .set("graphs-checked", report.graphs_checked)
            .set("graphs-reused", report.graphs_reused)
            .set("nodes-checked", report.nodes_checked)
            .set("nodes-reused", report.nodes_reused)
            .set("rules-checked", report.stats.rules_checked)
            .set("classes", report.stats.classes)
            .set("duration-ns", report.duration_ns)
            .set("violations", violations)
    }
}
