//! # un-domain — the domain orchestrator above the Universal Nodes
//!
//! The paper's Universal Node is one CPE; its Figure 1 architecture
//! explicitly sits *under* an overarching orchestrator that dispatches
//! NF-FGs to many nodes. This crate is that layer:
//!
//! ```text
//!                       Domain Orchestrator  ←  NF-FG (cluster REST)
//!        ┌──────────────────┬──────────────────┬────────────────┐
//!   Fleet registry     Global placement    Graph partitioner   Overlay mgr
//!   (views, health)    (bin-pack + NNF     (per-node parts +   (VLAN wires,
//!                       preference)         cut-edge synth)     opt. ESP)
//!        └──────────────────┴────────┬─────────┴────────────────┘
//!              UniversalNode #1 │ UniversalNode #2 │ … │ #N
//! ```
//!
//! * [`placement`] — the fleet-level scheduler: assign every NF of a
//!   graph to a node, respecting per-node NNF catalogs, memory
//!   admission estimates, and sharable-NNF reuse; bin-packing (`Pack`)
//!   or load-spreading (`Spread`).
//! * [`partition`] — pure graph surgery: split one NF-FG into per-node
//!   sub-graphs and synthesize endpoint pairs for every cut edge.
//!   Reassembly ([`partition::reassemble`]) is the exact inverse,
//!   which the property tests exploit.
//! * [`domain`] — [`domain::Domain`]: owns the fleet, deploys /
//!   updates / undeploys partitioned graphs, shuttles frames across
//!   **inter-node overlay links** (VLAN-tagged virtual wires on a
//!   dedicated fabric port, optionally ESP-protected via `un-ipsec`),
//!   detects node failures and re-places the lost partitions.

#![forbid(unsafe_code)]

pub mod domain;
pub mod partition;
pub mod placement;

pub use domain::{
    DeployHints, Domain, DomainConfig, DomainError, DomainIo, DomainReport, NodeHealth,
    RepairOutcome, RepairPolicy, ReplacementReport,
};
pub use partition::{partition, reassemble, OverlayLink, Partition, PartitionError};
pub use placement::{assign, assign_endpoints, NodeView, PlaceError, PlacementStrategy};
