//! # un-domain — the domain orchestrator above the Universal Nodes
//!
//! The paper's Universal Node is one CPE; its Figure 1 architecture
//! explicitly sits *under* an overarching orchestrator that dispatches
//! NF-FGs to many nodes. This crate is that layer:
//!
//! ```text
//!                       Domain Orchestrator  ←  NF-FG (cluster REST)
//!        ┌──────────────────┬──────────────────┬────────────────┐
//!   Fleet registry     Global placement    Graph partitioner   Overlay mgr
//!   (views, health)    (bin-pack + NNF     (per-node parts +   (VLAN wires,
//!                       preference)         cut-edge synth)     opt. ESP)
//!        └──────────────────┴────────┬─────────┴────────────────┘
//!              UniversalNode #1 │ UniversalNode #2 │ … │ #N
//! ```
//!
//! * [`placement`] — the fleet-level scheduler: assign every NF of a
//!   graph to a node, respecting per-node NNF catalogs, memory
//!   admission estimates, and sharable-NNF reuse; bin-packing (`Pack`)
//!   or load-spreading (`Spread`).
//! * [`partition`] — pure graph surgery: split one NF-FG into per-node
//!   sub-graphs and synthesize endpoint pairs for every cut edge.
//!   Reassembly ([`partition::reassemble`]) is the exact inverse,
//!   which the property tests exploit.
//! * [`sharing`] — the domain-wide sharable-NNF registry: one native
//!   instance serving tenant graphs across the whole fleet, with
//!   explicit per-graph leases, host election (first-demand /
//!   topology-centroid / pinned), and host re-election on failure.
//! * [`topology`] — the fabric: an explicit node-adjacency graph
//!   ([`topology::Topology`], per-edge latency/capacity, full mesh by
//!   default) with a deterministic Dijkstra path engine. Overlay links
//!   between non-adjacent nodes ride pinned multi-hop paths with
//!   transit rules on the intermediate nodes.
//! * [`domain`] — [`domain::Domain`]: owns the fleet, deploys /
//!   updates / undeploys partitioned graphs, shuttles frames across
//!   **inter-node overlay links** (VLAN-tagged virtual wires on a
//!   dedicated fabric port, optionally ESP-protected via `un-ipsec`,
//!   routed hop-by-hop over the fabric topology), detects node
//!   failures and re-places the lost partitions — rerouting overlay
//!   paths that traversed the casualty.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod domain;
pub mod partition;
pub mod placement;
mod runtime;
pub mod sharing;
pub mod standby;
pub mod topology;

pub use domain::{
    ConservationReport, DeployHints, Domain, DomainConfig, DomainError, DomainIo, DomainReport,
    NodeHealth, ProbeSpec, RepairOutcome, RepairPolicy, ReplacementReport,
};
pub use partition::{
    install_transit, partition, reassemble, OverlayLink, Partition, PartitionError,
};
pub use placement::{assign, assign_endpoints, NodeView, PlaceError, PlacementStrategy};
pub use sharing::{
    ElectionPolicy, ShareKey, SharedClaim, SharedInstance, SharingConfig, SharingError,
};
pub use standby::{
    AvailabilityReport, GraphAvailability, GraphPrediction, RepairCalibration, RepairKind,
    DEFAULT_REPAIR_NS,
};
pub use topology::{EdgeAttrs, Topology};
