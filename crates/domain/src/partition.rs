//! NF-FG partitioning: split one graph into per-node sub-graphs.
//!
//! Every flow rule lives on the node of its `port-in`. When a rule's
//! output refers to an NF or endpoint placed on *another* node, the
//! edge is **cut** and an endpoint pair is synthesized:
//!
//! * both parts gain a VLAN endpoint `ovl-<vid>` on the fabric port
//!   (the per-link VLAN id is the wire identity of the overlay link);
//! * the source rule keeps its match and action list, with the remote
//!   `Output` retargeted at the synthesized endpoint;
//! * the destination part gains one forwarding rule
//!   `ovl-<vid> → <original target>`.
//!
//! When the fabric topology is not a full mesh, a cut edge between
//! non-adjacent nodes rides a pinned multi-hop path: [`install_transit`]
//! augments the parts with **transit flow rules** on every intermediate
//! node (`ovl-<vid>` in → `ovl-<vid>` out on the fabric port), creating
//! NF-less transit parts where the node hosts nothing else.
//!
//! [`reassemble`] is the exact inverse (drop synthesized endpoints and
//! rules — including transit state — and retarget outputs back); the
//! property tests check that `reassemble(partition(g)) == g`
//! rule-for-rule and that every NF lands on exactly one node.

use std::collections::BTreeMap;
use std::fmt;

use un_nffg::{Endpoint, EndpointKind, FlowRule, NfFg, PortRef, RuleAction, TrafficMatch};

/// Priority of synthesized delivery rules. The match is a dedicated
/// overlay endpoint, so the value never competes with tenant rules.
const OVERLAY_RULE_PRIORITY: u16 = 100;

/// One cut edge realized as a VLAN-tagged virtual wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayLink {
    /// Fleet-unique VLAN id carrying this link on the fabric.
    pub vid: u16,
    /// Node hosting the rule that sends into the link.
    pub from_node: String,
    /// Node hosting the target.
    pub to_node: String,
    /// Synthesized endpoint id (same in both parts): `ovl-<vid>`.
    pub endpoint_id: String,
    /// The original target the link delivers to on `to_node`.
    pub dst_target: PortRef,
    /// Id of the synthesized delivery rule in the `to_node` part.
    pub in_rule_id: String,
}

/// The outcome of partitioning one graph.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per-node sub-graphs (node name → part). Part ids equal the
    /// original graph id; names carry a `@node` suffix.
    pub parts: BTreeMap<String, NfFg>,
    /// Synthesized inter-node links.
    pub links: Vec<OverlayLink>,
}

impl Partition {
    /// Nodes that host a part.
    pub fn node_names(&self) -> Vec<String> {
        self.parts.keys().cloned().collect()
    }

    /// Number of cut edges.
    pub fn cut_edges(&self) -> usize {
        self.links.len()
    }
}

/// Why partitioning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// An NF has no node assignment.
    UnassignedNf(String),
    /// An endpoint has no node assignment.
    UnassignedEndpoint(String),
    /// A rule references an unknown NF or endpoint.
    DanglingRef { rule: String, port: String },
    /// The VLAN id pool for overlay links is exhausted.
    VidExhausted,
    /// The graph uses an id in the reserved `ovl-` namespace.
    ReservedId(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::UnassignedNf(nf) => write!(f, "NF '{nf}' has no node assignment"),
            PartitionError::UnassignedEndpoint(ep) => {
                write!(f, "endpoint '{ep}' has no node assignment")
            }
            PartitionError::DanglingRef { rule, port } => {
                write!(f, "rule '{rule}' references unknown port '{port}'")
            }
            PartitionError::VidExhausted => write!(f, "overlay VLAN id pool exhausted"),
            PartitionError::ReservedId(id) => {
                write!(f, "id '{id}' uses the reserved 'ovl-' namespace")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Split `graph` into per-node parts given NF and endpoint assignments.
///
/// `fabric_port` is the physical interface carrying overlay traffic on
/// every node. `alloc_vid` hands out fleet-unique VLAN ids and receives
/// the cut-edge identity `(from node, to node, target)` so a caller
/// re-partitioning a live graph can return the *same* vid for an
/// unchanged cut — keeping synthesized endpoint ids stable, which is
/// what lets rule-only updates apply in place on the nodes.
///
/// Ids starting with `ovl-` are reserved for synthesized cut-edge
/// endpoints and rules; graphs using the prefix are rejected.
pub fn partition(
    graph: &NfFg,
    nf_node: &BTreeMap<String, String>,
    endpoint_node: &BTreeMap<String, String>,
    fabric_port: &str,
    alloc_vid: &mut dyn FnMut(&str, &str, &PortRef) -> Option<u16>,
) -> Result<Partition, PartitionError> {
    // The ovl- namespace belongs to the partitioner: a tenant id shaped
    // like a synthesized one would collide with cut-edge endpoints (or
    // be silently dropped by `reassemble`).
    for id in graph
        .endpoints
        .iter()
        .map(|e| &e.id)
        .chain(graph.flow_rules.iter().map(|r| &r.id))
    {
        if id.starts_with("ovl-") {
            return Err(PartitionError::ReservedId(id.clone()));
        }
    }

    // Node of a port reference.
    let node_of = |p: &PortRef| -> Result<&str, PartitionError> {
        match p {
            PortRef::Endpoint(id) => endpoint_node
                .get(id)
                .map(String::as_str)
                .ok_or_else(|| PartitionError::UnassignedEndpoint(id.clone())),
            PortRef::Nf(nf, _) => nf_node
                .get(nf)
                .map(String::as_str)
                .ok_or_else(|| PartitionError::UnassignedNf(nf.clone())),
        }
    };

    let mut parts: BTreeMap<String, NfFg> = BTreeMap::new();
    let part_of = |parts: &mut BTreeMap<String, NfFg>, node: &str| {
        if !parts.contains_key(node) {
            parts.insert(node.to_string(), empty_part(graph, node));
        }
    };

    // NFs and endpoints go to their assigned node's part.
    for nf in &graph.nfs {
        let node = nf_node
            .get(&nf.id)
            .ok_or_else(|| PartitionError::UnassignedNf(nf.id.clone()))?
            .clone();
        part_of(&mut parts, &node);
        parts.get_mut(&node).expect("created").nfs.push(nf.clone());
    }
    for ep in &graph.endpoints {
        let node = endpoint_node
            .get(&ep.id)
            .ok_or_else(|| PartitionError::UnassignedEndpoint(ep.id.clone()))?
            .clone();
        part_of(&mut parts, &node);
        parts
            .get_mut(&node)
            .expect("created")
            .endpoints
            .push(ep.clone());
    }

    // Rules: keep on the port-in node; cut remote outputs.
    let mut links: Vec<OverlayLink> = Vec::new();
    // (src node, dst node, dst target) → index into `links`.
    let mut link_index: BTreeMap<(String, String, PortRef), usize> = BTreeMap::new();

    for rule in &graph.flow_rules {
        let port_in = rule
            .matches
            .port_in
            .as_ref()
            .ok_or_else(|| PartitionError::DanglingRef {
                rule: rule.id.clone(),
                port: "<missing port-in>".into(),
            })?;
        let src_node = node_of(port_in)?.to_string();
        part_of(&mut parts, &src_node);

        let mut placed = rule.clone();
        for action in &mut placed.actions {
            let RuleAction::Output(target) = action else {
                continue;
            };
            let dst_node = node_of(target)?.to_string();
            if dst_node == src_node {
                continue;
            }
            // Cut edge: reuse or create the overlay link.
            let key = (src_node.clone(), dst_node.clone(), target.clone());
            let idx = match link_index.get(&key) {
                Some(idx) => *idx,
                None => {
                    let vid = alloc_vid(&src_node, &dst_node, target)
                        .ok_or(PartitionError::VidExhausted)?;
                    let endpoint_id = format!("ovl-{vid}");
                    let in_rule_id = format!("ovl-{vid}-in");
                    // Endpoint pair on both parts.
                    for node in [&src_node, &dst_node] {
                        part_of(&mut parts, node);
                        parts
                            .get_mut(node.as_str())
                            .expect("created")
                            .endpoints
                            .push(Endpoint {
                                id: endpoint_id.clone(),
                                kind: EndpointKind::Vlan {
                                    if_name: fabric_port.to_string(),
                                    vlan_id: vid,
                                },
                            });
                    }
                    // Delivery rule on the destination part.
                    parts
                        .get_mut(dst_node.as_str())
                        .expect("created")
                        .flow_rules
                        .push(FlowRule {
                            id: in_rule_id.clone(),
                            priority: OVERLAY_RULE_PRIORITY,
                            matches: TrafficMatch::from_port(PortRef::Endpoint(
                                endpoint_id.clone(),
                            )),
                            actions: vec![RuleAction::Output(target.clone())],
                        });
                    links.push(OverlayLink {
                        vid,
                        from_node: src_node.clone(),
                        to_node: dst_node.clone(),
                        endpoint_id,
                        dst_target: target.clone(),
                        in_rule_id,
                    });
                    let idx = links.len() - 1;
                    link_index.insert(key, idx);
                    idx
                }
            };
            *target = PortRef::Endpoint(links[idx].endpoint_id.clone());
        }
        parts
            .get_mut(&src_node)
            .expect("created")
            .flow_rules
            .push(placed);
    }

    Ok(Partition { parts, links })
}

/// A fresh NF-less part for `node`. The id/name convention (graph id,
/// `name@node`) is what update/repair reconciliation keys on, so every
/// part — NF-bearing or transit-only — must be minted here.
fn empty_part(graph: &NfFg, node: &str) -> NfFg {
    NfFg {
        id: graph.id.clone(),
        name: format!("{}@{node}", graph.name),
        nfs: Vec::new(),
        endpoints: Vec::new(),
        flow_rules: Vec::new(),
    }
}

/// Install transit flow rules for every multi-hop overlay link.
///
/// `paths` maps each link's vid to its pinned node path (`[from, …,
/// to]`, as produced by the topology's path engine). Every intermediate
/// node gains the link's `ovl-<vid>` VLAN endpoint on the fabric port
/// plus one forwarding rule `ovl-<vid>-transit: ovl-<vid> → ovl-<vid>`
/// — the frame re-enters the fabric with its tag intact and the domain
/// shuttle advances it to the next hop of the pinned path. Nodes that
/// host nothing else get a fresh NF-less **transit part** (id/name
/// follow the part convention), so the transit state participates in
/// deploy/update/repair reconciliation like any other part.
///
/// Two-node paths (adjacent nodes, and every full-mesh path) are
/// untouched.
pub fn install_transit(
    graph: &NfFg,
    parts: &mut BTreeMap<String, NfFg>,
    links: &[OverlayLink],
    paths: &BTreeMap<u16, Vec<String>>,
    fabric_port: &str,
) {
    for link in links {
        let Some(path) = paths.get(&link.vid) else {
            continue;
        };
        for node in path.iter().take(path.len().saturating_sub(1)).skip(1) {
            let part = parts
                .entry(node.clone())
                .or_insert_with(|| empty_part(graph, node));
            part.endpoints.push(Endpoint {
                id: link.endpoint_id.clone(),
                kind: EndpointKind::Vlan {
                    if_name: fabric_port.to_string(),
                    vlan_id: link.vid,
                },
            });
            part.flow_rules.push(FlowRule {
                id: format!("ovl-{}-transit", link.vid),
                priority: OVERLAY_RULE_PRIORITY,
                matches: TrafficMatch::from_port(PortRef::Endpoint(link.endpoint_id.clone())),
                actions: vec![RuleAction::Output(PortRef::Endpoint(
                    link.endpoint_id.clone(),
                ))],
            });
        }
    }
}

/// Reconstruct the original graph from its parts — the inverse of
/// [`partition`]. `id`/`name` restore the original identity (part names
/// carry a node suffix).
pub fn reassemble(
    parts: &BTreeMap<String, NfFg>,
    links: &[OverlayLink],
    id: &str,
    name: &str,
) -> NfFg {
    let by_endpoint: BTreeMap<&str, &OverlayLink> =
        links.iter().map(|l| (l.endpoint_id.as_str(), l)).collect();

    let mut out = NfFg {
        id: id.to_string(),
        name: name.to_string(),
        nfs: Vec::new(),
        endpoints: Vec::new(),
        flow_rules: Vec::new(),
    };
    for part in parts.values() {
        out.nfs.extend(part.nfs.iter().cloned());
        for ep in &part.endpoints {
            if !ep.id.starts_with("ovl-") {
                out.endpoints.push(ep.clone());
            }
        }
        for rule in &part.flow_rules {
            // The whole `ovl-` namespace is synthesized (delivery and
            // transit rules alike) and `partition` rejects tenant ids
            // in it, so a prefix check drops exactly the cut-edge
            // machinery.
            if rule.id.starts_with("ovl-") {
                continue;
            }
            let mut rule = rule.clone();
            for action in &mut rule.actions {
                if let RuleAction::Output(PortRef::Endpoint(ep)) = action {
                    if let Some(link) = by_endpoint.get(ep.as_str()) {
                        *action = RuleAction::Output(link.dst_target.clone());
                    }
                }
            }
            out.flow_rules.push(rule);
        }
    }
    // Canonical order so reassembly is deterministic regardless of how
    // parts iterate.
    out.nfs.sort_by(|a, b| a.id.cmp(&b.id));
    out.endpoints.sort_by(|a, b| a.id.cmp(&b.id));
    out.flow_rules.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_nffg::NfFgBuilder;

    fn chain() -> NfFg {
        NfFgBuilder::new("g1", "chain")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("fw", "firewall", 2)
            .nf("gw", "ipsec", 2)
            .chain("lan", &["fw", "gw"], "wan")
            .build()
    }

    fn assignments(
        nfs: &[(&str, &str)],
        eps: &[(&str, &str)],
    ) -> (BTreeMap<String, String>, BTreeMap<String, String>) {
        (
            nfs.iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
            eps.iter()
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .collect(),
        )
    }

    fn vid_pool() -> impl FnMut(&str, &str, &PortRef) -> Option<u16> {
        let mut next = 3000u16;
        move |_, _, _| {
            let v = next;
            next += 1;
            Some(v)
        }
    }

    #[test]
    fn single_node_partition_is_identity_modulo_name() {
        let g = chain();
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n1")],
            &[("lan", "n1"), ("wan", "n1")],
        );
        let p = partition(&g, &nfs, &eps, "fab0", &mut vid_pool()).unwrap();
        assert_eq!(p.parts.len(), 1);
        assert!(p.links.is_empty());
        let part = &p.parts["n1"];
        assert_eq!(part.nfs.len(), 2);
        assert_eq!(part.flow_rules.len(), g.flow_rules.len());
    }

    #[test]
    fn split_chain_synthesizes_endpoint_pairs() {
        let g = chain();
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n2")],
            &[("lan", "n1"), ("wan", "n2")],
        );
        let p = partition(&g, &nfs, &eps, "fab0", &mut vid_pool()).unwrap();
        assert_eq!(p.parts.len(), 2);
        // The chain is bidirectional: fw:1→gw:0 is cut forward and
        // gw:0→fw:1 backward. (lan→fw and gw:1→wan stay local.)
        assert_eq!(p.links.len(), 2);
        let link = p.links.iter().find(|l| l.from_node == "n1").unwrap();
        assert_eq!(link.to_node, "n2");
        assert_eq!(link.dst_target, PortRef::Nf("gw".into(), 0));
        // Both parts carry the synthesized endpoint.
        for node in ["n1", "n2"] {
            assert!(p.parts[node]
                .endpoints
                .iter()
                .any(|e| e.id == link.endpoint_id));
        }
        // Parts validate (deployable as-is).
        for part in p.parts.values() {
            assert!(un_nffg::validate(part).is_empty(), "{part:?}");
        }
    }

    #[test]
    fn shared_links_are_reused_per_target() {
        let mut g = chain();
        // A second rule from lan straight to the remote gw:0.
        g.flow_rules.push(FlowRule {
            id: "extra".into(),
            priority: 7,
            matches: TrafficMatch::from_port(PortRef::Endpoint("lan".into())),
            actions: vec![RuleAction::Output(PortRef::Nf("gw".into(), 0))],
        });
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n2")],
            &[("lan", "n1"), ("wan", "n2")],
        );
        let p = partition(&g, &nfs, &eps, "fab0", &mut vid_pool()).unwrap();
        // fw:1→gw:0 and the extra lan→gw:0 share one n1→n2 link; the
        // reverse chain direction keeps its own. Two links total.
        assert_eq!(p.links.len(), 2);
        assert_eq!(p.links.iter().filter(|l| l.from_node == "n1").count(), 1);
    }

    #[test]
    fn reassembly_round_trips() {
        let g = chain();
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n2")],
            &[("lan", "n1"), ("wan", "n2")],
        );
        let p = partition(&g, &nfs, &eps, "fab0", &mut vid_pool()).unwrap();
        let back = reassemble(&p.parts, &p.links, &g.id, &g.name);
        let mut want = g.clone();
        want.nfs.sort_by(|a, b| a.id.cmp(&b.id));
        want.endpoints.sort_by(|a, b| a.id.cmp(&b.id));
        want.flow_rules.sort_by(|a, b| a.id.cmp(&b.id));
        assert_eq!(back, want);
    }

    #[test]
    fn transit_rules_install_and_reassembly_ignores_them() {
        let g = chain();
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n3")],
            &[("lan", "n1"), ("wan", "n3")],
        );
        let mut p = partition(&g, &nfs, &eps, "fab0", &mut vid_pool()).unwrap();
        // Both links ride n1–n2–n3 (resp. reversed).
        let paths: BTreeMap<u16, Vec<String>> = p
            .links
            .iter()
            .map(|l| {
                (
                    l.vid,
                    vec![l.from_node.clone(), "n2".to_string(), l.to_node.clone()],
                )
            })
            .collect();
        install_transit(&g, &mut p.parts, &p.links, &paths, "fab0");
        let transit = &p.parts["n2"];
        assert!(transit.nfs.is_empty());
        assert_eq!(transit.endpoints.len(), 2);
        assert_eq!(transit.flow_rules.len(), 2);
        for rule in &transit.flow_rules {
            assert!(rule.id.starts_with("ovl-") && rule.id.ends_with("-transit"));
            // In and out on the same synthesized endpoint.
            assert_eq!(
                rule.matches.port_in.as_ref().unwrap(),
                match &rule.actions[0] {
                    RuleAction::Output(p) => p,
                    other => panic!("{other:?}"),
                }
            );
        }
        // The transit part deploys as-is (it must validate).
        assert!(un_nffg::validate(transit).is_empty(), "{transit:?}");
        // Reassembly drops all transit machinery: exact round trip.
        let back = reassemble(&p.parts, &p.links, &g.id, &g.name);
        let mut want = g.clone();
        want.nfs.sort_by(|a, b| a.id.cmp(&b.id));
        want.endpoints.sort_by(|a, b| a.id.cmp(&b.id));
        want.flow_rules.sort_by(|a, b| a.id.cmp(&b.id));
        assert_eq!(back, want);
    }

    #[test]
    fn vid_exhaustion_is_reported() {
        let g = chain();
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n2")],
            &[("lan", "n1"), ("wan", "n2")],
        );
        let mut empty = |_: &str, _: &str, _: &PortRef| None;
        let err = partition(&g, &nfs, &eps, "fab0", &mut empty).unwrap_err();
        assert_eq!(err, PartitionError::VidExhausted);
    }

    #[test]
    fn reserved_ovl_namespace_is_rejected() {
        let mut g = chain();
        g.endpoints.push(un_nffg::Endpoint {
            id: "ovl-3000".into(),
            kind: un_nffg::EndpointKind::Interface {
                if_name: "eth9".into(),
            },
        });
        let (nfs, eps) = assignments(
            &[("fw", "n1"), ("gw", "n2")],
            &[("lan", "n1"), ("wan", "n2"), ("ovl-3000", "n1")],
        );
        let err = partition(&g, &nfs, &eps, "fab0", &mut vid_pool()).unwrap_err();
        assert_eq!(err, PartitionError::ReservedId("ovl-3000".into()));
    }
}
