//! Fleet-level placement: which node runs each NF of a graph.
//!
//! Layered on `un_core::placement` conceptually: that module answers
//! *how* an NF runs on a node (NNF vs VNF flavor); this one answers
//! *where*. The policy mirrors the paper's preferences at domain scale:
//!
//! 1. a node already running a joinable **shared NNF** of the type is
//!    free capacity — reuse it;
//! 2. a node whose NNF catalog offers the type natively beats one that
//!    would have to fall back to Docker/VM;
//! 3. co-locating rule-adjacent NFs avoids overlay hops; when the
//!    fabric is an explicit topology, a **path-length term** extends
//!    this: placing an NF topologically far from an already-placed
//!    neighbor is penalized per extra hop, so chained NFs drift toward
//!    close racks even when they cannot share one node;
//! 4. ties break by memory: [`PlacementStrategy::Pack`] fills the
//!    fullest feasible node (classic bin-packing, frees whole nodes),
//!    [`PlacementStrategy::Spread`] picks the emptiest (load balance).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use un_nffg::{NfFg, PortRef};

use crate::topology::Topology;

/// What the domain scheduler knows about one node.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Node name (fleet-unique).
    pub name: String,
    /// Memory not yet committed.
    pub free_memory: u64,
    /// Total memory capacity.
    pub capacity: u64,
    /// Functional types offered as native NFs.
    pub native_types: BTreeSet<String>,
    /// Functional types with a running, joinable shared NNF.
    pub shared_running: BTreeSet<String>,
    /// Functional types whose catalog descriptor marks a single
    /// instance *sharable* across graphs (the nodes eligible to host a
    /// domain-shared instance).
    pub sharable_types: BTreeSet<String>,
    /// Physical interface names (for endpoint placement).
    pub ports: BTreeSet<String>,
    /// False once the node is considered failed.
    pub alive: bool,
}

/// Tie-breaking goal of the assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Bin-pack: fill the fullest feasible node first.
    #[default]
    Pack,
    /// Spread: place on the emptiest feasible node.
    Spread,
}

/// Why an assignment could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No node is alive.
    NoNodes,
    /// No alive node can fit this NF (estimated bytes needed).
    NoCapacity { nf: String, needed: u64 },
    /// A pinned node is unknown or dead.
    BadPin { nf: String, node: String },
    /// An interface endpoint names an interface no alive node has.
    NoSuchInterface { endpoint: String, if_name: String },
    /// A pinned endpoint node is unknown, dead, or lacks the interface.
    BadEndpointPin { endpoint: String, node: String },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NoNodes => write!(f, "no alive nodes in the domain"),
            PlaceError::NoCapacity { nf, needed } => {
                write!(f, "no node can fit NF '{nf}' ({needed} bytes)")
            }
            PlaceError::BadPin { nf, node } => {
                write!(f, "NF '{nf}' pinned to unusable node '{node}'")
            }
            PlaceError::NoSuchInterface { endpoint, if_name } => {
                write!(
                    f,
                    "endpoint '{endpoint}': no alive node has interface '{if_name}'"
                )
            }
            PlaceError::BadEndpointPin { endpoint, node } => {
                write!(f, "endpoint '{endpoint}' pinned to unusable node '{node}'")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Interface name an endpoint needs, if any.
fn endpoint_iface(ep: &un_nffg::Endpoint) -> Option<&str> {
    match &ep.kind {
        un_nffg::EndpointKind::Interface { if_name }
        | un_nffg::EndpointKind::Vlan { if_name, .. } => Some(if_name.as_str()),
        un_nffg::EndpointKind::Internal { .. } => None,
    }
}

/// Assign every endpoint of `graph` to a node.
///
/// Pinned endpoints are honored (and verified). With an explicit
/// fabric topology (`fabric_hops` is the hop matrix), an unpinned
/// interface/VLAN endpoint goes to the **topologically closest** alive
/// owner of the interface — closest meaning minimum total hop distance
/// to the endpoints already assigned (pins first, then declaration
/// order), so a graph's endpoints cluster and the overlay paths
/// between them stay short. Ties, the very first endpoint, and
/// full-mesh mode (`None`) keep the old first-alive-owner choice;
/// internal endpoints go to the anchor (first alive) node.
pub fn assign_endpoints(
    graph: &NfFg,
    views: &[NodeView],
    pins: &BTreeMap<String, String>,
    fabric_hops: Option<&BTreeMap<String, BTreeMap<String, u32>>>,
) -> Result<BTreeMap<String, String>, PlaceError> {
    let anchor = views
        .iter()
        .find(|v| v.alive)
        .map(|v| v.name.clone())
        .ok_or(PlaceError::NoNodes)?;
    let mut out = BTreeMap::new();
    // Pinned endpoints first: they anchor the distance scoring below.
    for ep in &graph.endpoints {
        let Some(pin) = pins.get(&ep.id) else {
            continue;
        };
        let if_name = endpoint_iface(ep);
        let ok = views
            .iter()
            .any(|v| v.alive && v.name == *pin && if_name.is_none_or(|i| v.ports.contains(i)));
        if !ok {
            return Err(PlaceError::BadEndpointPin {
                endpoint: ep.id.clone(),
                node: pin.clone(),
            });
        }
        out.insert(ep.id.clone(), pin.clone());
    }
    for ep in &graph.endpoints {
        if out.contains_key(&ep.id) {
            continue;
        }
        let node = if let Some(if_name) = endpoint_iface(ep) {
            let owners: Vec<&NodeView> = views
                .iter()
                .filter(|v| v.alive && v.ports.contains(if_name))
                .collect();
            if owners.is_empty() {
                return Err(PlaceError::NoSuchInterface {
                    endpoint: ep.id.clone(),
                    if_name: if_name.to_string(),
                });
            }
            match fabric_hops {
                // Full mesh: every owner is one hop from everything.
                None => owners[0].name.clone(),
                Some(_) => {
                    // Closest owner to the endpoints placed so far;
                    // stable (first-owner) on ties and when nothing is
                    // placed yet.
                    let mut best: (&NodeView, u64) = (owners[0], u64::MAX);
                    for owner in &owners {
                        let score: u64 = out
                            .values()
                            .map(|n| u64::from(Topology::hop_distance(fabric_hops, &owner.name, n)))
                            .sum();
                        if score < best.1 {
                            best = (owner, score);
                        }
                    }
                    best.0.name.clone()
                }
            }
        } else {
            anchor.clone()
        };
        out.insert(ep.id.clone(), node);
    }
    Ok(out)
}

/// Per-peer score bonus for landing on the same node as an adjacent
/// NF/endpoint (below shared/native preference, above the memory
/// tie-break).
const COLOCATE_BONUS: i64 = 10_000;
/// Per-peer, per-extra-hop penalty when the candidate node is more
/// than one fabric hop from an already-placed neighbor. Strong enough
/// to beat the memory tie-break (max 9_999) from two extra hops on,
/// and to dominate it even at one extra hop unless memory differs by
/// gigabytes.
const PATH_PENALTY_PER_HOP: i64 = 4_000;
/// Assign every NF of `graph` to a node.
///
/// `estimates` maps NF id → estimated RAM; `endpoint_node` is the
/// (already computed) endpoint assignment, used for adjacency scoring;
/// `pins` forces specific NFs onto specific nodes (used to keep
/// surviving NFs in place across updates and re-placements).
///
/// `held_leases` maps each functional type to the hosts whose
/// domain-shared instances this graph **already holds a lease on**
/// (one per capability pool). The per-node shared-reuse bonus (and
/// its free-capacity treatment) then applies only on those hosts:
/// without the restriction, two NFs of one sharable type could be
/// scattered across *different* nodes' shared instances — the graph
/// would hold one lease but consume two instances, double-counting
/// the reuse the lease accounts for.
///
/// `fabric_hops` is the hop-distance matrix of the fabric topology
/// (`Topology::hop_matrix`): `None` means full mesh — every pair one
/// hop apart, no path-length term. With an explicit topology, each
/// already-placed neighbor at distance `d > 1` costs the candidate
/// `PATH_PENALTY_PER_HOP × (d − 1)`, biasing chained NFs toward
/// topologically close nodes. Reachability is a hard preference, not
/// just a penalty: a candidate that can route to every node the graph
/// already occupies (endpoint nodes and previously placed NFs — not
/// just this NF's direct neighbors, which may all be unplaced when it
/// is scored) beats any candidate that cannot, regardless of shared/
/// native bonuses — otherwise the scorer could pick a fabric-isolated
/// node and turn a feasible deploy into a `NoRoute` failure. Fully
/// disconnected candidates stay eligible as a last resort (scored with
/// `UNREACHABLE_HOPS` per unreachable peer) so an impossible placement
/// still surfaces as the more descriptive routing error downstream.
#[allow(clippy::too_many_arguments)] // a scheduler input per concern, all orthogonal
pub fn assign(
    graph: &NfFg,
    views: &[NodeView],
    estimates: &BTreeMap<String, u64>,
    endpoint_node: &BTreeMap<String, String>,
    pins: &BTreeMap<String, String>,
    held_leases: &BTreeMap<String, BTreeSet<String>>,
    strategy: PlacementStrategy,
    fabric_hops: Option<&BTreeMap<String, BTreeMap<String, u32>>>,
) -> Result<BTreeMap<String, String>, PlaceError> {
    if !views.iter().any(|v| v.alive) {
        return Err(PlaceError::NoNodes);
    }
    // A node's shared instance is only "free reuse" for this graph if
    // the graph does not already hold a lease on the same type
    // elsewhere (see `held_leases` above).
    let joinable = |view: &NodeView, functional_type: &String| {
        view.shared_running.contains(functional_type)
            && held_leases
                .get(functional_type)
                .is_none_or(|hosts| hosts.contains(&view.name))
    };
    // Running free-memory picture as NFs are placed.
    let mut free: BTreeMap<&str, u64> = views
        .iter()
        .filter(|v| v.alive)
        .map(|v| (v.name.as_str(), v.free_memory))
        .collect();

    // Rule adjacency: NF ↔ NF and NF ↔ endpoint, for co-location.
    let mut adjacent: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in &graph.flow_rules {
        let ends: Vec<&PortRef> = rule
            .matches
            .port_in
            .iter()
            .chain(rule.actions.iter().filter_map(|a| match a {
                un_nffg::RuleAction::Output(p) => Some(p),
                _ => None,
            }))
            .collect();
        for a in &ends {
            for b in &ends {
                if let (PortRef::Nf(na, _), other) = (a, b) {
                    let peer = match other {
                        PortRef::Nf(nb, _) if nb != na => nb.as_str(),
                        PortRef::Endpoint(e) => e.as_str(),
                        _ => continue,
                    };
                    adjacent.entry(na.as_str()).or_default().insert(peer);
                }
            }
        }
    }

    let mut out: BTreeMap<String, String> = BTreeMap::new();
    for nf in &graph.nfs {
        let needed = estimates.get(&nf.id).copied().unwrap_or(0);
        if let Some(pin) = pins.get(&nf.id) {
            let alive = views.iter().any(|v| v.alive && v.name == *pin);
            if !alive {
                return Err(PlaceError::BadPin {
                    nf: nf.id.clone(),
                    node: pin.clone(),
                });
            }
            *free.entry(pin.as_str()).or_default() = free
                .get(pin.as_str())
                .copied()
                .unwrap_or(0)
                .saturating_sub(needed);
            out.insert(nf.id.clone(), pin.clone());
            continue;
        }

        // Nodes the graph already occupies: this NF (or one placed
        // after it) will eventually need overlay routes toward them,
        // so reachability to all of them is the hard preference even
        // when this NF's own neighbors are still unplaced.
        let used: BTreeSet<&str> = endpoint_node
            .values()
            .chain(out.values())
            .map(String::as_str)
            .collect();
        // (reaches every used node, score): reachability dominates, so
        // no bonus stack can elect a fabric-isolated node while a
        // routable one exists.
        let mut best: Option<(bool, i64, &NodeView)> = None;
        for view in views.iter().filter(|v| v.alive) {
            let avail = free.get(view.name.as_str()).copied().unwrap_or(0);
            // A shared joinable instance costs nothing extra; otherwise
            // the estimate must fit.
            let reusable = joinable(view, &nf.functional_type);
            if !reusable && avail < needed {
                continue;
            }
            let routable = match fabric_hops {
                None => true,
                Some(hops) => {
                    let row = hops.get(view.name.as_str());
                    used.iter()
                        .all(|u| *u == view.name || row.is_some_and(|r| r.contains_key(*u)))
                }
            };
            let mut score: i64 = 0;
            if reusable {
                score += 1_000_000;
            }
            if view.native_types.contains(&nf.functional_type) {
                score += 100_000;
            }
            // Co-location: neighbors already resolved to this node
            // score a bonus; with an explicit fabric topology, distant
            // neighbors charge a per-extra-hop path penalty.
            if let Some(peers) = adjacent.get(nf.id.as_str()) {
                for peer in peers {
                    let peer_node = out
                        .get(*peer)
                        .or_else(|| endpoint_node.get(*peer))
                        .map(String::as_str);
                    let Some(peer_node) = peer_node else {
                        continue; // peer not placed yet
                    };
                    if peer_node == view.name.as_str() {
                        score += COLOCATE_BONUS;
                    } else if fabric_hops.is_some() {
                        let d = Topology::hop_distance(fabric_hops, peer_node, view.name.as_str());
                        score -= PATH_PENALTY_PER_HOP * i64::from(d.saturating_sub(1));
                    }
                }
            }
            // Memory tie-break, bounded to keep it below the other terms.
            let mem_term = (avail / (1 << 20)).min(9_999) as i64;
            score += match strategy {
                PlacementStrategy::Pack => -mem_term,
                PlacementStrategy::Spread => mem_term,
            };
            if best.as_ref().is_none_or(|(r, s, b)| {
                (routable, score) > (*r, *s) || (routable, score) == (*r, *s) && view.name < b.name
            }) {
                best = Some((routable, score, view));
            }
        }
        let Some((_, _, view)) = best else {
            return Err(PlaceError::NoCapacity {
                nf: nf.id.clone(),
                needed,
            });
        };
        let reusable = joinable(view, &nf.functional_type);
        if !reusable {
            let slot = free.get_mut(view.name.as_str()).expect("alive node");
            *slot = slot.saturating_sub(needed);
        }
        out.insert(nf.id.clone(), view.name.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_nffg::NfFgBuilder;

    fn view(
        name: &str,
        free_mb: u64,
        native: &[&str],
        shared: &[&str],
        ports: &[&str],
    ) -> NodeView {
        NodeView {
            name: name.into(),
            free_memory: free_mb << 20,
            capacity: free_mb << 20,
            native_types: native.iter().map(|s| s.to_string()).collect(),
            shared_running: shared.iter().map(|s| s.to_string()).collect(),
            sharable_types: shared.iter().map(|s| s.to_string()).collect(),
            ports: ports.iter().map(|s| s.to_string()).collect(),
            alive: true,
        }
    }

    fn chain() -> NfFg {
        NfFgBuilder::new("g1", "chain")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("fw", "firewall", 2)
            .nf("gw", "ipsec", 2)
            .chain("lan", &["fw", "gw"], "wan")
            .build()
    }

    fn est(graph: &NfFg, mb: u64) -> BTreeMap<String, u64> {
        graph.nfs.iter().map(|n| (n.id.clone(), mb << 20)).collect()
    }

    /// Symmetric hop matrix from `(a, b, hops)` triples.
    fn matrix(pairs: &[(&str, &str, u32)]) -> BTreeMap<String, BTreeMap<String, u32>> {
        let mut m: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for (a, b, d) in pairs {
            m.entry(a.to_string())
                .or_default()
                .insert(b.to_string(), *d);
            m.entry(b.to_string())
                .or_default()
                .insert(a.to_string(), *d);
        }
        m
    }

    #[test]
    fn prefers_shared_then_native() {
        let g = chain();
        let views = vec![
            view("plain", 4096, &[], &[], &["eth0", "eth1"]),
            view("native", 4096, &["firewall", "ipsec"], &[], &[]),
            view("sharing", 64, &[], &["firewall", "ipsec"], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap();
        // Shared reuse wins even though the sharing node is almost full.
        assert_eq!(a["fw"], "sharing");
        assert_eq!(a["gw"], "sharing");
    }

    #[test]
    fn respects_capacity_and_reports_overflow() {
        let g = chain();
        let views = vec![view(
            "tiny",
            100,
            &["firewall", "ipsec"],
            &[],
            &["eth0", "eth1"],
        )];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        let err = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::NoCapacity { .. }));
    }

    #[test]
    fn pack_fills_one_node_spread_distributes() {
        let g = chain();
        let views = vec![
            view("n1", 4096, &["firewall", "ipsec"], &[], &["eth0", "eth1"]),
            view("n2", 8192, &["firewall", "ipsec"], &[], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        let pack = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap();
        // Pack: both NFs land together (adjacency + fullest node).
        assert_eq!(pack["fw"], pack["gw"]);

        // Spread with no adjacency pull: strip the rules so only the
        // memory term differs.
        let mut sparse = g.clone();
        sparse.flow_rules.clear();
        let spread = assign(
            &sparse,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            &BTreeMap::new(),
            PlacementStrategy::Spread,
            None,
        )
        .unwrap();
        assert_eq!(spread["fw"], "n2"); // emptiest first
    }

    #[test]
    fn pins_and_dead_nodes() {
        let g = chain();
        let mut views = vec![
            view("n1", 4096, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        let pins: BTreeMap<String, String> = [("fw".to_string(), "n2".to_string())].into();
        let a = assign(
            &g,
            &views,
            &est(&g, 64),
            &eps,
            &pins,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap();
        assert_eq!(a["fw"], "n2");

        views[1].alive = false;
        let err = assign(
            &g,
            &views,
            &est(&g, 64),
            &eps,
            &pins,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::BadPin { .. }));
    }

    #[test]
    fn path_length_term_pulls_chained_nfs_toward_close_nodes() {
        // fw must sit with the lan endpoint on n1 (interface); gw does
        // not fit on n1. Candidates n2 (1 hop from n1) and n3 (3 hops)
        // are otherwise identical — the path term must pick n2; without
        // a matrix (full mesh) the memory tie-break favors n3.
        let g = chain();
        let views = vec![
            view("n1", 600, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &["eth1"]),
            view("n3", 8192, &[], &[], &["eth1"]),
        ];
        let eps = assign_endpoints(
            &g,
            &views,
            &[("wan".to_string(), "n1".to_string())].into(),
            None,
        )
        .unwrap();
        let hops = matrix(&[("n1", "n2", 1), ("n1", "n3", 3), ("n2", "n3", 2)]);
        let place = |matrix: Option<&BTreeMap<String, BTreeMap<String, u32>>>| {
            assign(
                &g,
                &views,
                &est(&g, 512),
                &eps,
                &BTreeMap::new(),
                &BTreeMap::new(),
                PlacementStrategy::Spread,
                matrix,
            )
            .unwrap()
        };
        assert_eq!(place(Some(&hops))["gw"], "n2", "path term: close rack");
        assert_eq!(place(None)["gw"], "n3", "full mesh: memory tie-break");
    }

    #[test]
    fn reachability_beats_native_and_shared_bonuses() {
        // gw's neighbor fw is forced onto n1. Node "island" offers
        // ipsec natively *and* shares a running instance, but has no
        // fabric route to n1; plain node n2 does. The isolated node's
        // bonus stack must not win — that placement would fail at plan
        // time with NoRoute even though n2 works.
        let g = chain();
        let views = vec![
            view("n1", 600, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &["eth1"]),
            view("island", 4096, &["ipsec"], &["ipsec"], &["eth1"]),
        ];
        let eps = assign_endpoints(
            &g,
            &views,
            &[("wan".to_string(), "n1".to_string())].into(),
            None,
        )
        .unwrap();
        let pins: BTreeMap<String, String> = [("fw".to_string(), "n1".to_string())].into();
        // Matrix from a topology where island has no edges: pairs
        // involving it are simply absent.
        let hops = matrix(&[("n1", "n2", 1)]);
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &pins,
            &BTreeMap::new(),
            PlacementStrategy::Spread,
            Some(&hops),
        )
        .unwrap();
        assert_eq!(a["gw"], "n2", "routable node beats isolated bonuses");
    }

    #[test]
    fn reachability_guard_covers_unplaced_peer_ordering() {
        // b is declared (and scored) first, so both of its rule
        // neighbors are still-unplaced NFs at that point. The guard
        // must still keep b off the isolated island — the graph's
        // endpoints already occupy n1, which island cannot reach.
        let g = NfFgBuilder::new("g2", "chain3")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("b", "bridge", 2)
            .nf("a", "bridge", 2)
            .nf("c", "bridge", 2)
            .chain("lan", &["a", "b", "c"], "wan")
            .build();
        let views = vec![
            view("n1", 4096, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &[]),
            view("island", 4096, &["bridge"], &["bridge"], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        let hops = matrix(&[("n1", "n2", 1)]);
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            Some(&hops),
        )
        .unwrap();
        for nf in ["a", "b", "c"] {
            assert_ne!(a[nf], "island", "{nf} must land on a routable node");
        }
    }

    #[test]
    fn endpoint_assignment_follows_interfaces() {
        let g = chain();
        let views = vec![
            view("n1", 1024, &[], &[], &["eth0"]),
            view("n2", 1024, &[], &[], &["eth1"]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        assert_eq!(eps["lan"], "n1");
        assert_eq!(eps["wan"], "n2");
        let err = assign_endpoints(
            &g,
            &[view("n1", 1024, &[], &[], &["eth0"])],
            &BTreeMap::new(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::NoSuchInterface { .. }));
    }

    #[test]
    fn endpoints_prefer_the_topologically_closest_owner() {
        // Line a–b–c–d. eth0 only on a; eth1 on d (listed first) and b.
        // The old rule takes the first alive owner (d, three hops from
        // the lan endpoint); the topology-aware rule must take b (one
        // hop). Full-mesh mode keeps the old choice.
        let g = chain();
        let views = vec![
            view("a", 1024, &[], &[], &["eth0"]),
            view("d", 1024, &[], &[], &["eth1"]),
            view("b", 1024, &[], &[], &["eth1"]),
        ];
        let hops = matrix(&[
            ("a", "b", 1),
            ("a", "c", 2),
            ("a", "d", 3),
            ("b", "c", 1),
            ("b", "d", 2),
            ("c", "d", 1),
        ]);
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), Some(&hops)).unwrap();
        assert_eq!(eps["lan"], "a");
        assert_eq!(eps["wan"], "b", "closest owner over the line fabric");
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        assert_eq!(eps["wan"], "d", "full mesh keeps first-owner order");
        // A pinned peer anchors the choice the same way.
        let pins: BTreeMap<String, String> = [("lan".to_string(), "a".to_string())].into();
        let eps = assign_endpoints(&g, &views, &pins, Some(&hops)).unwrap();
        assert_eq!(eps["wan"], "b");
    }

    #[test]
    fn held_lease_restricts_shared_bonus_to_the_lease_host() {
        // Two NFs of one sharable type; BOTH nodes run a joinable
        // shared instance. Without the lease restriction, Spread's
        // memory tie-break splits the NFs across the two instances —
        // the graph would hold one lease but consume two shared
        // instances. With the held lease on node a, both NFs must land
        // there.
        let g = NfFgBuilder::new("g", "two-nat")
            .interface_endpoint("lan", "eth0")
            .nf("x1", "nat", 2)
            .nf("x2", "nat", 2)
            .rule_through("r1", 10, "lan", ("x1", 0))
            .build();
        let views = vec![
            view("a", 1024, &[], &["nat"], &["eth0"]),
            view("b", 8192, &[], &["nat"], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new(), None).unwrap();
        let place = |held: &BTreeMap<String, BTreeSet<String>>| {
            assign(
                &g,
                &views,
                &est(&g, 64),
                &eps,
                &BTreeMap::new(),
                held,
                PlacementStrategy::Spread,
                None,
            )
            .unwrap()
        };
        // The regression: no lease knowledge → the instances are
        // double-counted (x1 pulled to a by adjacency, x2 drifts to
        // b's emptier instance).
        let split = place(&BTreeMap::new());
        assert_eq!(split["x1"], "a");
        assert_eq!(split["x2"], "b", "scenario must exhibit the split");
        // Holding the lease on a confines the shared bonus there.
        let held: BTreeMap<String, BTreeSet<String>> =
            [("nat".to_string(), ["a".to_string()].into())].into();
        let fixed = place(&held);
        assert_eq!(fixed["x1"], "a");
        assert_eq!(fixed["x2"], "a", "one lease, one instance");
    }
}
