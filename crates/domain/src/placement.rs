//! Fleet-level placement: which node runs each NF of a graph.
//!
//! Layered on `un_core::placement` conceptually: that module answers
//! *how* an NF runs on a node (NNF vs VNF flavor); this one answers
//! *where*. The policy mirrors the paper's preferences at domain scale:
//!
//! 1. a node already running a joinable **shared NNF** of the type is
//!    free capacity — reuse it;
//! 2. a node whose NNF catalog offers the type natively beats one that
//!    would have to fall back to Docker/VM;
//! 3. co-locating rule-adjacent NFs avoids overlay hops; when the
//!    fabric is an explicit topology, a **path-length term** extends
//!    this: placing an NF topologically far from an already-placed
//!    neighbor is penalized per extra hop, so chained NFs drift toward
//!    close racks even when they cannot share one node;
//! 4. ties break by memory: [`PlacementStrategy::Pack`] fills the
//!    fullest feasible node (classic bin-packing, frees whole nodes),
//!    [`PlacementStrategy::Spread`] picks the emptiest (load balance).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use un_nffg::{NfFg, PortRef};

/// What the domain scheduler knows about one node.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Node name (fleet-unique).
    pub name: String,
    /// Memory not yet committed.
    pub free_memory: u64,
    /// Total memory capacity.
    pub capacity: u64,
    /// Functional types offered as native NFs.
    pub native_types: BTreeSet<String>,
    /// Functional types with a running, joinable shared NNF.
    pub shared_running: BTreeSet<String>,
    /// Physical interface names (for endpoint placement).
    pub ports: BTreeSet<String>,
    /// False once the node is considered failed.
    pub alive: bool,
}

/// Tie-breaking goal of the assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Bin-pack: fill the fullest feasible node first.
    #[default]
    Pack,
    /// Spread: place on the emptiest feasible node.
    Spread,
}

/// Why an assignment could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No node is alive.
    NoNodes,
    /// No alive node can fit this NF (estimated bytes needed).
    NoCapacity { nf: String, needed: u64 },
    /// A pinned node is unknown or dead.
    BadPin { nf: String, node: String },
    /// An interface endpoint names an interface no alive node has.
    NoSuchInterface { endpoint: String, if_name: String },
    /// A pinned endpoint node is unknown, dead, or lacks the interface.
    BadEndpointPin { endpoint: String, node: String },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NoNodes => write!(f, "no alive nodes in the domain"),
            PlaceError::NoCapacity { nf, needed } => {
                write!(f, "no node can fit NF '{nf}' ({needed} bytes)")
            }
            PlaceError::BadPin { nf, node } => {
                write!(f, "NF '{nf}' pinned to unusable node '{node}'")
            }
            PlaceError::NoSuchInterface { endpoint, if_name } => {
                write!(
                    f,
                    "endpoint '{endpoint}': no alive node has interface '{if_name}'"
                )
            }
            PlaceError::BadEndpointPin { endpoint, node } => {
                write!(f, "endpoint '{endpoint}' pinned to unusable node '{node}'")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Assign every endpoint of `graph` to a node.
///
/// Pinned endpoints are honored (and verified); interface/VLAN
/// endpoints otherwise go to the first alive node exposing the
/// interface, internal endpoints to the anchor (first alive) node.
pub fn assign_endpoints(
    graph: &NfFg,
    views: &[NodeView],
    pins: &BTreeMap<String, String>,
) -> Result<BTreeMap<String, String>, PlaceError> {
    let anchor = views
        .iter()
        .find(|v| v.alive)
        .map(|v| v.name.clone())
        .ok_or(PlaceError::NoNodes)?;
    let mut out = BTreeMap::new();
    for ep in &graph.endpoints {
        let if_name = match &ep.kind {
            un_nffg::EndpointKind::Interface { if_name }
            | un_nffg::EndpointKind::Vlan { if_name, .. } => Some(if_name.clone()),
            un_nffg::EndpointKind::Internal { .. } => None,
        };
        let node = if let Some(pin) = pins.get(&ep.id) {
            let ok = views.iter().any(|v| {
                v.alive && v.name == *pin && if_name.as_ref().is_none_or(|i| v.ports.contains(i))
            });
            if !ok {
                return Err(PlaceError::BadEndpointPin {
                    endpoint: ep.id.clone(),
                    node: pin.clone(),
                });
            }
            pin.clone()
        } else if let Some(if_name) = &if_name {
            views
                .iter()
                .find(|v| v.alive && v.ports.contains(if_name))
                .map(|v| v.name.clone())
                .ok_or_else(|| PlaceError::NoSuchInterface {
                    endpoint: ep.id.clone(),
                    if_name: if_name.clone(),
                })?
        } else {
            anchor.clone()
        };
        out.insert(ep.id.clone(), node);
    }
    Ok(out)
}

/// Per-peer score bonus for landing on the same node as an adjacent
/// NF/endpoint (below shared/native preference, above the memory
/// tie-break).
const COLOCATE_BONUS: i64 = 10_000;
/// Per-peer, per-extra-hop penalty when the candidate node is more
/// than one fabric hop from an already-placed neighbor. Strong enough
/// to beat the memory tie-break (max 9_999) from two extra hops on,
/// and to dominate it even at one extra hop unless memory differs by
/// gigabytes.
const PATH_PENALTY_PER_HOP: i64 = 4_000;
/// Hop distance assumed for a peer the candidate cannot reach at all
/// (disconnected topology), used only among fallback candidates: far
/// enough that a less-disconnected node wins.
const UNREACHABLE_HOPS: u32 = 16;

/// Assign every NF of `graph` to a node.
///
/// `estimates` maps NF id → estimated RAM; `endpoint_node` is the
/// (already computed) endpoint assignment, used for adjacency scoring;
/// `pins` forces specific NFs onto specific nodes (used to keep
/// surviving NFs in place across updates and re-placements).
///
/// `fabric_hops` is the hop-distance matrix of the fabric topology
/// (`Topology::hop_matrix`): `None` means full mesh — every pair one
/// hop apart, no path-length term. With an explicit topology, each
/// already-placed neighbor at distance `d > 1` costs the candidate
/// `PATH_PENALTY_PER_HOP × (d − 1)`, biasing chained NFs toward
/// topologically close nodes. Reachability is a hard preference, not
/// just a penalty: a candidate that can route to every node the graph
/// already occupies (endpoint nodes and previously placed NFs — not
/// just this NF's direct neighbors, which may all be unplaced when it
/// is scored) beats any candidate that cannot, regardless of shared/
/// native bonuses — otherwise the scorer could pick a fabric-isolated
/// node and turn a feasible deploy into a `NoRoute` failure. Fully
/// disconnected candidates stay eligible as a last resort (scored with
/// `UNREACHABLE_HOPS` per unreachable peer) so an impossible placement
/// still surfaces as the more descriptive routing error downstream.
pub fn assign(
    graph: &NfFg,
    views: &[NodeView],
    estimates: &BTreeMap<String, u64>,
    endpoint_node: &BTreeMap<String, String>,
    pins: &BTreeMap<String, String>,
    strategy: PlacementStrategy,
    fabric_hops: Option<&BTreeMap<String, BTreeMap<String, u32>>>,
) -> Result<BTreeMap<String, String>, PlaceError> {
    if !views.iter().any(|v| v.alive) {
        return Err(PlaceError::NoNodes);
    }
    // Running free-memory picture as NFs are placed.
    let mut free: BTreeMap<&str, u64> = views
        .iter()
        .filter(|v| v.alive)
        .map(|v| (v.name.as_str(), v.free_memory))
        .collect();

    // Rule adjacency: NF ↔ NF and NF ↔ endpoint, for co-location.
    let mut adjacent: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in &graph.flow_rules {
        let ends: Vec<&PortRef> = rule
            .matches
            .port_in
            .iter()
            .chain(rule.actions.iter().filter_map(|a| match a {
                un_nffg::RuleAction::Output(p) => Some(p),
                _ => None,
            }))
            .collect();
        for a in &ends {
            for b in &ends {
                if let (PortRef::Nf(na, _), other) = (a, b) {
                    let peer = match other {
                        PortRef::Nf(nb, _) if nb != na => nb.as_str(),
                        PortRef::Endpoint(e) => e.as_str(),
                        _ => continue,
                    };
                    adjacent.entry(na.as_str()).or_default().insert(peer);
                }
            }
        }
    }

    let mut out: BTreeMap<String, String> = BTreeMap::new();
    for nf in &graph.nfs {
        let needed = estimates.get(&nf.id).copied().unwrap_or(0);
        if let Some(pin) = pins.get(&nf.id) {
            let alive = views.iter().any(|v| v.alive && v.name == *pin);
            if !alive {
                return Err(PlaceError::BadPin {
                    nf: nf.id.clone(),
                    node: pin.clone(),
                });
            }
            *free.entry(pin.as_str()).or_default() = free
                .get(pin.as_str())
                .copied()
                .unwrap_or(0)
                .saturating_sub(needed);
            out.insert(nf.id.clone(), pin.clone());
            continue;
        }

        // Nodes the graph already occupies: this NF (or one placed
        // after it) will eventually need overlay routes toward them,
        // so reachability to all of them is the hard preference even
        // when this NF's own neighbors are still unplaced.
        let used: BTreeSet<&str> = endpoint_node
            .values()
            .chain(out.values())
            .map(String::as_str)
            .collect();
        // (reaches every used node, score): reachability dominates, so
        // no bonus stack can elect a fabric-isolated node while a
        // routable one exists.
        let mut best: Option<(bool, i64, &NodeView)> = None;
        for view in views.iter().filter(|v| v.alive) {
            let avail = free.get(view.name.as_str()).copied().unwrap_or(0);
            // A shared joinable instance costs nothing extra; otherwise
            // the estimate must fit.
            let reusable = view.shared_running.contains(&nf.functional_type);
            if !reusable && avail < needed {
                continue;
            }
            let routable = match fabric_hops {
                None => true,
                Some(hops) => {
                    let row = hops.get(view.name.as_str());
                    used.iter()
                        .all(|u| *u == view.name || row.is_some_and(|r| r.contains_key(*u)))
                }
            };
            let mut score: i64 = 0;
            if reusable {
                score += 1_000_000;
            }
            if view.native_types.contains(&nf.functional_type) {
                score += 100_000;
            }
            // Co-location: neighbors already resolved to this node
            // score a bonus; with an explicit fabric topology, distant
            // neighbors charge a per-extra-hop path penalty.
            if let Some(peers) = adjacent.get(nf.id.as_str()) {
                for peer in peers {
                    let peer_node = out
                        .get(*peer)
                        .or_else(|| endpoint_node.get(*peer))
                        .map(String::as_str);
                    let Some(peer_node) = peer_node else {
                        continue; // peer not placed yet
                    };
                    if peer_node == view.name.as_str() {
                        score += COLOCATE_BONUS;
                    } else if let Some(hops) = fabric_hops {
                        let d = hops
                            .get(peer_node)
                            .and_then(|row| row.get(view.name.as_str()))
                            .copied()
                            .unwrap_or(UNREACHABLE_HOPS);
                        score -= PATH_PENALTY_PER_HOP * i64::from(d.saturating_sub(1));
                    }
                }
            }
            // Memory tie-break, bounded to keep it below the other terms.
            let mem_term = (avail / (1 << 20)).min(9_999) as i64;
            score += match strategy {
                PlacementStrategy::Pack => -mem_term,
                PlacementStrategy::Spread => mem_term,
            };
            if best.as_ref().is_none_or(|(r, s, b)| {
                (routable, score) > (*r, *s) || (routable, score) == (*r, *s) && view.name < b.name
            }) {
                best = Some((routable, score, view));
            }
        }
        let Some((_, _, view)) = best else {
            return Err(PlaceError::NoCapacity {
                nf: nf.id.clone(),
                needed,
            });
        };
        let reusable = view.shared_running.contains(&nf.functional_type);
        if !reusable {
            let slot = free.get_mut(view.name.as_str()).expect("alive node");
            *slot = slot.saturating_sub(needed);
        }
        out.insert(nf.id.clone(), view.name.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_nffg::NfFgBuilder;

    fn view(
        name: &str,
        free_mb: u64,
        native: &[&str],
        shared: &[&str],
        ports: &[&str],
    ) -> NodeView {
        NodeView {
            name: name.into(),
            free_memory: free_mb << 20,
            capacity: free_mb << 20,
            native_types: native.iter().map(|s| s.to_string()).collect(),
            shared_running: shared.iter().map(|s| s.to_string()).collect(),
            ports: ports.iter().map(|s| s.to_string()).collect(),
            alive: true,
        }
    }

    fn chain() -> NfFg {
        NfFgBuilder::new("g1", "chain")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("fw", "firewall", 2)
            .nf("gw", "ipsec", 2)
            .chain("lan", &["fw", "gw"], "wan")
            .build()
    }

    fn est(graph: &NfFg, mb: u64) -> BTreeMap<String, u64> {
        graph.nfs.iter().map(|n| (n.id.clone(), mb << 20)).collect()
    }

    /// Symmetric hop matrix from `(a, b, hops)` triples.
    fn matrix(pairs: &[(&str, &str, u32)]) -> BTreeMap<String, BTreeMap<String, u32>> {
        let mut m: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for (a, b, d) in pairs {
            m.entry(a.to_string())
                .or_default()
                .insert(b.to_string(), *d);
            m.entry(b.to_string())
                .or_default()
                .insert(a.to_string(), *d);
        }
        m
    }

    #[test]
    fn prefers_shared_then_native() {
        let g = chain();
        let views = vec![
            view("plain", 4096, &[], &[], &["eth0", "eth1"]),
            view("native", 4096, &["firewall", "ipsec"], &[], &[]),
            view("sharing", 64, &[], &["firewall", "ipsec"], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap();
        // Shared reuse wins even though the sharing node is almost full.
        assert_eq!(a["fw"], "sharing");
        assert_eq!(a["gw"], "sharing");
    }

    #[test]
    fn respects_capacity_and_reports_overflow() {
        let g = chain();
        let views = vec![view(
            "tiny",
            100,
            &["firewall", "ipsec"],
            &[],
            &["eth0", "eth1"],
        )];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let err = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::NoCapacity { .. }));
    }

    #[test]
    fn pack_fills_one_node_spread_distributes() {
        let g = chain();
        let views = vec![
            view("n1", 4096, &["firewall", "ipsec"], &[], &["eth0", "eth1"]),
            view("n2", 8192, &["firewall", "ipsec"], &[], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let pack = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            None,
        )
        .unwrap();
        // Pack: both NFs land together (adjacency + fullest node).
        assert_eq!(pack["fw"], pack["gw"]);

        // Spread with no adjacency pull: strip the rules so only the
        // memory term differs.
        let mut sparse = g.clone();
        sparse.flow_rules.clear();
        let spread = assign(
            &sparse,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Spread,
            None,
        )
        .unwrap();
        assert_eq!(spread["fw"], "n2"); // emptiest first
    }

    #[test]
    fn pins_and_dead_nodes() {
        let g = chain();
        let mut views = vec![
            view("n1", 4096, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let pins: BTreeMap<String, String> = [("fw".to_string(), "n2".to_string())].into();
        let a = assign(
            &g,
            &views,
            &est(&g, 64),
            &eps,
            &pins,
            PlacementStrategy::Pack,
            None,
        )
        .unwrap();
        assert_eq!(a["fw"], "n2");

        views[1].alive = false;
        let err = assign(
            &g,
            &views,
            &est(&g, 64),
            &eps,
            &pins,
            PlacementStrategy::Pack,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::BadPin { .. }));
    }

    #[test]
    fn path_length_term_pulls_chained_nfs_toward_close_nodes() {
        // fw must sit with the lan endpoint on n1 (interface); gw does
        // not fit on n1. Candidates n2 (1 hop from n1) and n3 (3 hops)
        // are otherwise identical — the path term must pick n2; without
        // a matrix (full mesh) the memory tie-break favors n3.
        let g = chain();
        let views = vec![
            view("n1", 600, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &["eth1"]),
            view("n3", 8192, &[], &[], &["eth1"]),
        ];
        let eps =
            assign_endpoints(&g, &views, &[("wan".to_string(), "n1".to_string())].into()).unwrap();
        let hops = matrix(&[("n1", "n2", 1), ("n1", "n3", 3), ("n2", "n3", 2)]);
        let place = |matrix: Option<&BTreeMap<String, BTreeMap<String, u32>>>| {
            assign(
                &g,
                &views,
                &est(&g, 512),
                &eps,
                &BTreeMap::new(),
                PlacementStrategy::Spread,
                matrix,
            )
            .unwrap()
        };
        assert_eq!(place(Some(&hops))["gw"], "n2", "path term: close rack");
        assert_eq!(place(None)["gw"], "n3", "full mesh: memory tie-break");
    }

    #[test]
    fn reachability_beats_native_and_shared_bonuses() {
        // gw's neighbor fw is forced onto n1. Node "island" offers
        // ipsec natively *and* shares a running instance, but has no
        // fabric route to n1; plain node n2 does. The isolated node's
        // bonus stack must not win — that placement would fail at plan
        // time with NoRoute even though n2 works.
        let g = chain();
        let views = vec![
            view("n1", 600, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &["eth1"]),
            view("island", 4096, &["ipsec"], &["ipsec"], &["eth1"]),
        ];
        let eps =
            assign_endpoints(&g, &views, &[("wan".to_string(), "n1".to_string())].into()).unwrap();
        let pins: BTreeMap<String, String> = [("fw".to_string(), "n1".to_string())].into();
        // Matrix from a topology where island has no edges: pairs
        // involving it are simply absent.
        let hops = matrix(&[("n1", "n2", 1)]);
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &pins,
            PlacementStrategy::Spread,
            Some(&hops),
        )
        .unwrap();
        assert_eq!(a["gw"], "n2", "routable node beats isolated bonuses");
    }

    #[test]
    fn reachability_guard_covers_unplaced_peer_ordering() {
        // b is declared (and scored) first, so both of its rule
        // neighbors are still-unplaced NFs at that point. The guard
        // must still keep b off the isolated island — the graph's
        // endpoints already occupy n1, which island cannot reach.
        let g = NfFgBuilder::new("g2", "chain3")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("b", "bridge", 2)
            .nf("a", "bridge", 2)
            .nf("c", "bridge", 2)
            .chain("lan", &["a", "b", "c"], "wan")
            .build();
        let views = vec![
            view("n1", 4096, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &[]),
            view("island", 4096, &["bridge"], &["bridge"], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let hops = matrix(&[("n1", "n2", 1)]);
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
            Some(&hops),
        )
        .unwrap();
        for nf in ["a", "b", "c"] {
            assert_ne!(a[nf], "island", "{nf} must land on a routable node");
        }
    }

    #[test]
    fn endpoint_assignment_follows_interfaces() {
        let g = chain();
        let views = vec![
            view("n1", 1024, &[], &[], &["eth0"]),
            view("n2", 1024, &[], &[], &["eth1"]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        assert_eq!(eps["lan"], "n1");
        assert_eq!(eps["wan"], "n2");
        let err = assign_endpoints(
            &g,
            &[view("n1", 1024, &[], &[], &["eth0"])],
            &BTreeMap::new(),
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::NoSuchInterface { .. }));
    }
}
