//! Fleet-level placement: which node runs each NF of a graph.
//!
//! Layered on `un_core::placement` conceptually: that module answers
//! *how* an NF runs on a node (NNF vs VNF flavor); this one answers
//! *where*. The policy mirrors the paper's preferences at domain scale:
//!
//! 1. a node already running a joinable **shared NNF** of the type is
//!    free capacity — reuse it;
//! 2. a node whose NNF catalog offers the type natively beats one that
//!    would have to fall back to Docker/VM;
//! 3. co-locating rule-adjacent NFs avoids overlay hops;
//! 4. ties break by memory: [`PlacementStrategy::Pack`] fills the
//!    fullest feasible node (classic bin-packing, frees whole nodes),
//!    [`PlacementStrategy::Spread`] picks the emptiest (load balance).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use un_nffg::{NfFg, PortRef};

/// What the domain scheduler knows about one node.
#[derive(Debug, Clone)]
pub struct NodeView {
    /// Node name (fleet-unique).
    pub name: String,
    /// Memory not yet committed.
    pub free_memory: u64,
    /// Total memory capacity.
    pub capacity: u64,
    /// Functional types offered as native NFs.
    pub native_types: BTreeSet<String>,
    /// Functional types with a running, joinable shared NNF.
    pub shared_running: BTreeSet<String>,
    /// Physical interface names (for endpoint placement).
    pub ports: BTreeSet<String>,
    /// False once the node is considered failed.
    pub alive: bool,
}

/// Tie-breaking goal of the assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Bin-pack: fill the fullest feasible node first.
    #[default]
    Pack,
    /// Spread: place on the emptiest feasible node.
    Spread,
}

/// Why an assignment could not be produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No node is alive.
    NoNodes,
    /// No alive node can fit this NF (estimated bytes needed).
    NoCapacity { nf: String, needed: u64 },
    /// A pinned node is unknown or dead.
    BadPin { nf: String, node: String },
    /// An interface endpoint names an interface no alive node has.
    NoSuchInterface { endpoint: String, if_name: String },
    /// A pinned endpoint node is unknown, dead, or lacks the interface.
    BadEndpointPin { endpoint: String, node: String },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::NoNodes => write!(f, "no alive nodes in the domain"),
            PlaceError::NoCapacity { nf, needed } => {
                write!(f, "no node can fit NF '{nf}' ({needed} bytes)")
            }
            PlaceError::BadPin { nf, node } => {
                write!(f, "NF '{nf}' pinned to unusable node '{node}'")
            }
            PlaceError::NoSuchInterface { endpoint, if_name } => {
                write!(
                    f,
                    "endpoint '{endpoint}': no alive node has interface '{if_name}'"
                )
            }
            PlaceError::BadEndpointPin { endpoint, node } => {
                write!(f, "endpoint '{endpoint}' pinned to unusable node '{node}'")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Assign every endpoint of `graph` to a node.
///
/// Pinned endpoints are honored (and verified); interface/VLAN
/// endpoints otherwise go to the first alive node exposing the
/// interface, internal endpoints to the anchor (first alive) node.
pub fn assign_endpoints(
    graph: &NfFg,
    views: &[NodeView],
    pins: &BTreeMap<String, String>,
) -> Result<BTreeMap<String, String>, PlaceError> {
    let anchor = views
        .iter()
        .find(|v| v.alive)
        .map(|v| v.name.clone())
        .ok_or(PlaceError::NoNodes)?;
    let mut out = BTreeMap::new();
    for ep in &graph.endpoints {
        let if_name = match &ep.kind {
            un_nffg::EndpointKind::Interface { if_name }
            | un_nffg::EndpointKind::Vlan { if_name, .. } => Some(if_name.clone()),
            un_nffg::EndpointKind::Internal { .. } => None,
        };
        let node = if let Some(pin) = pins.get(&ep.id) {
            let ok = views.iter().any(|v| {
                v.alive && v.name == *pin && if_name.as_ref().is_none_or(|i| v.ports.contains(i))
            });
            if !ok {
                return Err(PlaceError::BadEndpointPin {
                    endpoint: ep.id.clone(),
                    node: pin.clone(),
                });
            }
            pin.clone()
        } else if let Some(if_name) = &if_name {
            views
                .iter()
                .find(|v| v.alive && v.ports.contains(if_name))
                .map(|v| v.name.clone())
                .ok_or_else(|| PlaceError::NoSuchInterface {
                    endpoint: ep.id.clone(),
                    if_name: if_name.clone(),
                })?
        } else {
            anchor.clone()
        };
        out.insert(ep.id.clone(), node);
    }
    Ok(out)
}

/// Assign every NF of `graph` to a node.
///
/// `estimates` maps NF id → estimated RAM; `endpoint_node` is the
/// (already computed) endpoint assignment, used for adjacency scoring;
/// `pins` forces specific NFs onto specific nodes (used to keep
/// surviving NFs in place across updates and re-placements).
pub fn assign(
    graph: &NfFg,
    views: &[NodeView],
    estimates: &BTreeMap<String, u64>,
    endpoint_node: &BTreeMap<String, String>,
    pins: &BTreeMap<String, String>,
    strategy: PlacementStrategy,
) -> Result<BTreeMap<String, String>, PlaceError> {
    if !views.iter().any(|v| v.alive) {
        return Err(PlaceError::NoNodes);
    }
    // Running free-memory picture as NFs are placed.
    let mut free: BTreeMap<&str, u64> = views
        .iter()
        .filter(|v| v.alive)
        .map(|v| (v.name.as_str(), v.free_memory))
        .collect();

    // Rule adjacency: NF ↔ NF and NF ↔ endpoint, for co-location.
    let mut adjacent: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in &graph.flow_rules {
        let ends: Vec<&PortRef> = rule
            .matches
            .port_in
            .iter()
            .chain(rule.actions.iter().filter_map(|a| match a {
                un_nffg::RuleAction::Output(p) => Some(p),
                _ => None,
            }))
            .collect();
        for a in &ends {
            for b in &ends {
                if let (PortRef::Nf(na, _), other) = (a, b) {
                    let peer = match other {
                        PortRef::Nf(nb, _) if nb != na => nb.as_str(),
                        PortRef::Endpoint(e) => e.as_str(),
                        _ => continue,
                    };
                    adjacent.entry(na.as_str()).or_default().insert(peer);
                }
            }
        }
    }

    let mut out: BTreeMap<String, String> = BTreeMap::new();
    for nf in &graph.nfs {
        let needed = estimates.get(&nf.id).copied().unwrap_or(0);
        if let Some(pin) = pins.get(&nf.id) {
            let alive = views.iter().any(|v| v.alive && v.name == *pin);
            if !alive {
                return Err(PlaceError::BadPin {
                    nf: nf.id.clone(),
                    node: pin.clone(),
                });
            }
            *free.entry(pin.as_str()).or_default() = free
                .get(pin.as_str())
                .copied()
                .unwrap_or(0)
                .saturating_sub(needed);
            out.insert(nf.id.clone(), pin.clone());
            continue;
        }

        let mut best: Option<(i64, &NodeView)> = None;
        for view in views.iter().filter(|v| v.alive) {
            let avail = free.get(view.name.as_str()).copied().unwrap_or(0);
            // A shared joinable instance costs nothing extra; otherwise
            // the estimate must fit.
            let reusable = view.shared_running.contains(&nf.functional_type);
            if !reusable && avail < needed {
                continue;
            }
            let mut score: i64 = 0;
            if reusable {
                score += 1_000_000;
            }
            if view.native_types.contains(&nf.functional_type) {
                score += 100_000;
            }
            // Co-location: neighbors already resolved to this node.
            if let Some(peers) = adjacent.get(nf.id.as_str()) {
                for peer in peers {
                    let here = out.get(*peer).map(String::as_str) == Some(view.name.as_str())
                        || endpoint_node.get(*peer).map(String::as_str) == Some(view.name.as_str());
                    if here {
                        score += 10_000;
                    }
                }
            }
            // Memory tie-break, bounded to keep it below the other terms.
            let mem_term = (avail / (1 << 20)).min(9_999) as i64;
            score += match strategy {
                PlacementStrategy::Pack => -mem_term,
                PlacementStrategy::Spread => mem_term,
            };
            if best
                .as_ref()
                .is_none_or(|(s, b)| score > *s || (score == *s && view.name < b.name))
            {
                best = Some((score, view));
            }
        }
        let Some((_, view)) = best else {
            return Err(PlaceError::NoCapacity {
                nf: nf.id.clone(),
                needed,
            });
        };
        let reusable = view.shared_running.contains(&nf.functional_type);
        if !reusable {
            let slot = free.get_mut(view.name.as_str()).expect("alive node");
            *slot = slot.saturating_sub(needed);
        }
        out.insert(nf.id.clone(), view.name.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_nffg::NfFgBuilder;

    fn view(
        name: &str,
        free_mb: u64,
        native: &[&str],
        shared: &[&str],
        ports: &[&str],
    ) -> NodeView {
        NodeView {
            name: name.into(),
            free_memory: free_mb << 20,
            capacity: free_mb << 20,
            native_types: native.iter().map(|s| s.to_string()).collect(),
            shared_running: shared.iter().map(|s| s.to_string()).collect(),
            ports: ports.iter().map(|s| s.to_string()).collect(),
            alive: true,
        }
    }

    fn chain() -> NfFg {
        NfFgBuilder::new("g1", "chain")
            .interface_endpoint("lan", "eth0")
            .interface_endpoint("wan", "eth1")
            .nf("fw", "firewall", 2)
            .nf("gw", "ipsec", 2)
            .chain("lan", &["fw", "gw"], "wan")
            .build()
    }

    fn est(graph: &NfFg, mb: u64) -> BTreeMap<String, u64> {
        graph.nfs.iter().map(|n| (n.id.clone(), mb << 20)).collect()
    }

    #[test]
    fn prefers_shared_then_native() {
        let g = chain();
        let views = vec![
            view("plain", 4096, &[], &[], &["eth0", "eth1"]),
            view("native", 4096, &["firewall", "ipsec"], &[], &[]),
            view("sharing", 64, &[], &["firewall", "ipsec"], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let a = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
        )
        .unwrap();
        // Shared reuse wins even though the sharing node is almost full.
        assert_eq!(a["fw"], "sharing");
        assert_eq!(a["gw"], "sharing");
    }

    #[test]
    fn respects_capacity_and_reports_overflow() {
        let g = chain();
        let views = vec![view(
            "tiny",
            100,
            &["firewall", "ipsec"],
            &[],
            &["eth0", "eth1"],
        )];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let err = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::NoCapacity { .. }));
    }

    #[test]
    fn pack_fills_one_node_spread_distributes() {
        let g = chain();
        let views = vec![
            view("n1", 4096, &["firewall", "ipsec"], &[], &["eth0", "eth1"]),
            view("n2", 8192, &["firewall", "ipsec"], &[], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let pack = assign(
            &g,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Pack,
        )
        .unwrap();
        // Pack: both NFs land together (adjacency + fullest node).
        assert_eq!(pack["fw"], pack["gw"]);

        // Spread with no adjacency pull: strip the rules so only the
        // memory term differs.
        let mut sparse = g.clone();
        sparse.flow_rules.clear();
        let spread = assign(
            &sparse,
            &views,
            &est(&g, 512),
            &eps,
            &BTreeMap::new(),
            PlacementStrategy::Spread,
        )
        .unwrap();
        assert_eq!(spread["fw"], "n2"); // emptiest first
    }

    #[test]
    fn pins_and_dead_nodes() {
        let g = chain();
        let mut views = vec![
            view("n1", 4096, &[], &[], &["eth0", "eth1"]),
            view("n2", 4096, &[], &[], &[]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        let pins: BTreeMap<String, String> = [("fw".to_string(), "n2".to_string())].into();
        let a = assign(
            &g,
            &views,
            &est(&g, 64),
            &eps,
            &pins,
            PlacementStrategy::Pack,
        )
        .unwrap();
        assert_eq!(a["fw"], "n2");

        views[1].alive = false;
        let err = assign(
            &g,
            &views,
            &est(&g, 64),
            &eps,
            &pins,
            PlacementStrategy::Pack,
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::BadPin { .. }));
    }

    #[test]
    fn endpoint_assignment_follows_interfaces() {
        let g = chain();
        let views = vec![
            view("n1", 1024, &[], &[], &["eth0"]),
            view("n2", 1024, &[], &[], &["eth1"]),
        ];
        let eps = assign_endpoints(&g, &views, &BTreeMap::new()).unwrap();
        assert_eq!(eps["lan"], "n1");
        assert_eq!(eps["wan"], "n2");
        let err = assign_endpoints(
            &g,
            &[view("n1", 1024, &[], &[], &["eth0"])],
            &BTreeMap::new(),
        )
        .unwrap_err();
        assert!(matches!(err, PlaceError::NoSuchInterface { .. }));
    }
}
