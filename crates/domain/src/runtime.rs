//! Persistent shard runtime for the data-plane shuttle.
//!
//! The shuttle used to spawn a scoped OS thread per worker on *every*
//! `inject_batch` call — fine for a benchmark loop, but a line-rate
//! ingress path pays thread creation and teardown per burst. The
//! [`ShardRuntime`] keeps one long-lived worker per shard: each call
//! publishes a job (an `Arc`'d closure owning its shared shuttle
//! state), every worker runs it once with its shard index, and the
//! caller blocks until the whole round completes. Workers never die
//! between calls; shutdown is explicit on [`Drop`].
//!
//! Worker panics are caught so the round's completion counter always
//! reaches zero, then re-raised on the calling thread — a panicking
//! shard can never hang its peers or the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A shard job: run once per worker with the worker's shard index.
/// `Arc`-owned so persistent threads need no borrowed lifetimes.
type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct Slot {
    /// The published job for the current round, if one is live.
    job: Option<Job>,
    /// Monotonic round number; workers run each round exactly once.
    epoch: u64,
    /// Workers that have not yet finished the current round.
    remaining: usize,
    /// A worker's job panicked this round (re-raised by the caller).
    panicked: bool,
    /// The runtime is being dropped; workers exit.
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Wakes workers when a job is published (or shutdown).
    job_ready: Condvar,
    /// Wakes the caller when the last worker finishes the round.
    job_done: Condvar,
}

/// A pool of persistent shard workers driving the shuttle drain.
///
/// Construction spawns the workers; they park between rounds and are
/// joined when the runtime drops. One runtime serves any number of
/// `inject_batch` calls with the same worker count.
pub(crate) struct ShardRuntime {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl ShardRuntime {
    /// Spawn `workers` persistent shard threads (at least one).
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("un-shard-{shard}"))
                    .spawn(move || worker_loop(&shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardRuntime { shared, handles }
    }

    /// Number of persistent workers.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `job` once on every worker (each receives its shard index)
    /// and block until all of them finish. The job is dropped before
    /// this returns. Panics from worker jobs are re-raised here after
    /// the round completes, so a caller that catches the panic still
    /// observes a quiesced runtime.
    pub(crate) fn run<F: Fn(usize) + Send + Sync + 'static>(&mut self, job: F) {
        {
            let mut s = self.shared.slot.lock().expect("shard slot poisoned");
            s.epoch += 1;
            s.job = Some(Arc::new(job));
            s.remaining = self.handles.len();
            s.panicked = false;
        }
        self.shared.job_ready.notify_all();
        let panicked = {
            let mut s = self.shared.slot.lock().expect("shard slot poisoned");
            while s.remaining > 0 {
                s = self.shared.job_done.wait(s).expect("shard slot poisoned");
            }
            // Every worker has dropped its clone by now (they drop
            // before decrementing), so clearing the slot releases the
            // job's captured state back to the caller.
            s.job = None;
            s.panicked
        };
        if panicked {
            panic!("shuttle worker panicked");
        }
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        {
            let mut s = self.shared.slot.lock().expect("shard slot poisoned");
            s.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, shard: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut s = shared.slot.lock().expect("shard slot poisoned");
            loop {
                if s.shutdown {
                    return;
                }
                match &s.job {
                    // A round this worker has not run yet.
                    Some(job) if s.epoch != last_epoch => {
                        last_epoch = s.epoch;
                        break Arc::clone(job);
                    }
                    _ => {
                        s = shared.job_ready.wait(s).expect("shard slot poisoned");
                    }
                }
            }
        };
        // Catch panics so `remaining` always reaches zero — a worker
        // that unwound past the decrement would hang the caller.
        let result = catch_unwind(AssertUnwindSafe(|| job(shard)));
        // Drop our clone *before* signalling completion: once
        // `remaining` hits zero the caller reclaims the job's state.
        drop(job);
        let mut s = shared.slot.lock().expect("shard slot poisoned");
        if result.is_err() {
            s.panicked = true;
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_every_round() {
        let mut rt = ShardRuntime::new(4);
        assert_eq!(rt.workers(), 4);
        for _ in 0..50 {
            let hits = Arc::new(AtomicUsize::new(0));
            let seen = Arc::new(Mutex::new(Vec::new()));
            let (h, s) = (Arc::clone(&hits), Arc::clone(&seen));
            rt.run(move |shard| {
                h.fetch_add(1, Ordering::SeqCst);
                s.lock().unwrap().push(shard);
            });
            assert_eq!(hits.load(Ordering::SeqCst), 4);
            let mut shards = seen.lock().unwrap().clone();
            shards.sort_unstable();
            assert_eq!(shards, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn job_state_is_released_after_the_round() {
        let mut rt = ShardRuntime::new(3);
        let tallies = Arc::new(Mutex::new(vec![0usize; 3]));
        let t = Arc::clone(&tallies);
        rt.run(move |shard| {
            t.lock().unwrap()[shard] += shard + 1;
        });
        // The job (and its captured clone) dropped with the round, so
        // the caller holds the only reference again.
        let tallies = Arc::try_unwrap(tallies).expect("job released its state");
        let total: usize = tallies.into_inner().unwrap().iter().sum();
        assert_eq!(total, 1 + 2 + 3);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let mut rt = ShardRuntime::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            rt.run(|shard| {
                if shard == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "panic re-raised on the caller");
        // The runtime is still usable for the next round.
        let ok = Arc::new(AtomicUsize::new(0));
        let o = Arc::clone(&ok);
        rt.run(move |_| {
            o.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }
}
