//! Domain-wide sharable-NNF registry: fleet-level reuse of native
//! network functions.
//!
//! The paper's sharable NNFs let one native instance serve many graphs
//! — but only for graphs that land on the node already running it.
//! This module lifts that reuse to the whole fleet: a domain-wide
//! catalog of shared instances keyed by [`ShareKey`] (functional type
//! plus an optional capability tag), with explicit **leases** (one per
//! tenant graph, acquired on deploy and released on undeploy, typed
//! errors on capacity exhaustion) and an **election policy** deciding
//! which node hosts each instance:
//!
//! * [`ElectionPolicy::FirstDemand`] — the instance lives next to the
//!   tenant that first demanded it (nearest sharable node to that
//!   graph's endpoints);
//! * [`ElectionPolicy::TopologyCentroid`] — the instance lives at the
//!   fabric centroid (minimum total hop distance to every alive node),
//!   so no tenant is pathologically far;
//! * [`ElectionPolicy::Pinned`] — the operator names the host per
//!   functional type (or per `type/capability` key).
//!
//! The registry itself is pure bookkeeping — `Domain::plan` consults it
//! to pin a tenant's shared NFs onto the elected host (the partitioner
//! then synthesizes cut edges to that node and the overlay path engine
//! routes them, multi-hop if need be), and commits or releases leases
//! as deployments succeed, update, park, or die. When the host node
//! fails, the domain re-elects a host **once** at registry level and
//! every tenant repair converges on the new home.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::placement::NodeView;
use crate::topology::Topology;

/// Identity of one domain-shared instance: the functional type plus a
/// free-form capability tag (empty by default), so e.g. a default NAT
/// pool and a `cgnat` pool can coexist as distinct shared instances.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShareKey {
    /// Functional type, e.g. `"nat"`.
    pub functional_type: String,
    /// Capability tag (from the NF's `share-capability` config param);
    /// empty string means the default pool.
    pub capability: String,
}

impl ShareKey {
    /// A key from its parts.
    pub fn new(functional_type: &str, capability: &str) -> Self {
        ShareKey {
            functional_type: functional_type.to_string(),
            capability: capability.to_string(),
        }
    }

    /// The key an NF demands: its functional type plus the
    /// `share-capability` config param (default pool when absent).
    pub fn of_nf(nf: &un_nffg::NetworkFunction) -> Self {
        ShareKey {
            functional_type: nf.functional_type.clone(),
            capability: nf
                .config
                .params
                .get("share-capability")
                .cloned()
                .unwrap_or_default(),
        }
    }

    /// Human-readable rendering: `nat` or `nat/cgnat`.
    pub fn render(&self) -> String {
        if self.capability.is_empty() {
            self.functional_type.clone()
        } else {
            format!("{}/{}", self.functional_type, self.capability)
        }
    }
}

impl fmt::Display for ShareKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Where a shared instance lives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ElectionPolicy {
    /// Host the instance on the sharable node nearest to the endpoints
    /// of the tenant that first demanded it.
    #[default]
    FirstDemand,
    /// Host the instance at the fabric centroid: minimum total hop
    /// distance to every alive node.
    TopologyCentroid,
    /// Operator-pinned hosts: `type` (or `type/capability`) → node.
    Pinned(BTreeMap<String, String>),
}

impl ElectionPolicy {
    /// Policy name for documents and logs.
    pub fn name(&self) -> &'static str {
        match self {
            ElectionPolicy::FirstDemand => "first-demand",
            ElectionPolicy::TopologyCentroid => "topology-centroid",
            ElectionPolicy::Pinned(_) => "pinned",
        }
    }
}

/// Domain-level sharing settings.
#[derive(Debug, Clone, Default)]
pub struct SharingConfig {
    /// Master switch; off preserves strictly per-node sharing (the
    /// pre-registry behavior). Can be toggled at runtime — deployed
    /// graphs keep the leases they hold, new plans follow the switch.
    pub enabled: bool,
    /// Functional types shared fleet-wide. A listed type must be
    /// sharable in the node NNF catalogs; nodes whose catalog does not
    /// mark it sharable are never elected hosts.
    pub types: BTreeSet<String>,
    /// Where shared instances live.
    pub election: ElectionPolicy,
    /// Maximum tenant *graphs* per shared instance (`None` =
    /// unlimited). A graph with several NFs of one key still holds a
    /// single lease, and re-planning a graph never double-counts the
    /// lease it already holds.
    pub max_leases: Option<usize>,
    /// When every replica of a key sits at `max_leases`, elect an
    /// additional replica on a fresh host and split tenants across the
    /// pool instead of returning
    /// [`SharingError::CapacityExhausted`]. Off by default — rejection
    /// stays the contract unless the operator opts in.
    pub scale_out: bool,
}

impl SharingConfig {
    /// Sharing enabled for the given functional types, first-demand
    /// election, unlimited leases.
    pub fn for_types(types: &[&str]) -> Self {
        SharingConfig {
            enabled: true,
            types: types.iter().map(|s| s.to_string()).collect(),
            election: ElectionPolicy::FirstDemand,
            max_leases: None,
            scale_out: false,
        }
    }
}

/// Why a sharing decision failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharingError {
    /// No serving node offers the type as a sharable NNF (or every
    /// candidate already hosts a different instance of the type).
    NoSharableHost {
        /// The share key (rendered).
        key: String,
    },
    /// The pinned host is unknown, dead, lacks the sharable NNF, or is
    /// not pinned at all under [`ElectionPolicy::Pinned`].
    PinnedHostUnusable {
        /// The share key (rendered).
        key: String,
        /// The pinned node (`<unpinned>` when the map has no entry).
        node: String,
    },
    /// The instance already serves `max_leases` tenant graphs.
    CapacityExhausted {
        /// The share key (rendered).
        key: String,
        /// The instance's host node.
        host: String,
        /// The configured per-instance tenant limit.
        max_leases: usize,
    },
}

impl fmt::Display for SharingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingError::NoSharableHost { key } => {
                write!(f, "no serving node can host shared NNF '{key}'")
            }
            SharingError::PinnedHostUnusable { key, node } => {
                write!(f, "shared NNF '{key}' pinned to unusable node '{node}'")
            }
            SharingError::CapacityExhausted {
                key,
                host,
                max_leases,
            } => write!(
                f,
                "shared NNF '{key}' on '{host}' is at capacity ({max_leases} tenant graphs)"
            ),
        }
    }
}

impl std::error::Error for SharingError {}

/// One graph's stake in one shared instance (stored per graph and
/// mirrored by the registry's lease table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedClaim {
    /// The node hosting the instance this graph rides.
    pub host: String,
    /// How many of the graph's NFs ride the instance (≥ 1; still one
    /// lease).
    pub nfs: usize,
}

/// One live domain-shared instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedInstance {
    /// What it is.
    pub key: ShareKey,
    /// Where it lives.
    pub host: String,
    /// Tenant graph → number of that graph's NFs riding the instance.
    /// Never empty: the last release drops the instance.
    pub leases: BTreeMap<String, usize>,
}

impl SharedInstance {
    /// Number of tenant graphs holding a lease.
    pub fn tenant_count(&self) -> usize {
        self.leases.len()
    }

    /// Total NF wires across all leases (the chaos suite's
    /// lease-conservation invariant balances this against the per-graph
    /// claim ledger).
    pub fn wires(&self) -> usize {
        self.leases.values().sum()
    }
}

/// The domain-wide catalog of shared instances.
///
/// A key maps to a *pool* of replicas (one per host). The common case
/// is a single replica; scale-out (see [`SharingConfig::scale_out`])
/// adds more when every existing replica sits at `max_leases`. A graph
/// holds at most one lease per key, on exactly one replica of the
/// pool.
#[derive(Debug, Default)]
pub struct SharedRegistry {
    instances: BTreeMap<ShareKey, Vec<SharedInstance>>,
}

impl SharedRegistry {
    /// Iterate live instances (every replica of every key).
    pub fn instances(&self) -> impl Iterator<Item = &SharedInstance> {
        self.instances.values().flatten()
    }

    /// Number of live instances (replicas, not keys).
    pub fn len(&self) -> usize {
        self.instances.values().map(Vec::len).sum()
    }

    /// True when no instance is registered.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The first replica for a key, if any is registered. Single-
    /// replica pools (the common case) have exactly one.
    pub fn get(&self, key: &ShareKey) -> Option<&SharedInstance> {
        self.instances.get(key).and_then(|pool| pool.first())
    }

    /// Every replica of a key, in host order (empty slice when none).
    pub fn replicas(&self, key: &ShareKey) -> &[SharedInstance] {
        self.instances.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The replica of `key` living on `host`, if any.
    pub fn replica_on(&self, key: &ShareKey, host: &str) -> Option<&SharedInstance> {
        self.replicas(key).iter().find(|i| i.host == host)
    }

    /// Keys of every instance hosted on `node` (at most one replica of
    /// a key lives on a given node, so keys are unique).
    pub fn hosted_on(&self, node: &str) -> Vec<ShareKey> {
        self.instances
            .values()
            .flatten()
            .filter(|i| i.host == node)
            .map(|i| i.key.clone())
            .collect()
    }

    /// Every lease `graph` holds, as per-graph claims. A graph leases
    /// at most one replica per key.
    pub fn leases_of(&self, graph: &str) -> BTreeMap<ShareKey, SharedClaim> {
        self.instances
            .values()
            .flatten()
            .filter_map(|i| {
                i.leases.get(graph).map(|nfs| {
                    (
                        i.key.clone(),
                        SharedClaim {
                            host: i.host.clone(),
                            nfs: *nfs,
                        },
                    )
                })
            })
            .collect()
    }

    /// Move the replica of `key` living on `from` to a new host
    /// (re-election / standby promotion after failure); leases carry
    /// over untouched. No-op if no replica lives on `from`.
    pub(crate) fn set_host(&mut self, key: &ShareKey, from: &str, to: &str) {
        if let Some(pool) = self.instances.get_mut(key) {
            if let Some(inst) = pool.iter_mut().find(|i| i.host == from) {
                inst.host = to.to_string();
            }
            pool.sort_by(|a, b| a.host.cmp(&b.host));
        }
    }

    /// Record (or refresh) `graph`'s lease on `key`'s replica at
    /// `host`, creating the replica on first demand. A lease the graph
    /// held on a *different* replica of the same key moves here (a
    /// graph never double-leases a key); a replica emptied by such a
    /// move is dropped. Returns `(instance_new, lease_new,
    /// replicas_dropped)` for the caller's counters. Re-acquiring a
    /// lease the graph already holds only updates its wire count — it
    /// never consumes a second capacity slot.
    pub(crate) fn commit(
        &mut self,
        graph: &str,
        key: &ShareKey,
        host: &str,
        nfs: usize,
    ) -> (bool, bool, usize) {
        let pool = self.instances.entry(key.clone()).or_default();
        // Drop the graph's lease on any other replica of this key,
        // discarding replicas the move empties.
        let mut moved = false;
        let before = pool.len();
        pool.retain_mut(|inst| {
            if inst.host != host && inst.leases.remove(graph).is_some() {
                moved = true;
            }
            !inst.leases.is_empty() || inst.host == host
        });
        let dropped = before - pool.len();
        let instance_new = !pool.iter().any(|i| i.host == host);
        if instance_new {
            pool.push(SharedInstance {
                key: key.clone(),
                host: host.to_string(),
                leases: BTreeMap::new(),
            });
            pool.sort_by(|a, b| a.host.cmp(&b.host));
        }
        let inst = pool
            .iter_mut()
            .find(|i| i.host == host)
            .expect("replica at host exists");
        let lease_new = inst.leases.insert(graph.to_string(), nfs).is_none() && !moved;
        (instance_new, lease_new, dropped)
    }

    /// Release every lease `graph` holds; replicas left without
    /// tenants are dropped (no orphan instances). Returns the dropped
    /// keys, one entry per dropped replica.
    pub(crate) fn release_graph(&mut self, graph: &str) -> Vec<ShareKey> {
        self.release_where(|_| true, graph)
    }

    /// Release `graph`'s leases on every key **not** in `keep` (the
    /// update path: a re-planned graph keeps only its current claims).
    pub(crate) fn release_except(
        &mut self,
        graph: &str,
        keep: &BTreeSet<ShareKey>,
    ) -> Vec<ShareKey> {
        self.release_where(|key| !keep.contains(key), graph)
    }

    fn release_where(&mut self, applies: impl Fn(&ShareKey) -> bool, graph: &str) -> Vec<ShareKey> {
        let mut dropped = Vec::new();
        self.instances.retain(|key, pool| {
            if applies(key) {
                pool.retain_mut(|inst| {
                    inst.leases.remove(graph);
                    if inst.leases.is_empty() {
                        dropped.push(key.clone());
                        false
                    } else {
                        true
                    }
                });
            }
            !pool.is_empty()
        });
        dropped
    }
}

/// Elect the host node for a shared instance.
///
/// Candidates are alive nodes whose NNF catalog marks the type
/// sharable, excluding `occupied` (nodes already hosting a *different*
/// instance of the same functional type — node-level NNF singletons
/// cannot run two). `demand` is the node set the demanding tenant
/// already occupies (its endpoints), `fabric_hops` the hop matrix
/// (`None` = full mesh, every distinct pair one hop). Scoring is total
/// hop distance to the policy's anchor set, ties broken
/// lexicographically, so election is deterministic and independent of
/// memory churn.
pub(crate) fn elect(
    key: &ShareKey,
    policy: &ElectionPolicy,
    views: &[NodeView],
    fabric_hops: Option<&BTreeMap<String, BTreeMap<String, u32>>>,
    demand: &BTreeSet<String>,
    occupied: &BTreeSet<String>,
) -> Result<String, SharingError> {
    let usable = |v: &NodeView| {
        v.alive && v.sharable_types.contains(&key.functional_type) && !occupied.contains(&v.name)
    };
    if let ElectionPolicy::Pinned(pins) = policy {
        let pin = pins
            .get(&key.render())
            .or_else(|| pins.get(&key.functional_type));
        let Some(node) = pin else {
            return Err(SharingError::PinnedHostUnusable {
                key: key.render(),
                node: "<unpinned>".to_string(),
            });
        };
        if views.iter().any(|v| v.name == *node && usable(v)) {
            return Ok(node.clone());
        }
        return Err(SharingError::PinnedHostUnusable {
            key: key.render(),
            node: node.clone(),
        });
    }
    let dist = |a: &str, b: &str| u64::from(Topology::hop_distance(fabric_hops, a, b));
    let anchors: BTreeSet<&str> = match policy {
        ElectionPolicy::FirstDemand => demand.iter().map(String::as_str).collect(),
        _ => views
            .iter()
            .filter(|v| v.alive)
            .map(|v| v.name.as_str())
            .collect(),
    };
    let mut best: Option<(u64, &str)> = None;
    for view in views.iter().filter(|v| usable(v)) {
        let score: u64 = anchors.iter().map(|a| dist(&view.name, a)).sum();
        if best.is_none_or(|(s, n)| (score, view.name.as_str()) < (s, n)) {
            best = Some((score, view.name.as_str()));
        }
    }
    best.map(|(_, name)| name.to_string())
        .ok_or_else(|| SharingError::NoSharableHost { key: key.render() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(name: &str, sharable: &[&str], alive: bool) -> NodeView {
        NodeView {
            name: name.to_string(),
            free_memory: 1 << 30,
            capacity: 1 << 30,
            native_types: sharable.iter().map(|s| s.to_string()).collect(),
            shared_running: BTreeSet::new(),
            sharable_types: sharable.iter().map(|s| s.to_string()).collect(),
            ports: BTreeSet::new(),
            alive,
        }
    }

    fn matrix(pairs: &[(&str, &str, u32)]) -> BTreeMap<String, BTreeMap<String, u32>> {
        let mut m: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for (a, b, d) in pairs {
            m.entry(a.to_string())
                .or_default()
                .insert(b.to_string(), *d);
            m.entry(b.to_string())
                .or_default()
                .insert(a.to_string(), *d);
        }
        m
    }

    #[test]
    fn share_key_reads_capability_from_config() {
        let mut g = un_nffg::NfFgBuilder::new("g", "g")
            .nf("a", "nat", 2)
            .build();
        assert_eq!(ShareKey::of_nf(&g.nfs[0]), ShareKey::new("nat", ""));
        g.nfs[0]
            .config
            .params
            .insert("share-capability".into(), "cgnat".into());
        let key = ShareKey::of_nf(&g.nfs[0]);
        assert_eq!(key, ShareKey::new("nat", "cgnat"));
        assert_eq!(key.render(), "nat/cgnat");
    }

    #[test]
    fn first_demand_elects_nearest_sharable_node() {
        // line a–b–c–d; demand sits at a; only c and d are sharable.
        let views = vec![
            view("a", &[], true),
            view("b", &[], true),
            view("c", &["nat"], true),
            view("d", &["nat"], true),
        ];
        let hops = matrix(&[
            ("a", "b", 1),
            ("a", "c", 2),
            ("a", "d", 3),
            ("b", "c", 1),
            ("b", "d", 2),
            ("c", "d", 1),
        ]);
        let demand: BTreeSet<String> = ["a".to_string()].into();
        let host = elect(
            &ShareKey::new("nat", ""),
            &ElectionPolicy::FirstDemand,
            &views,
            Some(&hops),
            &demand,
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(host, "c", "nearest sharable node to the demand");
    }

    #[test]
    fn centroid_minimizes_total_distance() {
        // line a–b–c: b is the centroid.
        let views = vec![
            view("a", &["nat"], true),
            view("b", &["nat"], true),
            view("c", &["nat"], true),
        ];
        let hops = matrix(&[("a", "b", 1), ("b", "c", 1), ("a", "c", 2)]);
        let host = elect(
            &ShareKey::new("nat", ""),
            &ElectionPolicy::TopologyCentroid,
            &views,
            Some(&hops),
            &BTreeSet::new(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(host, "b");
    }

    #[test]
    fn pinned_policy_demands_a_usable_pin() {
        let views = vec![view("a", &["nat"], true), view("b", &["nat"], false)];
        let pins: BTreeMap<String, String> = [("nat".to_string(), "a".to_string())].into();
        let key = ShareKey::new("nat", "");
        let ok = elect(
            &key,
            &ElectionPolicy::Pinned(pins.clone()),
            &views,
            None,
            &BTreeSet::new(),
            &BTreeSet::new(),
        );
        assert_eq!(ok.unwrap(), "a");
        // Dead pin and missing pin are typed errors.
        let dead: BTreeMap<String, String> = [("nat".to_string(), "b".to_string())].into();
        assert!(matches!(
            elect(
                &key,
                &ElectionPolicy::Pinned(dead),
                &views,
                None,
                &BTreeSet::new(),
                &BTreeSet::new()
            ),
            Err(SharingError::PinnedHostUnusable { .. })
        ));
        assert!(matches!(
            elect(
                &ShareKey::new("firewall", ""),
                &ElectionPolicy::Pinned(pins),
                &views,
                None,
                &BTreeSet::new(),
                &BTreeSet::new()
            ),
            Err(SharingError::PinnedHostUnusable { .. })
        ));
    }

    #[test]
    fn occupied_hosts_and_dead_nodes_are_skipped() {
        let views = vec![view("a", &["nat"], false), view("b", &["nat"], true)];
        let key = ShareKey::new("nat", "cgnat");
        let host = elect(
            &key,
            &ElectionPolicy::FirstDemand,
            &views,
            None,
            &BTreeSet::new(),
            &BTreeSet::new(),
        )
        .unwrap();
        assert_eq!(host, "b", "dead node is no candidate");
        // b hosts the default pool already: the cgnat pool cannot land
        // on the same node-level singleton.
        let occupied: BTreeSet<String> = ["b".to_string()].into();
        assert!(matches!(
            elect(
                &key,
                &ElectionPolicy::FirstDemand,
                &views,
                None,
                &BTreeSet::new(),
                &occupied
            ),
            Err(SharingError::NoSharableHost { .. })
        ));
    }

    #[test]
    fn registry_leases_are_per_graph_and_last_release_drops() {
        let mut r = SharedRegistry::default();
        let key = ShareKey::new("nat", "");
        assert_eq!(r.commit("g1", &key, "n1", 1), (true, true, 0));
        // Re-acquire by the same graph: no new lease, wires updated.
        assert_eq!(r.commit("g1", &key, "n1", 2), (false, false, 0));
        assert_eq!(r.commit("g2", &key, "n1", 1), (false, true, 0));
        let inst = r.get(&key).unwrap();
        assert_eq!(inst.tenant_count(), 2);
        assert_eq!(inst.wires(), 3);
        assert_eq!(r.leases_of("g1")[&key].nfs, 2);

        assert!(r.release_graph("g1").is_empty(), "g2 still leases");
        assert_eq!(r.release_graph("g2"), vec![key.clone()]);
        assert!(r.is_empty(), "no orphan instances");
    }

    #[test]
    fn scale_out_pools_hold_one_lease_per_key_per_graph() {
        let mut r = SharedRegistry::default();
        let key = ShareKey::new("nat", "");
        // Two replicas of one key (scale-out), tenants split.
        assert_eq!(r.commit("g1", &key, "n1", 1), (true, true, 0));
        assert_eq!(r.commit("g2", &key, "n2", 1), (true, true, 0));
        assert_eq!(r.len(), 2, "two replicas");
        assert_eq!(r.replicas(&key).len(), 2);
        assert_eq!(r.replica_on(&key, "n2").unwrap().tenant_count(), 1);
        assert_eq!(r.leases_of("g1")[&key].host, "n1");
        assert_eq!(r.leases_of("g2")[&key].host, "n2");
        assert_eq!(r.hosted_on("n2"), vec![key.clone()]);

        // Re-committing g1 onto n2 *moves* the lease (never two leases
        // on one key) and drops the replica the move emptied.
        assert_eq!(r.commit("g1", &key, "n2", 1), (false, false, 1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.leases_of("g1")[&key].host, "n2");
        assert_eq!(r.replica_on(&key, "n2").unwrap().tenant_count(), 2);
    }

    #[test]
    fn set_host_moves_only_the_named_replica() {
        let mut r = SharedRegistry::default();
        let key = ShareKey::new("nat", "");
        r.commit("g1", &key, "n1", 1);
        r.commit("g2", &key, "n2", 1);
        r.set_host(&key, "n1", "n3");
        assert!(r.replica_on(&key, "n1").is_none());
        assert_eq!(r.leases_of("g1")[&key].host, "n3");
        assert_eq!(
            r.leases_of("g2")[&key].host,
            "n2",
            "other replica untouched"
        );
    }

    #[test]
    fn release_except_keeps_current_claims() {
        let mut r = SharedRegistry::default();
        let nat = ShareKey::new("nat", "");
        let cg = ShareKey::new("nat", "cgnat");
        r.commit("g1", &nat, "n1", 1);
        r.commit("g1", &cg, "n2", 1);
        let keep: BTreeSet<ShareKey> = [nat.clone()].into();
        assert_eq!(r.release_except("g1", &keep), vec![cg]);
        assert!(r.get(&nat).is_some());
        assert_eq!(r.len(), 1);
    }
}
