//! Make-before-break standby plans and the availability model.
//!
//! Reactive repair pays full plan + partition + install latency as
//! downtime. The `Suspect` grace window is an early-warning signal:
//! while a node is merely suspect, [`crate::Domain`] pre-computes a
//! **standby plan** per affected graph — placement with survivors
//! pinned, overlay vids pre-reserved from the pool, transit routes
//! pre-solved — so grace expiry (or an explicit `fail_node`) becomes a
//! *swap*: the pre-staged parts install directly, skipping the whole
//! planning phase. A late heartbeat or `recover_node` discards the
//! standby and returns its vids to the pool, keeping the vid
//! conservation invariant intact. Shared-NNF replicas the suspect
//! hosts get a standby *host* pre-elected the same way, so
//! registry-level re-election at failure time is a promotion, not a
//! fresh election.
//!
//! The second half of this module is the **availability model**: a
//! running calibration of repair cost by kind ([`RepairCalibration`]),
//! a per-graph measured/modeled downtime ledger
//! ([`GraphAvailability`]), and the domain-wide
//! [`AvailabilityReport`] predicting per-graph availability from
//! exposure (nodes hosting parts), redundancy (standby ready or not),
//! and repair policy. The chaos suites validate the model empirically:
//! modeled downtime must bracket the measured `downtime_estimate_ns`
//! stream over random op sequences.

use std::collections::{BTreeMap, BTreeSet};

use crate::domain::Plan;
use crate::sharing::ShareKey;

/// Prediction for a repair kind that has never run: 50 µs, roughly one
/// small-graph repair on a release build. The first observed repair of
/// each kind replaces it, so the default only colors the very first
/// prediction of a domain's life.
pub const DEFAULT_REPAIR_NS: u64 = 50_000;

/// The three ways a graph comes back after a node failure, in
/// decreasing order of preparedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairKind {
    /// A pre-computed standby plan was promoted (make-before-break).
    StandbySwap,
    /// Reactive incremental repair: planned at failure time, survivors
    /// pinned.
    Reactive,
    /// Full from-scratch re-placement (policy or fallback).
    FromScratch,
}

/// Running calibration of repair cost by [`RepairKind`]: event counts
/// and summed `repair_duration_ns`, updated after every repair.
#[derive(Debug, Clone, Default)]
pub struct RepairCalibration {
    /// Standby-swap promotions observed / summed duration.
    pub swap_events: u64,
    /// Total nanoseconds spent in standby swaps.
    pub swap_ns: u64,
    /// Reactive incremental repairs observed.
    pub reactive_events: u64,
    /// Total nanoseconds spent in reactive incremental repairs.
    pub reactive_ns: u64,
    /// From-scratch replacements observed.
    pub scratch_events: u64,
    /// Total nanoseconds spent in from-scratch replacements.
    pub scratch_ns: u64,
}

impl RepairCalibration {
    /// Fold one observed repair into the calibration.
    pub fn record(&mut self, kind: RepairKind, duration_ns: u64) {
        match kind {
            RepairKind::StandbySwap => {
                self.swap_events += 1;
                self.swap_ns += duration_ns;
            }
            RepairKind::Reactive => {
                self.reactive_events += 1;
                self.reactive_ns += duration_ns;
            }
            RepairKind::FromScratch => {
                self.scratch_events += 1;
                self.scratch_ns += duration_ns;
            }
        }
    }

    /// Predicted duration of one repair of `kind`: the observed mean
    /// for that kind, falling back to the overall mean across kinds,
    /// falling back to [`DEFAULT_REPAIR_NS`] before any repair ran.
    pub fn predict(&self, kind: RepairKind) -> u64 {
        let (events, ns) = match kind {
            RepairKind::StandbySwap => (self.swap_events, self.swap_ns),
            RepairKind::Reactive => (self.reactive_events, self.reactive_ns),
            RepairKind::FromScratch => (self.scratch_events, self.scratch_ns),
        };
        // `checked_div` yields `None` for a zero divisor, i.e. no
        // observations of that kind (or none at all) yet.
        let total_events = self.swap_events + self.reactive_events + self.scratch_events;
        ns.checked_div(events)
            .or_else(|| {
                (self.swap_ns + self.reactive_ns + self.scratch_ns).checked_div(total_events)
            })
            .unwrap_or(DEFAULT_REPAIR_NS)
    }

    /// Total repairs folded in, across kinds.
    pub fn events(&self) -> u64 {
        self.swap_events + self.reactive_events + self.scratch_events
    }
}

/// Per-graph availability ledger: what downtime this graph actually
/// paid (measured) and what the model predicted at each event
/// (modeled). Survives undeploy — it is history, not live state.
#[derive(Debug, Clone, Default)]
pub struct GraphAvailability {
    /// The graph id.
    pub graph: String,
    /// Repairs this graph went through.
    pub repairs: u64,
    /// Of those, standby-swap promotions.
    pub standby_promotions: u64,
    /// Summed measured `downtime_estimate_ns` across repairs.
    pub measured_downtime_ns: u64,
    /// Summed model predictions, stamped at each repair *before* it
    /// ran (queueing delay of earlier graphs in the sweep included).
    pub modeled_downtime_ns: u64,
    /// Times the graph was parked (`NoRoute` / no capacity).
    pub park_events: u64,
    /// Summed park→drain downtime, stamped when `retry_pending` (or an
    /// explicit redeploy) restored the graph.
    pub park_downtime_ns: u64,
}

impl GraphAvailability {
    /// An empty ledger for one graph.
    pub fn new(graph: &str) -> Self {
        GraphAvailability {
            graph: graph.to_string(),
            ..GraphAvailability::default()
        }
    }
}

/// One deployed graph's availability prediction.
#[derive(Debug, Clone)]
pub struct GraphPrediction {
    /// The graph id.
    pub graph: String,
    /// Nodes hosting a part of this graph — each is an independent
    /// failure exposure.
    pub exposed_nodes: usize,
    /// Is a standby plan staged for this graph right now?
    pub standby_ready: bool,
    /// Predicted per-failure downtime with the graph's current
    /// protections (standby swap when staged, the policy's reactive
    /// repair otherwise).
    pub predicted_repair_ns: u64,
    /// Predicted per-failure downtime of the policy's reactive repair
    /// (the standby column's baseline).
    pub predicted_reactive_ns: u64,
    /// Predicted availability `A = 1 − exposed · d_repair / MTBF`:
    /// each exposed node fails once per `node_mtbf_ns` on average,
    /// costing one predicted repair of downtime.
    pub predicted_availability: f64,
    /// The graph's measured/modeled history.
    pub ledger: GraphAvailability,
}

/// The domain-wide modeled-vs-measured availability report
/// (`Domain::availability_report`, served as `GET
/// /domain/availability`).
#[derive(Debug, Clone)]
pub struct AvailabilityReport {
    /// Assumed node MTBF feeding the predictions.
    pub node_mtbf_ns: u64,
    /// Repair-cost calibration the predictions draw from.
    pub calibration: RepairCalibration,
    /// Summed model predictions across every graph ever repaired.
    pub modeled_downtime_ns: u64,
    /// Summed measured `downtime_estimate_ns` across the same events.
    pub measured_downtime_ns: u64,
    /// Repair events backing the two sums.
    pub repair_events: u64,
    /// Per-deployed-graph predictions.
    pub graphs: Vec<GraphPrediction>,
}

/// One pre-staged graph repair: the plan computed while the node was
/// merely suspect, plus enough of the then-current deployment to
/// detect staleness at promotion time.
pub(crate) struct GraphStandby {
    /// The pre-computed repair plan (vids in `plan.taken` are reserved
    /// out of the pool until promotion or discard).
    pub plan: Plan,
    /// The entry's overlay vids at compute time; promotion requires
    /// them unchanged (an update/repair in between re-planned the
    /// graph and staled this standby).
    pub old_vids: Vec<u16>,
}

/// Everything pre-staged for one suspect node.
#[derive(Default)]
pub(crate) struct NodeStandby {
    /// Affected graph → its standby plan.
    pub graphs: BTreeMap<String, GraphStandby>,
    /// Shared replica on the suspect → pre-elected replacement host.
    pub shared: BTreeMap<ShareKey, String>,
}

/// Standby plans per suspect node.
#[derive(Default)]
pub(crate) struct StandbyRegistry {
    per_node: BTreeMap<String, NodeStandby>,
}

impl StandbyRegistry {
    /// Is a standby staged for this node?
    pub fn contains(&self, node: &str) -> bool {
        self.per_node.contains_key(node)
    }

    /// Stage a node's standby.
    pub fn insert(&mut self, node: String, sb: NodeStandby) {
        self.per_node.insert(node, sb);
    }

    /// Consume a node's standby (promotion or discard).
    pub fn take(&mut self, node: &str) -> Option<NodeStandby> {
        self.per_node.remove(node)
    }

    /// Remove one graph's plan from one node's standby.
    pub fn remove_graph(&mut self, node: &str, gid: &str) -> Option<GraphStandby> {
        self.per_node.get_mut(node)?.graphs.remove(gid)
    }

    /// Remove `gid`'s plan from **every** node's standby (the graph
    /// was re-planned: update, undeploy — all its standbys are stale).
    pub fn drain_graph(&mut self, gid: &str) -> Vec<(String, GraphStandby)> {
        let mut out = Vec::new();
        for (node, sb) in self.per_node.iter_mut() {
            if let Some(g) = sb.graphs.remove(gid) {
                out.push((node.clone(), g));
            }
        }
        out
    }

    /// Iterate staged standbys.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &NodeStandby)> {
        self.per_node.iter()
    }

    /// Total staged graph plans (the `un_standby_active` gauge).
    pub fn graph_plans(&self) -> usize {
        self.per_node.values().map(|sb| sb.graphs.len()).sum()
    }

    /// Graphs with at least one staged plan.
    pub fn ready_graphs(&self) -> BTreeSet<String> {
        self.per_node
            .values()
            .flat_map(|sb| sb.graphs.keys().cloned())
            .collect()
    }

    /// Every vid reserved by a staged plan (unsorted).
    pub fn reserved_vids(&self) -> Vec<u16> {
        self.per_node
            .values()
            .flat_map(|sb| sb.graphs.values())
            .flat_map(|g| g.plan.taken.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_predicts_per_kind_then_overall_then_default() {
        let mut c = RepairCalibration::default();
        assert_eq!(c.predict(RepairKind::StandbySwap), DEFAULT_REPAIR_NS);
        c.record(RepairKind::Reactive, 1_000);
        c.record(RepairKind::Reactive, 3_000);
        assert_eq!(c.predict(RepairKind::Reactive), 2_000, "per-kind mean");
        assert_eq!(
            c.predict(RepairKind::StandbySwap),
            2_000,
            "unseen kind falls back to the overall mean"
        );
        c.record(RepairKind::StandbySwap, 100);
        assert_eq!(c.predict(RepairKind::StandbySwap), 100);
        assert_eq!(c.events(), 3);
    }
}
