//! The fabric topology: which nodes are actually "wired" to which.
//!
//! The overlay used to assume a full mesh — every cut edge was a
//! point-to-point shuttle between its two nodes. A domain spanning
//! racks is not wired like that: frames between non-adjacent nodes
//! must transit intermediate nodes. [`Topology`] is the explicit
//! node-adjacency graph (per-edge latency and capacity), and
//! [`Topology::shortest_path`] is the path engine: deterministic
//! Dijkstra minimizing hop count first, then accumulated latency,
//! then lexicographic node order (so equal-cost paths are stable
//! across runs and across the twin domains of the chaos suite).
//!
//! The default is [`Topology::full_mesh`], which keeps every pre-fabric
//! deployment byte-identical: every pair of serving nodes is adjacent
//! and every overlay path has length one.

use std::collections::{BTreeMap, BTreeSet};

/// Hop distance assumed between nodes a hop matrix reports no path
/// for: far enough that any connected candidate wins every distance
/// comparison, without overflowing summed scores.
pub const UNREACHABLE_HOPS: u32 = 16;

/// Fixed-point congestion units charged per riding path on an edge of
/// reference capacity. An edge of half the reference capacity charges
/// twice as much per path, so thin pipes repel new overlay paths
/// sooner than fat ones.
pub const CONGESTION_SCALE: u64 = 1_000;

/// The capacity at which one riding path costs exactly
/// [`CONGESTION_SCALE`] congestion units (the `EdgeAttrs` default,
/// 10 Gb/s).
pub const REFERENCE_CAPACITY_BPS: u64 = 10_000_000_000;

/// Properties of one fabric edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeAttrs {
    /// Propagation + switching cost of crossing this edge once, in
    /// nanoseconds. Used as the per-hop cost in the data plane and as
    /// the Dijkstra tie-break among equal-hop paths.
    pub latency_ns: u64,
    /// Nominal capacity in bits per second. A routing input: the
    /// congestion charge of [`Topology::shortest_path_loaded`] scales
    /// inversely with capacity, so loaded or thin edges repel new
    /// overlay paths.
    pub capacity_bps: u64,
}

impl Default for EdgeAttrs {
    fn default() -> Self {
        EdgeAttrs {
            latency_ns: 5_000,            // one default overlay hop
            capacity_bps: 10_000_000_000, // 10 Gb/s
        }
    }
}

/// The node-adjacency graph of the fabric.
///
/// Two modes:
///
/// * **full mesh** (the default): every pair of nodes is implicitly
///   adjacent; edge attributes come from the domain config
///   (`overlay_link_ns`). Backward compatible — no transit hops ever.
/// * **explicit**: only edges added via [`Topology::add_edge`] (or the
///   [`Topology::line`] / [`Topology::ring`] constructors) exist, and
///   overlay links between non-adjacent nodes are routed multi-hop.
///
/// Edges are undirected: `add_edge(a, b, …)` wires both directions.
/// A fleet node absent from an explicit topology is isolated — it can
/// host single-node graphs but no overlay link can reach it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    full_mesh: bool,
    /// node → neighbor → edge attributes (stored symmetrically).
    edges: BTreeMap<String, BTreeMap<String, EdgeAttrs>>,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::full_mesh()
    }
}

impl Topology {
    /// Every pair of nodes is adjacent (the pre-fabric behavior).
    pub fn full_mesh() -> Self {
        Topology {
            full_mesh: true,
            edges: BTreeMap::new(),
        }
    }

    /// An explicit topology with no edges yet.
    pub fn explicit() -> Self {
        Topology {
            full_mesh: false,
            edges: BTreeMap::new(),
        }
    }

    /// A line `names[0] – names[1] – … – names[n-1]`.
    pub fn line(names: &[&str], attrs: EdgeAttrs) -> Self {
        let mut t = Topology::explicit();
        for pair in names.windows(2) {
            t.add_edge(pair[0], pair[1], attrs);
        }
        t
    }

    /// A ring: the line plus a closing `names[n-1] – names[0]` edge.
    pub fn ring(names: &[&str], attrs: EdgeAttrs) -> Self {
        let mut t = Topology::line(names, attrs);
        if names.len() > 2 {
            t.add_edge(names[names.len() - 1], names[0], attrs);
        }
        t
    }

    /// Wire `a – b` (both directions). Re-adding an edge updates its
    /// attributes. Self-loops are ignored.
    pub fn add_edge(&mut self, a: &str, b: &str, attrs: EdgeAttrs) -> &mut Self {
        if a != b {
            self.edges
                .entry(a.to_string())
                .or_default()
                .insert(b.to_string(), attrs);
            self.edges
                .entry(b.to_string())
                .or_default()
                .insert(a.to_string(), attrs);
        }
        self
    }

    /// True in full-mesh mode.
    pub fn is_full_mesh(&self) -> bool {
        self.full_mesh
    }

    /// The explicit edges, each reported once (`a < b`).
    pub fn edge_list(&self) -> Vec<(String, String, EdgeAttrs)> {
        self.edges
            .iter()
            .flat_map(|(a, nbrs)| {
                nbrs.iter()
                    .filter(move |(b, _)| a < *b)
                    .map(move |(b, attrs)| (a.clone(), b.clone(), *attrs))
            })
            .collect()
    }

    /// Are `a` and `b` directly wired? (Always true pairwise in a full
    /// mesh; a node is never adjacent to itself.)
    pub fn adjacent(&self, a: &str, b: &str) -> bool {
        if a == b {
            return false;
        }
        if self.full_mesh {
            return true;
        }
        self.edges.get(a).is_some_and(|n| n.contains_key(b))
    }

    /// Attributes of the **explicit** `a – b` edge, if one was added.
    /// Full-mesh (implicit) adjacency returns `None` — the caller owns
    /// the default cost of an implicit hop.
    pub fn edge(&self, a: &str, b: &str) -> Option<EdgeAttrs> {
        self.edges.get(a).and_then(|n| n.get(b)).copied()
    }

    /// Shortest usable path from `from` to `to` as the full node
    /// sequence (`[from, …, to]`), or `None` when disconnected.
    ///
    /// Dijkstra minimizing `(hops, total latency, lexicographic
    /// frontier)` — hop count is the primary cost, so a two-hop path
    /// over fast links never beats a direct edge. `usable` filters the
    /// nodes a path may touch (callers pass the serving set, so no
    /// path ever transits a failed node); both ends must be usable.
    pub fn shortest_path(
        &self,
        from: &str,
        to: &str,
        usable: &dyn Fn(&str) -> bool,
    ) -> Option<Vec<String>> {
        self.shortest_path_loaded(from, to, usable, &|_, _| 0)
    }

    /// Capacity-aware variant of [`Topology::shortest_path`].
    ///
    /// `edge_load(a, b)` reports how many overlay paths already ride
    /// the `a – b` edge; each riding path charges
    /// `CONGESTION_SCALE × REFERENCE_CAPACITY_BPS / capacity_bps`
    /// congestion units, so loaded edges — and thin edges under equal
    /// load — repel new paths. The cost order is `(hops, congestion,
    /// latency, lexicographic frontier)`: hop count stays primary (a
    /// detour is never taken just to dodge load), and with zero load
    /// everywhere the result is byte-identical to `shortest_path`, so
    /// the deterministic tie-break is preserved.
    pub fn shortest_path_loaded(
        &self,
        from: &str,
        to: &str,
        usable: &dyn Fn(&str) -> bool,
        edge_load: &dyn Fn(&str, &str) -> u64,
    ) -> Option<Vec<String>> {
        if !usable(from) || !usable(to) {
            return None;
        }
        if from == to {
            return Some(vec![from.to_string()]);
        }
        if self.full_mesh {
            return Some(vec![from.to_string(), to.to_string()]);
        }
        // (hops, congestion, latency, node) in a BTreeSet doubles as a
        // deterministic priority queue; fleet sizes are small enough
        // that the log-n set operations dwarf nothing.
        let mut best: BTreeMap<&str, (u32, u64, u64)> = BTreeMap::new();
        let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: BTreeSet<(u32, u64, u64, &str)> = BTreeSet::new();
        best.insert(from, (0, 0, 0));
        queue.insert((0, 0, 0, from));
        while let Some(&(hops, load, lat, node)) = queue.iter().next() {
            queue.remove(&(hops, load, lat, node));
            if node == to {
                break;
            }
            if best.get(node) != Some(&(hops, load, lat)) {
                continue; // stale queue entry
            }
            let Some(nbrs) = self.edges.get(node) else {
                continue;
            };
            for (next, attrs) in nbrs {
                if !usable(next) {
                    continue;
                }
                let charge = Self::congestion_charge(attrs, edge_load(node, next));
                let cand = (
                    hops + 1,
                    load.saturating_add(charge),
                    lat.saturating_add(attrs.latency_ns),
                );
                let better = match best.get(next.as_str()) {
                    None => true,
                    Some(old) => cand < *old,
                };
                if better {
                    if let Some(old) = best.insert(next.as_str(), cand) {
                        queue.remove(&(old.0, old.1, old.2, next.as_str()));
                    }
                    prev.insert(next.as_str(), node);
                    queue.insert((cand.0, cand.1, cand.2, next.as_str()));
                }
            }
        }
        best.get(to)?;
        let mut path = vec![to.to_string()];
        let mut cur = to;
        while let Some(&p) = prev.get(cur) {
            path.push(p.to_string());
            cur = p;
        }
        if cur != from {
            return None;
        }
        path.reverse();
        Some(path)
    }

    /// Congestion units charged for crossing an edge already carrying
    /// `riding_paths` overlay paths: linear in load, inverse in
    /// capacity, fixed-point so the comparison stays integral and
    /// deterministic.
    fn congestion_charge(attrs: &EdgeAttrs, riding_paths: u64) -> u64 {
        let per_path = CONGESTION_SCALE
            .saturating_mul(REFERENCE_CAPACITY_BPS)
            .checked_div(attrs.capacity_bps.max(1))
            .unwrap_or(u64::MAX);
        riding_paths.saturating_mul(per_path)
    }

    /// Hop distances from every node of `nodes` to every other, walking
    /// only `nodes` (BFS per source), keyed `src → dst → hops`;
    /// unreachable destinations are absent from the source's row.
    /// Full-mesh mode returns `None` — every distance is 1 and callers
    /// skip the O(n²) matrix entirely.
    pub fn hop_matrix(
        &self,
        nodes: &BTreeSet<String>,
    ) -> Option<BTreeMap<String, BTreeMap<String, u32>>> {
        if self.full_mesh {
            return None;
        }
        let mut out = BTreeMap::new();
        for src in nodes {
            let mut dist: BTreeMap<&str, u32> = BTreeMap::new();
            let mut frontier: Vec<&str> = vec![src.as_str()];
            dist.insert(src.as_str(), 0);
            let mut d = 0;
            while !frontier.is_empty() {
                d += 1;
                let mut next_frontier = Vec::new();
                for node in frontier {
                    let Some(nbrs) = self.edges.get(node) else {
                        continue;
                    };
                    for next in nbrs.keys() {
                        if nodes.contains(next) && !dist.contains_key(next.as_str()) {
                            dist.insert(next.as_str(), d);
                            next_frontier.push(next.as_str());
                        }
                    }
                }
                frontier = next_frontier;
            }
            let row: BTreeMap<String, u32> =
                dist.into_iter().map(|(n, d)| (n.to_string(), d)).collect();
            out.insert(src.clone(), row);
        }
        Some(out)
    }

    /// Hop distance between two nodes given an optional hop matrix
    /// (`None` = full mesh): 0 to itself, 1 between any full-mesh
    /// pair, the matrix entry otherwise, [`UNREACHABLE_HOPS`] when the
    /// matrix has no path. One definition shared by the placement
    /// scorer, endpoint assignment, and shared-NNF host election, so
    /// the three can never disagree on what "unreachable" costs.
    pub fn hop_distance(
        fabric_hops: Option<&BTreeMap<String, BTreeMap<String, u32>>>,
        a: &str,
        b: &str,
    ) -> u32 {
        if a == b {
            return 0;
        }
        match fabric_hops {
            None => 1,
            Some(hops) => hops
                .get(a)
                .and_then(|row| row.get(b))
                .copied()
                .unwrap_or(UNREACHABLE_HOPS),
        }
    }

    /// Is `path` a valid walk through this topology (consecutive nodes
    /// adjacent, no repeats)? Used by the chaos-suite invariants.
    pub fn validates_path(&self, path: &[String]) -> bool {
        if path.len() < 2 {
            return false;
        }
        let distinct: BTreeSet<&String> = path.iter().collect();
        if distinct.len() != path.len() {
            return false;
        }
        path.windows(2).all(|w| self.adjacent(&w[0], &w[1]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usable_all(_: &str) -> bool {
        true
    }

    #[test]
    fn full_mesh_paths_are_direct() {
        let t = Topology::full_mesh();
        assert!(t.adjacent("a", "z"));
        assert_eq!(
            t.shortest_path("a", "z", &usable_all).unwrap(),
            vec!["a", "z"]
        );
        assert!(t.hop_matrix(&BTreeSet::new()).is_none());
        // Implicit adjacency carries no explicit attributes — the
        // domain owns the cost of a full-mesh hop.
        assert!(t.edge("a", "b").is_none());
    }

    #[test]
    fn line_routes_through_the_middle() {
        let t = Topology::line(&["a", "b", "c"], EdgeAttrs::default());
        assert!(t.adjacent("a", "b"));
        assert!(!t.adjacent("a", "c"));
        assert_eq!(
            t.shortest_path("a", "c", &usable_all).unwrap(),
            vec!["a", "b", "c"]
        );
        // Losing the middle disconnects the ends.
        assert!(t.shortest_path("a", "c", &|n| n != "b").is_none());
        // A failed endpoint is no path at all.
        assert!(t.shortest_path("a", "c", &|n| n != "c").is_none());
    }

    #[test]
    fn ring_reroutes_around_a_failure() {
        let t = Topology::ring(&["a", "b", "c", "d"], EdgeAttrs::default());
        // a–b–c and a–d–c tie on hops; latency ties too, so the
        // lexicographically smaller frontier wins deterministically.
        assert_eq!(
            t.shortest_path("a", "c", &usable_all).unwrap(),
            vec!["a", "b", "c"]
        );
        assert_eq!(
            t.shortest_path("a", "c", &|n| n != "b").unwrap(),
            vec!["a", "d", "c"]
        );
    }

    #[test]
    fn hops_beat_latency_latency_breaks_ties() {
        let mut t = Topology::explicit();
        let fast = EdgeAttrs {
            latency_ns: 1,
            ..EdgeAttrs::default()
        };
        let slow = EdgeAttrs {
            latency_ns: 1_000_000,
            ..EdgeAttrs::default()
        };
        // Direct slow edge vs two fast hops: hop count wins.
        t.add_edge("a", "c", slow);
        t.add_edge("a", "b", fast);
        t.add_edge("b", "c", fast);
        assert_eq!(
            t.shortest_path("a", "c", &usable_all).unwrap(),
            vec!["a", "c"]
        );
        // Two equal-hop two-hop paths: lower total latency wins.
        let mut t = Topology::explicit();
        t.add_edge("a", "b", slow);
        t.add_edge("b", "z", slow);
        t.add_edge("a", "y", fast);
        t.add_edge("y", "z", fast);
        assert_eq!(
            t.shortest_path("a", "z", &usable_all).unwrap(),
            vec!["a", "y", "z"]
        );
    }

    #[test]
    fn loaded_edges_repel_equal_hop_paths() {
        let t = Topology::ring(&["a", "b", "c", "d"], EdgeAttrs::default());
        // Unloaded, a–b–c wins the lexicographic tie-break (same as
        // shortest_path — zero load must be byte-identical).
        assert_eq!(
            t.shortest_path_loaded("a", "c", &usable_all, &|_, _| 0)
                .unwrap(),
            vec!["a", "b", "c"]
        );
        // One path already riding a–b pushes the next one to a–d–c.
        let load = |x: &str, y: &str| u64::from((x, y) == ("a", "b") || (x, y) == ("b", "a"));
        assert_eq!(
            t.shortest_path_loaded("a", "c", &usable_all, &load)
                .unwrap(),
            vec!["a", "d", "c"]
        );
        // …but never at the cost of an extra hop: the direct a–b edge
        // still beats a two-hop detour no matter how loaded it is.
        let t2 = Topology::ring(&["a", "b", "c"], EdgeAttrs::default());
        assert_eq!(
            t2.shortest_path_loaded("a", "b", &usable_all, &|_, _| 1_000)
                .unwrap(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn thin_edges_charge_more_per_riding_path() {
        // Two equal-hop, equally-loaded routes; the one over the thin
        // (1 Gb/s) edge charges 10x the congestion and loses, even
        // though its latency tie-break would have won.
        let mut t = Topology::explicit();
        let thin_fast = EdgeAttrs {
            latency_ns: 1,
            capacity_bps: 1_000_000_000,
        };
        let fat_slow = EdgeAttrs {
            latency_ns: 1_000,
            ..EdgeAttrs::default()
        };
        t.add_edge("a", "b", thin_fast);
        t.add_edge("b", "z", thin_fast);
        t.add_edge("a", "y", fat_slow);
        t.add_edge("y", "z", fat_slow);
        assert_eq!(
            t.shortest_path_loaded("a", "z", &usable_all, &|_, _| 0)
                .unwrap(),
            vec!["a", "b", "z"],
            "unloaded: latency tie-break picks the fast thin route"
        );
        assert_eq!(
            t.shortest_path_loaded("a", "z", &usable_all, &|_, _| 1)
                .unwrap(),
            vec!["a", "y", "z"],
            "under load: the fat route's lower congestion charge wins"
        );
    }

    #[test]
    fn hop_matrix_matches_paths() {
        let t = Topology::line(&["a", "b", "c", "d"], EdgeAttrs::default());
        let nodes: BTreeSet<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let m = t.hop_matrix(&nodes).unwrap();
        assert_eq!(m["a"]["d"], 3);
        assert_eq!(m["a"]["a"], 0);
        assert_eq!(m["b"]["c"], 1);
        // Restricting the walkable set lengthens (or severs) routes.
        let ends: BTreeSet<String> = ["a", "d"].iter().map(|s| s.to_string()).collect();
        let m = t.hop_matrix(&ends).unwrap();
        assert!(!m["a"].contains_key("d"));
    }

    #[test]
    fn validates_path_checks_adjacency_and_loops() {
        let t = Topology::line(&["a", "b", "c"], EdgeAttrs::default());
        let path = |names: &[&str]| names.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(t.validates_path(&path(&["a", "b", "c"])));
        assert!(!t.validates_path(&path(&["a", "c"])), "not adjacent");
        assert!(!t.validates_path(&path(&["a"])), "too short");
        assert!(!t.validates_path(&path(&["a", "b", "a"])), "repeat");
        assert!(Topology::full_mesh().validates_path(&path(&["a", "z"])));
    }

    #[test]
    fn edge_list_reports_each_edge_once() {
        let t = Topology::ring(&["a", "b", "c"], EdgeAttrs::default());
        let edges = t.edge_list();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|(a, b, _)| a < b));
    }
}
