//! Monolithic VM disk images.
//!
//! Unlike container images, VM disk images are self-contained (a full
//! OS per image, no layer sharing) — the structural reason the paper's
//! image-size column reads 522 MB for KVM/QEMU vs 240 MB for Docker.

use std::collections::BTreeMap;

/// One disk image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskImage {
    /// Image name, e.g. `"strongswan-vm"`.
    pub name: String,
    /// On-disk size in bytes.
    pub size: u64,
}

/// The hypervisor's image directory.
#[derive(Debug, Default)]
pub struct VmImageStore {
    images: BTreeMap<String, DiskImage>,
}

impl VmImageStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) an image.
    pub fn add(&mut self, image: DiskImage) {
        self.images.insert(image.name.clone(), image);
    }

    /// Look up an image.
    pub fn get(&self, name: &str) -> Option<&DiskImage> {
        self.images.get(name)
    }

    /// Remove an image, returning bytes reclaimed.
    pub fn remove(&mut self, name: &str) -> u64 {
        self.images.remove(name).map(|i| i.size).unwrap_or(0)
    }

    /// Total bytes on disk. No deduplication: two VM images with the
    /// same base OS still cost twice the storage.
    pub fn disk_usage(&self) -> u64 {
        self.images.values().map(|i| i.size).sum()
    }

    /// Number of stored images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use un_sim::mem::mb;

    #[test]
    fn store_and_sizes_no_dedup() {
        let mut s = VmImageStore::new();
        s.add(DiskImage {
            name: "strongswan-vm".into(),
            size: mb(522),
        });
        s.add(DiskImage {
            name: "firewall-vm".into(),
            size: mb(519),
        });
        // Same base OS inside, but no sharing between VM images.
        assert_eq!(s.disk_usage(), mb(522 + 519));
        assert_eq!(s.get("strongswan-vm").unwrap().size, mb(522));
        assert_eq!(s.remove("firewall-vm"), mb(519));
        assert_eq!(s.disk_usage(), mb(522));
        assert_eq!(s.remove("ghost"), 0);
    }
}
