//! # un-hypervisor — the KVM/QEMU-like VM substrate
//!
//! Models the properties of the VM flavor that the paper's Table 1
//! blames for its cost:
//!
//! * **Data plane**: every packet crosses the virtualization boundary —
//!   tap → virtio ring (copy) → vmexit/interrupt → guest kernel →
//!   guest *userspace* (the paper's strongSwan-in-a-VM does its IPsec in
//!   the process running inside the VM) → back. That is 4 extra copies,
//!   2 vmexits and 2 guest user/kernel crossings per packet compared to
//!   the host-kernel flavors — the structural reason the paper measures
//!   796 vs ~1095 Mbps.
//! * **Footprint**: a full guest (kernel + userspace) lives in RAM next
//!   to the hypervisor process, and the disk image carries an entire
//!   OS (522 MB vs Docker's 240 MB layers vs the 5 MB native package).
//!
//! [`virtio`] implements split-ring virtqueues with kick accounting;
//! [`image`] the monolithic disk-image store; [`vm`] the VM lifecycle,
//! NICs and guest applications (userspace IPsec, L2 forwarder).

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod image;
pub mod virtio;
pub mod vm;

pub use image::{DiskImage, VmImageStore};
pub use virtio::{Virtqueue, VIRTQUEUE_SIZE};
pub use vm::{GuestApp, Hypervisor, UserspaceIpsecApp, Vm, VmError, VmId, VmState};
