//! Split-ring virtqueues (virtio 1.0 style, simplified).
//!
//! A queue is a bounded ring of packet buffers with free-running 16-bit
//! avail/used indices (wrapping arithmetic, as on real hardware). The
//! driver side `push`es buffers and `kick`s the device; the device side
//! `pop`s them. Kicks are suppressed while the device is already
//! processing (`NO_NOTIFY`), which is what makes virtio efficient under
//! batching — and each *unsuppressed* kick is a vmexit the cost model
//! charges.

use std::collections::VecDeque;

use un_packet::Packet;

/// Ring capacity (descriptors).
pub const VIRTQUEUE_SIZE: u16 = 256;

/// A one-direction virtqueue carrying packets.
#[derive(Debug)]
pub struct Virtqueue {
    ring: VecDeque<Packet>,
    /// Free-running index of buffers made available by the driver.
    pub avail_idx: u16,
    /// Free-running index of buffers consumed by the device.
    pub used_idx: u16,
    /// Device-side notification suppression (VIRTQ_USED_F_NO_NOTIFY).
    pub no_notify: bool,
    /// Kicks actually delivered (each one models a vmexit).
    pub kicks: u64,
    /// Kicks suppressed by `no_notify`.
    pub suppressed_kicks: u64,
    /// Buffers dropped because the ring was full.
    pub ring_full_drops: u64,
}

impl Default for Virtqueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Virtqueue {
    /// An empty queue.
    pub fn new() -> Self {
        Virtqueue {
            ring: VecDeque::with_capacity(VIRTQUEUE_SIZE as usize),
            avail_idx: 0,
            used_idx: 0,
            no_notify: false,
            kicks: 0,
            suppressed_kicks: 0,
            ring_full_drops: 0,
        }
    }

    /// Buffers currently in flight (avail but not used).
    pub fn in_flight(&self) -> u16 {
        self.avail_idx.wrapping_sub(self.used_idx)
    }

    /// True if the ring has no room.
    pub fn is_full(&self) -> bool {
        self.in_flight() >= VIRTQUEUE_SIZE
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.in_flight() == 0
    }

    /// Driver side: make a buffer available. Returns `true` if a kick
    /// (notification → vmexit) was delivered, `false` if the buffer was
    /// queued without a kick or dropped (ring full).
    pub fn push(&mut self, pkt: Packet) -> bool {
        if self.is_full() {
            self.ring_full_drops += 1;
            return false;
        }
        self.ring.push_back(pkt);
        self.avail_idx = self.avail_idx.wrapping_add(1);
        if self.no_notify {
            self.suppressed_kicks += 1;
            false
        } else {
            self.kicks += 1;
            true
        }
    }

    /// Device side: consume the next available buffer.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.ring.pop_front()?;
        self.used_idx = self.used_idx.wrapping_add(1);
        Some(pkt)
    }

    /// Device side: enter/leave polling mode (suppress notifications).
    pub fn set_no_notify(&mut self, on: bool) {
        self.no_notify = on;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet::from_slice(&[0u8; 64])
    }

    #[test]
    fn push_pop_fifo() {
        let mut q = Virtqueue::new();
        assert!(q.is_empty());
        let mut a = pkt();
        a.meta.trace_id = 1;
        let mut b = pkt();
        b.meta.trace_id = 2;
        assert!(q.push(a));
        assert!(q.push(b));
        assert_eq!(q.in_flight(), 2);
        assert_eq!(q.pop().unwrap().meta.trace_id, 1);
        assert_eq!(q.pop().unwrap().meta.trace_id, 2);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ring_full_drops() {
        let mut q = Virtqueue::new();
        for _ in 0..VIRTQUEUE_SIZE {
            assert!(q.push(pkt()));
        }
        assert!(q.is_full());
        assert!(!q.push(pkt()));
        assert_eq!(q.ring_full_drops, 1);
        q.pop();
        assert!(q.push(pkt()), "space after pop");
    }

    #[test]
    fn notify_suppression() {
        let mut q = Virtqueue::new();
        assert!(q.push(pkt()), "first push kicks");
        q.set_no_notify(true);
        assert!(!q.push(pkt()), "suppressed");
        assert!(!q.push(pkt()), "suppressed");
        q.set_no_notify(false);
        assert!(q.push(pkt()));
        assert_eq!(q.kicks, 2);
        assert_eq!(q.suppressed_kicks, 2);
    }

    #[test]
    fn index_wraparound() {
        let mut q = Virtqueue::new();
        // Drive the free-running indices past u16::MAX.
        q.avail_idx = u16::MAX - 1;
        q.used_idx = u16::MAX - 1;
        for _ in 0..10 {
            assert!(q.push(pkt()));
            assert!(q.pop().is_some());
        }
        assert!(q.is_empty());
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.avail_idx, 8); // wrapped
    }
}
