//! VM lifecycle, virtio NICs, and guest applications.
//!
//! The guest application for the paper's headline experiment is
//! [`UserspaceIpsecApp`]: strongSwan running *inside the VM process*,
//! which is exactly the configuration the paper measured ("the IPsec
//! functionalities executing in user space (i.e., in the process, within
//! the hypervisor, running the VM)").

use std::collections::BTreeMap;
use std::fmt;

use un_ipsec::esp;
use un_ipsec::sa::SecurityAssociation;
use un_ipsec::spd::{PolicyAction, PolicyDirection, Spd};
use un_packet::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use un_packet::ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
use un_packet::Packet;
use un_sim::mem::{mb, mb_f};
use un_sim::{AccountId, Cost, CostModel, MemLedger};

use crate::image::VmImageStore;
use crate::virtio::Virtqueue;

/// VM handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmId(pub u32);

/// VM lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmState {
    /// Defined, not started.
    Created,
    /// Running.
    Running,
    /// Paused (packets dropped).
    Paused,
    /// Shut down.
    Stopped,
}

/// Hypervisor errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Disk image missing from the store.
    NoSuchImage(String),
    /// VM id unknown.
    NoSuchVm(u32),
    /// Invalid lifecycle transition.
    BadState {
        /// Attempted operation.
        op: &'static str,
        /// Current state.
        state: VmState,
    },
    /// NIC index out of range.
    NoSuchNic(usize),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchImage(i) => write!(f, "no such disk image {i}"),
            VmError::NoSuchVm(v) => write!(f, "no such VM {v}"),
            VmError::BadState { op, state } => write!(f, "cannot {op} a VM in state {state:?}"),
            VmError::NoSuchNic(n) => write!(f, "no such NIC {n}"),
        }
    }
}

impl std::error::Error for VmError {}

/// strongSwan-in-a-VM: userspace ESP tunnel processing.
///
/// NIC 0 faces the plaintext (LAN) side, NIC 1 the ciphertext (WAN)
/// side. Outbound traffic matching the SPD is encapsulated under
/// `sa_out`; inbound ESP is decapsulated under `sa_in`.
#[derive(Debug)]
pub struct UserspaceIpsecApp {
    /// Outbound SA.
    pub sa_out: Option<SecurityAssociation>,
    /// Inbound SA.
    pub sa_in: Option<SecurityAssociation>,
    /// Outbound policies (Protect selectors).
    pub spd: Spd,
    /// Packets transformed.
    pub processed: u64,
    /// Packets dropped (no SA, auth failure…).
    pub errors: u64,
}

impl UserspaceIpsecApp {
    /// An app with no SAs yet (installed by the control plane).
    pub fn new() -> Self {
        UserspaceIpsecApp {
            sa_out: None,
            sa_in: None,
            spd: Spd::new(),
            processed: 0,
            errors: 0,
        }
    }
}

impl Default for UserspaceIpsecApp {
    fn default() -> Self {
        Self::new()
    }
}

/// What runs inside the guest.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum GuestApp {
    /// Userspace IPsec endpoint (the paper's VM workload).
    UserspaceIpsec(UserspaceIpsecApp),
    /// Transparent bidirectional forwarder between NIC 0 and NIC 1
    /// (a generic middlebox VNF: the packet crosses the VM boundary and
    /// guest kernel but is not otherwise touched).
    L2Forward,
    /// Bounce frames back out the NIC they arrived on (diagnostics).
    Reflector,
}

#[derive(Debug)]
struct VirtioNic {
    mac: MacAddr,
    rx: Virtqueue,
    tx: Virtqueue,
}

/// QEMU process overhead beyond guest RAM (device emulation, buffers),
/// MB. Together with the template's guest RAM this composes the paper's
/// 390.6 MB VM RAM figure.
pub const QEMU_OVERHEAD_MB: f64 = 70.6;

/// One virtual machine.
#[derive(Debug)]
pub struct Vm {
    /// Handle.
    pub id: VmId,
    /// Name.
    pub name: String,
    /// vCPU count (capacity accounting).
    pub vcpus: u32,
    /// Guest RAM in MB.
    pub mem_mb: u64,
    /// Disk image name.
    pub image: String,
    /// Lifecycle state.
    pub state: VmState,
    /// The guest workload.
    pub app: GuestApp,
    /// Memory account.
    pub account: AccountId,
    nics: Vec<VirtioNic>,
    /// Packets the guest processed.
    pub rx_packets: u64,
    /// Packets the guest emitted.
    pub tx_packets: u64,
    /// Packets dropped (not running, ring full).
    pub dropped: u64,
}

/// Result of pushing a packet through a VM.
#[derive(Debug, Default)]
pub struct VmIo {
    /// (nic index, packet) emissions.
    pub outputs: Vec<(usize, Packet)>,
    /// Virtual time charged.
    pub cost: Cost,
}

impl Vm {
    /// MAC address of a NIC.
    pub fn nic_mac(&self, nic: usize) -> Option<MacAddr> {
        self.nics.get(nic).map(|n| n.mac)
    }

    /// Number of NICs.
    pub fn nic_count(&self) -> usize {
        self.nics.len()
    }

    /// Virtqueue statistics of a NIC: (kicks, ring-full drops).
    pub fn nic_stats(&self, nic: usize) -> Option<(u64, u64)> {
        self.nics.get(nic).map(|n| {
            (
                n.rx.kicks + n.tx.kicks,
                n.rx.ring_full_drops + n.tx.ring_full_drops,
            )
        })
    }

    /// Deliver a frame from the host side into `nic`.
    ///
    /// Performs the whole cut-through: ring copy in, vmexit, guest
    /// kernel, guest app, guest kernel, ring copy out, vmexit. All costs
    /// are accumulated in the returned [`VmIo`].
    pub fn deliver(&mut self, nic: usize, pkt: Packet, costs: &CostModel) -> VmIo {
        let mut io = VmIo::default();
        if self.state != VmState::Running {
            self.dropped += 1;
            return io;
        }
        if nic >= self.nics.len() {
            self.dropped += 1;
            return io;
        }
        let len = pkt.len();

        // Host: copy into the rx ring, kick → vmexit.
        io.cost += costs.copy(len);
        io.cost += Cost::from_nanos(costs.virtio_descriptor_ns);
        let kicked = self.nics[nic].rx.push(pkt);
        if kicked {
            io.cost += Cost::from_nanos(costs.vmexit_ns);
        }
        let Some(pkt) = self.nics[nic].rx.pop() else {
            self.dropped += 1;
            return io;
        };
        self.rx_packets += 1;

        // Guest kernel rx processing.
        io.cost += Cost::from_nanos(costs.ip_processing_ns + costs.l4_processing_ns);

        // Guest app (userspace): crossing + copy in, work, crossing + copy out.
        io.cost += Cost::from_nanos(costs.user_kernel_crossing_ns);
        io.cost += costs.copy(len);
        let outputs = match &mut self.app {
            GuestApp::UserspaceIpsec(app) => ipsec_process(app, nic, pkt, costs, &mut io.cost),
            GuestApp::L2Forward => {
                let out_nic = if nic == 0 { 1 } else { 0 };
                vec![(out_nic, pkt)]
            }
            GuestApp::Reflector => vec![(nic, pkt)],
        };
        io.cost += Cost::from_nanos(costs.user_kernel_crossing_ns);

        // Guest tx: copy out of userspace + ring + kick per packet.
        for (out_nic, out_pkt) in outputs {
            if out_nic >= self.nics.len() {
                self.dropped += 1;
                continue;
            }
            let out_len = out_pkt.len();
            io.cost += costs.copy(out_len); // user → kernel
            io.cost += Cost::from_nanos(costs.ip_processing_ns); // guest kernel tx
            io.cost += costs.copy(out_len); // kernel → tx ring
            io.cost += Cost::from_nanos(costs.virtio_descriptor_ns);
            let kicked = self.nics[out_nic].tx.push(out_pkt);
            if kicked {
                io.cost += Cost::from_nanos(costs.vmexit_ns);
            }
            if let Some(p) = self.nics[out_nic].tx.pop() {
                self.tx_packets += 1;
                io.outputs.push((out_nic, p));
            }
        }
        io
    }
}

/// The userspace strongSwan data path. Charges *userspace* AEAD plus the
/// extra copy the crypto library makes.
fn ipsec_process(
    app: &mut UserspaceIpsecApp,
    nic: usize,
    pkt: Packet,
    costs: &CostModel,
    cost: &mut Cost,
) -> Vec<(usize, Packet)> {
    // Work at the IP level; keep the Ethernet header for re-framing.
    let Ok(eth) = EthernetFrame::new_checked(pkt.data()) else {
        app.errors += 1;
        return Vec::new();
    };
    if eth.ethertype() != EtherType::Ipv4 {
        // Non-IP passes through unchanged toward the other side.
        let out_nic = if nic == 0 { 1 } else { 0 };
        return vec![(out_nic, pkt)];
    }
    let (eth_src, eth_dst) = (eth.src(), eth.dst());
    let ip_bytes = eth.payload().to_vec();
    let Ok(ip) = Ipv4Packet::new_checked(&ip_bytes[..]) else {
        app.errors += 1;
        return Vec::new();
    };

    if nic == 0 {
        // Plaintext side: consult SPD, encapsulate.
        let Some(policy) = app.spd.lookup(
            PolicyDirection::Out,
            ip.src(),
            ip.dst(),
            u8::from(ip.protocol()),
        ) else {
            // Bypass traffic crosses unprotected.
            return vec![(1, pkt)];
        };
        let PolicyAction::Protect(_) = policy.action else {
            return vec![(1, pkt)];
        };
        let Some(sa) = app.sa_out.as_mut() else {
            app.errors += 1;
            return Vec::new();
        };
        *cost += costs.aead_userspace(ip_bytes.len());
        match esp::encapsulate(sa, &ip_bytes) {
            Ok(esp_payload) => {
                app.processed += 1;
                let outer =
                    build_outer_frame(eth_src, eth_dst, sa.tunnel_src, sa.tunnel_dst, &esp_payload);
                vec![(1, outer)]
            }
            Err(_) => {
                app.errors += 1;
                Vec::new()
            }
        }
    } else {
        // Ciphertext side: decapsulate ESP.
        if ip.protocol() != IpProtocol::Esp {
            return vec![(0, pkt)];
        }
        let Some(sa) = app.sa_in.as_mut() else {
            app.errors += 1;
            return Vec::new();
        };
        *cost += costs.aead_userspace(ip.payload().len());
        match esp::decapsulate(sa, ip.payload()) {
            Ok(inner) => {
                app.processed += 1;
                let mut frame = Packet::zeroed(ETHERNET_HEADER_LEN + inner.len());
                {
                    let buf = frame.data_mut();
                    let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
                    e.set_src(eth_src);
                    e.set_dst(eth_dst);
                    e.set_ethertype(EtherType::Ipv4);
                    buf[ETHERNET_HEADER_LEN..].copy_from_slice(&inner);
                }
                vec![(0, frame)]
            }
            Err(_) => {
                app.errors += 1;
                Vec::new()
            }
        }
    }
}

fn build_outer_frame(
    eth_src: MacAddr,
    eth_dst: MacAddr,
    tunnel_src: std::net::Ipv4Addr,
    tunnel_dst: std::net::Ipv4Addr,
    esp_payload: &[u8],
) -> Packet {
    let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + esp_payload.len();
    let mut frame = Packet::zeroed(total);
    {
        let buf = frame.data_mut();
        let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
        e.set_src(eth_src);
        e.set_dst(eth_dst);
        e.set_ethertype(EtherType::Ipv4);
        let ip_buf = &mut buf[ETHERNET_HEADER_LEN..];
        let mut ip = Ipv4Packet::new_unchecked(&mut ip_buf[..]);
        ip.init();
        ip.set_total_len((IPV4_HEADER_LEN + esp_payload.len()) as u16);
        ip.set_ttl(64);
        ip.set_protocol(IpProtocol::Esp);
        ip.set_src(tunnel_src);
        ip.set_dst(tunnel_dst);
        ip.set_dont_frag(true);
        ip.fill_checksum();
        ip_buf[IPV4_HEADER_LEN..].copy_from_slice(esp_payload);
    }
    frame
}

/// The hypervisor: image store + VM table.
#[derive(Debug, Default)]
pub struct Hypervisor {
    /// Disk images.
    pub images: VmImageStore,
    vms: BTreeMap<u32, Vm>,
    next_id: u32,
    next_mac: u32,
}

impl Hypervisor {
    /// A hypervisor with an empty image store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a VM. The disk image must exist.
    #[allow(clippy::too_many_arguments)]
    pub fn create_vm(
        &mut self,
        name: &str,
        image: &str,
        vcpus: u32,
        mem_mb: u64,
        nic_count: usize,
        app: GuestApp,
        ledger: &mut MemLedger,
        parent_account: AccountId,
    ) -> Result<VmId, VmError> {
        if self.images.get(image).is_none() {
            return Err(VmError::NoSuchImage(image.to_string()));
        }
        let id = VmId(self.next_id);
        self.next_id += 1;
        let account = ledger.create_account(&format!("vm:{name}"), Some(parent_account));
        let nics = (0..nic_count)
            .map(|_| {
                self.next_mac += 1;
                VirtioNic {
                    mac: MacAddr::local(0x00AA_0000 + self.next_mac),
                    rx: Virtqueue::new(),
                    tx: Virtqueue::new(),
                }
            })
            .collect();
        self.vms.insert(
            id.0,
            Vm {
                id,
                name: name.to_string(),
                vcpus,
                mem_mb,
                image: image.to_string(),
                state: VmState::Created,
                app,
                account,
                nics,
                rx_packets: 0,
                tx_packets: 0,
                dropped: 0,
            },
        );
        Ok(id)
    }

    /// Boot a VM: allocates guest RAM + hypervisor process overhead.
    pub fn start(&mut self, id: VmId, ledger: &mut MemLedger) -> Result<(), VmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmError::NoSuchVm(id.0))?;
        match vm.state {
            VmState::Created | VmState::Stopped => {
                ledger
                    .alloc(vm.account, "guest-ram", mb(vm.mem_mb))
                    .expect("account alive");
                ledger
                    .alloc(vm.account, "qemu-process", mb_f(QEMU_OVERHEAD_MB))
                    .expect("account alive");
                vm.state = VmState::Running;
                Ok(())
            }
            s => Err(VmError::BadState {
                op: "start",
                state: s,
            }),
        }
    }

    /// Pause a running VM (packets dropped while paused).
    pub fn pause(&mut self, id: VmId) -> Result<(), VmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmError::NoSuchVm(id.0))?;
        match vm.state {
            VmState::Running => {
                vm.state = VmState::Paused;
                Ok(())
            }
            s => Err(VmError::BadState {
                op: "pause",
                state: s,
            }),
        }
    }

    /// Resume a paused VM.
    pub fn resume(&mut self, id: VmId) -> Result<(), VmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmError::NoSuchVm(id.0))?;
        match vm.state {
            VmState::Paused => {
                vm.state = VmState::Running;
                Ok(())
            }
            s => Err(VmError::BadState {
                op: "resume",
                state: s,
            }),
        }
    }

    /// Shut a VM down: releases its RAM.
    pub fn stop(&mut self, id: VmId, ledger: &mut MemLedger) -> Result<(), VmError> {
        let vm = self.vms.get_mut(&id.0).ok_or(VmError::NoSuchVm(id.0))?;
        match vm.state {
            VmState::Running | VmState::Paused => {
                ledger
                    .free(vm.account, "guest-ram", mb(vm.mem_mb))
                    .expect("allocated at start");
                ledger
                    .free(vm.account, "qemu-process", mb_f(QEMU_OVERHEAD_MB))
                    .expect("allocated at start");
                vm.state = VmState::Stopped;
                Ok(())
            }
            s => Err(VmError::BadState {
                op: "stop",
                state: s,
            }),
        }
    }

    /// Undefine a stopped VM.
    pub fn destroy(&mut self, id: VmId) -> Result<Vm, VmError> {
        match self.vms.get(&id.0) {
            None => Err(VmError::NoSuchVm(id.0)),
            Some(vm) if matches!(vm.state, VmState::Running | VmState::Paused) => {
                Err(VmError::BadState {
                    op: "destroy",
                    state: vm.state,
                })
            }
            Some(_) => Ok(self.vms.remove(&id.0).unwrap()),
        }
    }

    /// Access a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id.0)
    }

    /// Mutable access to a VM (control plane: SA installation etc.).
    pub fn vm_mut(&mut self, id: VmId) -> Option<&mut Vm> {
        self.vms.get_mut(&id.0)
    }

    /// Deliver a frame to a VM NIC.
    pub fn deliver(&mut self, id: VmId, nic: usize, pkt: Packet, costs: &CostModel) -> VmIo {
        match self.vms.get_mut(&id.0) {
            Some(vm) => vm.deliver(nic, pkt, costs),
            None => VmIo::default(),
        }
    }

    /// Number of defined VMs.
    pub fn len(&self) -> usize {
        self.vms.len()
    }

    /// True if no VMs are defined.
    pub fn is_empty(&self) -> bool {
        self.vms.is_empty()
    }
}

#[cfg(test)]
mod tests;
