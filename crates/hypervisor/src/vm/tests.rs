//! VM substrate tests, including the VM-vs-kernel cost comparison that
//! underlies the paper's throughput ordering.

use super::*;
use crate::image::DiskImage;
use std::net::Ipv4Addr;
use un_ipsec::spd::{SecurityPolicy, TrafficSelector};
use un_packet::PacketBuilder;

fn hv_with_image() -> Hypervisor {
    let mut hv = Hypervisor::new();
    hv.images.add(DiskImage {
        name: "strongswan-vm".into(),
        size: mb(522),
    });
    hv
}

fn ipsec_app() -> GuestApp {
    let key = [3u8; 32];
    let salt = [7, 7, 7, 7];
    let a = Ipv4Addr::new(192, 0, 2, 1);
    let b = Ipv4Addr::new(203, 0, 113, 7);
    let mut app = UserspaceIpsecApp::new();
    app.sa_out = Some(SecurityAssociation::outbound(0x42, a, b, key, salt));
    app.sa_in = Some(SecurityAssociation::inbound(0x43, b, a, key, salt));
    app.spd.install(SecurityPolicy {
        selector: TrafficSelector::between(
            "192.168.1.0/24".parse().unwrap(),
            "0.0.0.0/0".parse().unwrap(),
        ),
        direction: un_ipsec::spd::PolicyDirection::Out,
        action: PolicyAction::Protect(0x42),
        priority: 10,
    });
    GuestApp::UserspaceIpsec(app)
}

fn lan_frame(payload_len: usize) -> Packet {
    PacketBuilder::new()
        .ethernet(MacAddr::local(1), MacAddr::local(2))
        .ipv4(Ipv4Addr::new(192, 168, 1, 10), Ipv4Addr::new(172, 16, 0, 9))
        .udp(5001, 5201)
        .payload(&vec![0xCD; payload_len])
        .build()
}

#[test]
fn lifecycle_and_memory_composition() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "ipsec-vm",
            "strongswan-vm",
            1,
            320,
            2,
            ipsec_app(),
            &mut ledger,
            node,
        )
        .unwrap();
    assert_eq!(ledger.usage(node), 0);

    hv.start(id, &mut ledger).unwrap();
    // 320 MB guest + 70.6 MB QEMU = 390.6 MB — the paper's VM RAM cell.
    assert_eq!(ledger.usage(node), mb(320) + mb_f(QEMU_OVERHEAD_MB));

    hv.pause(id).unwrap();
    hv.resume(id).unwrap();
    hv.stop(id, &mut ledger).unwrap();
    assert_eq!(ledger.usage(node), 0);
    hv.destroy(id).unwrap();
    assert!(hv.is_empty());
}

#[test]
fn state_machine_guards() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    assert!(matches!(
        hv.create_vm(
            "x",
            "ghost",
            1,
            64,
            1,
            GuestApp::Reflector,
            &mut ledger,
            node
        ),
        Err(VmError::NoSuchImage(_))
    ));
    let id = hv
        .create_vm(
            "x",
            "strongswan-vm",
            1,
            64,
            1,
            GuestApp::Reflector,
            &mut ledger,
            node,
        )
        .unwrap();
    assert!(matches!(hv.pause(id), Err(VmError::BadState { .. })));
    hv.start(id, &mut ledger).unwrap();
    assert!(matches!(hv.destroy(id), Err(VmError::BadState { .. })));
    hv.stop(id, &mut ledger).unwrap();
    hv.destroy(id).unwrap();
    assert!(matches!(hv.destroy(id), Err(VmError::NoSuchVm(_))));
}

#[test]
fn stopped_vm_drops_packets() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "x",
            "strongswan-vm",
            1,
            64,
            2,
            GuestApp::L2Forward,
            &mut ledger,
            node,
        )
        .unwrap();
    let io = hv.deliver(id, 0, lan_frame(100), &CostModel::default());
    assert!(io.outputs.is_empty());
    assert_eq!(hv.vm(id).unwrap().dropped, 1);
}

#[test]
fn l2_forward_crosses_nics() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "fwd",
            "strongswan-vm",
            1,
            64,
            2,
            GuestApp::L2Forward,
            &mut ledger,
            node,
        )
        .unwrap();
    hv.start(id, &mut ledger).unwrap();
    let io = hv.deliver(id, 0, lan_frame(64), &CostModel::default());
    assert_eq!(io.outputs.len(), 1);
    assert_eq!(io.outputs[0].0, 1, "nic0 -> nic1");
    let io = hv.deliver(id, 1, lan_frame(64), &CostModel::default());
    assert_eq!(io.outputs[0].0, 0, "nic1 -> nic0");
    assert!(io.cost.as_nanos() > 0);
}

#[test]
fn userspace_ipsec_encapsulates_and_wire_is_opaque() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "swan",
            "strongswan-vm",
            1,
            320,
            2,
            ipsec_app(),
            &mut ledger,
            node,
        )
        .unwrap();
    hv.start(id, &mut ledger).unwrap();

    let payload = vec![0xCD; 256];
    let io = hv.deliver(id, 0, lan_frame(256), &CostModel::default());
    assert_eq!(io.outputs.len(), 1);
    let (nic, wire) = &io.outputs[0];
    assert_eq!(*nic, 1, "ciphertext leaves the WAN NIC");
    let eth = wire.ethernet().unwrap();
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    assert_eq!(ip.protocol(), IpProtocol::Esp);
    assert!(
        !wire
            .data()
            .windows(payload.len())
            .any(|w| w == &payload[..]),
        "plaintext must not leak"
    );

    // Decapsulate with the peer's SA to prove correctness end-to-end.
    let key = [3u8; 32];
    let salt = [7, 7, 7, 7];
    let mut peer_in = SecurityAssociation::inbound(
        0x42,
        Ipv4Addr::new(192, 0, 2, 1),
        Ipv4Addr::new(203, 0, 113, 7),
        key,
        salt,
    );
    let inner = un_ipsec::esp::decapsulate(&mut peer_in, ip.payload()).unwrap();
    let orig = lan_frame(256);
    assert_eq!(inner, orig.data()[14..].to_vec());
}

#[test]
fn userspace_ipsec_decapsulates_inbound() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "swan",
            "strongswan-vm",
            1,
            320,
            2,
            ipsec_app(),
            &mut ledger,
            node,
        )
        .unwrap();
    hv.start(id, &mut ledger).unwrap();

    // Build an inbound ESP frame using the peer's outbound twin of sa_in.
    let key = [3u8; 32];
    let salt = [7, 7, 7, 7];
    let a = Ipv4Addr::new(192, 0, 2, 1);
    let b = Ipv4Addr::new(203, 0, 113, 7);
    let mut peer_out = SecurityAssociation::outbound(0x43, b, a, key, salt);
    let inner = PacketBuilder::new()
        .ipv4(Ipv4Addr::new(172, 16, 0, 9), Ipv4Addr::new(192, 168, 1, 10))
        .udp(5201, 5001)
        .payload(b"reply-data")
        .build();
    let esp_payload = un_ipsec::esp::encapsulate(&mut peer_out, inner.data()).unwrap();
    let total = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN + esp_payload.len();
    let mut wire = Packet::zeroed(total);
    {
        let buf = wire.data_mut();
        let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
        e.set_src(MacAddr::local(9));
        e.set_dst(MacAddr::local(10));
        e.set_ethertype(EtherType::Ipv4);
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
        ip.init();
        ip.set_total_len((IPV4_HEADER_LEN + esp_payload.len()) as u16);
        ip.set_ttl(64);
        ip.set_protocol(IpProtocol::Esp);
        ip.set_src(b);
        ip.set_dst(a);
        ip.fill_checksum();
    }
    let off = ETHERNET_HEADER_LEN + IPV4_HEADER_LEN;
    wire.data_mut()[off..].copy_from_slice(&esp_payload);

    let io = hv.deliver(id, 1, wire, &CostModel::default());
    assert_eq!(io.outputs.len(), 1);
    let (nic, plain) = &io.outputs[0];
    assert_eq!(*nic, 0, "plaintext leaves the LAN NIC");
    let eth = plain.ethernet().unwrap();
    let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
    assert_eq!(ip.protocol(), IpProtocol::Udp);
    assert_eq!(ip.dst(), Ipv4Addr::new(192, 168, 1, 10));
}

#[test]
fn vm_path_costs_more_than_kernel_path() {
    // The structural claim behind Table 1: the same ESP transform costs
    // strictly more through the VM than through the host kernel.
    let costs = CostModel::default();

    // Kernel path cost (un-linux xfrm): lookup + kernel AEAD.
    let mut kernel_cost = Cost::ZERO;
    let mut xfrm = un_linux::xfrm::Xfrm::new();
    let key = [3u8; 32];
    let salt = [7, 7, 7, 7];
    let a = Ipv4Addr::new(192, 0, 2, 1);
    let b = Ipv4Addr::new(203, 0, 113, 7);
    xfrm.sad
        .install(SecurityAssociation::outbound(0x1, a, b, key, salt));
    xfrm.spd.install(SecurityPolicy {
        selector: TrafficSelector::any(),
        direction: un_ipsec::spd::PolicyDirection::Out,
        action: PolicyAction::Protect(0x1),
        priority: 1,
    });
    let inner = lan_frame(1400);
    let ip_only = inner.data()[14..].to_vec();
    let out = xfrm.output(&ip_only, &costs, &mut kernel_cost);
    assert!(matches!(out, un_linux::xfrm::XfrmOutput::Encapsulated(_)));

    // VM path cost for the same packet.
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "swan",
            "strongswan-vm",
            1,
            320,
            2,
            ipsec_app(),
            &mut ledger,
            node,
        )
        .unwrap();
    hv.start(id, &mut ledger).unwrap();
    let io = hv.deliver(id, 0, lan_frame(1400), &CostModel::default());
    assert_eq!(io.outputs.len(), 1);

    let vm_ns = io.cost.as_nanos();
    let kernel_ns = kernel_cost.as_nanos();
    assert!(
        vm_ns > kernel_ns + 3_000,
        "VM path ({vm_ns}ns) must structurally exceed kernel path ({kernel_ns}ns) by the \
         vmexit/copy/crossing budget"
    );
}

#[test]
fn virtqueue_kicks_counted_per_packet() {
    let mut hv = hv_with_image();
    let mut ledger = MemLedger::new();
    let node = ledger.create_account("node", None);
    let id = hv
        .create_vm(
            "fwd",
            "strongswan-vm",
            1,
            64,
            2,
            GuestApp::L2Forward,
            &mut ledger,
            node,
        )
        .unwrap();
    hv.start(id, &mut ledger).unwrap();
    for _ in 0..10 {
        hv.deliver(id, 0, lan_frame(64), &CostModel::default());
    }
    let (kicks_nic0, drops0) = hv.vm(id).unwrap().nic_stats(0).unwrap();
    let (kicks_nic1, _d1) = hv.vm(id).unwrap().nic_stats(1).unwrap();
    assert_eq!(kicks_nic0, 10, "one rx kick per packet");
    assert_eq!(kicks_nic1, 10, "one tx kick per packet");
    assert_eq!(drops0, 0);
}
