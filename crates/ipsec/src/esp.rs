//! ESP tunnel-mode encapsulation and decapsulation (RFC 4303).
//!
//! Wire layout produced by [`encapsulate`] (this is the ESP payload that
//! goes inside the outer IPv4 packet with protocol 50):
//!
//! ```text
//! | SPI (4) | SEQ (4) | IV (8) | ciphertext of:                  | ICV (16) |
//! |                            |  inner IP packet | pad | pad_len | NH |    |
//! ```
//!
//! The AEAD is ChaCha20-Poly1305 with nonce = SA salt (4) || IV (8) and
//! AAD = SPI || SEQ, per RFC 7634. Next-header is 4 (IPv4-in-IPv4,
//! tunnel mode). Padding aligns the (payload ‖ pad_len ‖ NH) trailer to
//! 4 bytes and carries the monotone pattern 1,2,3… that RFC 4303
//! specifies, which [`decapsulate`] verifies.

use un_crypto::aead;

use crate::replay::ReplayVerdict;
use crate::sa::{SaDirection, SecurityAssociation};

/// ESP header length on the wire (SPI + SEQ).
pub const ESP_HEADER_LEN: usize = 8;
/// Per-packet IV length (RFC 7634).
pub const ESP_IV_LEN: usize = 8;
/// ICV (AEAD tag) length.
pub const ESP_ICV_LEN: usize = 16;
/// Next-header value for tunnel mode (IPv4-in-IPv4).
pub const NEXT_HEADER_IPV4: u8 = 4;

/// IPsec data-plane failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpsecError {
    /// Wrong direction SA for the requested operation.
    WrongDirection,
    /// Outbound sequence number space exhausted; SA must be rekeyed.
    SeqOverflow,
    /// Packet shorter than the minimal ESP framing.
    Truncated,
    /// Anti-replay check failed.
    Replay(ReplayVerdict),
    /// The AEAD tag did not verify.
    AuthFailed,
    /// Decrypted trailer is malformed (pad pattern/next header).
    BadTrailer,
}

impl std::fmt::Display for IpsecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpsecError::WrongDirection => write!(f, "SA direction mismatch"),
            IpsecError::SeqOverflow => write!(f, "sequence number overflow"),
            IpsecError::Truncated => write!(f, "ESP packet truncated"),
            IpsecError::Replay(v) => write!(f, "anti-replay rejection: {v:?}"),
            IpsecError::AuthFailed => write!(f, "ICV authentication failed"),
            IpsecError::BadTrailer => write!(f, "malformed ESP trailer"),
        }
    }
}

impl std::error::Error for IpsecError {}

fn nonce_for(sa: &SecurityAssociation, iv: &[u8; ESP_IV_LEN]) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..4].copy_from_slice(&sa.salt);
    nonce[4..].copy_from_slice(iv);
    nonce
}

fn aad_for(spi: u32, seq: u32) -> [u8; 8] {
    let mut aad = [0u8; 8];
    aad[..4].copy_from_slice(&spi.to_be_bytes());
    aad[4..].copy_from_slice(&seq.to_be_bytes());
    aad
}

/// Encapsulate `inner` (a complete inner IPv4 packet) under an outbound
/// SA, producing the ESP payload for the outer packet.
///
/// Advances the SA sequence number and lifetime counters.
pub fn encapsulate(sa: &mut SecurityAssociation, inner: &[u8]) -> Result<Vec<u8>, IpsecError> {
    if sa.direction != SaDirection::Out {
        return Err(IpsecError::WrongDirection);
    }
    let seq = sa.seq_out.checked_add(1).ok_or(IpsecError::SeqOverflow)?;
    sa.seq_out = seq;

    // Plaintext = inner || padding || pad_len || next_header, with the
    // trailer 4-byte aligned.
    let unpadded = inner.len() + 2;
    let pad_len = (4 - (unpadded % 4)) % 4;
    let mut plaintext = Vec::with_capacity(inner.len() + pad_len + 2);
    plaintext.extend_from_slice(inner);
    for i in 0..pad_len {
        plaintext.push((i + 1) as u8); // RFC 4303 monotone pad pattern
    }
    plaintext.push(pad_len as u8);
    plaintext.push(NEXT_HEADER_IPV4);

    // IV: derived from the sequence number — unique per SA per packet.
    let mut iv = [0u8; ESP_IV_LEN];
    iv[4..].copy_from_slice(&seq.to_be_bytes());

    let nonce = nonce_for(sa, &iv);
    let aad = aad_for(sa.spi, seq);
    let tag = aead::seal(&sa.key, &nonce, &aad, &mut plaintext);

    let mut out = Vec::with_capacity(ESP_HEADER_LEN + ESP_IV_LEN + plaintext.len() + ESP_ICV_LEN);
    out.extend_from_slice(&sa.spi.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&iv);
    out.extend_from_slice(&plaintext);
    out.extend_from_slice(&tag);

    sa.packets += 1;
    sa.bytes += inner.len() as u64;
    Ok(out)
}

/// Decapsulate an ESP payload under an inbound SA, returning the inner
/// IPv4 packet.
///
/// Performs, in order: framing checks, anti-replay *check*, AEAD open,
/// anti-replay *update* (only after successful auth, per RFC 4303),
/// trailer validation.
pub fn decapsulate(
    sa: &mut SecurityAssociation,
    esp_payload: &[u8],
) -> Result<Vec<u8>, IpsecError> {
    if sa.direction != SaDirection::In {
        return Err(IpsecError::WrongDirection);
    }
    let min = ESP_HEADER_LEN + ESP_IV_LEN + 2 + ESP_ICV_LEN;
    if esp_payload.len() < min {
        return Err(IpsecError::Truncated);
    }

    let spi = u32::from_be_bytes(esp_payload[0..4].try_into().unwrap());
    let seq = u32::from_be_bytes(esp_payload[4..8].try_into().unwrap());
    let iv: [u8; ESP_IV_LEN] = esp_payload[8..16].try_into().unwrap();

    match sa.replay.check(seq) {
        ReplayVerdict::Ok => {}
        v => return Err(IpsecError::Replay(v)),
    }

    let body_end = esp_payload.len() - ESP_ICV_LEN;
    let mut ciphertext = esp_payload[16..body_end].to_vec();
    let tag: [u8; ESP_ICV_LEN] = esp_payload[body_end..].try_into().unwrap();

    let nonce = nonce_for(sa, &iv);
    let aad = aad_for(spi, seq);
    aead::open(&sa.key, &nonce, &aad, &mut ciphertext, &tag).map_err(|_| IpsecError::AuthFailed)?;

    // Auth passed: now (and only now) slide the replay window.
    sa.replay.update(seq);

    // Trailer: … pad | pad_len | next_header
    if ciphertext.len() < 2 {
        return Err(IpsecError::BadTrailer);
    }
    let next_header = ciphertext[ciphertext.len() - 1];
    let pad_len = ciphertext[ciphertext.len() - 2] as usize;
    if next_header != NEXT_HEADER_IPV4 || ciphertext.len() < 2 + pad_len {
        return Err(IpsecError::BadTrailer);
    }
    // Verify the monotone pad pattern.
    let pad_start = ciphertext.len() - 2 - pad_len;
    for i in 0..pad_len {
        if ciphertext[pad_start + i] != (i + 1) as u8 {
            return Err(IpsecError::BadTrailer);
        }
    }
    ciphertext.truncate(pad_start);

    sa.packets += 1;
    sa.bytes += ciphertext.len() as u64;
    Ok(ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::SecurityAssociation;
    use std::net::Ipv4Addr;

    fn pair() -> (SecurityAssociation, SecurityAssociation) {
        let key = [0x42u8; 32];
        let salt = [9, 8, 7, 6];
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(203, 0, 113, 7);
        (
            SecurityAssociation::outbound(0x1001, a, b, key, salt),
            SecurityAssociation::inbound(0x1001, a, b, key, salt),
        )
    }

    #[test]
    fn roundtrip_various_sizes() {
        let (mut tx, mut rx) = pair();
        for len in [0usize, 1, 2, 3, 4, 20, 63, 64, 65, 1400] {
            let inner: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let wire = encapsulate(&mut tx, &inner).unwrap();
            // Framing: alignment of the encrypted body.
            assert_eq!(
                (wire.len() - ESP_HEADER_LEN - ESP_IV_LEN - ESP_ICV_LEN) % 4,
                0
            );
            let back = decapsulate(&mut rx, &wire).unwrap();
            assert_eq!(back, inner, "len {len}");
        }
        assert_eq!(tx.packets, 10);
        assert_eq!(rx.packets, 10);
    }

    #[test]
    fn sequence_numbers_increment_on_wire() {
        let (mut tx, _) = pair();
        let w1 = encapsulate(&mut tx, b"a").unwrap();
        let w2 = encapsulate(&mut tx, b"b").unwrap();
        let seq1 = u32::from_be_bytes(w1[4..8].try_into().unwrap());
        let seq2 = u32::from_be_bytes(w2[4..8].try_into().unwrap());
        assert_eq!(seq1, 1);
        assert_eq!(seq2, 2);
        let spi = u32::from_be_bytes(w1[0..4].try_into().unwrap());
        assert_eq!(spi, 0x1001);
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair();
        let wire = encapsulate(&mut tx, b"packet").unwrap();
        decapsulate(&mut rx, &wire).unwrap();
        let err = decapsulate(&mut rx, &wire).unwrap_err();
        assert_eq!(err, IpsecError::Replay(ReplayVerdict::Replayed));
    }

    #[test]
    fn out_of_order_within_window_accepted() {
        let (mut tx, mut rx) = pair();
        let w1 = encapsulate(&mut tx, b"one").unwrap();
        let w2 = encapsulate(&mut tx, b"two").unwrap();
        let w3 = encapsulate(&mut tx, b"three").unwrap();
        decapsulate(&mut rx, &w3).unwrap();
        assert_eq!(decapsulate(&mut rx, &w1).unwrap(), b"one");
        assert_eq!(decapsulate(&mut rx, &w2).unwrap(), b"two");
    }

    #[test]
    fn tampering_detected_and_window_not_slid() {
        let (mut tx, mut rx) = pair();
        let mut wire = encapsulate(&mut tx, b"secret").unwrap();
        let mid = wire.len() / 2;
        wire[mid] ^= 0x01;
        assert_eq!(
            decapsulate(&mut rx, &wire).unwrap_err(),
            IpsecError::AuthFailed
        );
        // The genuine packet must still be accepted afterwards: failed
        // auth must not advance the replay window.
        let mut wire2 = wire;
        wire2[mid] ^= 0x01; // undo
        assert_eq!(decapsulate(&mut rx, &wire2).unwrap(), b"secret");
    }

    #[test]
    fn truncated_rejected() {
        let (_, mut rx) = pair();
        assert_eq!(
            decapsulate(&mut rx, &[0u8; 20]).unwrap_err(),
            IpsecError::Truncated
        );
    }

    #[test]
    fn wrong_direction_rejected() {
        let (mut tx, mut rx) = pair();
        assert_eq!(
            encapsulate(&mut rx, b"x").unwrap_err(),
            IpsecError::WrongDirection
        );
        let wire = encapsulate(&mut tx, b"x").unwrap();
        assert_eq!(
            decapsulate(&mut tx, &wire).unwrap_err(),
            IpsecError::WrongDirection
        );
    }

    #[test]
    fn wrong_key_fails_auth() {
        let (mut tx, mut rx) = pair();
        rx.key = [0x43u8; 32];
        let wire = encapsulate(&mut tx, b"x").unwrap();
        assert_eq!(
            decapsulate(&mut rx, &wire).unwrap_err(),
            IpsecError::AuthFailed
        );
    }

    #[test]
    fn lifetime_counters_track_inner_bytes() {
        let (mut tx, mut rx) = pair();
        let wire = encapsulate(&mut tx, &[0u8; 100]).unwrap();
        decapsulate(&mut rx, &wire).unwrap();
        assert_eq!(tx.bytes, 100);
        assert_eq!(rx.bytes, 100);
    }
}
