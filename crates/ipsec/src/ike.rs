//! IKE-lite: the userspace key-exchange daemon, simplified.
//!
//! strongSwan's role in the paper is twofold: negotiate keys in
//! userspace, install SAs in the kernel. IKE-lite keeps exactly that
//! split with a two-message PSK handshake (a deliberate simplification
//! of IKEv2, documented in DESIGN.md):
//!
//! ```text
//! initiator → responder:  "IKL1" | id_len | id | nonce_i[16] | spi_i
//! responder → initiator:  "IKL2" | nonce_r[16] | spi_r | auth[32]
//!      auth = HMAC-SHA256(psk, "resp-auth" ‖ nonce_i ‖ nonce_r ‖ spi_i ‖ spi_r)
//! ```
//!
//! Both sides derive child-SA keys with HKDF over `psk ‖ nonce_i ‖
//! nonce_r`. The initiator authenticates implicitly by key confirmation:
//! with the wrong PSK, every ESP packet fails its ICV. The responder is
//! explicitly authenticated by `auth`, so an active attacker cannot
//! impersonate the gateway.

use std::net::Ipv4Addr;

use un_crypto::{hkdf_expand, hkdf_extract, hmac_sha256};
use un_sim::DetRng;

use crate::sa::{SecurityAssociation, SpiValue};

const MAGIC1: &[u8; 4] = b"IKL1";
const MAGIC2: &[u8; 4] = b"IKL2";
const NONCE_LEN: usize = 16;

/// Handshake failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IkeError {
    /// Not an IKE-lite message of the expected type.
    BadMagic,
    /// Message too short.
    Truncated,
    /// Responder authentication failed (wrong PSK or tampering).
    AuthFailed,
    /// Handshake methods called in the wrong order.
    BadState,
}

impl std::fmt::Display for IkeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IkeError::BadMagic => write!(f, "bad IKE-lite magic"),
            IkeError::Truncated => write!(f, "IKE-lite message truncated"),
            IkeError::AuthFailed => write!(f, "IKE-lite authentication failed"),
            IkeError::BadState => write!(f, "IKE-lite state machine misuse"),
        }
    }
}

impl std::error::Error for IkeError {}

/// Configuration shared by both sides.
#[derive(Debug, Clone)]
pub struct IkeConfig {
    /// Pre-shared key.
    pub psk: Vec<u8>,
    /// Local identity (logged, carried in msg1).
    pub local_id: String,
    /// Local tunnel endpoint address.
    pub local_addr: Ipv4Addr,
    /// Peer tunnel endpoint address.
    pub peer_addr: Ipv4Addr,
}

/// The pair of SAs a completed handshake yields.
#[derive(Debug, Clone)]
pub struct SaPair {
    /// SA for traffic we send.
    pub outbound: SecurityAssociation,
    /// SA for traffic we receive.
    pub inbound: SecurityAssociation,
}

fn derive_keys(
    psk: &[u8],
    nonce_i: &[u8; NONCE_LEN],
    nonce_r: &[u8; NONCE_LEN],
) -> ([u8; 32], [u8; 4], [u8; 32], [u8; 4]) {
    let mut ikm = Vec::with_capacity(psk.len() + NONCE_LEN * 2);
    ikm.extend_from_slice(psk);
    ikm.extend_from_slice(nonce_i);
    ikm.extend_from_slice(nonce_r);
    let prk = hkdf_extract(b"un-ike-lite", &ikm);
    let mut okm = [0u8; 72];
    hkdf_expand(&prk, b"child-sa", &mut okm);
    let key_i2r: [u8; 32] = okm[0..32].try_into().unwrap();
    let salt_i2r: [u8; 4] = okm[32..36].try_into().unwrap();
    let key_r2i: [u8; 32] = okm[36..68].try_into().unwrap();
    let salt_r2i: [u8; 4] = okm[68..72].try_into().unwrap();
    (key_i2r, salt_i2r, key_r2i, salt_r2i)
}

fn auth_tag(
    psk: &[u8],
    nonce_i: &[u8; NONCE_LEN],
    nonce_r: &[u8; NONCE_LEN],
    spi_i: SpiValue,
    spi_r: SpiValue,
) -> [u8; 32] {
    let mut msg = Vec::with_capacity(9 + NONCE_LEN * 2 + 8);
    msg.extend_from_slice(b"resp-auth");
    msg.extend_from_slice(nonce_i);
    msg.extend_from_slice(nonce_r);
    msg.extend_from_slice(&spi_i.to_be_bytes());
    msg.extend_from_slice(&spi_r.to_be_bytes());
    hmac_sha256(psk, &msg)
}

/// Initiator side of the handshake.
#[derive(Debug)]
pub struct IkeInitiator {
    cfg: IkeConfig,
    nonce_i: [u8; NONCE_LEN],
    spi_i: SpiValue,
    sent: bool,
}

impl IkeInitiator {
    /// Create an initiator; allocates its inbound SPI and nonce.
    pub fn new(cfg: IkeConfig, rng: &mut DetRng) -> Self {
        let mut nonce_i = [0u8; NONCE_LEN];
        rng.fill(&mut nonce_i);
        let spi_i = (rng.next_u32() | 0x1000_0000).max(1);
        IkeInitiator {
            cfg,
            nonce_i,
            spi_i,
            sent: false,
        }
    }

    /// Produce msg1.
    pub fn initial_message(&mut self) -> Vec<u8> {
        self.sent = true;
        let id = self.cfg.local_id.as_bytes();
        let mut out = Vec::with_capacity(4 + 1 + id.len() + NONCE_LEN + 4);
        out.extend_from_slice(MAGIC1);
        out.push(id.len() as u8);
        out.extend_from_slice(id);
        out.extend_from_slice(&self.nonce_i);
        out.extend_from_slice(&self.spi_i.to_be_bytes());
        out
    }

    /// Consume msg2, verify the responder, derive the SA pair.
    pub fn handle_response(&mut self, msg: &[u8]) -> Result<SaPair, IkeError> {
        if !self.sent {
            return Err(IkeError::BadState);
        }
        if msg.len() < 4 + NONCE_LEN + 4 + 32 {
            return Err(IkeError::Truncated);
        }
        if &msg[0..4] != MAGIC2 {
            return Err(IkeError::BadMagic);
        }
        let nonce_r: [u8; NONCE_LEN] = msg[4..4 + NONCE_LEN].try_into().unwrap();
        let spi_r = u32::from_be_bytes(msg[20..24].try_into().unwrap());
        let auth: [u8; 32] = msg[24..56].try_into().unwrap();

        let expect = auth_tag(&self.cfg.psk, &self.nonce_i, &nonce_r, self.spi_i, spi_r);
        if auth != expect {
            return Err(IkeError::AuthFailed);
        }

        let (key_i2r, salt_i2r, key_r2i, salt_r2i) =
            derive_keys(&self.cfg.psk, &self.nonce_i, &nonce_r);
        Ok(SaPair {
            outbound: SecurityAssociation::outbound(
                spi_r,
                self.cfg.local_addr,
                self.cfg.peer_addr,
                key_i2r,
                salt_i2r,
            ),
            inbound: SecurityAssociation::inbound(
                self.spi_i,
                self.cfg.peer_addr,
                self.cfg.local_addr,
                key_r2i,
                salt_r2i,
            ),
        })
    }
}

/// Responder side of the handshake.
#[derive(Debug)]
pub struct IkeResponder {
    cfg: IkeConfig,
}

impl IkeResponder {
    /// Create a responder.
    pub fn new(cfg: IkeConfig) -> Self {
        IkeResponder { cfg }
    }

    /// Consume msg1; produce (msg2, SA pair) on success. Also returns the
    /// initiator's identity string for logging/policy.
    pub fn handle_initial(
        &mut self,
        msg: &[u8],
        rng: &mut DetRng,
    ) -> Result<(Vec<u8>, SaPair, String), IkeError> {
        if msg.len() < 5 {
            return Err(IkeError::Truncated);
        }
        if &msg[0..4] != MAGIC1 {
            return Err(IkeError::BadMagic);
        }
        let id_len = msg[4] as usize;
        if msg.len() < 5 + id_len + NONCE_LEN + 4 {
            return Err(IkeError::Truncated);
        }
        let id = String::from_utf8_lossy(&msg[5..5 + id_len]).to_string();
        let nonce_i: [u8; NONCE_LEN] = msg[5 + id_len..5 + id_len + NONCE_LEN].try_into().unwrap();
        let spi_i = u32::from_be_bytes(
            msg[5 + id_len + NONCE_LEN..5 + id_len + NONCE_LEN + 4]
                .try_into()
                .unwrap(),
        );

        let mut nonce_r = [0u8; NONCE_LEN];
        rng.fill(&mut nonce_r);
        let spi_r = (rng.next_u32() | 0x2000_0000).max(1);

        let auth = auth_tag(&self.cfg.psk, &nonce_i, &nonce_r, spi_i, spi_r);
        let mut out = Vec::with_capacity(4 + NONCE_LEN + 4 + 32);
        out.extend_from_slice(MAGIC2);
        out.extend_from_slice(&nonce_r);
        out.extend_from_slice(&spi_r.to_be_bytes());
        out.extend_from_slice(&auth);

        let (key_i2r, salt_i2r, key_r2i, salt_r2i) = derive_keys(&self.cfg.psk, &nonce_i, &nonce_r);
        let pair = SaPair {
            // Responder sends r→i traffic under the initiator's SPI.
            outbound: SecurityAssociation::outbound(
                spi_i,
                self.cfg.local_addr,
                self.cfg.peer_addr,
                key_r2i,
                salt_r2i,
            ),
            inbound: SecurityAssociation::inbound(
                spi_r,
                self.cfg.peer_addr,
                self.cfg.local_addr,
                key_i2r,
                salt_i2r,
            ),
        };
        Ok((out, pair, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::esp::{decapsulate, encapsulate};

    fn cfg(local: [u8; 4], peer: [u8; 4], psk: &str) -> IkeConfig {
        IkeConfig {
            psk: psk.as_bytes().to_vec(),
            local_id: "cpe.example".into(),
            local_addr: Ipv4Addr::from(local),
            peer_addr: Ipv4Addr::from(peer),
        }
    }

    #[test]
    fn handshake_yields_working_tunnel() {
        let mut rng_i = DetRng::new(1);
        let mut rng_r = DetRng::new(2);
        let mut init =
            IkeInitiator::new(cfg([192, 0, 2, 1], [203, 0, 113, 7], "s3cret"), &mut rng_i);
        let mut resp = IkeResponder::new(cfg([203, 0, 113, 7], [192, 0, 2, 1], "s3cret"));

        let m1 = init.initial_message();
        let (m2, mut resp_sas, id) = resp.handle_initial(&m1, &mut rng_r).unwrap();
        assert_eq!(id, "cpe.example");
        let mut init_sas = init.handle_response(&m2).unwrap();

        // i → r
        let wire = encapsulate(&mut init_sas.outbound, b"hello from cpe").unwrap();
        let inner = decapsulate(&mut resp_sas.inbound, &wire).unwrap();
        assert_eq!(inner, b"hello from cpe");

        // r → i
        let wire = encapsulate(&mut resp_sas.outbound, b"hello from gw").unwrap();
        let inner = decapsulate(&mut init_sas.inbound, &wire).unwrap();
        assert_eq!(inner, b"hello from gw");

        // SPIs agree crosswise.
        assert_eq!(init_sas.outbound.spi, resp_sas.inbound.spi);
        assert_eq!(init_sas.inbound.spi, resp_sas.outbound.spi);
        assert_ne!(init_sas.outbound.spi, init_sas.inbound.spi);
    }

    #[test]
    fn wrong_psk_detected_at_auth() {
        let mut rng = DetRng::new(3);
        let mut init = IkeInitiator::new(cfg([1, 1, 1, 1], [2, 2, 2, 2], "alpha"), &mut rng);
        let mut resp = IkeResponder::new(cfg([2, 2, 2, 2], [1, 1, 1, 1], "beta"));
        let m1 = init.initial_message();
        let (m2, _, _) = resp.handle_initial(&m1, &mut rng).unwrap();
        assert_eq!(init.handle_response(&m2).unwrap_err(), IkeError::AuthFailed);
    }

    #[test]
    fn tampered_response_detected() {
        let mut rng = DetRng::new(4);
        let mut init = IkeInitiator::new(cfg([1, 1, 1, 1], [2, 2, 2, 2], "psk"), &mut rng);
        let mut resp = IkeResponder::new(cfg([2, 2, 2, 2], [1, 1, 1, 1], "psk"));
        let m1 = init.initial_message();
        let (mut m2, _, _) = resp.handle_initial(&m1, &mut rng).unwrap();
        m2[10] ^= 1; // corrupt nonce_r
        assert_eq!(init.handle_response(&m2).unwrap_err(), IkeError::AuthFailed);
    }

    #[test]
    fn malformed_messages_rejected() {
        let mut rng = DetRng::new(5);
        let mut resp = IkeResponder::new(cfg([2, 2, 2, 2], [1, 1, 1, 1], "psk"));
        assert_eq!(
            resp.handle_initial(b"nope", &mut rng).unwrap_err(),
            IkeError::Truncated
        );
        assert_eq!(
            resp.handle_initial(b"XXXX-rest-of-message-long-enough-----", &mut rng)
                .unwrap_err(),
            IkeError::BadMagic
        );
        let mut init = IkeInitiator::new(cfg([1, 1, 1, 1], [2, 2, 2, 2], "psk"), &mut rng);
        let _ = init.initial_message();
        assert_eq!(
            init.handle_response(b"short").unwrap_err(),
            IkeError::Truncated
        );
    }

    #[test]
    fn response_before_send_is_state_error() {
        let mut rng = DetRng::new(6);
        let mut init = IkeInitiator::new(cfg([1, 1, 1, 1], [2, 2, 2, 2], "psk"), &mut rng);
        assert_eq!(
            init.handle_response(&[0u8; 64]).unwrap_err(),
            IkeError::BadState
        );
    }

    #[test]
    fn distinct_nonces_give_distinct_keys() {
        let mut rng = DetRng::new(7);
        let c_i = cfg([1, 1, 1, 1], [2, 2, 2, 2], "psk");
        let c_r = cfg([2, 2, 2, 2], [1, 1, 1, 1], "psk");

        let mut i1 = IkeInitiator::new(c_i.clone(), &mut rng);
        let mut r1 = IkeResponder::new(c_r.clone());
        let m1 = i1.initial_message();
        let (m2, _, _) = r1.handle_initial(&m1, &mut rng).unwrap();
        let sas1 = i1.handle_response(&m2).unwrap();

        let mut i2 = IkeInitiator::new(c_i, &mut rng);
        let mut r2 = IkeResponder::new(c_r);
        let m1 = i2.initial_message();
        let (m2, _, _) = r2.handle_initial(&m1, &mut rng).unwrap();
        let sas2 = i2.handle_response(&m2).unwrap();

        assert_ne!(sas1.outbound.key, sas2.outbound.key);
        assert_ne!(sas1.inbound.key, sas2.inbound.key);
    }
}
