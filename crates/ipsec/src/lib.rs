//! # un-ipsec — ESP tunnel mode and the IKE-lite control plane
//!
//! The paper's evaluation workload is a strongSwan IPsec endpoint using
//! "the ESP protocol in tunnel mode", with data-plane processing in the
//! kernel (the property that makes the native/Docker flavors fast and
//! the VM flavor slow). This crate is that IPsec implementation:
//!
//! * [`replay`] — the RFC 4303 §3.4.3 anti-replay sliding window.
//! * [`sa`] — Security Associations (keys, SPI, sequence numbers,
//!   lifetime counters) and the SAD.
//! * [`esp`] — actual ESP tunnel-mode encapsulation/decapsulation with
//!   ChaCha20-Poly1305 (RFC 7634 style: 4-byte salt + 8-byte wire IV),
//!   RFC 4303 padding, and strict replay/auth checks.
//! * [`spd`] — Security Policy Database entries (traffic selectors →
//!   protect/bypass/discard), shared with the kernel XFRM layer in
//!   `un-linux`.
//! * [`ike`] — "IKE-lite": a two-message PSK-authenticated handshake that
//!   derives child-SA keys with HKDF, playing the role of the strongSwan
//!   daemon. It is deliberately *not* IKEv2, but it occupies the same
//!   place in the architecture (userspace control plane installing
//!   kernel SAs) and runs over UDP/500 in the simulation.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod esp;
pub mod ike;
pub mod replay;
pub mod sa;
pub mod spd;

pub use esp::{decapsulate, encapsulate, IpsecError};
pub use ike::{IkeConfig, IkeInitiator, IkeResponder};
pub use replay::ReplayWindow;
pub use sa::{SaDirection, Sad, SecurityAssociation, SpiValue};
pub use spd::{PolicyAction, SecurityPolicy, Spd, TrafficSelector};
