//! The anti-replay sliding window of RFC 4303 §3.4.3.
//!
//! A 64-bit bitmap tracks which of the last 64 sequence numbers were
//! seen. Packets older than the window or already seen are rejected;
//! newer packets slide the window forward.

/// Window size in sequence numbers.
pub const WINDOW_SIZE: u32 = 64;

/// Outcome of a replay check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Fresh sequence number; accepted.
    Ok,
    /// Duplicate within the window.
    Replayed,
    /// Older than the left edge of the window.
    TooOld,
    /// Sequence number zero is never valid in ESP.
    Zero,
}

/// Anti-replay state for one inbound SA.
#[derive(Debug, Clone, Default)]
pub struct ReplayWindow {
    /// Highest sequence number accepted so far.
    top: u32,
    /// Bitmap of seen packets; bit 0 = `top`, bit n = `top - n`.
    bitmap: u64,
}

impl ReplayWindow {
    /// A fresh window (nothing seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Check `seq` without mutating (would it be accepted?).
    pub fn check(&self, seq: u32) -> ReplayVerdict {
        if seq == 0 {
            return ReplayVerdict::Zero;
        }
        if seq > self.top {
            return ReplayVerdict::Ok;
        }
        let offset = self.top - seq;
        if offset >= WINDOW_SIZE {
            return ReplayVerdict::TooOld;
        }
        if self.bitmap & (1u64 << offset) != 0 {
            ReplayVerdict::Replayed
        } else {
            ReplayVerdict::Ok
        }
    }

    /// Record `seq` after successful authentication. Must only be called
    /// when [`check`](Self::check) returned `Ok` *and* the ICV verified
    /// (RFC 4303 mandates updating the window only post-auth).
    pub fn update(&mut self, seq: u32) {
        debug_assert_eq!(self.check(seq), ReplayVerdict::Ok);
        if seq > self.top {
            let shift = seq - self.top;
            if shift >= WINDOW_SIZE {
                self.bitmap = 1; // only the new top is marked
            } else {
                self.bitmap = (self.bitmap << shift) | 1;
            }
            self.top = seq;
        } else {
            let offset = self.top - seq;
            self.bitmap |= 1u64 << offset;
        }
    }

    /// Highest accepted sequence number.
    pub fn top(&self) -> u32 {
        self.top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_monotone_sequence() {
        let mut w = ReplayWindow::new();
        for seq in 1..=100 {
            assert_eq!(w.check(seq), ReplayVerdict::Ok, "seq {seq}");
            w.update(seq);
        }
        assert_eq!(w.top(), 100);
    }

    #[test]
    fn rejects_duplicates() {
        let mut w = ReplayWindow::new();
        w.update(5);
        assert_eq!(w.check(5), ReplayVerdict::Replayed);
        w.update(7);
        assert_eq!(w.check(5), ReplayVerdict::Replayed);
        assert_eq!(w.check(7), ReplayVerdict::Replayed);
        assert_eq!(w.check(6), ReplayVerdict::Ok);
    }

    #[test]
    fn rejects_zero_and_too_old() {
        let mut w = ReplayWindow::new();
        assert_eq!(w.check(0), ReplayVerdict::Zero);
        w.update(100);
        assert_eq!(w.check(100 - WINDOW_SIZE), ReplayVerdict::TooOld);
        assert_eq!(w.check(100 - WINDOW_SIZE + 1), ReplayVerdict::Ok);
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = ReplayWindow::new();
        w.update(10);
        w.update(8);
        w.update(9);
        assert_eq!(w.check(8), ReplayVerdict::Replayed);
        assert_eq!(w.check(9), ReplayVerdict::Replayed);
        assert_eq!(w.check(7), ReplayVerdict::Ok);
        assert_eq!(w.top(), 10);
    }

    #[test]
    fn big_jump_resets_bitmap() {
        let mut w = ReplayWindow::new();
        w.update(1);
        w.update(1000);
        assert_eq!(w.check(1000), ReplayVerdict::Replayed);
        // 999 was never seen and is within the window of 1000.
        assert_eq!(w.check(999), ReplayVerdict::Ok);
        // 1 is far outside the window now.
        assert_eq!(w.check(1), ReplayVerdict::TooOld);
    }

    #[test]
    fn window_edge_exact() {
        let mut w = ReplayWindow::new();
        w.update(WINDOW_SIZE + 1); // top = 65, window covers 2..=65
        assert_eq!(w.check(2), ReplayVerdict::Ok);
        assert_eq!(w.check(1), ReplayVerdict::TooOld);
        w.update(2);
        assert_eq!(w.check(2), ReplayVerdict::Replayed);
    }
}
