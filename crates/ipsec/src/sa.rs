//! Security Associations and the SAD (Security Association Database).

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::replay::ReplayWindow;

/// An SPI (Security Parameters Index).
pub type SpiValue = u32;

/// Direction of an SA relative to this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaDirection {
    /// Outbound: this host encapsulates.
    Out,
    /// Inbound: this host decapsulates.
    In,
}

/// One ESP tunnel-mode Security Association.
///
/// Keys follow the RFC 7634 ChaCha20-Poly1305 convention: a 32-byte
/// cipher key plus a 4-byte salt that prefixes the 8-byte per-packet IV
/// to form the 12-byte AEAD nonce.
#[derive(Debug, Clone)]
pub struct SecurityAssociation {
    /// The SPI identifying this SA on the wire.
    pub spi: SpiValue,
    /// Direction.
    pub direction: SaDirection,
    /// Tunnel outer source address.
    pub tunnel_src: Ipv4Addr,
    /// Tunnel outer destination address.
    pub tunnel_dst: Ipv4Addr,
    /// AEAD key.
    pub key: [u8; 32],
    /// AEAD salt (nonce prefix).
    pub salt: [u8; 4],
    /// Next outbound sequence number (outbound SAs).
    pub seq_out: u32,
    /// Anti-replay state (inbound SAs).
    pub replay: ReplayWindow,
    /// Packets processed under this SA.
    pub packets: u64,
    /// Bytes of inner traffic processed under this SA.
    pub bytes: u64,
}

impl SecurityAssociation {
    /// Create an outbound SA.
    pub fn outbound(
        spi: SpiValue,
        tunnel_src: Ipv4Addr,
        tunnel_dst: Ipv4Addr,
        key: [u8; 32],
        salt: [u8; 4],
    ) -> Self {
        SecurityAssociation {
            spi,
            direction: SaDirection::Out,
            tunnel_src,
            tunnel_dst,
            key,
            salt,
            seq_out: 0,
            replay: ReplayWindow::new(),
            packets: 0,
            bytes: 0,
        }
    }

    /// Create an inbound SA.
    pub fn inbound(
        spi: SpiValue,
        tunnel_src: Ipv4Addr,
        tunnel_dst: Ipv4Addr,
        key: [u8; 32],
        salt: [u8; 4],
    ) -> Self {
        SecurityAssociation {
            direction: SaDirection::In,
            ..Self::outbound(spi, tunnel_src, tunnel_dst, key, salt)
        }
    }
}

/// The SAD: SPI → SA. Inbound lookups key on SPI (as real ESP does);
/// outbound SAs are found through the SPD's `Protect` action.
#[derive(Debug, Default)]
pub struct Sad {
    sas: HashMap<SpiValue, SecurityAssociation>,
}

impl Sad {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install an SA (replaces an existing one with the same SPI).
    pub fn install(&mut self, sa: SecurityAssociation) {
        self.sas.insert(sa.spi, sa);
    }

    /// Remove an SA by SPI.
    pub fn remove(&mut self, spi: SpiValue) -> Option<SecurityAssociation> {
        self.sas.remove(&spi)
    }

    /// Look up an SA.
    pub fn get(&self, spi: SpiValue) -> Option<&SecurityAssociation> {
        self.sas.get(&spi)
    }

    /// Look up an SA mutably (needed for seq/replay updates).
    pub fn get_mut(&mut self, spi: SpiValue) -> Option<&mut SecurityAssociation> {
        self.sas.get_mut(&spi)
    }

    /// Number of installed SAs.
    pub fn len(&self) -> usize {
        self.sas.len()
    }

    /// True if no SAs are installed.
    pub fn is_empty(&self) -> bool {
        self.sas.is_empty()
    }

    /// Iterate over installed SAs.
    pub fn iter(&self) -> impl Iterator<Item = &SecurityAssociation> {
        self.sas.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(spi: u32) -> SecurityAssociation {
        SecurityAssociation::outbound(
            spi,
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(203, 0, 113, 7),
            [7u8; 32],
            [1, 2, 3, 4],
        )
    }

    #[test]
    fn install_and_lookup() {
        let mut sad = Sad::new();
        sad.install(sa(0x100));
        sad.install(sa(0x200));
        assert_eq!(sad.len(), 2);
        assert!(sad.get(0x100).is_some());
        assert!(sad.get(0x300).is_none());
        assert_eq!(
            sad.get(0x200).unwrap().tunnel_dst,
            Ipv4Addr::new(203, 0, 113, 7)
        );
    }

    #[test]
    fn replace_same_spi() {
        let mut sad = Sad::new();
        sad.install(sa(0x100));
        let mut s2 = sa(0x100);
        s2.key = [9u8; 32];
        sad.install(s2);
        assert_eq!(sad.len(), 1);
        assert_eq!(sad.get(0x100).unwrap().key, [9u8; 32]);
    }

    #[test]
    fn remove() {
        let mut sad = Sad::new();
        sad.install(sa(0x1));
        assert!(sad.remove(0x1).is_some());
        assert!(sad.remove(0x1).is_none());
        assert!(sad.is_empty());
    }

    #[test]
    fn inbound_constructor_sets_direction() {
        let s = SecurityAssociation::inbound(
            1,
            Ipv4Addr::UNSPECIFIED,
            Ipv4Addr::UNSPECIFIED,
            [0; 32],
            [0; 4],
        );
        assert_eq!(s.direction, SaDirection::In);
        assert_eq!(s.seq_out, 0);
    }
}
