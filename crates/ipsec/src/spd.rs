//! The Security Policy Database (RFC 4301 §4.4.1, simplified).
//!
//! Policies map traffic selectors to protect/bypass/discard decisions.
//! The kernel XFRM layer in `un-linux` consults the SPD on output (to
//! decide whether to encapsulate) and on input after decapsulation (to
//! verify the inner packet was allowed to arrive protected).

use std::net::Ipv4Addr;

use un_packet::Ipv4Cidr;

use crate::sa::SpiValue;

/// Which traffic a policy applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSelector {
    /// Inner source prefix.
    pub src: Ipv4Cidr,
    /// Inner destination prefix.
    pub dst: Ipv4Cidr,
    /// IP protocol restriction (None = any).
    pub proto: Option<u8>,
}

impl TrafficSelector {
    /// Selector matching everything.
    pub fn any() -> Self {
        TrafficSelector {
            src: Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 0),
            dst: Ipv4Cidr::new(Ipv4Addr::UNSPECIFIED, 0),
            proto: None,
        }
    }

    /// Selector for a src/dst prefix pair.
    pub fn between(src: Ipv4Cidr, dst: Ipv4Cidr) -> Self {
        TrafficSelector {
            src,
            dst,
            proto: None,
        }
    }

    /// Does a packet with these addresses/protocol match?
    pub fn matches(&self, src: Ipv4Addr, dst: Ipv4Addr, proto: u8) -> bool {
        self.src.contains(src)
            && self.dst.contains(dst)
            && self.proto.map(|p| p == proto).unwrap_or(true)
    }
}

/// What to do with matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyAction {
    /// ESP-protect with the SA identified by this SPI.
    Protect(SpiValue),
    /// Let it pass in the clear.
    Bypass,
    /// Drop it.
    Discard,
}

/// Direction a policy applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDirection {
    /// Outbound traffic (encapsulation decision).
    Out,
    /// Inbound traffic (verification after decapsulation).
    In,
}

/// One SPD entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityPolicy {
    /// Which traffic.
    pub selector: TrafficSelector,
    /// Which direction.
    pub direction: PolicyDirection,
    /// What to do.
    pub action: PolicyAction,
    /// Priority; higher wins on overlap.
    pub priority: u16,
}

/// The ordered policy database.
#[derive(Debug, Default)]
pub struct Spd {
    policies: Vec<SecurityPolicy>,
}

impl Spd {
    /// An empty SPD.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a policy (kept sorted by priority, stable).
    pub fn install(&mut self, policy: SecurityPolicy) {
        let pos = self
            .policies
            .iter()
            .position(|p| p.priority < policy.priority)
            .unwrap_or(self.policies.len());
        self.policies.insert(pos, policy);
    }

    /// Remove all policies protecting with a given SPI; returns count.
    pub fn remove_by_spi(&mut self, spi: SpiValue) -> usize {
        let before = self.policies.len();
        self.policies
            .retain(|p| !matches!(p.action, PolicyAction::Protect(s) if s == spi));
        before - self.policies.len()
    }

    /// Find the decision for a packet in a direction.
    pub fn lookup(
        &self,
        direction: PolicyDirection,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: u8,
    ) -> Option<&SecurityPolicy> {
        self.policies
            .iter()
            .find(|p| p.direction == direction && p.selector.matches(src, dst, proto))
    }

    /// Number of installed policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// True if no policies are installed.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn selector_matching() {
        let sel = TrafficSelector::between(cidr("10.0.0.0/24"), cidr("192.168.0.0/16"));
        assert!(sel.matches(
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(192, 168, 3, 1),
            17
        ));
        assert!(!sel.matches(
            Ipv4Addr::new(10, 0, 1, 5),
            Ipv4Addr::new(192, 168, 3, 1),
            17
        ));
        let mut with_proto = sel;
        with_proto.proto = Some(6);
        assert!(!with_proto.matches(
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(192, 168, 3, 1),
            17
        ));
    }

    #[test]
    fn priority_ordering() {
        let mut spd = Spd::new();
        spd.install(SecurityPolicy {
            selector: TrafficSelector::any(),
            direction: PolicyDirection::Out,
            action: PolicyAction::Bypass,
            priority: 1,
        });
        spd.install(SecurityPolicy {
            selector: TrafficSelector::between(cidr("10.0.0.0/8"), cidr("0.0.0.0/0")),
            direction: PolicyDirection::Out,
            action: PolicyAction::Protect(0x99),
            priority: 10,
        });
        let p = spd
            .lookup(
                PolicyDirection::Out,
                Ipv4Addr::new(10, 1, 1, 1),
                Ipv4Addr::new(8, 8, 8, 8),
                17,
            )
            .unwrap();
        assert_eq!(p.action, PolicyAction::Protect(0x99));
        let p = spd
            .lookup(
                PolicyDirection::Out,
                Ipv4Addr::new(172, 16, 0, 1),
                Ipv4Addr::new(8, 8, 8, 8),
                17,
            )
            .unwrap();
        assert_eq!(p.action, PolicyAction::Bypass);
    }

    #[test]
    fn direction_separation() {
        let mut spd = Spd::new();
        spd.install(SecurityPolicy {
            selector: TrafficSelector::any(),
            direction: PolicyDirection::In,
            action: PolicyAction::Discard,
            priority: 5,
        });
        assert!(spd
            .lookup(
                PolicyDirection::Out,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::UNSPECIFIED,
                0
            )
            .is_none());
        assert!(spd
            .lookup(
                PolicyDirection::In,
                Ipv4Addr::UNSPECIFIED,
                Ipv4Addr::UNSPECIFIED,
                0
            )
            .is_some());
    }

    #[test]
    fn remove_by_spi() {
        let mut spd = Spd::new();
        for spi in [1u32, 2, 1] {
            spd.install(SecurityPolicy {
                selector: TrafficSelector::any(),
                direction: PolicyDirection::Out,
                action: PolicyAction::Protect(spi),
                priority: 1,
            });
        }
        assert_eq!(spd.remove_by_spi(1), 2);
        assert_eq!(spd.len(), 1);
    }
}
