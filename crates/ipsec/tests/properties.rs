//! Property-based tests for the ESP data plane.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use un_ipsec::replay::{ReplayVerdict, ReplayWindow, WINDOW_SIZE};
use un_ipsec::sa::SecurityAssociation;
use un_ipsec::{decapsulate, encapsulate};

fn pair(key: [u8; 32], salt: [u8; 4]) -> (SecurityAssociation, SecurityAssociation) {
    let a = Ipv4Addr::new(192, 0, 2, 1);
    let b = Ipv4Addr::new(203, 0, 113, 7);
    (
        SecurityAssociation::outbound(0x77, a, b, key, salt),
        SecurityAssociation::inbound(0x77, a, b, key, salt),
    )
}

proptest! {
    /// Tunnel-mode encap/decap is the identity for any inner packet.
    #[test]
    fn esp_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        salt in prop::array::uniform4(any::<u8>()),
        inner in prop::collection::vec(any::<u8>(), 0..1600),
        count in 1usize..8,
    ) {
        let (mut tx, mut rx) = pair(key, salt);
        for _ in 0..count {
            let wire = encapsulate(&mut tx, &inner).unwrap();
            // Alignment invariant from RFC 4303.
            prop_assert_eq!((wire.len() - 32) % 4, 0);
            let back = decapsulate(&mut rx, &wire).unwrap();
            prop_assert_eq!(&back, &inner);
        }
    }

    /// The replay window accepts each sequence number at most once, in
    /// any arrival order.
    #[test]
    fn replay_accepts_each_seq_once(
        mut seqs in prop::collection::vec(1u32..5000, 1..200),
    ) {
        let mut w = ReplayWindow::new();
        let mut accepted = std::collections::HashSet::new();
        for &seq in &seqs {
            match w.check(seq) {
                ReplayVerdict::Ok => {
                    w.update(seq);
                    prop_assert!(accepted.insert(seq), "seq {seq} accepted twice");
                }
                ReplayVerdict::Replayed => {
                    prop_assert!(accepted.contains(&seq), "fresh seq {seq} called replay");
                }
                ReplayVerdict::TooOld => {
                    prop_assert!(w.top() >= WINDOW_SIZE, "too-old before window filled");
                    prop_assert!(seq + WINDOW_SIZE <= w.top());
                }
                ReplayVerdict::Zero => prop_assert_eq!(seq, 0),
            }
        }
        seqs.clear();
    }

    /// Wire-format corruption never yields a different plaintext — it is
    /// always rejected outright.
    #[test]
    fn corruption_always_rejected(
        key in prop::array::uniform32(any::<u8>()),
        inner in prop::collection::vec(any::<u8>(), 1..512),
        corrupt in any::<prop::sample::Index>(),
    ) {
        let (mut tx, mut rx) = pair(key, [9, 9, 9, 9]);
        let mut wire = encapsulate(&mut tx, &inner).unwrap();
        let idx = corrupt.index(wire.len());
        wire[idx] ^= 0x01;
        // Either framing fails, the SPI/seq no longer match, auth fails,
        // or — never — success with the same bytes.
        match decapsulate(&mut rx, &wire) {
            Err(_) => {}
            Ok(_decoded) => {
                // The only way corruption can "succeed" is a bit flip in
                // the header that still maps to this SA and seq — but
                // AAD covers SPI/seq, so even that must fail.
                prop_assert!(false, "corrupted packet at byte {idx} was accepted");
            }
        }
    }
}
