//! Connection tracking and NAT.
//!
//! The NAT NNF is `iptables -t nat` + this engine. Entries are keyed by
//! `(zone, 5-tuple)`; **zones** give each service graph sharing a single
//! NAT NNF instance its own tracking space, so overlapping customer
//! address plans cannot collide — this is one half of the paper's
//! sharable-NNF isolation story (the other half is policy routing).
//!
//! NAT model: every connection stores its pre-NAT original tuple and the
//! post-NAT translated tuple. Packets in the original direction are
//! rewritten `orig → trans`; replies matching `reverse(trans)` are
//! rewritten back to `reverse(orig)`.

use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Conntrack flow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtState {
    /// First packet(s) of a flow; no reply seen yet.
    New,
    /// A reply has been seen.
    Established,
}

/// A 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowTuple {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP protocol.
    pub proto: u8,
    /// L4 source port (0 for port-less protocols).
    pub sport: u16,
    /// L4 destination port.
    pub dport: u16,
}

impl FlowTuple {
    /// The reply-direction tuple.
    pub fn reversed(&self) -> FlowTuple {
        FlowTuple {
            src: self.dst,
            dst: self.src,
            proto: self.proto,
            sport: self.dport,
            dport: self.sport,
        }
    }
}

/// Handle to a tracked connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnId(usize);

/// Direction of a packet relative to its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtDirection {
    /// Same direction as the first packet.
    Original,
    /// Reply direction.
    Reply,
}

#[derive(Debug, Clone)]
struct ConnEntry {
    zone: u16,
    /// Pre-NAT tuple of the original direction.
    orig: FlowTuple,
    /// Post-NAT tuple of the original direction.
    trans: FlowTuple,
    state: CtState,
    confirmed: bool,
    packets: u64,
}

/// The connection tracking table.
#[derive(Debug, Default)]
pub struct Conntrack {
    conns: Vec<ConnEntry>,
    lookup: HashMap<(u16, FlowTuple), usize>,
    used_ports: HashSet<(u16, Ipv4Addr, u8, u16)>,
}

/// First port used for masquerade allocations (Linux default range).
pub const NAT_PORT_MIN: u16 = 32768;

impl Conntrack {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of confirmed connections.
    pub fn len(&self) -> usize {
        self.conns.iter().filter(|c| c.confirmed).count()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Find the connection a packet belongs to.
    pub fn find(&self, zone: u16, tuple: &FlowTuple) -> Option<(ConnId, CtDirection)> {
        if let Some(&idx) = self.lookup.get(&(zone, *tuple)) {
            let c = &self.conns[idx];
            if c.orig == *tuple {
                return Some((ConnId(idx), CtDirection::Original));
            }
            return Some((ConnId(idx), CtDirection::Reply));
        }
        None
    }

    /// Begin tracking a new flow (unconfirmed until [`confirm`](Self::confirm)).
    pub fn begin(&mut self, zone: u16, tuple: FlowTuple) -> ConnId {
        let idx = self.conns.len();
        self.conns.push(ConnEntry {
            zone,
            orig: tuple,
            trans: tuple,
            state: CtState::New,
            confirmed: false,
            packets: 0,
        });
        ConnId(idx)
    }

    /// Apply a DNAT decision to a new connection.
    pub fn set_dnat(&mut self, id: ConnId, to: Ipv4Addr, port: Option<u16>) {
        let c = &mut self.conns[id.0];
        debug_assert!(!c.confirmed, "NAT after confirmation is invalid");
        c.trans.dst = to;
        if let Some(p) = port {
            c.trans.dport = p;
        }
    }

    /// Apply an SNAT/masquerade decision. If the requested (or current)
    /// source port collides with another translation to the same
    /// address, a fresh port is allocated deterministically from
    /// [`NAT_PORT_MIN`].
    pub fn set_snat(&mut self, id: ConnId, to: Ipv4Addr, port: Option<u16>) {
        let c = &mut self.conns[id.0];
        debug_assert!(!c.confirmed, "NAT after confirmation is invalid");
        c.trans.src = to;
        let zone = c.zone;
        let proto = c.trans.proto;
        let mut candidate = port.unwrap_or(c.trans.sport);
        if candidate == 0 {
            candidate = NAT_PORT_MIN;
        }
        while self.used_ports.contains(&(zone, to, proto, candidate)) {
            candidate = if candidate < NAT_PORT_MIN {
                NAT_PORT_MIN
            } else {
                candidate.checked_add(1).unwrap_or(NAT_PORT_MIN)
            };
        }
        self.conns[id.0].trans.sport = candidate;
        self.used_ports.insert((zone, to, proto, candidate));
    }

    /// Confirm a connection after POSTROUTING: it becomes visible to
    /// lookups in both directions.
    pub fn confirm(&mut self, id: ConnId) {
        let c = &mut self.conns[id.0];
        if c.confirmed {
            return;
        }
        c.confirmed = true;
        let zone = c.zone;
        let orig = c.orig;
        let reply_key = c.trans.reversed();
        self.lookup.insert((zone, orig), id.0);
        self.lookup.insert((zone, reply_key), id.0);
    }

    /// The tuple a packet should carry after NAT, given its direction.
    pub fn rewrite(&self, id: ConnId, dir: CtDirection) -> FlowTuple {
        let c = &self.conns[id.0];
        match dir {
            CtDirection::Original => c.trans,
            CtDirection::Reply => c.orig.reversed(),
        }
    }

    /// Current state of a connection.
    pub fn state(&self, id: ConnId) -> CtState {
        self.conns[id.0].state
    }

    /// Record a packet on the connection; a reply-direction packet
    /// promotes the flow to Established.
    pub fn note_packet(&mut self, id: ConnId, dir: CtDirection) {
        let c = &mut self.conns[id.0];
        c.packets += 1;
        if dir == CtDirection::Reply {
            c.state = CtState::Established;
        }
    }

    /// Packets seen on a connection.
    pub fn packet_count(&self, id: ConnId) -> u64 {
        self.conns[id.0].packets
    }

    /// Drop everything (e.g. NNF teardown).
    pub fn clear(&mut self) {
        self.conns.clear();
        self.lookup.clear();
        self.used_ports.clear();
    }

    /// Iterate confirmed connections of a zone (diagnostics).
    pub fn zone_conns(&self, zone: u16) -> impl Iterator<Item = (&FlowTuple, &FlowTuple, CtState)> {
        self.conns
            .iter()
            .filter(move |c| c.zone == zone && c.confirmed)
            .map(|c| (&c.orig, &c.trans, c.state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(src: [u8; 4], sport: u16, dst: [u8; 4], dport: u16) -> FlowTuple {
        FlowTuple {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            proto: 17,
            sport,
            dport,
        }
    }

    #[test]
    fn track_and_establish() {
        let mut ct = Conntrack::new();
        let t = tuple([10, 0, 0, 2], 5000, [8, 8, 8, 8], 53);
        assert!(ct.find(0, &t).is_none());
        let id = ct.begin(0, t);
        ct.confirm(id);
        ct.note_packet(id, CtDirection::Original);
        assert_eq!(ct.state(id), CtState::New);

        let (id2, dir) = ct.find(0, &t.reversed()).unwrap();
        assert_eq!(id2, id);
        assert_eq!(dir, CtDirection::Reply);
        ct.note_packet(id2, CtDirection::Reply);
        assert_eq!(ct.state(id), CtState::Established);
        assert_eq!(ct.packet_count(id), 2);
    }

    #[test]
    fn snat_rewrites_and_reverses() {
        let mut ct = Conntrack::new();
        let orig = tuple([192, 168, 1, 10], 5000, [8, 8, 8, 8], 53);
        let id = ct.begin(0, orig);
        ct.set_snat(id, Ipv4Addr::new(203, 0, 113, 1), None);
        ct.confirm(id);

        let out = ct.rewrite(id, CtDirection::Original);
        assert_eq!(out.src, Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(out.dst, Ipv4Addr::new(8, 8, 8, 8));

        // Reply arrives addressed to the translated source.
        let reply = out.reversed();
        let (rid, dir) = ct.find(0, &reply).unwrap();
        assert_eq!(rid, id);
        assert_eq!(dir, CtDirection::Reply);
        let back = ct.rewrite(rid, dir);
        assert_eq!(back.dst, Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(back.dport, 5000);
    }

    #[test]
    fn dnat_rewrites() {
        let mut ct = Conntrack::new();
        let orig = tuple([1, 2, 3, 4], 9999, [203, 0, 113, 1], 8080);
        let id = ct.begin(0, orig);
        ct.set_dnat(id, Ipv4Addr::new(192, 168, 1, 20), Some(80));
        ct.confirm(id);
        let fwd = ct.rewrite(id, CtDirection::Original);
        assert_eq!(fwd.dst, Ipv4Addr::new(192, 168, 1, 20));
        assert_eq!(fwd.dport, 80);
        // Server's reply (from 192.168.1.20:80) maps back to the public tuple.
        let (rid, dir) = ct.find(0, &fwd.reversed()).unwrap();
        let back = ct.rewrite(rid, dir);
        assert_eq!(back.src, Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(back.sport, 8080);
    }

    #[test]
    fn port_collision_allocates_fresh_port() {
        let mut ct = Conntrack::new();
        let pub_ip = Ipv4Addr::new(203, 0, 113, 1);
        // Two inside hosts use the same source port to the same server.
        let a = tuple([192, 168, 1, 10], 5000, [8, 8, 8, 8], 53);
        let b = tuple([192, 168, 1, 11], 5000, [8, 8, 8, 8], 53);
        let ia = ct.begin(0, a);
        ct.set_snat(ia, pub_ip, None);
        ct.confirm(ia);
        let ib = ct.begin(0, b);
        ct.set_snat(ib, pub_ip, None);
        ct.confirm(ib);

        let ta = ct.rewrite(ia, CtDirection::Original);
        let tb = ct.rewrite(ib, CtDirection::Original);
        assert_eq!(ta.src, pub_ip);
        assert_eq!(tb.src, pub_ip);
        assert_ne!(ta.sport, tb.sport, "translations must not collide");

        // Replies demux to the right inside host.
        let (ra, _) = ct.find(0, &ta.reversed()).unwrap();
        let (rb, _) = ct.find(0, &tb.reversed()).unwrap();
        assert_eq!(ct.rewrite(ra, CtDirection::Reply).dst, a.src);
        assert_eq!(ct.rewrite(rb, CtDirection::Reply).dst, b.src);
    }

    #[test]
    fn zones_isolate_identical_tuples() {
        let mut ct = Conntrack::new();
        let t = tuple([192, 168, 1, 10], 5000, [8, 8, 8, 8], 53);
        let id1 = ct.begin(1, t);
        ct.set_snat(id1, Ipv4Addr::new(203, 0, 113, 1), None);
        ct.confirm(id1);
        let id2 = ct.begin(2, t);
        ct.set_snat(id2, Ipv4Addr::new(198, 51, 100, 1), None);
        ct.confirm(id2);

        let (f1, d1) = ct.find(1, &t).unwrap();
        let (f2, d2) = ct.find(2, &t).unwrap();
        assert_ne!(f1, f2);
        assert_eq!(d1, CtDirection::Original);
        assert_eq!(d2, CtDirection::Original);
        assert_eq!(ct.rewrite(f1, d1).src, Ipv4Addr::new(203, 0, 113, 1));
        assert_eq!(ct.rewrite(f2, d2).src, Ipv4Addr::new(198, 51, 100, 1));
        assert!(ct.find(3, &t).is_none());
    }

    #[test]
    fn unconfirmed_invisible() {
        let mut ct = Conntrack::new();
        let t = tuple([1, 1, 1, 1], 1, [2, 2, 2, 2], 2);
        let _id = ct.begin(0, t);
        assert!(
            ct.find(0, &t).is_none(),
            "unconfirmed entries must not match"
        );
        assert_eq!(ct.len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut ct = Conntrack::new();
        let t = tuple([1, 1, 1, 1], 1, [2, 2, 2, 2], 2);
        let id = ct.begin(0, t);
        ct.confirm(id);
        assert_eq!(ct.len(), 1);
        ct.clear();
        assert!(ct.is_empty());
        assert!(ct.find(0, &t).is_none());
    }
}
