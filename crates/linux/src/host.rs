//! The simulated Linux host: namespaces, interfaces, and the packet
//! pipeline.
//!
//! Pipeline shape (mirroring the kernel's hook order, simplified):
//!
//! ```text
//! rx_frame ─ bridge? ─ vlan demux? ─ L2 filter ─ ARP | IPv4
//! IPv4: mangle/PREROUTING → conntrack (+nat/PREROUTING on new flows)
//!   ├─ local:   filter/INPUT → ESP? xfrm input (recirculate) → sockets/ICMP
//!   └─ forward: TTL → route (policy, fwmark) → filter/FORWARD
//!               → nat/POSTROUTING → xfrm output → neighbor → tx_frame
//! local out:    route → filter/OUTPUT → nat/POSTROUTING → xfrm → tx
//! ```
//!
//! Every step charges virtual time through the [`CostModel`], so a
//! saturation run across a host produces meaningful Mbps.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use un_packet::arp::{ArpOp, ArpPacket, ARP_LEN};
use un_packet::ethernet::{EtherType, EthernetFrame, MacAddr, ETHERNET_HEADER_LEN};
use un_packet::icmp::{IcmpKind, IcmpMessage};
use un_packet::ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
use un_packet::tcp::TcpSegment;
use un_packet::udp::UdpDatagram;
use un_packet::{Ipv4Cidr, Packet, PacketMeta};
use un_sim::{Cost, CostModel, SimTime, TraceLog};

use crate::conntrack::{Conntrack, CtDirection, CtState, FlowTuple};
use crate::iface::{Iface, IfaceId, IfaceKind, NeighState, NEIGH_QUEUE_MAX};
use crate::netfilter::{Chain, ChainEffects, Netfilter, NfPacket, NfTable, Verdict};
use crate::route::{IpRule, Route, RoutingPolicy};
use crate::socket::{Datagram, SocketId, SocketTable};
use crate::types::{ExternalTag, HostError, IoResult, NsId};
use crate::xfrm::{Xfrm, XfrmOutput};

/// Maximum processing recursion (veth hops, recirculations) per frame.
const MAX_DEPTH: u32 = 64;

/// One network namespace.
#[derive(Debug)]
pub struct Namespace {
    /// Handle.
    pub id: NsId,
    /// Name (unique per host).
    pub name: String,
    /// Interfaces owned by this namespace.
    pub ifaces: Vec<IfaceId>,
    /// Routing tables + policy rules.
    pub routing: RoutingPolicy,
    /// Netfilter state.
    pub netfilter: Netfilter,
    /// Connection tracking.
    pub conntrack: Conntrack,
    /// Kernel IPsec.
    pub xfrm: Xfrm,
    /// ARP neighbor cache.
    pub neigh: HashMap<Ipv4Addr, NeighState>,
    /// `net.ipv4.ip_forward`.
    pub ip_forward: bool,
    /// Packets delivered to local sockets/ICMP.
    pub delivered: u64,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped (all causes).
    pub dropped: u64,
}

struct Ctx {
    emitted: Vec<(ExternalTag, Packet)>,
    cost: Cost,
}

impl Ctx {
    fn new() -> Self {
        Ctx {
            emitted: Vec::new(),
            cost: Cost::ZERO,
        }
    }
    fn charge(&mut self, ns: u64) {
        self.cost += Cost::from_nanos(ns);
    }
    fn into_result(self) -> IoResult {
        IoResult {
            emitted: self.emitted,
            cost: self.cost,
        }
    }
}

/// A simulated Linux machine.
#[derive(Debug)]
pub struct Host {
    /// Host name (diagnostics).
    pub name: String,
    namespaces: Vec<Namespace>,
    ifaces: Vec<Iface>,
    sockets: SocketTable,
    /// The cost model every pipeline step charges against.
    pub costs: CostModel,
    /// Event log + counters.
    pub trace: TraceLog,
    now: SimTime,
    next_mac: u32,
}

impl Host {
    /// Create a host with a root namespace (`NsId(0)`).
    pub fn new(name: &str, costs: CostModel) -> Self {
        let mut h = Host {
            name: name.to_string(),
            namespaces: Vec::new(),
            ifaces: Vec::new(),
            sockets: SocketTable::new(),
            costs,
            trace: TraceLog::new(16_384),
            now: SimTime::ZERO,
            next_mac: 1,
        };
        h.add_namespace("root");
        h
    }

    /// Advance the host's notion of time (stamps trace events).
    pub fn set_time(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Current host time.
    pub fn time(&self) -> SimTime {
        self.now
    }

    // ------------------------------------------------------------------
    // Configuration plane ("ip", "iptables", "sysctl")
    // ------------------------------------------------------------------

    /// Create a namespace (with a loopback interface).
    pub fn add_namespace(&mut self, name: &str) -> NsId {
        let id = NsId(self.namespaces.len() as u32);
        self.namespaces.push(Namespace {
            id,
            name: name.to_string(),
            ifaces: Vec::new(),
            routing: RoutingPolicy::new(),
            netfilter: Netfilter::new(),
            conntrack: Conntrack::new(),
            xfrm: Xfrm::new(),
            neigh: HashMap::new(),
            ip_forward: false,
            delivered: 0,
            forwarded: 0,
            dropped: 0,
        });
        let lo = self.push_iface(id, "lo", IfaceKind::Loopback);
        self.ifaces[lo.0 as usize]
            .addrs
            .push(Ipv4Cidr::new(Ipv4Addr::LOCALHOST, 8));
        self.ifaces[lo.0 as usize].up = true;
        id
    }

    fn alloc_mac(&mut self) -> MacAddr {
        let m = MacAddr::local(self.next_mac);
        self.next_mac += 1;
        m
    }

    fn push_iface(&mut self, ns: NsId, name: &str, kind: IfaceKind) -> IfaceId {
        let id = IfaceId(self.ifaces.len() as u32);
        let mac = self.alloc_mac();
        self.ifaces.push(Iface {
            id,
            ns,
            name: name.to_string(),
            mac,
            addrs: Vec::new(),
            up: false,
            kind,
            ct_zone: 0,
            rx_packets: 0,
            tx_packets: 0,
            rx_bytes: 0,
            tx_bytes: 0,
        });
        self.namespaces[ns.0 as usize].ifaces.push(id);
        id
    }

    fn check_name_free(&self, ns: NsId, name: &str) -> Result<(), HostError> {
        let taken = self.namespaces[ns.0 as usize]
            .ifaces
            .iter()
            .any(|&i| self.ifaces[i.0 as usize].name == name);
        if taken {
            Err(HostError::IfaceNameInUse(name.to_string()))
        } else {
            Ok(())
        }
    }

    /// Create a veth pair spanning two namespaces.
    pub fn add_veth(
        &mut self,
        ns_a: NsId,
        name_a: &str,
        ns_b: NsId,
        name_b: &str,
    ) -> Result<(IfaceId, IfaceId), HostError> {
        self.ns_check(ns_a)?;
        self.ns_check(ns_b)?;
        self.check_name_free(ns_a, name_a)?;
        self.check_name_free(ns_b, name_b)?;
        let a = self.push_iface(ns_a, name_a, IfaceKind::Veth { peer: IfaceId(0) });
        let b = self.push_iface(ns_b, name_b, IfaceKind::Veth { peer: a });
        self.ifaces[a.0 as usize].kind = IfaceKind::Veth { peer: b };
        Ok((a, b))
    }

    /// Create an external attachment (tap/LSI port/NIC).
    pub fn add_external(
        &mut self,
        ns: NsId,
        name: &str,
        tag: ExternalTag,
    ) -> Result<IfaceId, HostError> {
        self.ns_check(ns)?;
        self.check_name_free(ns, name)?;
        Ok(self.push_iface(ns, name, IfaceKind::External { tag }))
    }

    /// Create a bridge.
    pub fn add_bridge(&mut self, ns: NsId, name: &str) -> Result<IfaceId, HostError> {
        self.ns_check(ns)?;
        self.check_name_free(ns, name)?;
        Ok(self.push_iface(
            ns,
            name,
            IfaceKind::Bridge {
                members: Vec::new(),
                fdb: HashMap::new(),
            },
        ))
    }

    /// Enslave `member` to `bridge` (must share a namespace).
    pub fn bridge_attach(&mut self, bridge: IfaceId, member: IfaceId) -> Result<(), HostError> {
        self.iface_check(bridge)?;
        self.iface_check(member)?;
        if self.ifaces[bridge.0 as usize].ns != self.ifaces[member.0 as usize].ns {
            return Err(HostError::WrongIfaceKind("bridge-attach across namespaces"));
        }
        match &mut self.ifaces[bridge.0 as usize].kind {
            IfaceKind::Bridge { members, .. } => {
                if !members.contains(&member) {
                    members.push(member);
                }
                Ok(())
            }
            _ => Err(HostError::WrongIfaceKind("bridge-attach")),
        }
    }

    /// Create an 802.1Q sub-interface of `parent` for `vid`.
    pub fn add_vlan_sub(
        &mut self,
        parent: IfaceId,
        vid: u16,
        name: &str,
    ) -> Result<IfaceId, HostError> {
        self.iface_check(parent)?;
        let ns = self.ifaces[parent.0 as usize].ns;
        self.check_name_free(ns, name)?;
        let dup = self.ifaces.iter().any(|i| {
            matches!(i.kind, IfaceKind::VlanSub { parent: p, vid: v } if p == parent && v == vid)
        });
        if dup {
            return Err(HostError::VlanInUse(vid));
        }
        let id = self.push_iface(ns, name, IfaceKind::VlanSub { parent, vid });
        // Sub-interfaces share the parent's MAC, like Linux.
        self.ifaces[id.0 as usize].mac = self.ifaces[parent.0 as usize].mac;
        Ok(id)
    }

    /// Assign an address (`ip addr add`). Also installs the connected route.
    pub fn addr_add(&mut self, iface: IfaceId, cidr: Ipv4Cidr) -> Result<(), HostError> {
        self.iface_check(iface)?;
        let ns = self.ifaces[iface.0 as usize].ns;
        self.ifaces[iface.0 as usize].addrs.push(cidr);
        self.namespaces[ns.0 as usize]
            .routing
            .main_mut()
            .add(Route {
                dst: Ipv4Cidr::new(cidr.network(), cidr.prefix_len()),
                via: None,
                dev: iface,
                metric: 0,
            });
        Ok(())
    }

    /// Set administrative state (`ip link set up/down`).
    pub fn set_up(&mut self, iface: IfaceId, up: bool) -> Result<(), HostError> {
        self.iface_check(iface)?;
        self.ifaces[iface.0 as usize].up = up;
        Ok(())
    }

    /// Stamp a conntrack zone on traffic ingressing an interface.
    pub fn set_ct_zone(&mut self, iface: IfaceId, zone: u16) -> Result<(), HostError> {
        self.iface_check(iface)?;
        self.ifaces[iface.0 as usize].ct_zone = zone;
        Ok(())
    }

    /// Add a route (`ip route add … table <t>`).
    pub fn route_add(
        &mut self,
        ns: NsId,
        table: u32,
        dst: Ipv4Cidr,
        via: Option<Ipv4Addr>,
        dev: IfaceId,
        metric: u32,
    ) -> Result<(), HostError> {
        self.ns_check(ns)?;
        self.iface_check(dev)?;
        self.namespaces[ns.0 as usize]
            .routing
            .table_mut(table)
            .add(Route {
                dst,
                via,
                dev,
                metric,
            });
        Ok(())
    }

    /// Add a policy rule (`ip rule add fwmark … lookup …`).
    pub fn rule_add(&mut self, ns: NsId, rule: IpRule) -> Result<(), HostError> {
        self.ns_check(ns)?;
        self.namespaces[ns.0 as usize].routing.add_rule(rule);
        Ok(())
    }

    /// Enable/disable forwarding (`sysctl net.ipv4.ip_forward`).
    pub fn sysctl_ip_forward(&mut self, ns: NsId, on: bool) -> Result<(), HostError> {
        self.ns_check(ns)?;
        self.namespaces[ns.0 as usize].ip_forward = on;
        Ok(())
    }

    /// Install a static neighbor (`ip neigh add … lladdr …`).
    pub fn neigh_add(&mut self, ns: NsId, ip: Ipv4Addr, mac: MacAddr) -> Result<(), HostError> {
        self.ns_check(ns)?;
        self.namespaces[ns.0 as usize]
            .neigh
            .insert(ip, NeighState::Reachable(mac));
        Ok(())
    }

    /// Append an iptables rule.
    pub fn nf_append(
        &mut self,
        ns: NsId,
        table: NfTable,
        chain: Chain,
        rule: crate::netfilter::NfRule,
    ) -> Result<(), HostError> {
        self.ns_check(ns)?;
        self.namespaces[ns.0 as usize]
            .netfilter
            .append(table, chain, rule);
        Ok(())
    }

    /// Set a chain policy.
    pub fn nf_policy(
        &mut self,
        ns: NsId,
        table: NfTable,
        chain: Chain,
        accept: bool,
    ) -> Result<(), HostError> {
        self.ns_check(ns)?;
        self.namespaces[ns.0 as usize]
            .netfilter
            .set_policy(table, chain, accept);
        Ok(())
    }

    /// Mutable access to a namespace's XFRM state (SA/policy install).
    pub fn xfrm_mut(&mut self, ns: NsId) -> Result<&mut Xfrm, HostError> {
        self.ns_check(ns)?;
        Ok(&mut self.namespaces[ns.0 as usize].xfrm)
    }

    /// Read access to a namespace.
    pub fn namespace(&self, ns: NsId) -> Option<&Namespace> {
        self.namespaces.get(ns.0 as usize)
    }

    /// Mutable access to a namespace.
    pub fn namespace_mut(&mut self, ns: NsId) -> Option<&mut Namespace> {
        self.namespaces.get_mut(ns.0 as usize)
    }

    /// Read access to an interface.
    pub fn iface(&self, id: IfaceId) -> Option<&Iface> {
        self.ifaces.get(id.0 as usize)
    }

    /// Look up an interface by (namespace, name).
    pub fn iface_by_name(&self, ns: NsId, name: &str) -> Option<&Iface> {
        self.ifaces.iter().find(|i| i.ns == ns && i.name == name)
    }

    /// Number of namespaces.
    pub fn namespace_count(&self) -> usize {
        self.namespaces.len()
    }

    fn ns_check(&self, ns: NsId) -> Result<(), HostError> {
        if (ns.0 as usize) < self.namespaces.len() {
            Ok(())
        } else {
            Err(HostError::NoSuchNamespace(ns.0))
        }
    }

    fn iface_check(&self, id: IfaceId) -> Result<(), HostError> {
        if (id.0 as usize) < self.ifaces.len() {
            Ok(())
        } else {
            Err(HostError::NoSuchIface(id.0))
        }
    }

    // ------------------------------------------------------------------
    // Sockets (userspace daemons)
    // ------------------------------------------------------------------

    /// Bind a UDP socket.
    pub fn udp_bind(&mut self, ns: NsId, addr: Ipv4Addr, port: u16) -> Result<SocketId, HostError> {
        self.ns_check(ns)?;
        self.sockets
            .bind(ns, addr, port)
            .map_err(|_| HostError::AddrInUse(format!("{addr}:{port}")))
    }

    /// Receive the next datagram on a socket.
    pub fn udp_recv(&mut self, sock: SocketId) -> Option<Datagram> {
        self.sockets.recv(sock)
    }

    /// Pending datagrams on a socket.
    pub fn udp_pending(&self, sock: SocketId) -> usize {
        self.sockets.pending(sock)
    }

    /// Send a datagram from a bound socket.
    pub fn udp_send(
        &mut self,
        sock: SocketId,
        dst: Ipv4Addr,
        dport: u16,
        payload: &[u8],
    ) -> Result<IoResult, HostError> {
        let (ns, bound_addr, sport) = self
            .sockets
            .info(sock)
            .ok_or(HostError::NoSuchSocket(sock.0))?;
        // Source selection: bound address, else primary of egress iface.
        let src = if bound_addr != Ipv4Addr::UNSPECIFIED {
            bound_addr
        } else {
            let route = self.namespaces[ns.0 as usize]
                .routing
                .lookup(dst, 0)
                .ok_or_else(|| HostError::NoRoute(dst.to_string()))?;
            self.ifaces[route.dev.0 as usize]
                .primary_addr()
                .ok_or_else(|| HostError::NoRoute("no source address".into()))?
        };

        let total = IPV4_HEADER_LEN + 8 + payload.len();
        let mut ip_bytes = vec![0u8; total];
        {
            let mut ip = Ipv4Packet::new_unchecked(&mut ip_bytes[..]);
            ip.init();
            ip.set_total_len(total as u16);
            ip.set_ttl(64);
            ip.set_protocol(IpProtocol::Udp);
            ip.set_src(src);
            ip.set_dst(dst);
            ip.fill_checksum();
        }
        {
            let mut udp = UdpDatagram::new_unchecked(&mut ip_bytes[IPV4_HEADER_LEN..]);
            udp.set_src_port(sport);
            udp.set_dst_port(dport);
            udp.set_length((8 + payload.len()) as u16);
            udp.payload_mut().copy_from_slice(payload);
            udp.fill_checksum(src, dst);
        }

        let mut ctx = Ctx::new();
        ctx.charge(self.costs.user_kernel_crossing_ns);
        let meta = PacketMeta::at(self.now, 0);
        self.local_output(ns, ip_bytes, meta, &mut ctx, 0);
        Ok(ctx.into_result())
    }

    /// Send a raw IPv4 packet from a namespace (raw socket equivalent).
    pub fn raw_send(&mut self, ns: NsId, ip_bytes: Vec<u8>) -> Result<IoResult, HostError> {
        self.ns_check(ns)?;
        let mut ctx = Ctx::new();
        ctx.charge(self.costs.user_kernel_crossing_ns);
        let meta = PacketMeta::at(self.now, 0);
        self.local_output(ns, ip_bytes, meta, &mut ctx, 0);
        Ok(ctx.into_result())
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Inject a frame as if it arrived on `iface` from the outside.
    pub fn inject(&mut self, iface: IfaceId, pkt: Packet) -> IoResult {
        let mut ctx = Ctx::new();
        if self.iface_check(iface).is_ok() {
            ctx.charge(self.costs.tap_ns);
            self.rx_frame(iface, pkt, &mut ctx, 0);
        }
        ctx.into_result()
    }

    fn rx_frame(&mut self, iface_id: IfaceId, pkt: Packet, ctx: &mut Ctx, depth: u32) {
        if depth > MAX_DEPTH {
            self.trace.count("loop_drops", 1);
            return;
        }
        let (up, ns, mac, zone) = {
            let i = &self.ifaces[iface_id.0 as usize];
            (i.up, i.ns, i.mac, i.ct_zone)
        };
        if !up {
            self.trace.count("rx_down_iface", 1);
            return;
        }
        {
            let i = &mut self.ifaces[iface_id.0 as usize];
            i.rx_packets += 1;
            i.rx_bytes += pkt.len() as u64;
        }

        // Bridge member? L2-switch it.
        if let Some(bridge) = self.bridge_master(iface_id) {
            self.bridge_rx(bridge, iface_id, pkt, ctx, depth);
            return;
        }

        let Ok(eth) = EthernetFrame::new_checked(pkt.data()) else {
            self.trace.count("rx_malformed", 1);
            return;
        };
        let dst = eth.dst();
        let ethertype = eth.ethertype();

        // VLAN demux to sub-interfaces.
        if ethertype == EtherType::Vlan {
            if let Some(vid) = pkt.vlan_id() {
                if let Some(sub) = self.vlan_sub_of(iface_id, vid) {
                    ctx.charge(self.costs.vlan_op_ns);
                    let mut untagged = pkt;
                    let _ = untagged.vlan_pop();
                    self.rx_frame(sub, untagged, ctx, depth + 1);
                    return;
                }
            }
            self.trace.count("rx_unknown_vlan", 1);
            return;
        }

        // L2 address filter.
        if dst != mac && !dst.is_broadcast() && !dst.is_multicast() {
            self.trace.count("rx_wrong_mac", 1);
            return;
        }

        match ethertype {
            EtherType::Arp => self.arp_input(ns, iface_id, &pkt, ctx, depth),
            EtherType::Ipv4 => {
                let mut meta = pkt.meta.clone();
                if meta.ct_zone == 0 {
                    meta.ct_zone = zone;
                }
                meta.ingress = iface_id.0;
                let ip_bytes = pkt.data()[ETHERNET_HEADER_LEN..].to_vec();
                self.l3_input(ns, Some(iface_id), ip_bytes, meta, ctx, depth);
            }
            _ => {
                self.trace.count("rx_unknown_ethertype", 1);
            }
        }
    }

    fn bridge_master(&self, iface: IfaceId) -> Option<IfaceId> {
        let ns = self.ifaces[iface.0 as usize].ns;
        self.namespaces[ns.0 as usize]
            .ifaces
            .iter()
            .copied()
            .find(|&b| {
                matches!(&self.ifaces[b.0 as usize].kind,
                     IfaceKind::Bridge { members, .. } if members.contains(&iface))
            })
    }

    fn vlan_sub_of(&self, parent: IfaceId, vid: u16) -> Option<IfaceId> {
        self.ifaces
            .iter()
            .find(|i| {
                matches!(i.kind, IfaceKind::VlanSub { parent: p, vid: v } if p == parent && v == vid)
            })
            .map(|i| i.id)
    }

    fn bridge_rx(
        &mut self,
        bridge_id: IfaceId,
        member: IfaceId,
        pkt: Packet,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        ctx.charge(self.costs.bridge_fdb_ns);
        let Ok(eth) = EthernetFrame::new_checked(pkt.data()) else {
            self.trace.count("rx_malformed", 1);
            return;
        };
        let (src, dst) = (eth.src(), eth.dst());
        let bridge_mac = self.ifaces[bridge_id.0 as usize].mac;

        // Learn + decide with one mutable borrow of the FDB.
        let mut targets: Vec<IfaceId> = Vec::new();
        let mut to_local = false;
        {
            let IfaceKind::Bridge { members, fdb } = &mut self.ifaces[bridge_id.0 as usize].kind
            else {
                return;
            };
            fdb.insert(src, member);
            if dst == bridge_mac {
                to_local = true;
            } else if dst.is_broadcast() || dst.is_multicast() {
                to_local = true;
                targets.extend(members.iter().copied().filter(|&m| m != member));
            } else if let Some(&out) = fdb.get(&dst) {
                if out != member {
                    targets.push(out);
                }
            } else {
                targets.extend(members.iter().copied().filter(|&m| m != member));
            }
        }

        for out in targets {
            self.tx_frame(out, pkt.clone(), ctx, depth + 1);
        }
        if to_local {
            // Deliver up the stack via the bridge interface itself.
            let ns = self.ifaces[bridge_id.0 as usize].ns;
            let Ok(eth2) = EthernetFrame::new_checked(pkt.data()) else {
                return;
            };
            match eth2.ethertype() {
                EtherType::Arp => self.arp_input(ns, bridge_id, &pkt, ctx, depth),
                EtherType::Ipv4 => {
                    let mut meta = pkt.meta.clone();
                    if meta.ct_zone == 0 {
                        meta.ct_zone = self.ifaces[bridge_id.0 as usize].ct_zone;
                    }
                    meta.ingress = bridge_id.0;
                    let ip_bytes = pkt.data()[ETHERNET_HEADER_LEN..].to_vec();
                    self.l3_input(ns, Some(bridge_id), ip_bytes, meta, ctx, depth);
                }
                _ => {}
            }
        }
    }

    fn arp_input(&mut self, ns: NsId, iface_id: IfaceId, pkt: &Packet, ctx: &mut Ctx, depth: u32) {
        let Ok(eth) = EthernetFrame::new_checked(pkt.data()) else {
            return;
        };
        let Ok(arp) = ArpPacket::new_checked(eth.payload()) else {
            self.trace.count("rx_malformed_arp", 1);
            return;
        };
        let sender_ip = arp.sender_ip();
        let sender_mac = arp.sender_mac();

        // Learn/refresh the sender and flush any parked packets.
        let pending = {
            let nsr = &mut self.namespaces[ns.0 as usize];
            match nsr
                .neigh
                .insert(sender_ip, NeighState::Reachable(sender_mac))
            {
                Some(NeighState::Incomplete { pending }) => pending,
                _ => Vec::new(),
            }
        };
        for (out_iface, parked) in pending {
            self.finish_tx_ip(out_iface, sender_ip, parked, ctx, depth + 1);
        }

        if arp.op() == ArpOp::Request {
            let target = arp.target_ip();
            let owned = self.namespaces[ns.0 as usize]
                .ifaces
                .iter()
                .any(|&i| self.ifaces[i.0 as usize].has_addr(target));
            if owned {
                let my_mac = self.ifaces[iface_id.0 as usize].mac;
                let mut reply = Packet::zeroed(ETHERNET_HEADER_LEN + ARP_LEN);
                {
                    let buf = reply.data_mut();
                    let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
                    e.set_dst(sender_mac);
                    e.set_src(my_mac);
                    e.set_ethertype(EtherType::Arp);
                    let mut a = ArpPacket::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
                    a.init();
                    a.set_op(ArpOp::Reply);
                    a.set_sender_mac(my_mac);
                    a.set_sender_ip(target);
                    a.set_target_mac(sender_mac);
                    a.set_target_ip(sender_ip);
                }
                self.trace.count("arp_replies", 1);
                self.tx_frame(iface_id, reply, ctx, depth + 1);
            }
        }
    }

    /// L3 input processing for a complete IPv4 packet.
    fn l3_input(
        &mut self,
        ns: NsId,
        in_iface: Option<IfaceId>,
        mut ip_bytes: Vec<u8>,
        mut meta: PacketMeta,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        if depth > MAX_DEPTH {
            self.trace.count("loop_drops", 1);
            return;
        }
        ctx.charge(self.costs.ip_processing_ns);
        let Ok(ip) = Ipv4Packet::new_checked(&ip_bytes[..]) else {
            self.trace.count("rx_bad_ip", 1);
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        };
        if !ip.verify_checksum() {
            self.trace.count("rx_csum_errors", 1);
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        }
        let tuple = extract_tuple(&ip_bytes);
        let (dst, proto) = (ip.dst(), u8::from(ip.protocol()));

        // mangle/PREROUTING: marks + zones.
        let mut effects = ChainEffects::default();
        let mut nfp = NfPacket {
            in_iface,
            out_iface: None,
            src: tuple.src,
            dst: tuple.dst,
            proto,
            sport: tuple.sport,
            dport: tuple.dport,
            fwmark: meta.fwmark,
            ct_state: CtState::New,
        };
        ctx.charge(self.costs.netfilter_hook_ns);
        let verdict = {
            let nsr = &mut self.namespaces[ns.0 as usize];
            nsr.netfilter
                .run(NfTable::Mangle, Chain::Prerouting, &nfp, &mut effects)
        };
        ctx.charge(self.costs.netfilter_rule_ns * effects.rules_evaluated as u64);
        if verdict == Verdict::Drop {
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        }
        if let Some(m) = effects.set_mark {
            meta.fwmark = m;
            nfp.fwmark = m;
        }
        if let Some(z) = effects.set_zone {
            meta.ct_zone = z;
        }
        let zone = meta.ct_zone;

        // Conntrack.
        ctx.charge(self.costs.conntrack_lookup_ns);
        let (conn, dir, fresh) = {
            let nsr = &mut self.namespaces[ns.0 as usize];
            match nsr.conntrack.find(zone, &tuple) {
                Some((id, d)) => (id, d, false),
                None => {
                    ctx.charge(self.costs.conntrack_new_ns);
                    (
                        nsr.conntrack.begin(zone, tuple),
                        CtDirection::Original,
                        true,
                    )
                }
            }
        };
        // Record the packet at conntrack time (kernel semantics): the
        // first reply-direction packet itself already matches ESTABLISHED
        // in later chains.
        self.namespaces[ns.0 as usize]
            .conntrack
            .note_packet(conn, dir);
        nfp.ct_state = self.namespaces[ns.0 as usize].conntrack.state(conn);

        // nat/PREROUTING (DNAT) for new original-direction flows.
        if fresh {
            let mut fx = ChainEffects::default();
            ctx.charge(self.costs.netfilter_hook_ns);
            let v = {
                let nsr = &mut self.namespaces[ns.0 as usize];
                nsr.netfilter
                    .run(NfTable::Nat, Chain::Prerouting, &nfp, &mut fx)
            };
            ctx.charge(self.costs.netfilter_rule_ns * fx.rules_evaluated as u64);
            match v {
                Verdict::Drop => {
                    self.namespaces[ns.0 as usize].dropped += 1;
                    return;
                }
                Verdict::Dnat { to, port } => {
                    self.namespaces[ns.0 as usize]
                        .conntrack
                        .set_dnat(conn, to, port);
                }
                _ => {}
            }
        }

        // Apply the connection's rewrite for this direction (NAT).
        let want = self.namespaces[ns.0 as usize].conntrack.rewrite(conn, dir);
        if want != tuple {
            ctx.charge(self.costs.l4_processing_ns);
            rewrite_packet(&mut ip_bytes, &want);
            nfp.src = want.src;
            nfp.dst = want.dst;
            nfp.sport = want.sport;
            nfp.dport = want.dport;
        }
        let dst = if want != tuple { want.dst } else { dst };

        // Routing decision: local or forward?
        let local = self.addr_is_local(ns, dst) || dst == Ipv4Addr::BROADCAST;
        if local {
            // filter/INPUT
            let mut fx = ChainEffects::default();
            ctx.charge(self.costs.netfilter_hook_ns);
            let v = {
                let nsr = &mut self.namespaces[ns.0 as usize];
                nsr.netfilter
                    .run(NfTable::Filter, Chain::Input, &nfp, &mut fx)
            };
            ctx.charge(self.costs.netfilter_rule_ns * fx.rules_evaluated as u64);
            if v == Verdict::Drop {
                self.namespaces[ns.0 as usize].dropped += 1;
                return;
            }
            self.namespaces[ns.0 as usize].conntrack.confirm(conn);

            // ESP addressed to us? Decapsulate and recirculate.
            if proto == 50 {
                let spi = esp_spi(&ip_bytes);
                let knows = spi
                    .map(|s| self.namespaces[ns.0 as usize].xfrm.knows_spi(s))
                    .unwrap_or(false);
                if knows {
                    let mut cost = Cost::ZERO;
                    let res = {
                        let nsr = &mut self.namespaces[ns.0 as usize];
                        nsr.xfrm.input(&ip_bytes, &self.costs, &mut cost)
                    };
                    ctx.cost += cost;
                    match res {
                        Ok(inner) => {
                            self.trace.count("xfrm_decap", 1);
                            let mut inner_meta = meta.clone();
                            inner_meta.fwmark = meta.fwmark;
                            self.l3_input(ns, in_iface, inner, inner_meta, ctx, depth + 1);
                        }
                        Err(_) => {
                            self.trace.count("xfrm_decap_errors", 1);
                            self.namespaces[ns.0 as usize].dropped += 1;
                        }
                    }
                    return;
                }
            }

            self.local_deliver(ns, ip_bytes, meta, ctx, depth);
            return;
        }

        // Forward path.
        if !self.namespaces[ns.0 as usize].ip_forward {
            self.trace.count("rx_not_for_us", 1);
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        }
        // TTL.
        {
            let mut ipm = Ipv4Packet::new_unchecked(&mut ip_bytes[..]);
            if ipm.decrement_ttl() == 0 {
                self.trace.count("ttl_expired", 1);
                self.namespaces[ns.0 as usize].dropped += 1;
                return;
            }
            ipm.fill_checksum();
        }

        // Route lookup (policy aware).
        ctx.charge(self.costs.ip_rule_ns + self.costs.route_lookup_ns);
        let Some((out_dev, next_hop)) = self.route_lookup(ns, dst, meta.fwmark) else {
            self.trace.count("no_route", 1);
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        };
        nfp.out_iface = Some(out_dev);

        // filter/FORWARD.
        let mut fx = ChainEffects::default();
        ctx.charge(self.costs.netfilter_hook_ns);
        let v = {
            let nsr = &mut self.namespaces[ns.0 as usize];
            nsr.netfilter
                .run(NfTable::Filter, Chain::Forward, &nfp, &mut fx)
        };
        ctx.charge(self.costs.netfilter_rule_ns * fx.rules_evaluated as u64);
        if v == Verdict::Drop {
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        }

        // nat/POSTROUTING (SNAT/MASQUERADE) for new flows.
        if fresh {
            let mut fx = ChainEffects::default();
            ctx.charge(self.costs.netfilter_hook_ns);
            let v = {
                let nsr = &mut self.namespaces[ns.0 as usize];
                nsr.netfilter
                    .run(NfTable::Nat, Chain::Postrouting, &nfp, &mut fx)
            };
            ctx.charge(self.costs.netfilter_rule_ns * fx.rules_evaluated as u64);
            match v {
                Verdict::Drop => {
                    self.namespaces[ns.0 as usize].dropped += 1;
                    return;
                }
                Verdict::Snat { to, port } => {
                    let nsr = &mut self.namespaces[ns.0 as usize];
                    nsr.conntrack.set_snat(conn, to, port);
                }
                Verdict::Masquerade => {
                    let masq_ip = self.ifaces[out_dev.0 as usize].primary_addr();
                    if let Some(ip) = masq_ip {
                        let nsr = &mut self.namespaces[ns.0 as usize];
                        nsr.conntrack.set_snat(conn, ip, None);
                    }
                }
                _ => {}
            }
            // Apply any SNAT decided just now.
            let cur = extract_tuple(&ip_bytes);
            let want = self.namespaces[ns.0 as usize].conntrack.rewrite(conn, dir);
            if want != cur {
                ctx.charge(self.costs.l4_processing_ns);
                rewrite_packet(&mut ip_bytes, &want);
            }
        }
        {
            let nsr = &mut self.namespaces[ns.0 as usize];
            nsr.conntrack.confirm(conn);
            nsr.forwarded += 1;
        }

        self.xfrm_out_and_tx(ns, out_dev, next_hop, ip_bytes, meta, ctx, depth);
    }

    /// XFRM output check, then transmit (shared by forward & local-out).
    #[allow(clippy::too_many_arguments)]
    fn xfrm_out_and_tx(
        &mut self,
        ns: NsId,
        out_dev: IfaceId,
        next_hop: Ipv4Addr,
        ip_bytes: Vec<u8>,
        meta: PacketMeta,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        let proto = Ipv4Packet::new_checked(&ip_bytes[..])
            .map(|p| u8::from(p.protocol()))
            .unwrap_or(0);
        // Already-ESP traffic is not re-matched (standard loop avoidance).
        if proto != 50 {
            let mut cost = Cost::ZERO;
            let out = {
                let nsr = &mut self.namespaces[ns.0 as usize];
                nsr.xfrm.output(&ip_bytes, &self.costs, &mut cost)
            };
            ctx.cost += cost;
            match out {
                XfrmOutput::Pass => {}
                XfrmOutput::Discard | XfrmOutput::Error(_) => {
                    self.trace.count("xfrm_out_discard", 1);
                    self.namespaces[ns.0 as usize].dropped += 1;
                    return;
                }
                XfrmOutput::Encapsulated(outer) => {
                    self.trace.count("xfrm_encap", 1);
                    // Re-route the outer packet (tunnel endpoint may use a
                    // different egress than the inner destination).
                    let outer_dst = Ipv4Packet::new_checked(&outer[..])
                        .map(|p| p.dst())
                        .unwrap_or(Ipv4Addr::UNSPECIFIED);
                    ctx.charge(self.costs.route_lookup_ns);
                    let Some((dev2, nh2)) = self.route_lookup(ns, outer_dst, meta.fwmark) else {
                        self.trace.count("no_route", 1);
                        self.namespaces[ns.0 as usize].dropped += 1;
                        return;
                    };
                    self.ip_output(ns, dev2, nh2, outer, meta, ctx, depth);
                    return;
                }
            }
        }
        self.ip_output(ns, out_dev, next_hop, ip_bytes, meta, ctx, depth);
    }

    /// Locally generated traffic: route → filter/OUTPUT → NAT → XFRM → tx.
    fn local_output(
        &mut self,
        ns: NsId,
        ip_bytes: Vec<u8>,
        meta: PacketMeta,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        let Ok(ip) = Ipv4Packet::new_checked(&ip_bytes[..]) else {
            return;
        };
        let dst = ip.dst();
        // Loopback delivery.
        if self.addr_is_local(ns, dst) {
            self.local_deliver(ns, ip_bytes, meta, ctx, depth + 1);
            return;
        }
        ctx.charge(self.costs.ip_rule_ns + self.costs.route_lookup_ns);
        let Some((out_dev, next_hop)) = self.route_lookup(ns, dst, meta.fwmark) else {
            self.trace.count("no_route", 1);
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        };

        let tuple = extract_tuple(&ip_bytes);
        let nfp = NfPacket {
            in_iface: None,
            out_iface: Some(out_dev),
            src: tuple.src,
            dst: tuple.dst,
            proto: tuple.proto,
            sport: tuple.sport,
            dport: tuple.dport,
            fwmark: meta.fwmark,
            ct_state: CtState::New,
        };
        let mut fx = ChainEffects::default();
        ctx.charge(self.costs.netfilter_hook_ns);
        let v = {
            let nsr = &mut self.namespaces[ns.0 as usize];
            nsr.netfilter
                .run(NfTable::Filter, Chain::Output, &nfp, &mut fx)
        };
        ctx.charge(self.costs.netfilter_rule_ns * fx.rules_evaluated as u64);
        if v == Verdict::Drop {
            self.namespaces[ns.0 as usize].dropped += 1;
            return;
        }

        self.xfrm_out_and_tx(ns, out_dev, next_hop, ip_bytes, meta, ctx, depth);
    }

    /// Deliver an IP packet to local consumers (sockets, ICMP).
    fn local_deliver(
        &mut self,
        ns: NsId,
        ip_bytes: Vec<u8>,
        meta: PacketMeta,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        let Ok(ip) = Ipv4Packet::new_checked(&ip_bytes[..]) else {
            return;
        };
        ctx.charge(self.costs.l4_processing_ns);
        self.namespaces[ns.0 as usize].delivered += 1;
        match ip.protocol() {
            IpProtocol::Udp => {
                if let Ok(udp) = UdpDatagram::new_checked(ip.payload()) {
                    if let Some(sock) = self.sockets.demux(ns, ip.dst(), udp.dst_port()) {
                        self.sockets.deliver(
                            sock,
                            Datagram {
                                src: ip.src(),
                                sport: udp.src_port(),
                                dst: ip.dst(),
                                dport: udp.dst_port(),
                                payload: udp.payload().to_vec(),
                            },
                        );
                        self.trace.count("udp_delivered", 1);
                    } else {
                        self.trace.count("udp_no_socket", 1);
                    }
                }
            }
            IpProtocol::Icmp => {
                let Ok(icmp) = IcmpMessage::new_checked(ip.payload()) else {
                    return;
                };
                if icmp.kind() == IcmpKind::EchoRequest {
                    self.trace.count("icmp_echo_requests", 1);
                    let reply = build_echo_reply(&ip_bytes);
                    self.local_output(ns, reply, meta, ctx, depth + 1);
                } else {
                    self.trace.count("icmp_other", 1);
                }
            }
            _ => {
                self.trace.count("rx_unhandled_proto", 1);
            }
        }
    }

    /// Frame an IP packet and transmit toward `next_hop` on `out_dev`.
    #[allow(clippy::too_many_arguments)]
    fn ip_output(
        &mut self,
        ns: NsId,
        out_dev: IfaceId,
        next_hop: Ipv4Addr,
        ip_bytes: Vec<u8>,
        meta: PacketMeta,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        let mut pkt = Packet::from_slice(&ip_bytes);
        pkt.meta = meta;
        // Loopback?
        if matches!(self.ifaces[out_dev.0 as usize].kind, IfaceKind::Loopback) {
            let m = pkt.meta.clone();
            self.l3_input(ns, Some(out_dev), ip_bytes, m, ctx, depth + 1);
            return;
        }
        self.finish_tx_ip(out_dev, next_hop, pkt, ctx, depth);
    }

    /// Neighbor-resolve and emit an IP packet (possibly parking it on an
    /// incomplete ARP entry).
    fn finish_tx_ip(
        &mut self,
        out_dev: IfaceId,
        next_hop: Ipv4Addr,
        ip_pkt: Packet,
        ctx: &mut Ctx,
        depth: u32,
    ) {
        let (ns, my_mac) = {
            let i = &self.ifaces[out_dev.0 as usize];
            (i.ns, i.mac)
        };

        let dst_mac = if next_hop == Ipv4Addr::BROADCAST {
            Some(MacAddr::BROADCAST)
        } else {
            match self.namespaces[ns.0 as usize].neigh.get(&next_hop) {
                Some(NeighState::Reachable(m)) => Some(*m),
                _ => None,
            }
        };

        match dst_mac {
            Some(mac) => {
                let mut frame = Packet::zeroed(ETHERNET_HEADER_LEN + ip_pkt.len());
                {
                    let buf = frame.data_mut();
                    let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
                    e.set_dst(mac);
                    e.set_src(my_mac);
                    e.set_ethertype(EtherType::Ipv4);
                    buf[ETHERNET_HEADER_LEN..].copy_from_slice(ip_pkt.data());
                }
                frame.meta = ip_pkt.meta.clone();
                self.tx_frame(out_dev, frame, ctx, depth + 1);
            }
            None => {
                // Park the packet and fire an ARP request.
                let needs_request = {
                    let nsr = &mut self.namespaces[ns.0 as usize];
                    match nsr.neigh.get_mut(&next_hop) {
                        Some(NeighState::Incomplete { pending }) => {
                            if pending.len() < NEIGH_QUEUE_MAX {
                                pending.push((out_dev, ip_pkt));
                            } else {
                                self.trace.count("neigh_queue_drops", 1);
                            }
                            false
                        }
                        _ => {
                            nsr.neigh.insert(
                                next_hop,
                                NeighState::Incomplete {
                                    pending: vec![(out_dev, ip_pkt)],
                                },
                            );
                            true
                        }
                    }
                };
                if needs_request {
                    let sender_ip = self.ifaces[out_dev.0 as usize]
                        .primary_addr()
                        .unwrap_or(Ipv4Addr::UNSPECIFIED);
                    let mut req = Packet::zeroed(ETHERNET_HEADER_LEN + ARP_LEN);
                    {
                        let buf = req.data_mut();
                        let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
                        e.set_dst(MacAddr::BROADCAST);
                        e.set_src(my_mac);
                        e.set_ethertype(EtherType::Arp);
                        let mut a = ArpPacket::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
                        a.init();
                        a.set_op(ArpOp::Request);
                        a.set_sender_mac(my_mac);
                        a.set_sender_ip(sender_ip);
                        a.set_target_mac(MacAddr::ZERO);
                        a.set_target_ip(next_hop);
                    }
                    self.trace.count("arp_requests", 1);
                    self.tx_frame(out_dev, req, ctx, depth + 1);
                }
            }
        }
    }

    /// Emit a frame on an interface (kind-specific delivery).
    fn tx_frame(&mut self, iface_id: IfaceId, pkt: Packet, ctx: &mut Ctx, depth: u32) {
        if depth > MAX_DEPTH {
            self.trace.count("loop_drops", 1);
            return;
        }
        let (up, kind) = {
            let i = &self.ifaces[iface_id.0 as usize];
            (i.up, i.kind.clone())
        };
        if !up {
            self.trace.count("tx_down_iface", 1);
            return;
        }
        {
            let i = &mut self.ifaces[iface_id.0 as usize];
            i.tx_packets += 1;
            i.tx_bytes += pkt.len() as u64;
        }
        match kind {
            IfaceKind::Veth { peer } => {
                ctx.charge(self.costs.veth_crossing_ns);
                self.rx_frame(peer, pkt, ctx, depth + 1);
            }
            IfaceKind::External { tag } => {
                ctx.charge(self.costs.tap_ns);
                ctx.emitted.push((tag, pkt));
            }
            IfaceKind::VlanSub { parent, vid } => {
                ctx.charge(self.costs.vlan_op_ns);
                let mut tagged = pkt;
                let _ = tagged.vlan_push(vid);
                self.tx_frame(parent, tagged, ctx, depth + 1);
            }
            IfaceKind::Bridge { members, fdb } => {
                // Egress via the bridge: consult the FDB.
                ctx.charge(self.costs.bridge_fdb_ns);
                let Ok(eth) = EthernetFrame::new_checked(pkt.data()) else {
                    return;
                };
                let dst = eth.dst();
                if let Some(&out) = fdb.get(&dst) {
                    self.tx_frame(out, pkt, ctx, depth + 1);
                } else {
                    for m in members {
                        self.tx_frame(m, pkt.clone(), ctx, depth + 1);
                    }
                }
            }
            IfaceKind::Loopback => {
                let ns = self.ifaces[iface_id.0 as usize].ns;
                if let Ok(eth) = EthernetFrame::new_checked(pkt.data()) {
                    if eth.ethertype() == EtherType::Ipv4 {
                        let meta = pkt.meta.clone();
                        let ip_bytes = pkt.data()[ETHERNET_HEADER_LEN..].to_vec();
                        self.l3_input(ns, Some(iface_id), ip_bytes, meta, ctx, depth + 1);
                    }
                }
            }
        }
    }

    fn addr_is_local(&self, ns: NsId, ip: Ipv4Addr) -> bool {
        self.namespaces[ns.0 as usize]
            .ifaces
            .iter()
            .any(|&i| self.ifaces[i.0 as usize].has_addr(ip))
    }

    fn route_lookup(&self, ns: NsId, dst: Ipv4Addr, fwmark: u32) -> Option<(IfaceId, Ipv4Addr)> {
        let r = self.namespaces[ns.0 as usize].routing.lookup(dst, fwmark)?;
        Some((r.dev, r.via.unwrap_or(dst)))
    }
}

/// Extract the conntrack tuple from an IPv4 packet.
fn extract_tuple(ip_bytes: &[u8]) -> FlowTuple {
    let ip = Ipv4Packet::new_unchecked(ip_bytes);
    let proto = u8::from(ip.protocol());
    let (sport, dport) = match ip.protocol() {
        IpProtocol::Udp => match UdpDatagram::new_checked(ip.payload()) {
            Ok(u) => (u.src_port(), u.dst_port()),
            Err(_) => (0, 0),
        },
        IpProtocol::Tcp => match TcpSegment::new_checked(ip.payload()) {
            Ok(t) => (t.src_port(), t.dst_port()),
            Err(_) => (0, 0),
        },
        _ => (0, 0),
    };
    FlowTuple {
        src: ip.src(),
        dst: ip.dst(),
        proto,
        sport,
        dport,
    }
}

/// Rewrite an IP packet's addresses/ports to `want`, fixing checksums.
fn rewrite_packet(ip_bytes: &mut [u8], want: &FlowTuple) {
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut ip_bytes[..]);
        ip.set_src(want.src);
        ip.set_dst(want.dst);
        ip.fill_checksum();
    }
    let proto = {
        let ip = Ipv4Packet::new_unchecked(&ip_bytes[..]);
        ip.protocol()
    };
    let hl = Ipv4Packet::new_unchecked(&ip_bytes[..]).header_len();
    match proto {
        IpProtocol::Udp => {
            let (src, dst) = {
                let ip = Ipv4Packet::new_unchecked(&ip_bytes[..]);
                (ip.src(), ip.dst())
            };
            let l4 = &mut ip_bytes[hl..];
            if l4.len() >= 8 {
                let mut u = UdpDatagram::new_unchecked(l4);
                u.set_src_port(want.sport);
                u.set_dst_port(want.dport);
                u.fill_checksum(src, dst);
            }
        }
        IpProtocol::Tcp => {
            let (src, dst) = {
                let ip = Ipv4Packet::new_unchecked(&ip_bytes[..]);
                (ip.src(), ip.dst())
            };
            let l4 = &mut ip_bytes[hl..];
            if l4.len() >= 20 {
                let mut t = TcpSegment::new_unchecked(l4);
                t.set_src_port(want.sport);
                t.set_dst_port(want.dport);
                t.fill_checksum(src, dst);
            }
        }
        _ => {}
    }
}

/// Extract the SPI from an ESP-in-IPv4 packet.
fn esp_spi(ip_bytes: &[u8]) -> Option<u32> {
    let ip = Ipv4Packet::new_checked(ip_bytes).ok()?;
    let p = ip.payload();
    if p.len() < 4 {
        return None;
    }
    Some(u32::from_be_bytes(p[0..4].try_into().unwrap()))
}

/// Build an ICMP echo reply from a request (swaps addresses).
fn build_echo_reply(request_ip: &[u8]) -> Vec<u8> {
    let req = Ipv4Packet::new_unchecked(request_ip);
    let (src, dst) = (req.src(), req.dst());
    let mut out = request_ip.to_vec();
    {
        let mut ip = Ipv4Packet::new_unchecked(&mut out[..]);
        ip.set_src(dst);
        ip.set_dst(src);
        ip.set_ttl(64);
        ip.fill_checksum();
    }
    let hl = Ipv4Packet::new_unchecked(&out[..]).header_len();
    {
        let mut icmp = IcmpMessage::new_unchecked(&mut out[hl..]);
        icmp.set_kind(IcmpKind::EchoReply);
        icmp.fill_checksum();
    }
    out
}

#[cfg(test)]
mod tests;
