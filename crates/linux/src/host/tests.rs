//! End-to-end tests of the simulated kernel pipeline.

use super::*;
use crate::netfilter::{NfRule, RuleMatch, Target};
use un_ipsec::sa::SecurityAssociation;
use un_ipsec::spd::{PolicyAction, PolicyDirection, SecurityPolicy, TrafficSelector};

fn cidr(s: &str) -> Ipv4Cidr {
    s.parse().unwrap()
}

/// Two namespaces joined by a veth: 10.0.0.1 (a) <-> 10.0.0.2 (b).
fn two_ns_host() -> (Host, NsId, NsId) {
    let mut h = Host::new("t", CostModel::default());
    let a = h.add_namespace("a");
    let b = h.add_namespace("b");
    let (va, vb) = h.add_veth(a, "veth-a", b, "veth-b").unwrap();
    h.addr_add(va, cidr("10.0.0.1/24")).unwrap();
    h.addr_add(vb, cidr("10.0.0.2/24")).unwrap();
    h.set_up(va, true).unwrap();
    h.set_up(vb, true).unwrap();
    (h, a, b)
}

#[test]
fn ping_across_veth_with_real_arp() {
    let (mut h, a, _b) = two_ns_host();
    let echo = un_packet::PacketBuilder::new()
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
        .icmp_echo(un_packet::icmp::IcmpKind::EchoRequest, 7, 1)
        .payload(b"abcdefgh")
        .build();
    let res = h.raw_send(a, echo.data().to_vec()).unwrap();
    // Everything stays inside the host (veth), nothing emitted externally.
    assert!(res.emitted.is_empty());
    assert!(res.cost.as_nanos() > 0);
    // ARP happened, echo was answered, reply delivered back to ns a.
    assert_eq!(h.trace.counter("arp_requests"), 1);
    assert_eq!(h.trace.counter("arp_replies"), 1);
    assert_eq!(h.trace.counter("icmp_echo_requests"), 1);
    assert_eq!(h.trace.counter("icmp_other"), 1, "echo reply delivered");
}

#[test]
fn second_packet_skips_arp() {
    let (mut h, a, _b) = two_ns_host();
    let echo = || {
        un_packet::PacketBuilder::new()
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .icmp_echo(un_packet::icmp::IcmpKind::EchoRequest, 7, 1)
            .build()
    };
    h.raw_send(a, echo().data().to_vec()).unwrap();
    h.raw_send(a, echo().data().to_vec()).unwrap();
    assert_eq!(h.trace.counter("arp_requests"), 1, "neighbor cached");
    assert_eq!(h.trace.counter("icmp_echo_requests"), 2);
}

#[test]
fn udp_send_recv_across_veth() {
    let (mut h, a, b) = two_ns_host();
    let server = h.udp_bind(b, Ipv4Addr::UNSPECIFIED, 5201).unwrap();
    let client = h.udp_bind(a, Ipv4Addr::UNSPECIFIED, 5001).unwrap();
    h.udp_send(client, Ipv4Addr::new(10, 0, 0, 2), 5201, b"measurement")
        .unwrap();
    let dg = h.udp_recv(server).expect("datagram delivered");
    assert_eq!(dg.payload, b"measurement");
    assert_eq!(dg.src, Ipv4Addr::new(10, 0, 0, 1));
    assert_eq!(dg.sport, 5001);
    // And the reverse direction.
    h.udp_send(server, dg.src, dg.sport, b"ack").unwrap();
    let back = h.udp_recv(client).expect("reply delivered");
    assert_eq!(back.payload, b"ack");
}

/// client ns -- veth -- router ns -- veth -- server ns, router forwards.
/// client: 192.168.1.10/24, router LAN 192.168.1.1, router WAN 203.0.113.1,
/// server: 203.0.113.9/24.
fn routed_host() -> (Host, NsId, NsId, NsId) {
    let mut h = Host::new("r", CostModel::default());
    let client = h.add_namespace("client");
    let router = h.add_namespace("router");
    let server = h.add_namespace("server");
    let (c0, r0) = h.add_veth(client, "eth0", router, "lan").unwrap();
    let (r1, s0) = h.add_veth(router, "wan", server, "eth0").unwrap();
    h.addr_add(c0, cidr("192.168.1.10/24")).unwrap();
    h.addr_add(r0, cidr("192.168.1.1/24")).unwrap();
    h.addr_add(r1, cidr("203.0.113.1/24")).unwrap();
    h.addr_add(s0, cidr("203.0.113.9/24")).unwrap();
    for i in [c0, r0, r1, s0] {
        h.set_up(i, true).unwrap();
    }
    h.sysctl_ip_forward(router, true).unwrap();
    // Default routes.
    h.route_add(
        client,
        crate::route::MAIN_TABLE,
        cidr("0.0.0.0/0"),
        Some(Ipv4Addr::new(192, 168, 1, 1)),
        c0,
        0,
    )
    .unwrap();
    h.route_add(
        server,
        crate::route::MAIN_TABLE,
        cidr("0.0.0.0/0"),
        Some(Ipv4Addr::new(203, 0, 113, 1)),
        s0,
        0,
    )
    .unwrap();
    (h, client, router, server)
}

#[test]
fn forwarding_with_masquerade_nat() {
    let (mut h, client, router, server) = routed_host();
    // Masquerade everything leaving the WAN side.
    let wan = h.iface_by_name(router, "wan").unwrap().id;
    h.nf_append(
        router,
        NfTable::Nat,
        Chain::Postrouting,
        NfRule::new(
            RuleMatch {
                out_iface: Some(wan),
                ..Default::default()
            },
            Target::Masquerade,
        ),
    )
    .unwrap();

    let srv = h.udp_bind(server, Ipv4Addr::UNSPECIFIED, 53).unwrap();
    let cli = h.udp_bind(client, Ipv4Addr::UNSPECIFIED, 5000).unwrap();
    h.udp_send(cli, Ipv4Addr::new(203, 0, 113, 9), 53, b"query")
        .unwrap();

    let dg = h.udp_recv(srv).expect("query forwarded");
    assert_eq!(
        dg.src,
        Ipv4Addr::new(203, 0, 113, 1),
        "source must be the router's WAN address after masquerade"
    );
    assert_eq!(dg.payload, b"query");

    // Reply to the translated source; NAT must reverse it.
    h.udp_send(srv, dg.src, dg.sport, b"answer").unwrap();
    let counters: Vec<_> = h.trace.counters().collect();
    let back = h
        .udp_recv(cli)
        .unwrap_or_else(|| panic!("reply de-NATed and delivered; counters: {counters:?}"));
    assert_eq!(back.payload, b"answer");
    assert_eq!(back.src, Ipv4Addr::new(203, 0, 113, 9));
    assert_eq!(h.namespace(router).unwrap().forwarded, 2);
}

#[test]
fn stateful_firewall_allows_replies_only() {
    let (mut h, client, router, server) = routed_host();
    // FORWARD policy DROP; allow LAN->WAN new, and only ESTABLISHED back.
    h.nf_policy(router, NfTable::Filter, Chain::Forward, false)
        .unwrap();
    let lan = h.iface_by_name(router, "lan").unwrap().id;
    h.nf_append(
        router,
        NfTable::Filter,
        Chain::Forward,
        NfRule::new(
            RuleMatch {
                in_iface: Some(lan),
                ..Default::default()
            },
            Target::Accept,
        ),
    )
    .unwrap();
    h.nf_append(
        router,
        NfTable::Filter,
        Chain::Forward,
        NfRule::new(
            RuleMatch {
                ct_state: Some(CtState::Established),
                ..Default::default()
            },
            Target::Accept,
        ),
    )
    .unwrap();

    let srv = h.udp_bind(server, Ipv4Addr::UNSPECIFIED, 53).unwrap();
    let cli = h.udp_bind(client, Ipv4Addr::UNSPECIFIED, 5000).unwrap();

    // Unsolicited WAN->LAN traffic must be dropped.
    h.udp_send(srv, Ipv4Addr::new(192, 168, 1, 10), 5000, b"unsolicited")
        .unwrap();
    assert!(h.udp_recv(cli).is_none(), "firewall must block unsolicited");

    // Client-initiated flow passes, and its reply passes (ESTABLISHED).
    h.udp_send(cli, Ipv4Addr::new(203, 0, 113, 9), 53, b"query")
        .unwrap();
    let dg = h.udp_recv(srv).expect("outbound allowed");
    h.udp_send(srv, dg.src, dg.sport, b"answer").unwrap();
    assert!(h.udp_recv(cli).is_some(), "reply must pass as ESTABLISHED");
}

#[test]
fn policy_routing_by_fwmark() {
    // Router with two WAN externals; mark decides which one.
    let mut h = Host::new("pr", CostModel::default());
    let r = h.add_namespace("router");
    let wan1 = h.add_external(r, "wan1", 101).unwrap();
    let wan2 = h.add_external(r, "wan2", 102).unwrap();
    let lan = h.add_external(r, "lan", 100).unwrap();
    h.addr_add(wan1, cidr("198.51.100.1/24")).unwrap();
    h.addr_add(wan2, cidr("203.0.113.1/24")).unwrap();
    h.addr_add(lan, cidr("192.168.1.1/24")).unwrap();
    for i in [wan1, wan2, lan] {
        h.set_up(i, true).unwrap();
    }
    h.sysctl_ip_forward(r, true).unwrap();
    h.route_add(
        r,
        crate::route::MAIN_TABLE,
        cidr("0.0.0.0/0"),
        Some(Ipv4Addr::new(198, 51, 100, 254)),
        wan1,
        0,
    )
    .unwrap();
    h.route_add(
        r,
        102,
        cidr("0.0.0.0/0"),
        Some(Ipv4Addr::new(203, 0, 113, 254)),
        wan2,
        0,
    )
    .unwrap();
    h.rule_add(
        r,
        IpRule {
            priority: 100,
            fwmark: Some(2),
            table: 102,
        },
    )
    .unwrap();
    h.neigh_add(r, Ipv4Addr::new(198, 51, 100, 254), MacAddr::local(900))
        .unwrap();
    h.neigh_add(r, Ipv4Addr::new(203, 0, 113, 254), MacAddr::local(901))
        .unwrap();
    // Mark traffic from 192.168.2.0/24 with 2 (mangle PREROUTING).
    h.nf_append(
        r,
        NfTable::Mangle,
        Chain::Prerouting,
        NfRule::new(
            RuleMatch {
                src: Some(cidr("192.168.2.0/24")),
                ..Default::default()
            },
            Target::SetMark(2),
        ),
    )
    .unwrap();

    let lan_mac = h.iface(lan).unwrap().mac;
    let mk_pkt = move |src: [u8; 4]| {
        let mut p = un_packet::PacketBuilder::new()
            .ethernet(MacAddr::local(50), lan_mac)
            .ipv4(Ipv4Addr::from(src), Ipv4Addr::new(8, 8, 8, 8))
            .udp(1234, 53)
            .payload(b"q")
            .build();
        p.meta = PacketMeta::default();
        p
    };

    let res1 = h.inject(lan, mk_pkt([192, 168, 1, 50]));
    assert_eq!(res1.emitted.len(), 1);
    assert_eq!(res1.emitted[0].0, 101, "unmarked goes out wan1");

    let res2 = h.inject(lan, mk_pkt([192, 168, 2, 50]));
    assert_eq!(res2.emitted.len(), 1);
    assert_eq!(res2.emitted[0].0, 102, "marked goes out wan2");
}

#[test]
fn bridge_learns_and_forwards() {
    let mut h = Host::new("br", CostModel::default());
    let r = h.add_namespace("bridge-ns");
    let br = h.add_bridge(r, "br0").unwrap();
    let p1 = h.add_external(r, "p1", 1).unwrap();
    let p2 = h.add_external(r, "p2", 2).unwrap();
    let p3 = h.add_external(r, "p3", 3).unwrap();
    for i in [br, p1, p2, p3] {
        h.set_up(i, true).unwrap();
    }
    for p in [p1, p2, p3] {
        h.bridge_attach(br, p).unwrap();
    }

    let ha = MacAddr::local(10);
    let hb = MacAddr::local(11);
    let frame = |src: MacAddr, dst: MacAddr| {
        un_packet::PacketBuilder::new()
            .ethernet(src, dst)
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(1, 2)
            .build()
    };

    // Unknown dst: flood to the other two ports.
    let res = h.inject(p1, frame(ha, hb));
    let mut tags: Vec<u64> = res.emitted.iter().map(|(t, _)| *t).collect();
    tags.sort();
    assert_eq!(tags, vec![2, 3]);

    // Reply learns hb on p2; now traffic to ha is directed to p1 only.
    let res = h.inject(p2, frame(hb, ha));
    let tags: Vec<u64> = res.emitted.iter().map(|(t, _)| *t).collect();
    assert_eq!(tags, vec![1], "learned unicast must not flood");
}

#[test]
fn vlan_subinterface_demux_and_tagging() {
    let mut h = Host::new("vl", CostModel::default());
    let r = h.add_namespace("ns");
    let eth = h.add_external(r, "eth0", 9).unwrap();
    let sub = h.add_vlan_sub(eth, 100, "eth0.100").unwrap();
    h.addr_add(sub, cidr("10.10.0.1/24")).unwrap();
    h.set_up(eth, true).unwrap();
    h.set_up(sub, true).unwrap();
    // Duplicate VID rejected.
    assert!(matches!(
        h.add_vlan_sub(eth, 100, "dup"),
        Err(HostError::VlanInUse(100))
    ));

    // Tagged echo request arrives on eth0; sub-iface answers, reply
    // leaves tagged again.
    let sub_mac = h.iface(sub).unwrap().mac;
    let echo = un_packet::PacketBuilder::new()
        .ethernet(MacAddr::local(77), sub_mac)
        .vlan(100)
        .ipv4(Ipv4Addr::new(10, 10, 0, 2), Ipv4Addr::new(10, 10, 0, 1))
        .icmp_echo(un_packet::icmp::IcmpKind::EchoRequest, 1, 1)
        .build();
    // Static neighbor so the reply needs no ARP.
    h.neigh_add(r, Ipv4Addr::new(10, 10, 0, 2), MacAddr::local(77))
        .unwrap();
    let res = h.inject(eth, echo);
    assert_eq!(res.emitted.len(), 1);
    let (tag, reply) = &res.emitted[0];
    assert_eq!(*tag, 9);
    assert_eq!(reply.vlan_id(), Some(100), "reply must be re-tagged");
}

#[test]
fn xfrm_tunnel_between_two_hosts() {
    // Host A (CPE) and host B (gateway) joined by their external ifaces.
    let costs = CostModel::default();
    let key = [5u8; 32];
    let salt = [0, 1, 2, 3];

    let mk = |name: &str, my_ip: &str| {
        let mut h = Host::new(name, costs.clone());
        let ns = NsId(0);
        let ext = h.add_external(ns, "wan", 1).unwrap();
        h.addr_add(ext, cidr(my_ip)).unwrap();
        h.set_up(ext, true).unwrap();
        (h, ext)
    };
    let a_ip = Ipv4Addr::new(192, 0, 2, 1);
    let b_ip = Ipv4Addr::new(192, 0, 2, 2);
    let (mut ha, ext_a) = mk("a", "192.0.2.1/24");
    let (mut hb, ext_b) = mk("b", "192.0.2.2/24");
    // Static neighbors with each other's real MACs (the node fabric
    // normally lets ARP do this; here the wire is hand-carried).
    let mac_a = ha.iface(ext_a).unwrap().mac;
    let mac_b = hb.iface(ext_b).unwrap().mac;
    ha.neigh_add(NsId(0), b_ip, mac_b).unwrap();
    hb.neigh_add(NsId(0), a_ip, mac_a).unwrap();

    // A protects traffic to 172.16.0.0/16 via SPI 0x700.
    {
        let x = ha.xfrm_mut(NsId(0)).unwrap();
        x.sad
            .install(SecurityAssociation::outbound(0x700, a_ip, b_ip, key, salt));
        x.spd.install(SecurityPolicy {
            selector: TrafficSelector::between(cidr("0.0.0.0/0"), cidr("172.16.0.0/16")),
            direction: PolicyDirection::Out,
            action: PolicyAction::Protect(0x700),
            priority: 10,
        });
    }
    {
        let x = hb.xfrm_mut(NsId(0)).unwrap();
        x.sad
            .install(SecurityAssociation::inbound(0x700, a_ip, b_ip, key, salt));
    }
    // A routes the protected subnet toward the gateway (the SPD then
    // decides to encapsulate).
    ha.route_add(
        NsId(0),
        crate::route::MAIN_TABLE,
        cidr("172.16.0.0/16"),
        Some(b_ip),
        ext_a,
        0,
    )
    .unwrap();
    // B owns 172.16.0.1 locally (simulating the protected service) and a
    // UDP socket on it.
    let svc = hb.add_external(NsId(0), "svc", 2).unwrap();
    hb.addr_add(svc, cidr("172.16.0.1/16")).unwrap();
    hb.set_up(svc, true).unwrap();
    let sock = hb.udp_bind(NsId(0), Ipv4Addr::UNSPECIFIED, 4000).unwrap();

    // A sends a datagram to the protected subnet.
    let payload = vec![0xEE; 256];
    let inner = un_packet::PacketBuilder::new()
        .ipv4(a_ip, Ipv4Addr::new(172, 16, 0, 1))
        .udp(111, 4000)
        .payload(&payload)
        .build();
    let res = ha.raw_send(NsId(0), inner.data().to_vec()).unwrap();
    assert_eq!(res.emitted.len(), 1, "encapsulated packet leaves host A");
    let (_, wire) = &res.emitted[0];

    // The frame on the wire is ESP, not plaintext.
    let eth = wire.ethernet().unwrap();
    let outer = Ipv4Packet::new_checked(eth.payload()).unwrap();
    assert_eq!(outer.protocol(), IpProtocol::Esp);
    let wire_bytes = wire.data().to_vec();
    assert!(
        !wire_bytes.windows(payload.len()).any(|w| w == &payload[..]),
        "payload must not appear in cleartext on the wire"
    );

    // Deliver to host B: it decapsulates and the socket receives.
    hb.inject(ext_b, wire.clone());
    let dg = hb.udp_recv(sock).expect("decapsulated datagram delivered");
    assert_eq!(dg.payload, payload);
    assert_eq!(ha.trace.counter("xfrm_encap"), 1);
    assert_eq!(hb.trace.counter("xfrm_decap"), 1);
    let _ = ext_a;
}

#[test]
fn ttl_expiry_drops() {
    let (mut h, client, router, _server) = routed_host();
    let c0 = h.iface_by_name(client, "eth0").unwrap().id;
    let _ = c0;
    // Build a TTL=1 packet from the client; router decrements to 0.
    let sock = h.udp_bind(client, Ipv4Addr::UNSPECIFIED, 5000).unwrap();
    let _ = sock;
    let pkt = un_packet::PacketBuilder::new()
        .ipv4(
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(203, 0, 113, 9),
        )
        .ttl(1)
        .udp(5000, 53)
        .build();
    h.raw_send(client, pkt.data().to_vec()).unwrap();
    assert_eq!(h.trace.counter("ttl_expired"), 1);
    assert!(h.namespace(router).unwrap().dropped >= 1);
}

#[test]
fn forwarding_disabled_drops() {
    let (mut h, client, router, _server) = routed_host();
    h.sysctl_ip_forward(router, false).unwrap();
    let pkt = un_packet::PacketBuilder::new()
        .ipv4(
            Ipv4Addr::new(192, 168, 1, 10),
            Ipv4Addr::new(203, 0, 113, 9),
        )
        .udp(5000, 53)
        .build();
    h.raw_send(client, pkt.data().to_vec()).unwrap();
    assert_eq!(h.trace.counter("rx_not_for_us"), 1);
}

#[test]
fn arp_pending_queue_bounded() {
    let mut h = Host::new("q", CostModel::default());
    let ns = h.add_namespace("ns");
    let ext = h.add_external(ns, "eth0", 1).unwrap();
    h.addr_add(ext, cidr("10.0.0.1/24")).unwrap();
    h.set_up(ext, true).unwrap();
    // Send 5 packets to an unresolvable neighbor: 1 ARP request out,
    // NEIGH_QUEUE_MAX parked, rest dropped.
    for i in 0..5u16 {
        let p = un_packet::PacketBuilder::new()
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 99))
            .udp(1000 + i, 9)
            .build();
        h.raw_send(ns, p.data().to_vec()).unwrap();
    }
    assert_eq!(h.trace.counter("arp_requests"), 1);
    assert_eq!(
        h.trace.counter("neigh_queue_drops"),
        (5 - NEIGH_QUEUE_MAX) as u64 - 1 + 1
    );

    // The ARP reply arrives: parked packets flush out.
    let my_mac = h.iface(ext).unwrap().mac;
    let mut reply = Packet::zeroed(ETHERNET_HEADER_LEN + ARP_LEN);
    {
        let buf = reply.data_mut();
        let mut e = EthernetFrame::new_unchecked(&mut buf[..]);
        e.set_dst(my_mac);
        e.set_src(MacAddr::local(42));
        e.set_ethertype(EtherType::Arp);
        let mut a = ArpPacket::new_unchecked(&mut buf[ETHERNET_HEADER_LEN..]);
        a.init();
        a.set_op(ArpOp::Reply);
        a.set_sender_mac(MacAddr::local(42));
        a.set_sender_ip(Ipv4Addr::new(10, 0, 0, 99));
        a.set_target_mac(my_mac);
        a.set_target_ip(Ipv4Addr::new(10, 0, 0, 1));
    }
    let res = h.inject(ext, reply);
    assert_eq!(res.emitted.len(), NEIGH_QUEUE_MAX, "parked packets flushed");
}

#[test]
fn config_errors() {
    let mut h = Host::new("e", CostModel::default());
    let ns = h.add_namespace("ns");
    let ext = h.add_external(ns, "eth0", 1).unwrap();
    assert!(matches!(
        h.add_external(ns, "eth0", 2),
        Err(HostError::IfaceNameInUse(_))
    ));
    assert!(matches!(
        h.add_external(NsId(99), "x", 3),
        Err(HostError::NoSuchNamespace(99))
    ));
    assert!(matches!(
        h.bridge_attach(ext, ext),
        Err(HostError::WrongIfaceKind(_))
    ));
    h.udp_bind(ns, Ipv4Addr::UNSPECIFIED, 53).unwrap();
    assert!(matches!(
        h.udp_bind(ns, Ipv4Addr::UNSPECIFIED, 53),
        Err(HostError::AddrInUse(_))
    ));
}

#[test]
fn down_iface_refuses_traffic() {
    let (mut h, a, _b) = two_ns_host();
    let va = h.iface_by_name(a, "veth-a").unwrap().id;
    h.set_up(va, false).unwrap();
    let pkt = un_packet::PacketBuilder::new()
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
        .udp(1, 2)
        .build();
    h.raw_send(a, pkt.data().to_vec()).unwrap();
    assert_eq!(h.trace.counter("icmp_echo_requests"), 0);
    assert!(h.trace.counter("tx_down_iface") >= 1 || h.trace.counter("no_route") >= 1);
}

#[test]
fn costs_accumulate_along_path() {
    let (mut h, a, b) = two_ns_host();
    let srv = h.udp_bind(b, Ipv4Addr::UNSPECIFIED, 7).unwrap();
    let cli = h.udp_bind(a, Ipv4Addr::UNSPECIFIED, 8).unwrap();
    let res = h
        .udp_send(cli, Ipv4Addr::new(10, 0, 0, 2), 7, &[0u8; 1000])
        .unwrap();
    // user/kernel crossing + ip + veth + l4 at least.
    let floor =
        CostModel::default().user_kernel_crossing_ns + CostModel::default().veth_crossing_ns;
    assert!(
        res.cost.as_nanos() > floor,
        "cost {} too small",
        res.cost.as_nanos()
    );
    assert!(h.udp_recv(srv).is_some());
    let _ = cli;
}
