//! Interfaces: loopback, veth, bridge, VLAN sub-interface, external.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use un_packet::ethernet::MacAddr;
use un_packet::{Ipv4Cidr, Packet};

use crate::types::{ExternalTag, NsId};

/// An interface handle (index into the host's interface table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceId(pub u32);

impl std::fmt::Display for IfaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "if{}", self.0)
    }
}

/// What an interface is.
#[derive(Debug, Clone)]
pub enum IfaceKind {
    /// `lo`.
    Loopback,
    /// One end of a veth pair.
    Veth {
        /// The other end.
        peer: IfaceId,
    },
    /// A learning bridge (`brctl addbr`).
    Bridge {
        /// Enslaved member interfaces.
        members: Vec<IfaceId>,
        /// MAC → member forwarding database.
        fdb: HashMap<MacAddr, IfaceId>,
    },
    /// An 802.1Q sub-interface (`ip link add link eth0 name eth0.10 …`).
    VlanSub {
        /// The parent interface carrying tagged frames.
        parent: IfaceId,
        /// The VLAN id demuxed to this sub-interface.
        vid: u16,
    },
    /// Attachment to the node fabric (tap/LSI port/physical NIC).
    External {
        /// Opaque tag the fabric uses to route emissions.
        tag: ExternalTag,
    },
}

/// ARP neighbor entry state.
#[derive(Debug, Clone)]
pub enum NeighState {
    /// Resolved.
    Reachable(MacAddr),
    /// Resolution in flight; packets parked until the reply arrives.
    Incomplete {
        /// Queued IP packets (bounded, like the kernel's arp_queue).
        pending: Vec<(IfaceId, Packet)>,
    },
}

/// Maximum packets parked on an incomplete neighbor entry.
pub const NEIGH_QUEUE_MAX: usize = 3;

/// One interface.
#[derive(Debug, Clone)]
pub struct Iface {
    /// Handle.
    pub id: IfaceId,
    /// Owning namespace.
    pub ns: NsId,
    /// Name, unique within the namespace.
    pub name: String,
    /// MAC address.
    pub mac: MacAddr,
    /// Assigned IPv4 addresses.
    pub addrs: Vec<Ipv4Cidr>,
    /// Administrative state.
    pub up: bool,
    /// Kind-specific state.
    pub kind: IfaceKind,
    /// Conntrack zone stamped on ingress traffic (0 = default).
    pub ct_zone: u16,
    /// RX packet counter.
    pub rx_packets: u64,
    /// TX packet counter.
    pub tx_packets: u64,
    /// RX byte counter.
    pub rx_bytes: u64,
    /// TX byte counter.
    pub tx_bytes: u64,
}

impl Iface {
    /// Does this interface own `ip`?
    pub fn has_addr(&self, ip: Ipv4Addr) -> bool {
        self.addrs.iter().any(|c| c.addr() == ip)
    }

    /// First address, if any (used as source for locally generated traffic).
    pub fn primary_addr(&self) -> Option<Ipv4Addr> {
        self.addrs.first().map(|c| c.addr())
    }

    /// Is `ip` on-link for this interface?
    pub fn on_link(&self, ip: Ipv4Addr) -> bool {
        self.addrs.iter().any(|c| c.contains(ip))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface() -> Iface {
        Iface {
            id: IfaceId(1),
            ns: NsId(0),
            name: "eth0".into(),
            mac: MacAddr::local(1),
            addrs: vec!["10.0.0.1/24".parse().unwrap()],
            up: true,
            kind: IfaceKind::External { tag: 7 },
            ct_zone: 0,
            rx_packets: 0,
            tx_packets: 0,
            rx_bytes: 0,
            tx_bytes: 0,
        }
    }

    #[test]
    fn addr_predicates() {
        let i = iface();
        assert!(i.has_addr(Ipv4Addr::new(10, 0, 0, 1)));
        assert!(!i.has_addr(Ipv4Addr::new(10, 0, 0, 2)));
        assert!(i.on_link(Ipv4Addr::new(10, 0, 0, 200)));
        assert!(!i.on_link(Ipv4Addr::new(10, 0, 1, 1)));
        assert_eq!(i.primary_addr(), Some(Ipv4Addr::new(10, 0, 0, 1)));
    }
}
