//! # un-linux — the simulated CPE kernel network stack
//!
//! The paper's whole premise is that a Linux-based CPE *already contains*
//! most of the network functions an NSP wants to deploy: iptables
//! (firewall/NAT), linuxbridge, the XFRM IPsec stack, policy routing.
//! A Native Network Function is nothing but a configuration of these
//! kernel objects inside a network namespace.
//!
//! This crate is that kernel, reproduced at the semantic level the paper
//! needs:
//!
//! * [`host::Host`] — one simulated machine: network namespaces, the
//!   packet pipeline, and an `ip`/`iptables`/`sysctl`-like config API.
//! * [`iface`] — loopback, veth pairs, bridges (with learning FDB),
//!   802.1Q sub-interfaces, and *external* ports that attach the host to
//!   the node fabric (LSI ports / taps). Neighbor resolution is real
//!   ARP with an incomplete-entry pending queue.
//! * [`route`] — LPM routing tables plus `ip rule` policy routing
//!   (fwmark → table), the mechanism the paper's *sharable NNFs* use to
//!   build "multiple internal paths".
//! * [`netfilter`] — the five-hook table/chain/rule engine (mangle/nat/
//!   filter subset) with marks and connection state matches.
//! * [`conntrack`] — connection tracking with SNAT/DNAT/MASQUERADE and
//!   conntrack *zones* for per-service-graph isolation.
//! * [`xfrm`] — kernel IPsec: per-namespace SAD/SPD glued to `un-ipsec`
//!   ESP tunnel processing (this is where the native and Docker flavors
//!   of the paper's Table 1 do their crypto).
//! * [`socket`] — minimal UDP/RAW sockets for the userspace daemons of
//!   the simulation (IKE-lite, iperf-like load generators, DHCP).
//!
//! Every data-path operation charges virtual time through the
//! [`un_sim::CostModel`], so end-to-end throughput measured across a
//! `Host` is meaningful.

#![forbid(unsafe_code)]
#![deny(warnings)]

pub mod conntrack;
pub mod host;
pub mod iface;
pub mod netfilter;
pub mod route;
pub mod socket;
pub mod types;
pub mod xfrm;

pub use host::Host;
pub use iface::{IfaceId, IfaceKind};
pub use netfilter::{Chain, NfRule, NfTable, RuleMatch, Target};
pub use route::{IpRule, Route, RouteTable, MAIN_TABLE};
pub use socket::{Datagram, SocketId};
pub use types::{HostError, IoResult, NsId};
